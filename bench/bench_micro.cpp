// Micro-benchmarks (google-benchmark) for the hot paths behind the paper's
// design choices:
//  * Patricia-trie lookup/insert across database sizes — the flatness here
//    is the root cause of Fig. 7a/7b;
//  * wire codecs (VXLAN-GPO stack, LISP control messages);
//  * map-cache hit path and SGACL evaluation (the per-packet pipeline);
//  * SPF recomputation at campus and warehouse scale;
//  * telemetry hot paths (counter cells, recorder, idle tracer hooks) —
//    the instrumentation tax must stay ~0 when idle, tiny when enabled.
//
// The custom main additionally builds a two-edge fabric, pushes a few
// packets, and exports metrics snapshots so scripts/check_metrics.sh can
// validate the JSON schema and counter monotonicity cheaply (run with
// --benchmark_filter=NothingMatches to skip the timing loops).
//
// When $SDA_BENCH_JSON is set, main also runs the perf-gate probes
// (steady_clock-timed hot loops plus a global-new allocation counter) and
// writes the machine-readable summary scripts/check_perf.sh diffs against
// the committed baseline in bench/BENCH_micro.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

// Sanitized builds run the same probes but the numbers are meaningless for
// regression gating; the JSON carries this flag so check_perf.sh can skip.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(undefined_behavior_sanitizer)
#define SDA_BENCH_SANITIZED 1
#endif
#endif
#if !defined(SDA_BENCH_SANITIZED) && \
    (defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__))
#define SDA_BENCH_SANITIZED 1
#endif
#ifndef SDA_BENCH_SANITIZED
#define SDA_BENCH_SANITIZED 0
#endif

#include "bgp/rib.hpp"
#include "dataplane/sgacl.hpp"
#include "fabric/fabric.hpp"
#include "fabric/lanes.hpp"
#include "l2/slaac.hpp"
#include "lisp/map_cache.hpp"
#include "lisp/map_server.hpp"
#include "lisp/messages.hpp"
#include "net/packet.hpp"
#include "policy/sxp.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/path_trace.hpp"
#include "telemetry_sink.hpp"
#include "trie/patricia.hpp"
#include "underlay/spf.hpp"

// --- Counting allocator ---------------------------------------------------
// Global operator new replacement that counts every heap allocation, so the
// perf probe can assert the dispatch loop is allocation-free at steady
// state. Frees are not counted (only allocation growth matters); all forms
// forward to malloc/aligned_alloc so ASan interception still works.

namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void* operator new(std::size_t size, std::align_val_t al) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(al);
  const std::size_t rounded = (size + a - 1) / a * a;  // aligned_alloc contract
  if (void* p = std::aligned_alloc(a, rounded != 0 ? rounded : a)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t al) { return ::operator new(size, al); }

// GCC pairs the replaced operator new with operator delete and warns when a
// pointer it produced reaches std::free(); it cannot see that every form
// above forwards to malloc/aligned_alloc, so the pairing is in fact exact.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace {

using namespace sda;

net::VnEid eid_of(std::uint32_t i) {
  return net::VnEid{net::VnId{1}, net::Eid{net::Ipv4Address{0x0A000000u + i}}};
}

void BM_TrieLookup(benchmark::State& state) {
  const auto routes = static_cast<std::uint32_t>(state.range(0));
  trie::PatriciaTrie<int> trie;
  for (std::uint32_t i = 0; i < routes; ++i) {
    trie.insert(trie::BitKey::from_ipv4(net::Ipv4Address{0x0A000000u + i}), static_cast<int>(i));
  }
  std::uint32_t q = 0;
  for (auto _ : state) {
    const auto* v =
        trie.find_exact(trie::BitKey::from_ipv4(net::Ipv4Address{0x0A000000u + (q++ % routes)}));
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_TrieLookup)->Arg(1)->Arg(100)->Arg(10000)->Arg(100000);

void BM_TrieLongestMatch(benchmark::State& state) {
  const auto routes = static_cast<std::uint32_t>(state.range(0));
  trie::PatriciaTrie<int> trie;
  trie.insert(trie::BitKey::from_ipv4_prefix(*net::Ipv4Prefix::parse("0.0.0.0/0")), -1);
  for (std::uint32_t i = 0; i < routes; ++i) {
    trie.insert(trie::BitKey::from_ipv4(net::Ipv4Address{0x0A000000u + i}), static_cast<int>(i));
  }
  std::uint32_t q = 0;
  for (auto _ : state) {
    const auto m =
        trie.longest_match(trie::BitKey::from_ipv4(net::Ipv4Address{0x0A000000u + (q++ % (2 * routes))}));
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_TrieLongestMatch)->Arg(100)->Arg(10000)->Arg(100000);

void BM_TrieInsertErase(benchmark::State& state) {
  trie::PatriciaTrie<int> trie;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    trie.insert(trie::BitKey::from_ipv4(net::Ipv4Address{0x0A000000u + i}), static_cast<int>(i));
  }
  std::uint32_t q = 0;
  for (auto _ : state) {
    const auto key = trie::BitKey::from_ipv4(net::Ipv4Address{0x0B000000u + (q++ % 1024)});
    trie.insert(key, 1);
    trie.erase(key);
  }
}
BENCHMARK(BM_TrieInsertErase);

void BM_MapServerAnswer(benchmark::State& state) {
  lisp::MapServer server;
  const auto routes = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < routes; ++i) {
    lisp::MappingRecord record;
    record.rlocs = {net::Rloc{net::Ipv4Address{0xC0A80001u}}};
    server.register_mapping(eid_of(i), record);
  }
  lisp::MapRequest request;
  std::uint32_t q = 0;
  for (auto _ : state) {
    request.eid = eid_of(q++ % routes);
    const auto reply = server.answer(request);
    benchmark::DoNotOptimize(reply);
  }
}
BENCHMARK(BM_MapServerAnswer)->Arg(100)->Arg(10000)->Arg(100000);

void BM_SimulatorScheduleDispatch(benchmark::State& state) {
  sim::Simulator simulator;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    for (std::int64_t i = 0; i < 64; ++i) {
      simulator.schedule_after(sim::Duration{i}, [&sink] { ++sink; });
    }
    simulator.run();
  }
  state.SetItemsProcessed(state.iterations() * 64);
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_SimulatorScheduleDispatch);

void BM_MapCacheHit(benchmark::State& state) {
  lisp::MapCache cache;
  lisp::MapReply reply;
  reply.rlocs = {net::Rloc{net::Ipv4Address{0xC0A80001u}}};
  reply.ttl_seconds = 1 << 30;
  for (std::uint32_t i = 0; i < 1000; ++i) cache.install(eid_of(i), reply, sim::SimTime{});
  std::uint32_t q = 0;
  for (auto _ : state) {
    const auto* entry = cache.lookup(eid_of(q++ % 1000), sim::SimTime{});
    benchmark::DoNotOptimize(entry);
  }
}
BENCHMARK(BM_MapCacheHit);

void BM_VxlanEncodeDecode(benchmark::State& state) {
  net::FabricFrame frame;
  frame.outer_source = net::Ipv4Address{10, 0, 0, 1};
  frame.outer_destination = net::Ipv4Address{10, 0, 0, 2};
  frame.vn = net::VnId{100};
  frame.source_group = net::GroupId{20};
  net::OverlayFrame inner;
  inner.source_mac = net::MacAddress::from_u64(0x02AA);
  inner.destination_mac = net::MacAddress::from_u64(0x02BB);
  net::Ipv4Datagram dgram;
  dgram.source = net::Ipv4Address{10, 1, 0, 1};
  dgram.destination = net::Ipv4Address{10, 1, 0, 2};
  dgram.payload_size = 1400;
  inner.l3 = dgram;
  frame.inner = inner;
  for (auto _ : state) {
    const auto bytes = frame.encode();
    const auto decoded = net::FabricFrame::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_VxlanEncodeDecode);

void BM_LispMessageCodec(benchmark::State& state) {
  lisp::MapReply reply;
  reply.nonce = 42;
  reply.eid = eid_of(7);
  reply.rlocs = {net::Rloc{net::Ipv4Address{10, 0, 0, 1}},
                 net::Rloc{net::Ipv4Address{10, 0, 0, 2}}};
  const lisp::Message message{reply};
  for (auto _ : state) {
    const auto bytes = lisp::encode_message(message);
    const auto decoded = lisp::decode_message(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_LispMessageCodec);

void BM_SgaclEvaluate(benchmark::State& state) {
  dataplane::Sgacl sgacl{policy::Action::Allow};
  for (std::uint16_t s = 1; s <= 32; ++s) {
    for (std::uint16_t d = 1; d <= 32; ++d) {
      if ((s + d) % 4 == 0) {
        sgacl.install_rule(net::VnId{1},
                           {{net::GroupId{s}, net::GroupId{d}}, policy::Action::Deny});
      }
    }
  }
  std::uint16_t q = 0;
  for (auto _ : state) {
    ++q;
    const auto action = sgacl.evaluate(net::VnId{1}, net::GroupId{static_cast<std::uint16_t>(1 + q % 32)},
                                       net::GroupId{static_cast<std::uint16_t>(1 + (q / 32) % 32)});
    benchmark::DoNotOptimize(action);
  }
}
BENCHMARK(BM_SgaclEvaluate);

void BM_SxpCodec(benchmark::State& state) {
  policy::SxpRuleInstall install;
  install.vn = net::VnId{100};
  install.destination = net::GroupId{20};
  for (std::uint16_t s = 1; s <= 16; ++s) {
    install.rules.push_back(
        {{net::GroupId{s}, net::GroupId{20}}, policy::Action::Deny});
  }
  const policy::SxpMessage message{install};
  for (auto _ : state) {
    const auto bytes = policy::encode_sxp(message);
    const auto decoded = policy::decode_sxp(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_SxpCodec);

void BM_SlaacDerivation(benchmark::State& state) {
  const auto prefix = *net::Ipv6Prefix::parse("2001:db8:100::/64");
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto addr = l2::slaac_address(prefix, net::MacAddress::from_u64(++i));
    benchmark::DoNotOptimize(addr);
  }
}
BENCHMARK(BM_SlaacDerivation);

void BM_RibInstall(benchmark::State& state) {
  bgp::Rib rib;
  std::uint64_t version = 0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    ++i;
    const bool changed = rib.install(eid_of(i % 16000),
                                     net::Ipv4Address{0x0A000001u + (i % 200)},
                                     sim::SimTime{}, ++version);
    benchmark::DoNotOptimize(changed);
  }
}
BENCHMARK(BM_RibInstall);

void BM_SpfCompute(benchmark::State& state) {
  // Star topology like the warehouse: border hub + N edges.
  const auto edges = static_cast<std::uint32_t>(state.range(0));
  underlay::Topology topo;
  const auto hub = topo.add_node("hub", net::Ipv4Address{10, 0, 0, 1});
  for (std::uint32_t i = 0; i < edges; ++i) {
    const auto n = topo.add_node("e" + std::to_string(i), net::Ipv4Address{0x0A010000u + i});
    topo.add_link(hub, n, std::chrono::microseconds{50});
  }
  for (auto _ : state) {
    const auto table = underlay::compute_spf(topo, 1);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_SpfCompute)->Arg(13)->Arg(200);

// --- Telemetry hot paths --------------------------------------------------
// Pull probes cost nothing until snapshot(); these measure the paths that
// do run per event: owned cells, the flight-recorder ring, and the
// compiled-in-but-idle tracer hooks every data-plane stage calls.

void BM_TelemetryCounterInc(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  telemetry::Counter& counter = registry.counter("edge[0].map_cache.hits");
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_TelemetryCounterInc);

void BM_TelemetryHistogramObserve(benchmark::State& state) {
  telemetry::MetricsRegistry registry;
  telemetry::LatencyHistogram& hist =
      registry.histogram("fabric.first_packet_us", {0.0, 20'000.0, 50});
  double sample = 0;
  for (auto _ : state) {
    hist.observe(sample);
    sample = sample < 20'000.0 ? sample + 7.0 : 0.0;
  }
  benchmark::DoNotOptimize(hist);
}
BENCHMARK(BM_TelemetryHistogramObserve);

void BM_TelemetryRecorderRecord(benchmark::State& state) {
  telemetry::FlightRecorder recorder{2048};
  recorder.set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    // The guard-then-build idiom every instrumented call site uses.
    if (recorder.enabled()) {
      recorder.record(sim::SimTime{}, telemetry::EventKind::MapRequest, "edge-0",
                      "for 10.1.0.5");
    }
    benchmark::DoNotOptimize(recorder);
  }
}
BENCHMARK(BM_TelemetryRecorderRecord)->Arg(1)->Arg(0);

void BM_TelemetryTracerIdleNote(benchmark::State& state) {
  // Nothing armed, nothing open: the per-packet cost of compiled-in hooks.
  telemetry::PathTracer tracer;
  net::OverlayFrame frame;
  frame.source_mac = net::MacAddress::from_u64(0x02AA);
  frame.destination_mac = net::MacAddress::from_u64(0x02BB);
  net::Ipv4Datagram dgram;
  dgram.source = net::Ipv4Address{10, 1, 0, 1};
  dgram.destination = net::Ipv4Address{10, 1, 0, 2};
  frame.l3 = dgram;
  const std::string node = "edge-0";
  for (auto _ : state) {
    tracer.note(net::VnId{1}, frame, telemetry::HopKind::Transit, node, sim::SimTime{});
    benchmark::DoNotOptimize(tracer);
  }
}
BENCHMARK(BM_TelemetryTracerIdleNote);

void BM_TelemetryRegistrySnapshot(benchmark::State& state) {
  // A registry the size of a mid-size fabric: 40 nodes x 8 pull probes.
  telemetry::MetricsRegistry registry;
  std::vector<std::uint64_t> cells(320);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    registry.register_counter(
        "edge[" + std::to_string(i / 8) + "].counter" + std::to_string(i % 8),
        [&cells, i] { return cells[i]; });
  }
  for (auto _ : state) {
    const telemetry::Snapshot snap = registry.snapshot();
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_TelemetryRegistrySnapshot);

/// Builds a tiny two-edge fabric, pushes traffic, and exports two metrics
/// snapshots (plus Prometheus text) for scripts/check_metrics.sh: the
/// second snapshot must be schema-identical and counter-monotonic over the
/// first. No-op unless $SDA_RESULTS_DIR is set.
void export_schema_probe() {
  const auto dir = bench::results_dir();
  if (!dir) return;
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.seed = 0x5DA;
  config.trace_first_packets = true;
  // The probe's job is schema coverage: turn on every metric-bearing
  // subsystem — scale-out routing servers, the full HA layer (failover,
  // anti-entropy, election, dampening), and causal tracing — so the
  // routing_server[i].*, ha.*, and assurance.* families are all present.
  config.routing_servers = 2;
  config.ha.failover = true;
  config.ha.anti_entropy_interval = std::chrono::milliseconds{500};
  config.ha.election = true;
  config.ha.dampening = true;
  config.causal_tracing = true;
  fabric::SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  fabric.add_edge("e0");
  fabric.add_edge("e1");
  fabric.link("e0", "b0");
  fabric.link("e1", "b0");
  fabric.finalize();
  fabric.define_vn({net::VnId{1}, "corp", *net::Ipv4Prefix::parse("10.1.0.0/16")});

  std::array<net::Ipv4Address, 2> ips;
  for (int i = 0; i < 2; ++i) {
    fabric::EndpointDefinition def;
    def.credential = "h" + std::to_string(i);
    def.secret = "pw";
    def.mac = net::MacAddress::from_u64(0x0400u + static_cast<std::uint64_t>(i));
    def.vn = net::VnId{1};
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    fabric.connect_endpoint(def.credential, i == 0 ? "e0" : "e1", 1,
                            [&ips, i](const fabric::OnboardResult& r) {
                              ips[static_cast<std::size_t>(i)] = r.ip;
                            });
  }
  // The HA heartbeat/election timers never drain the queue: drive time
  // explicitly. 3s covers the first election plus the acked registrations.
  sim.run_until(sim.now() + std::chrono::seconds{3});
  fabric.endpoint_send_udp(net::MacAddress::from_u64(0x0400u), ips[1], 443, 200);
  sim.run_until(sim.now() + std::chrono::milliseconds{200});
  const telemetry::Snapshot first = fabric.telemetry().metrics.snapshot();
  telemetry::write_json(*dir, "bench_micro_metrics", first);
  telemetry::write_prometheus(*dir, "bench_micro_metrics", first);
  for (int i = 0; i < 8; ++i) {
    fabric.endpoint_send_udp(net::MacAddress::from_u64(0x0401u), ips[0], 443, 200);
  }
  sim.run_until(sim.now() + std::chrono::milliseconds{200});
  telemetry::write_json(*dir, "bench_micro_metrics_2", fabric.telemetry().metrics.snapshot());
  std::printf("telemetry schema probes written to %s/bench_micro_metrics{,_2}.json\n",
              dir->c_str());
}

// --- Perf-gate probes -----------------------------------------------------
// Fixed-iteration steady_clock loops (deliberately independent of the
// google-benchmark runner so the JSON shape stays stable) measured per
// batch; per-op p50/p99 come from the sorted batch samples. The committed
// baseline lives in bench/BENCH_micro.json; scripts/check_perf.sh fails the
// build on a >25% throughput regression or any steady-state allocation.

struct ProbeResult {
  double ops_per_sec = 0;
  double p50_ns = 0;
  double p99_ns = 0;
};

template <typename Batch>
ProbeResult run_probe(Batch&& batch, std::size_t ops_per_batch) {
  using Clock = std::chrono::steady_clock;
  constexpr int kWarmupBatches = 50;
  constexpr int kMeasuredBatches = 400;
  for (int i = 0; i < kWarmupBatches; ++i) batch();
  std::vector<double> per_op_ns;
  per_op_ns.reserve(kMeasuredBatches);
  double total_ns = 0;
  for (int i = 0; i < kMeasuredBatches; ++i) {
    const auto begin = Clock::now();
    batch();
    const auto end = Clock::now();
    const double ns = std::chrono::duration<double, std::nano>(end - begin).count();
    total_ns += ns;
    per_op_ns.push_back(ns / static_cast<double>(ops_per_batch));
  }
  std::sort(per_op_ns.begin(), per_op_ns.end());
  const auto percentile = [&per_op_ns](double q) {
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(per_op_ns.size() - 1));
    return per_op_ns[idx];
  };
  ProbeResult result;
  result.ops_per_sec =
      static_cast<double>(kMeasuredBatches) * static_cast<double>(ops_per_batch) * 1e9 / total_ns;
  result.p50_ns = percentile(0.50);
  result.p99_ns = percentile(0.99);
  return result;
}

ProbeResult probe_schedule_dispatch() {
  sim::Simulator simulator;
  std::uint64_t sink = 0;
  return run_probe(
      [&] {
        for (std::int64_t i = 0; i < 256; ++i) {
          simulator.schedule_after(sim::Duration{i}, [&sink] { ++sink; });
        }
        simulator.run();
        benchmark::DoNotOptimize(sink);
      },
      256);
}

ProbeResult probe_map_cache_hit() {
  lisp::MapCache cache;
  lisp::MapReply reply;
  reply.rlocs = {net::Rloc{net::Ipv4Address{0xC0A80001u}}};
  reply.ttl_seconds = 1 << 30;
  for (std::uint32_t i = 0; i < 1000; ++i) cache.install(eid_of(i), reply, sim::SimTime{});
  std::uint32_t q = 0;
  return run_probe(
      [&] {
        for (int i = 0; i < 1024; ++i) {
          const auto* entry = cache.lookup(eid_of(q++ % 1000), sim::SimTime{});
          benchmark::DoNotOptimize(entry);
        }
      },
      1024);
}

ProbeResult probe_sgacl_verdict() {
  dataplane::Sgacl sgacl{policy::Action::Allow};
  for (std::uint16_t s = 1; s <= 32; ++s) {
    for (std::uint16_t d = 1; d <= 32; ++d) {
      if ((s + d) % 4 == 0) {
        sgacl.install_rule(net::VnId{1},
                           {{net::GroupId{s}, net::GroupId{d}}, policy::Action::Deny});
      }
    }
  }
  std::uint16_t q = 0;
  return run_probe(
      [&] {
        for (int i = 0; i < 1024; ++i) {
          ++q;
          const auto action =
              sgacl.evaluate(net::VnId{1}, net::GroupId{static_cast<std::uint16_t>(1 + q % 32)},
                             net::GroupId{static_cast<std::uint16_t>(1 + (q / 32) % 32)});
          benchmark::DoNotOptimize(action);
        }
      },
      1024);
}

/// Allocation count over 64 schedule+dispatch cycles after the scheduler's
/// containers have reached their high-water marks. Must be zero: small
/// callables live in the InlineAction SBO buffer and the queue/slot/free-
/// list vectors plateau after warmup.
std::uint64_t probe_dispatch_steady_state_allocs() {
  sim::Simulator simulator;
  std::uint64_t sink = 0;
  const auto cycle = [&] {
    for (std::int64_t i = 0; i < 256; ++i) {
      simulator.schedule_after(sim::Duration{i}, [&sink] { ++sink; });
    }
    simulator.run();
  };
  for (int i = 0; i < 64; ++i) cycle();
  const std::uint64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) cycle();
  benchmark::DoNotOptimize(sink);
  return g_heap_allocations.load(std::memory_order_relaxed) - before;
}

/// Disabled causal tracer: the full per-hook call pattern the fabric pays
/// when causal_tracing is off — an enabled() check guarding begin(), then
/// span_begin/span_end/finish on the 0 trace id. Every call must early-out;
/// this is the "tracing costs one predictable branch when off" claim,
/// measured.
ProbeResult probe_causal_idle() {
  telemetry::CausalTracer tracer{16};  // disabled: set_enabled never called
  const std::string node = "edge0";
  const sim::SimTime now{};
  std::uint64_t sink = 0;
  return run_probe(
      [&] {
        for (int i = 0; i < 1024; ++i) {
          std::uint64_t trace = 0;
          if (tracer.enabled()) {
            trace = tracer.begin(telemetry::OpKind::Register, node, now);
          }
          const std::uint64_t span = tracer.span_begin(trace, 0, "map-register", node, now);
          tracer.span_end(trace, span, now);
          tracer.finish(trace, now);
          sink += trace + span;
        }
        benchmark::DoNotOptimize(sink);
      },
      1024);
}

/// Allocation count over the disabled-tracer call pattern. Must be zero:
/// a disabled tracer that allocates would tax every control-plane hook in
/// every untraced fabric.
std::uint64_t probe_tracing_disabled_allocs() {
  telemetry::CausalTracer tracer{16};
  const std::string node = "edge0";
  const sim::SimTime now{};
  std::uint64_t sink = 0;
  const auto cycle = [&] {
    for (int i = 0; i < 1024; ++i) {
      std::uint64_t trace = 0;
      if (tracer.enabled()) {
        trace = tracer.begin(telemetry::OpKind::Register, node, now);
      }
      const std::uint64_t span = tracer.span_begin(trace, 0, "map-register", node, now);
      tracer.span_end(trace, span, now);
      tracer.finish(trace, now);
      sink += trace + span;
    }
  };
  for (int i = 0; i < 8; ++i) cycle();
  const std::uint64_t before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) cycle();
  benchmark::DoNotOptimize(sink);
  return g_heap_allocations.load(std::memory_order_relaxed) - before;
}

/// First-packet latency p50 (microseconds) from a deterministic two-edge
/// fabric run — sim-time, so identical on every host; a regression here
/// means the resolution pipeline itself got longer, not the machine slower.
double probe_first_packet_p50_us() {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.seed = 0x5DA;
  config.trace_first_packets = true;  // feeds fabric.first_packet_us
  fabric::SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  fabric.add_edge("e0");
  fabric.add_edge("e1");
  fabric.link("e0", "b0");
  fabric.link("e1", "b0");
  fabric.finalize();
  fabric.define_vn({net::VnId{1}, "corp", *net::Ipv4Prefix::parse("10.1.0.0/16")});
  std::array<net::Ipv4Address, 2> ips;
  for (int i = 0; i < 2; ++i) {
    fabric::EndpointDefinition def;
    def.credential = "h" + std::to_string(i);
    def.secret = "pw";
    def.mac = net::MacAddress::from_u64(0x0400u + static_cast<std::uint64_t>(i));
    def.vn = net::VnId{1};
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    fabric.connect_endpoint(def.credential, i == 0 ? "e0" : "e1", 1,
                            [&ips, i](const fabric::OnboardResult& r) {
                              ips[static_cast<std::size_t>(i)] = r.ip;
                            });
  }
  sim.run();
  fabric.endpoint_send_udp(net::MacAddress::from_u64(0x0400u), ips[1], 443, 200);
  fabric.endpoint_send_udp(net::MacAddress::from_u64(0x0401u), ips[0], 443, 200);
  sim.run();
  const telemetry::Snapshot snap = fabric.telemetry().metrics.snapshot();
  const auto it = snap.histograms.find("fabric.first_packet_us");
  if (it == snap.histograms.end() || it->second.total == 0) return 0.0;
  return it->second.quantile(0.5);
}

/// Multi-shard scaling probe: a 10k-edge LaneFabric partitioned into four
/// event lanes, driven at 1, 2 and 4 workers. Wall-clock events/s per arm
/// feeds the scaling gate; the workers=1 arm doubles as a throughput metric
/// under the ordinary 25% regression loop. Digest equality between the
/// workers=1 and workers=4 arms re-checks the determinism contract on the
/// exact fabric the perf numbers are quoted from.
struct ShardedScalingResult {
  std::size_t lanes = 0;
  unsigned hardware_threads = 0;
  double events_per_sec_w1 = 0;
  double events_per_sec_w2 = 0;
  double events_per_sec_w4 = 0;
  double speedup4 = 0;
  bool deterministic = false;
  std::uint64_t late_posts = 0;
  ProbeResult lane_events;  // workers=1 arm in ProbeResult shape
};

ShardedScalingResult probe_sharded_scaling() {
  constexpr std::size_t kLanes = 4;
  struct Arm {
    double events_per_sec = 0;
    std::uint64_t digest = 0;
    std::uint64_t late = 0;
  };
  const auto run_arm = [](std::size_t workers) {
    fabric::LaneFabricConfig cfg;
    cfg.lanes = kLanes;
    cfg.workers = workers;
    cfg.edges_per_lane = 2500;  // 10k edges total
    cfg.hops_per_packet = 64;
    cfg.packets_per_edge = 1;
    cfg.cross_lane_fraction = 0.25;
    cfg.seed = 0x5DA;
    fabric::LaneFabric lane_fabric(cfg);
    const auto begin = std::chrono::steady_clock::now();
    lane_fabric.run();
    const auto end = std::chrono::steady_clock::now();
    Arm arm;
    const double secs = std::chrono::duration<double>(end - begin).count();
    arm.events_per_sec =
        static_cast<double>(lane_fabric.events_executed()) / (secs > 0 ? secs : 1e-9);
    arm.digest = lane_fabric.log_digest();
    arm.late = lane_fabric.late_posts();
    return arm;
  };
  const Arm w1 = run_arm(1);
  const Arm w2 = run_arm(2);
  const Arm w4 = run_arm(4);
  ShardedScalingResult result;
  result.lanes = kLanes;
  result.hardware_threads = std::thread::hardware_concurrency();
  result.events_per_sec_w1 = w1.events_per_sec;
  result.events_per_sec_w2 = w2.events_per_sec;
  result.events_per_sec_w4 = w4.events_per_sec;
  result.speedup4 = w4.events_per_sec / (w1.events_per_sec > 0 ? w1.events_per_sec : 1e-9);
  result.deterministic = (w1.digest == w2.digest) && (w1.digest == w4.digest);
  result.late_posts = w1.late + w2.late + w4.late;
  result.lane_events.ops_per_sec = w1.events_per_sec;
  const double ns_per_event = 1e9 / (w1.events_per_sec > 0 ? w1.events_per_sec : 1e-9);
  result.lane_events.p50_ns = ns_per_event;  // single-run arm: mean stands in
  result.lane_events.p99_ns = ns_per_event;
  return result;
}

/// Runs every perf probe and writes the gate JSON to $SDA_BENCH_JSON.
/// No-op when the variable is unset.
void export_perf_probe() {
  const char* path = std::getenv("SDA_BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
#if defined(NDEBUG)
  const bool optimized = true;
#else
  const bool optimized = false;
#endif
  const bool sanitized = SDA_BENCH_SANITIZED != 0;
  const ProbeResult schedule = probe_schedule_dispatch();
  const ProbeResult cache_hit = probe_map_cache_hit();
  const ProbeResult sgacl = probe_sgacl_verdict();
  const ProbeResult causal_idle = probe_causal_idle();
  const std::uint64_t allocs = probe_dispatch_steady_state_allocs();
  const std::uint64_t tracing_allocs = probe_tracing_disabled_allocs();
  const double first_packet_us = probe_first_packet_p50_us();
  const ShardedScalingResult sharded = probe_sharded_scaling();
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "perf probe: cannot open %s for writing\n", path);
    return;
  }
  const auto metric = [f](const char* name, const ProbeResult& r, const char* trailer) {
    std::fprintf(f, "    \"%s\": {\"ops_per_sec\": %.1f, \"p50_ns\": %.2f, \"p99_ns\": %.2f}%s\n",
                 name, r.ops_per_sec, r.p50_ns, r.p99_ns, trailer);
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"sda-bench-micro-v1\",\n");
  std::fprintf(f, "  \"optimized\": %s,\n", optimized ? "true" : "false");
  std::fprintf(f, "  \"sanitized\": %s,\n", sanitized ? "true" : "false");
  std::fprintf(f, "  \"metrics\": {\n");
  metric("schedule_dispatch", schedule, ",");
  metric("map_cache_hit", cache_hit, ",");
  metric("sgacl_verdict", sgacl, ",");
  metric("causal_idle", causal_idle, ",");
  metric("sharded_lane_events", sharded.lane_events, "");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"sharded_scaling\": {\n");
  std::fprintf(f, "    \"lanes\": %zu,\n", sharded.lanes);
  std::fprintf(f, "    \"hardware_threads\": %u,\n", sharded.hardware_threads);
  std::fprintf(f, "    \"events_per_sec\": {\"workers1\": %.1f, \"workers2\": %.1f, \"workers4\": %.1f},\n",
               sharded.events_per_sec_w1, sharded.events_per_sec_w2, sharded.events_per_sec_w4);
  std::fprintf(f, "    \"speedup4\": %.3f,\n", sharded.speedup4);
  std::fprintf(f, "    \"deterministic\": %s,\n", sharded.deterministic ? "true" : "false");
  std::fprintf(f, "    \"late_posts\": %llu\n",
               static_cast<unsigned long long>(sharded.late_posts));
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fabric_first_packet_us_p50\": %.2f,\n", first_packet_us);
  std::fprintf(f, "  \"dispatch_steady_state_allocs\": %llu,\n",
               static_cast<unsigned long long>(allocs));
  std::fprintf(f, "  \"tracing_disabled_allocs\": %llu\n",
               static_cast<unsigned long long>(tracing_allocs));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("perf probe written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  export_schema_probe();
  export_perf_probe();
  return 0;
}
