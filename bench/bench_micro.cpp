// Micro-benchmarks (google-benchmark) for the hot paths behind the paper's
// design choices:
//  * Patricia-trie lookup/insert across database sizes — the flatness here
//    is the root cause of Fig. 7a/7b;
//  * wire codecs (VXLAN-GPO stack, LISP control messages);
//  * map-cache hit path and SGACL evaluation (the per-packet pipeline);
//  * SPF recomputation at campus and warehouse scale.
#include <benchmark/benchmark.h>

#include "bgp/rib.hpp"
#include "dataplane/sgacl.hpp"
#include "l2/slaac.hpp"
#include "lisp/map_cache.hpp"
#include "lisp/map_server.hpp"
#include "lisp/messages.hpp"
#include "net/packet.hpp"
#include "policy/sxp.hpp"
#include "trie/patricia.hpp"
#include "underlay/spf.hpp"

namespace {

using namespace sda;

net::VnEid eid_of(std::uint32_t i) {
  return net::VnEid{net::VnId{1}, net::Eid{net::Ipv4Address{0x0A000000u + i}}};
}

void BM_TrieLookup(benchmark::State& state) {
  const auto routes = static_cast<std::uint32_t>(state.range(0));
  trie::PatriciaTrie<int> trie;
  for (std::uint32_t i = 0; i < routes; ++i) {
    trie.insert(trie::BitKey::from_ipv4(net::Ipv4Address{0x0A000000u + i}), static_cast<int>(i));
  }
  std::uint32_t q = 0;
  for (auto _ : state) {
    const auto* v =
        trie.find_exact(trie::BitKey::from_ipv4(net::Ipv4Address{0x0A000000u + (q++ % routes)}));
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_TrieLookup)->Arg(1)->Arg(100)->Arg(10000)->Arg(100000);

void BM_TrieLongestMatch(benchmark::State& state) {
  const auto routes = static_cast<std::uint32_t>(state.range(0));
  trie::PatriciaTrie<int> trie;
  trie.insert(trie::BitKey::from_ipv4_prefix(*net::Ipv4Prefix::parse("0.0.0.0/0")), -1);
  for (std::uint32_t i = 0; i < routes; ++i) {
    trie.insert(trie::BitKey::from_ipv4(net::Ipv4Address{0x0A000000u + i}), static_cast<int>(i));
  }
  std::uint32_t q = 0;
  for (auto _ : state) {
    const auto m =
        trie.longest_match(trie::BitKey::from_ipv4(net::Ipv4Address{0x0A000000u + (q++ % (2 * routes))}));
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_TrieLongestMatch)->Arg(100)->Arg(10000)->Arg(100000);

void BM_TrieInsertErase(benchmark::State& state) {
  trie::PatriciaTrie<int> trie;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    trie.insert(trie::BitKey::from_ipv4(net::Ipv4Address{0x0A000000u + i}), static_cast<int>(i));
  }
  std::uint32_t q = 0;
  for (auto _ : state) {
    const auto key = trie::BitKey::from_ipv4(net::Ipv4Address{0x0B000000u + (q++ % 1024)});
    trie.insert(key, 1);
    trie.erase(key);
  }
}
BENCHMARK(BM_TrieInsertErase);

void BM_MapServerAnswer(benchmark::State& state) {
  lisp::MapServer server;
  const auto routes = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < routes; ++i) {
    lisp::MappingRecord record;
    record.rlocs = {net::Rloc{net::Ipv4Address{0xC0A80001u}}};
    server.register_mapping(eid_of(i), record);
  }
  lisp::MapRequest request;
  std::uint32_t q = 0;
  for (auto _ : state) {
    request.eid = eid_of(q++ % routes);
    const auto reply = server.answer(request);
    benchmark::DoNotOptimize(reply);
  }
}
BENCHMARK(BM_MapServerAnswer)->Arg(100)->Arg(10000)->Arg(100000);

void BM_MapCacheHit(benchmark::State& state) {
  lisp::MapCache cache;
  lisp::MapReply reply;
  reply.rlocs = {net::Rloc{net::Ipv4Address{0xC0A80001u}}};
  reply.ttl_seconds = 1 << 30;
  for (std::uint32_t i = 0; i < 1000; ++i) cache.install(eid_of(i), reply, sim::SimTime{});
  std::uint32_t q = 0;
  for (auto _ : state) {
    const auto* entry = cache.lookup(eid_of(q++ % 1000), sim::SimTime{});
    benchmark::DoNotOptimize(entry);
  }
}
BENCHMARK(BM_MapCacheHit);

void BM_VxlanEncodeDecode(benchmark::State& state) {
  net::FabricFrame frame;
  frame.outer_source = net::Ipv4Address{10, 0, 0, 1};
  frame.outer_destination = net::Ipv4Address{10, 0, 0, 2};
  frame.vn = net::VnId{100};
  frame.source_group = net::GroupId{20};
  net::OverlayFrame inner;
  inner.source_mac = net::MacAddress::from_u64(0x02AA);
  inner.destination_mac = net::MacAddress::from_u64(0x02BB);
  net::Ipv4Datagram dgram;
  dgram.source = net::Ipv4Address{10, 1, 0, 1};
  dgram.destination = net::Ipv4Address{10, 1, 0, 2};
  dgram.payload_size = 1400;
  inner.l3 = dgram;
  frame.inner = inner;
  for (auto _ : state) {
    const auto bytes = frame.encode();
    const auto decoded = net::FabricFrame::decode(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_VxlanEncodeDecode);

void BM_LispMessageCodec(benchmark::State& state) {
  lisp::MapReply reply;
  reply.nonce = 42;
  reply.eid = eid_of(7);
  reply.rlocs = {net::Rloc{net::Ipv4Address{10, 0, 0, 1}},
                 net::Rloc{net::Ipv4Address{10, 0, 0, 2}}};
  const lisp::Message message{reply};
  for (auto _ : state) {
    const auto bytes = lisp::encode_message(message);
    const auto decoded = lisp::decode_message(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_LispMessageCodec);

void BM_SgaclEvaluate(benchmark::State& state) {
  dataplane::Sgacl sgacl{policy::Action::Allow};
  for (std::uint16_t s = 1; s <= 32; ++s) {
    for (std::uint16_t d = 1; d <= 32; ++d) {
      if ((s + d) % 4 == 0) {
        sgacl.install_rule(net::VnId{1},
                           {{net::GroupId{s}, net::GroupId{d}}, policy::Action::Deny});
      }
    }
  }
  std::uint16_t q = 0;
  for (auto _ : state) {
    ++q;
    const auto action = sgacl.evaluate(net::VnId{1}, net::GroupId{static_cast<std::uint16_t>(1 + q % 32)},
                                       net::GroupId{static_cast<std::uint16_t>(1 + (q / 32) % 32)});
    benchmark::DoNotOptimize(action);
  }
}
BENCHMARK(BM_SgaclEvaluate);

void BM_SxpCodec(benchmark::State& state) {
  policy::SxpRuleInstall install;
  install.vn = net::VnId{100};
  install.destination = net::GroupId{20};
  for (std::uint16_t s = 1; s <= 16; ++s) {
    install.rules.push_back(
        {{net::GroupId{s}, net::GroupId{20}}, policy::Action::Deny});
  }
  const policy::SxpMessage message{install};
  for (auto _ : state) {
    const auto bytes = policy::encode_sxp(message);
    const auto decoded = policy::decode_sxp(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_SxpCodec);

void BM_SlaacDerivation(benchmark::State& state) {
  const auto prefix = *net::Ipv6Prefix::parse("2001:db8:100::/64");
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto addr = l2::slaac_address(prefix, net::MacAddress::from_u64(++i));
    benchmark::DoNotOptimize(addr);
  }
}
BENCHMARK(BM_SlaacDerivation);

void BM_RibInstall(benchmark::State& state) {
  bgp::Rib rib;
  std::uint64_t version = 0;
  std::uint32_t i = 0;
  for (auto _ : state) {
    ++i;
    const bool changed = rib.install(eid_of(i % 16000),
                                     net::Ipv4Address{0x0A000001u + (i % 200)},
                                     sim::SimTime{}, ++version);
    benchmark::DoNotOptimize(changed);
  }
}
BENCHMARK(BM_RibInstall);

void BM_SpfCompute(benchmark::State& state) {
  // Star topology like the warehouse: border hub + N edges.
  const auto edges = static_cast<std::uint32_t>(state.range(0));
  underlay::Topology topo;
  const auto hub = topo.add_node("hub", net::Ipv4Address{10, 0, 0, 1});
  for (std::uint32_t i = 0; i < edges; ++i) {
    const auto n = topo.add_node("e" + std::to_string(i), net::Ipv4Address{0x0A010000u + i});
    topo.add_link(hub, n, std::chrono::microseconds{50});
  }
  for (auto _ : state) {
    const auto table = underlay::compute_spf(topo, 1);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_SpfCompute)->Arg(13)->Arg(200);

}  // namespace
