// Figure 12 — Permille of SGACL drops over all hits, 5 days, for a branch
// router, a campus edge, and a VPN gateway serving ~11,000 endpoints
// combined (paper §5.3).
//
// Reproduces the operational finding that egress enforcement wastes almost
// no bandwidth: worst case around 0.2 permille, the VPN gateway distinctly
// higher than office devices, and a transient spike after a policy update
// that decays as humans stop retrying.
#include <cstdio>

#include "stats/table.hpp"
#include "telemetry_sink.hpp"
#include "workload/policy_drops.hpp"

int main() {
  using namespace sda;
  std::printf("=== Figure 12: permille hits on drop rules over all hits (5 days) ===\n\n");

  workload::PolicyDropSpec spec;  // defaults: branch 1500 / campus 8000 / vpn 1500 users
  const workload::PolicyDropResult result = run_policy_drops(spec);

  std::vector<stats::LabelledSeries> plots;
  const char glyphs[] = {'b', 'c', 'v'};
  std::size_t gi = 0;
  for (const auto& device : result.devices) {
    stats::LabelledSeries series;
    series.label = device.name;
    series.glyph = glyphs[gi++ % 3];
    for (const auto& p : device.drop_permille.points()) {
      series.points.emplace_back(p.time.hours() / 24.0, p.value);
    }
    plots.push_back(std::move(series));
  }
  std::printf("%s\n",
              stats::ascii_multiplot(plots, 96, 16, "drop permille vs time (days)").c_str());

  stats::Table table{{"device", "users", "overall permille", "worst hour permille",
                      "packets", "drops"}};
  std::size_t di = 0;
  for (const auto& device : result.devices) {
    table.add_row({device.name, stats::Table::num(std::size_t{spec.devices[di++].users}),
                   stats::Table::num(device.overall_permille(), 3),
                   stats::Table::num(device.worst_hour_permille(), 2),
                   stats::Table::num(std::size_t{device.total_packets}),
                   stats::Table::num(std::size_t{device.total_drops})});
  }
  std::printf("%s\n", table.render().c_str());
  for (const auto& device : result.devices) {
    bench::write_timeseries("fig12_" + device.name, {"drop_permille"},
                            bench::rows_from_timeseries(device.drop_permille), spec.seed);
  }
  std::printf("policy update lands at hour %d; watch the transient spike then decay.\n",
              spec.policy_update_hour);
  std::printf("paper reference: worst case ~0.2 permille (2 drops per 10k packets);\n");
  std::printf("VPN gateway highest due to remote-usage pattern.\n");
  return 0;
}
