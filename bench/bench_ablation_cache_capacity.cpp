// Ablation (§1/§2 "Resource optimization") — edge FIB size vs. control and
// border load.
//
// The paper's CAPEX argument: the reactive protocol lets operators deploy
// edge devices with small FIBs, because an edge only needs entries for the
// destinations its endpoints are *actively* talking to. This bench sweeps
// the edge map-cache capacity under a Zipf-skewed campus traffic mix and
// reports what shrinking the FIB actually costs: map-cache hit rate,
// Map-Request load on the routing server, and default-routed packets the
// border has to absorb. Delivery stays at 100% throughout — the default
// route turns FIB pressure into border/CPU load, never into loss.
#include <cstdio>
#include <vector>

#include "fabric/fabric.hpp"
#include "sim/random.hpp"
#include "stats/table.hpp"

namespace {

using namespace sda;

constexpr net::VnId kVn{100};
constexpr unsigned kEdges = 8;
constexpr unsigned kHosts = 240;
constexpr unsigned kPackets = 40000;

net::MacAddress mac(std::uint64_t i) {
  return net::MacAddress::from_u64(0x0200'0000'0000ull | i);
}

struct CapacityResult {
  double hit_rate = 0;
  std::uint64_t map_requests = 0;
  std::uint64_t default_routed = 0;
  std::uint64_t evictions = 0;
  std::uint64_t delivered = 0;
  std::size_t max_fib = 0;
};

CapacityResult run(std::size_t capacity) {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.edge_map_cache_capacity = capacity;
  config.l2_gateway = false;
  config.seed = 23;
  fabric::SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  for (unsigned e = 0; e < kEdges; ++e) {
    fabric.add_edge("e" + std::to_string(e));
    fabric.link("e" + std::to_string(e), "b0");
  }
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  std::vector<net::Ipv4Address> ips(kHosts);
  for (unsigned i = 0; i < kHosts; ++i) {
    fabric::EndpointDefinition def;
    def.credential = "h" + std::to_string(i);
    def.secret = "pw";
    def.mac = mac(i);
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    fabric.connect_endpoint(def.credential, "e" + std::to_string(i % kEdges), 1,
                            [&ips, i](const fabric::OnboardResult& r) { ips[i] = r.ip; });
  }
  sim.run();

  CapacityResult result;
  fabric.set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime) {
        ++result.delivered;
      });

  // Zipf-skewed destinations (popular servers + long tail), Poisson sends.
  sim::Rng rng{41};
  sim::ZipfSampler popularity{kHosts, 1.0};
  sim::SimTime at;
  for (unsigned p = 0; p < kPackets; ++p) {
    at += rng.exp_interarrival(2000.0);
    const auto src = rng.next_below(kHosts);
    auto dst = popularity.sample(rng);
    if (dst == src) dst = (dst + 1) % kHosts;
    sim.schedule_at(at, [&fabric, src, dst, &ips] {
      fabric.endpoint_send_udp(mac(src), ips[dst], 443, 200);
    });
  }
  sim.run();

  std::uint64_t hits = 0, misses = 0;
  for (const auto& name : fabric.edge_names()) {
    auto& edge = fabric.edge(name);
    hits += edge.map_cache().stats().hits;
    misses += edge.map_cache().stats().misses;
    result.map_requests += edge.counters().map_requests_sent;
    result.default_routed += edge.counters().default_routed;
    result.evictions += edge.map_cache().stats().evictions;
    result.max_fib = std::max(result.max_fib, edge.fib_size());
  }
  result.hit_rate = static_cast<double>(hits) / static_cast<double>(hits + misses);
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation (CAPEX): edge map-cache capacity vs control/border load ===\n");
  std::printf("%u hosts on %u edges, %u packets, Zipf(1.0) destination popularity\n\n",
              kHosts, kEdges, kPackets);

  sda::stats::Table table{{"capacity", "hit rate", "map-requests", "default-routed",
                           "evictions", "max FIB", "delivered"}};
  for (const std::size_t capacity : {std::size_t{4}, std::size_t{8}, std::size_t{16},
                                     std::size_t{32}, std::size_t{64}, std::size_t{0}}) {
    const CapacityResult r = run(capacity);
    table.add_row({capacity == 0 ? "unbounded" : sda::stats::Table::num(capacity),
                   sda::stats::Table::num(r.hit_rate, 3),
                   sda::stats::Table::num(std::size_t{r.map_requests}),
                   sda::stats::Table::num(std::size_t{r.default_routed}),
                   sda::stats::Table::num(std::size_t{r.evictions}),
                   sda::stats::Table::num(r.max_fib),
                   sda::stats::Table::num(std::size_t{r.delivered})});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("takeaway: shrinking the edge FIB never drops traffic — misses fall back to\n");
  std::printf("the border default route — so cheap small-FIB edges trade CAPEX for\n");
  std::printf("routing-server queries and border hairpin load (sections 1-2).\n");
  return 0;
}
