// Ablation — onboarding storms ("large gatherings with highly mobile
// end-hosts", paper conclusion; "dealing with policy updates at scale",
// §1).
//
// A flash crowd of devices arrives within a short window (doors open at a
// stadium / shift change at a warehouse). Authentication queues on the
// policy server's CPU, so the p99 onboarding delay is governed by worker
// capacity. This bench sweeps the arrival rate and the RADIUS worker
// count, reporting onboarding-latency percentiles.
#include <cstdio>
#include <vector>

#include "fabric/fabric.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

using namespace sda;

constexpr net::VnId kVn{1};
constexpr unsigned kEdges = 20;
constexpr unsigned kDevices = 2000;

net::MacAddress mac(std::uint64_t i) {
  return net::MacAddress::from_u64(0x0600'0000'0000ull | i);
}

stats::Summary run(double arrivals_per_second, unsigned workers) {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.timings.policy_workers = workers;
  config.timings.auth_processing = std::chrono::milliseconds{2};
  config.seed = 13;
  fabric::SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  for (unsigned e = 0; e < kEdges; ++e) {
    fabric.add_edge("e" + std::to_string(e));
    fabric.link("e" + std::to_string(e), "b0");
  }
  fabric.finalize();
  fabric.define_vn({kVn, "venue", *net::Ipv4Prefix::parse("10.64.0.0/14")});

  for (unsigned i = 0; i < kDevices; ++i) {
    fabric::EndpointDefinition def;
    def.credential = "dev" + std::to_string(i);
    def.secret = "pw";
    def.mac = mac(i);
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
  }

  stats::Summary onboarding_ms;
  sim::Rng rng{4};
  sim::SimTime at;
  for (unsigned i = 0; i < kDevices; ++i) {
    at += rng.exp_interarrival(arrivals_per_second);
    sim.schedule_at(at, [&fabric, &onboarding_ms, i] {
      fabric.connect_endpoint("dev" + std::to_string(i), "e" + std::to_string(i % kEdges), 1,
                              [&onboarding_ms](const fabric::OnboardResult& r) {
                                if (r.success) {
                                  onboarding_ms.add(
                                      static_cast<double>(r.elapsed.count()) / 1e6);
                                }
                              });
    });
  }
  sim.run();
  return onboarding_ms;
}

}  // namespace

int main() {
  std::printf("=== Ablation: onboarding storm (flash-crowd authentication) ===\n");
  std::printf("%u devices arriving Poisson; RADIUS service 2 ms per auth round\n\n", kDevices);

  sda::stats::Table table{{"arrivals/s", "workers", "utilization", "median ms", "p95 ms",
                           "p99 ms", "max ms"}};
  for (const double rate : {50.0, 200.0, 800.0}) {
    for (const unsigned workers : {2u, 8u, 32u}) {
      const sda::stats::Summary s = run(rate, workers);
      // Two EAP rounds * 2 ms CPU per onboarding = 4 ms of work each.
      const double utilization = rate * 0.004 / workers;
      table.add_row({sda::stats::Table::num(rate, 0), sda::stats::Table::num(std::size_t{workers}),
                     sda::stats::Table::num(utilization, 2),
                     sda::stats::Table::num(s.median(), 1),
                     sda::stats::Table::num(s.percentile(95), 1),
                     sda::stats::Table::num(s.percentile(99), 1),
                     sda::stats::Table::num(s.max(), 1)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("takeaway: onboarding latency is flat while the auth pool keeps up and\n");
  std::printf("degrades sharply past utilization ~1 — provision the policy server for\n");
  std::printf("the arrival *burst*, not the average (the §4.1 horizontal-scaling logic\n");
  std::printf("applies to the policy plane too).\n");
  return 0;
}
