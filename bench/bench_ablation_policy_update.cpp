// Ablation (§5.4) — policy-update strategies: moving endpoints between
// groups vs rewriting the group ACLs.
//
// The paper reports that which strategy is cheaper depends on the endpoint
// distribution: few large groups vs many small groups. This bench sweeps
// that distribution and counts control-plane signaling messages for two
// equivalent intents:
//   A. "Acquisition": grant a cohort of endpoints the access of a target
//      group — either move each endpoint into the target group (one
//      CoA-style signal per endpoint) or add rules from their current
//      groups to every destination the target group can reach (one rule
//      push per affected (rule, hosting-edge) pair).
#include <cstdio>
#include <string>
#include <vector>

#include "fabric/fabric.hpp"
#include "stats/table.hpp"

namespace {

using namespace sda;

constexpr net::VnId kVn{100};

net::MacAddress mac(std::uint64_t i) {
  return net::MacAddress::from_u64(0x0200'0000'0000ull | i);
}

struct Scenario {
  std::string name;
  unsigned groups;       // cohort is split across this many source groups
  unsigned cohort;       // endpoints being granted access
  unsigned edges;        // edges hosting them
  unsigned reach;        // destination groups the target group may reach
};

struct Costs {
  std::uint64_t move_signals = 0;  // strategy A: endpoint group moves
  std::uint64_t rule_pushes = 0;   // strategy B: matrix updates
};

Costs run(const Scenario& s) {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  fabric::SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  for (unsigned e = 0; e < s.edges; ++e) {
    fabric.add_edge("e" + std::to_string(e));
    fabric.link("e" + std::to_string(e), "b0");
  }
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  const net::GroupId target{500};
  // The target group's existing access: deny-by-default world where the
  // target group has `reach` allow rules.
  std::vector<net::GroupId> destinations;
  for (unsigned d = 0; d < s.reach; ++d) {
    destinations.push_back(net::GroupId{static_cast<std::uint16_t>(600 + d)});
    fabric.set_rule({kVn, target, destinations.back(), policy::Action::Allow});
  }

  // Cohort endpoints spread over source groups and edges. Each destination
  // group is also hosted somewhere (one service endpoint per destination).
  unsigned id = 0;
  for (unsigned i = 0; i < s.cohort; ++i, ++id) {
    fabric::EndpointDefinition def;
    def.credential = "emp" + std::to_string(id);
    def.secret = "pw";
    def.mac = mac(id);
    def.vn = kVn;
    def.group = net::GroupId{static_cast<std::uint16_t>(1 + i % s.groups)};
    fabric.provision_endpoint(def);
    fabric.connect_endpoint(def.credential, "e" + std::to_string(i % s.edges), 1);
  }
  for (unsigned d = 0; d < s.reach; ++d, ++id) {
    fabric::EndpointDefinition def;
    def.credential = "svc" + std::to_string(d);
    def.secret = "pw";
    def.mac = mac(id);
    def.vn = kVn;
    def.group = destinations[d];
    fabric.provision_endpoint(def);
    fabric.connect_endpoint(def.credential, "e" + std::to_string(d % s.edges), 1);
  }
  sim.run();

  Costs costs;
  const auto& stats = fabric.policy_server().stats();

  // Strategy A: move every cohort endpoint into the target group.
  const auto signals_before = stats.endpoint_change_signals;
  for (unsigned i = 0; i < s.cohort; ++i) {
    fabric.reassign_endpoint_group("emp" + std::to_string(i), target);
  }
  sim.run();
  costs.move_signals = stats.endpoint_change_signals - signals_before;

  // Strategy B (counterfactual on the same fabric): instead of moving the
  // endpoints, extend each of the target group's `reach` rules to every
  // source group of the cohort.
  const auto pushes_before = stats.rule_push_messages;
  for (unsigned g = 1; g <= s.groups; ++g) {
    for (const auto destination : destinations) {
      fabric.update_rule({kVn, net::GroupId{static_cast<std::uint16_t>(g)}, destination,
                          policy::Action::Allow});
    }
  }
  sim.run();
  costs.rule_pushes = stats.rule_push_messages - pushes_before;
  return costs;
}

}  // namespace

int main() {
  std::printf("=== Ablation (section 5.4): group-move vs ACL-update signaling ===\n\n");

  const std::vector<Scenario> scenarios = {
      {"few large groups, small reach", 2, 200, 8, 2},
      {"few large groups, wide reach", 2, 200, 8, 16},
      {"many small groups, small reach", 40, 200, 8, 2},
      {"many small groups, wide reach", 40, 200, 8, 16},
      {"small cohort, wide reach", 4, 12, 8, 16},
  };

  sda::stats::Table table{{"scenario", "cohort", "src groups", "reach",
                           "A: move signals", "B: rule pushes", "cheaper"}};
  for (const auto& s : scenarios) {
    const Costs costs = run(s);
    table.add_row({s.name, sda::stats::Table::num(std::size_t{s.cohort}),
                   sda::stats::Table::num(std::size_t{s.groups}),
                   sda::stats::Table::num(std::size_t{s.reach}),
                   sda::stats::Table::num(std::size_t{costs.move_signals}),
                   sda::stats::Table::num(std::size_t{costs.rule_pushes}),
                   costs.move_signals <= costs.rule_pushes ? "move endpoints" : "update rules"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("takeaway (paper section 5.4): neither strategy dominates — moving users wins\n");
  std::printf("for small cohorts or wide-reach policies; rewriting ACLs wins when a few\n");
  std::printf("rules cover many endpoints.\n");
  return 0;
}
