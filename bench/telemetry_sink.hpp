// Shared telemetry export for benches.
//
// Every bench funnels its file output through here so the on-disk
// conventions stay uniform: metrics snapshots as JSON (+ Prometheus text)
// named after the bench, CSV timeseries with a leading "time_s" column and
// a trailing "seed" column, and flight-recorder dumps as plain text. All
// exports are rooted at $SDA_RESULTS_DIR and silently no-op when it is
// unset — benches stay runnable with zero setup.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fabric/fabric.hpp"
#include "stats/csv.hpp"
#include "telemetry/export.hpp"

namespace sda::bench {

/// The shared results directory ($SDA_RESULTS_DIR); nullopt when unset.
[[nodiscard]] inline std::optional<std::string> results_dir() {
  return stats::results_dir();
}

/// Snapshots a fabric's metrics registry into `<dir>/<name>.json` and
/// `<dir>/<name>.prom`. Returns the snapshot either way, so benches can
/// also summarize from it on stdout.
inline telemetry::Snapshot export_fabric_metrics(fabric::SdaFabric& fabric,
                                                 const std::string& name) {
  telemetry::Snapshot snapshot = fabric.telemetry().metrics.snapshot();
  if (const auto dir = results_dir()) {
    if (telemetry::write_json(*dir, name, snapshot)) {
      std::printf("telemetry snapshot written to %s/%s.json\n", dir->c_str(), name.c_str());
    }
    telemetry::write_prometheus(*dir, name, snapshot);
  }
  return snapshot;
}

/// Dumps the fabric's flight recorder to `<dir>/<name>.log` (best effort).
inline void export_flight_recorder(fabric::SdaFabric& fabric, const std::string& name) {
  const auto dir = results_dir();
  if (!dir) return;
  const std::string path = *dir + "/" + name + ".log";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  const std::string dump = fabric.flight_recorder().dump();
  std::fwrite(dump.data(), 1, dump.size(), f);
  std::fclose(f);
  std::printf("flight recorder written to %s\n", path.c_str());
}

/// Dumps the completed path traces to `<dir>/<name>.log`, hop by hop.
inline void export_path_traces(fabric::SdaFabric& fabric, const std::string& name) {
  const auto dir = results_dir();
  if (!dir) return;
  const std::string path = *dir + "/" + name + ".log";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  for (const auto& trace : fabric.path_tracer().completed()) {
    const std::string text = trace.to_string();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
  }
  std::fclose(f);
  std::printf("path traces written to %s\n", path.c_str());
}

/// Writes a sim-time series through the shared exporter (header
/// "time_s,<columns...>,seed"). Returns false when no results dir is set
/// or the write failed.
inline bool write_timeseries(const std::string& name,
                             const std::vector<std::string>& value_columns,
                             const std::vector<telemetry::TimeseriesRow>& rows,
                             std::uint64_t seed) {
  const auto dir = results_dir();
  if (!dir) return false;
  if (!telemetry::write_timeseries_csv(*dir, name, value_columns, rows, seed)) return false;
  std::printf("CSV written to %s/%s.csv\n", dir->c_str(), name.c_str());
  return true;
}

/// Writes a non-time (x, y) series through the shared exporter (header
/// "<x_label>,<y_label>,seed").
inline bool write_xy(const std::string& name, const std::string& x_label,
                     const std::string& y_label,
                     const std::vector<std::pair<double, double>>& series,
                     std::uint64_t seed) {
  const auto dir = results_dir();
  if (!dir) return false;
  if (!telemetry::write_xy_csv(*dir, name, x_label, y_label, series, seed)) return false;
  std::printf("CSV written to %s/%s.csv\n", dir->c_str(), name.c_str());
  return true;
}

/// Converts a (time_s, value) pair series into single-column rows for
/// write_timeseries.
[[nodiscard]] inline std::vector<telemetry::TimeseriesRow> rows_from_series(
    const std::vector<std::pair<double, double>>& series) {
  std::vector<telemetry::TimeseriesRow> rows;
  rows.reserve(series.size());
  for (const auto& [t, v] : series) rows.push_back({t, {v}});
  return rows;
}

/// Converts a sim-time stats::TimeSeries into single-column rows
/// (timestamps land in the canonical time_s column as seconds).
[[nodiscard]] inline std::vector<telemetry::TimeseriesRow> rows_from_timeseries(
    const stats::TimeSeries& series) {
  std::vector<telemetry::TimeseriesRow> rows;
  rows.reserve(series.points().size());
  for (const auto& point : series.points()) {
    rows.push_back({point.time.seconds(), {point.value}});
  }
  return rows;
}

/// Writes a generic (non-timeseries) table with the trailing seed column
/// appended, e.g. boxplot-stat sweeps.
inline bool write_table(const std::string& name, std::vector<std::string> header,
                        std::vector<std::vector<std::string>> rows, std::uint64_t seed) {
  const auto dir = results_dir();
  if (!dir) return false;
  header.push_back("seed");
  for (auto& row : rows) row.push_back(std::to_string(seed));
  if (!stats::write_csv(*dir, name, header, rows)) return false;
  std::printf("CSV written to %s/%s.csv\n", dir->c_str(), name.c_str());
  return true;
}

}  // namespace sda::bench
