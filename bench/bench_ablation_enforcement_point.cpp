// Ablation (§5.3) — ingress vs egress policy-enforcement point.
//
// The paper chose egress enforcement to minimize data-plane state: an edge
// only needs the rules whose destination groups are locally attached. The
// price is fabric bandwidth wasted on traffic that will be dropped at the
// far end. This bench quantifies both sides on the same topology, traffic
// matrix and policy:
//   * rule-state footprint per edge (egress: local destination groups only;
//     ingress: the full matrix everywhere, since any destination group may
//     be remote);
//   * overlay bytes carried by frames that end up dropped by policy.
#include <cstdio>
#include <string>
#include <vector>

#include "fabric/fabric.hpp"
#include "sim/random.hpp"
#include "stats/table.hpp"

namespace {

using namespace sda;

constexpr net::VnId kVn{100};
constexpr unsigned kEdges = 8;
constexpr unsigned kGroups = 12;
constexpr unsigned kEndpointsPerEdge = 12;
constexpr unsigned kFlows = 4000;
constexpr std::uint16_t kPayload = 400;

net::MacAddress mac(std::uint64_t i) {
  return net::MacAddress::from_u64(0x0200'0000'0000ull | i);
}

struct RunResult {
  std::size_t total_rules = 0;
  std::size_t max_rules_per_edge = 0;
  std::uint64_t policy_drops_ingress = 0;
  std::uint64_t policy_drops_egress = 0;
  std::uint64_t wasted_fabric_bytes = 0;  // encapsulated but later dropped
  std::uint64_t delivered = 0;
};

RunResult run(bool enforce_on_ingress) {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.enforce_on_ingress = enforce_on_ingress;
  config.l2_gateway = false;
  config.seed = 17;
  fabric::SdaFabric fabric{sim, config};

  fabric.add_border("b0");
  for (unsigned e = 0; e < kEdges; ++e) {
    fabric.add_edge("e" + std::to_string(e));
    fabric.link("e" + std::to_string(e), "b0");
  }
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  // Deny a quarter of the directed group pairs.
  sim::Rng policy_rng{3};
  std::vector<policy::Rule> all_rules;
  for (unsigned s = 1; s <= kGroups; ++s) {
    for (unsigned d = 1; d <= kGroups; ++d) {
      if (s != d && policy_rng.chance(0.25)) {
        const policy::Rule rule{{net::GroupId{static_cast<std::uint16_t>(s)},
                                 net::GroupId{static_cast<std::uint16_t>(d)}},
                                policy::Action::Deny};
        all_rules.push_back(rule);
        fabric.set_rule({kVn, rule.pair.source, rule.pair.destination, rule.action});
      }
    }
  }

  // Endpoints: each edge hosts only 3 of the 12 groups (real deployments
  // cluster device types — this locality is what egress enforcement
  // exploits to keep rule state small).
  std::vector<net::Ipv4Address> ips;
  unsigned id = 0;
  for (unsigned e = 0; e < kEdges; ++e) {
    for (unsigned i = 0; i < kEndpointsPerEdge; ++i, ++id) {
      fabric::EndpointDefinition def;
      def.credential = "h" + std::to_string(id);
      def.secret = "pw";
      def.mac = mac(id);
      def.vn = kVn;
      def.group = net::GroupId{static_cast<std::uint16_t>(1 + (e * 3 + i % 3) % kGroups)};
      fabric.provision_endpoint(def);
      fabric.connect_endpoint(def.credential, "e" + std::to_string(e), 1,
                              [&ips](const fabric::OnboardResult& r) {
                                if (r.success) ips.push_back(r.ip);
                              });
    }
  }
  sim.run();

  // Ingress mode needs the *whole* matrix at every edge: any destination
  // group can be remote (the §5.3 state-cost argument, Fig. 13 top).
  if (enforce_on_ingress) {
    for (unsigned e = 0; e < kEdges; ++e) {
      for (const auto& rule : all_rules) {
        fabric.edge("e" + std::to_string(e)).sgacl().install_rule(kVn, rule);
      }
    }
  }

  std::uint64_t delivered = 0;
  fabric.set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime) {
        ++delivered;
      });

  // Uniform random traffic matrix.
  sim::Rng traffic_rng{29};
  for (unsigned f = 0; f < kFlows; ++f) {
    const auto src = traffic_rng.next_below(ips.size());
    auto dst = traffic_rng.next_below(ips.size());
    if (dst == src) dst = (dst + 1) % ips.size();
    sim.schedule_after(std::chrono::microseconds{f * 50}, [&, src, dst] {
      fabric.endpoint_send_udp(mac(src), ips[dst], 443, kPayload);
    });
  }
  sim.run();

  RunResult result;
  result.delivered = delivered;
  for (unsigned e = 0; e < kEdges; ++e) {
    auto& edge = fabric.edge("e" + std::to_string(e));
    result.total_rules += edge.sgacl().rule_count();
    result.max_rules_per_edge = std::max(result.max_rules_per_edge, edge.sgacl().rule_count());
    if (enforce_on_ingress) {
      result.policy_drops_ingress += edge.counters().policy_drops;
    } else {
      result.policy_drops_egress += edge.counters().policy_drops;
    }
  }
  // Frames dropped at egress crossed the fabric once: inner + encap bytes.
  const std::uint64_t frame_bytes = kPayload + 14 + 20 + 8 + 36;
  result.wasted_fabric_bytes = result.policy_drops_egress * frame_bytes;
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation (section 5.3): policy enforcement point ===\n");
  std::printf("%u edges, %u groups, %u endpoints, %u flows, ~25%% of group pairs denied\n\n",
              kEdges, kGroups, kEdges * kEndpointsPerEdge, kFlows);

  const RunResult egress = run(false);
  const RunResult ingress = run(true);

  sda::stats::Table table{{"metric", "egress (SDA)", "ingress (ablation)"}};
  table.add_row({"SGACL rules, total across edges",
                 sda::stats::Table::num(egress.total_rules),
                 sda::stats::Table::num(ingress.total_rules)});
  table.add_row({"SGACL rules, max per edge",
                 sda::stats::Table::num(egress.max_rules_per_edge),
                 sda::stats::Table::num(ingress.max_rules_per_edge)});
  table.add_row({"frames dropped at ingress", sda::stats::Table::num(std::size_t{0}),
                 sda::stats::Table::num(std::size_t{ingress.policy_drops_ingress})});
  table.add_row({"frames dropped at egress",
                 sda::stats::Table::num(std::size_t{egress.policy_drops_egress}),
                 sda::stats::Table::num(std::size_t{ingress.policy_drops_egress})});
  table.add_row({"wasted fabric bytes",
                 sda::stats::Table::num(std::size_t{egress.wasted_fabric_bytes}),
                 sda::stats::Table::num(std::size_t{ingress.wasted_fabric_bytes})});
  table.add_row({"frames delivered", sda::stats::Table::num(std::size_t{egress.delivered}),
                 sda::stats::Table::num(std::size_t{ingress.delivered})});
  std::printf("%s\n", table.render().c_str());

  std::printf("takeaway: ingress saves the wasted bytes but multiplies rule state by ~%.1fx;\n",
              static_cast<double>(ingress.total_rules) /
                  static_cast<double>(std::max<std::size_t>(egress.total_rules, 1)));
  std::printf("egress also keeps (IP, GroupId) fresh without extra signaling (Fig. 13).\n");
  return 0;
}
