// Ablation (§5.1) — underlay-outage fallback.
//
// The paper's scenario: an edge router dies; its endpoints re-home to
// another edge, but senders still hold map-cache entries pointing at the
// dead RLOC and blackhole traffic. Edge routers monitor the IGP to detect
// the outage, purge the affected entries, and fall back to the border
// default route (which, being pub/sub-synchronized, already knows the new
// location). The recovery blind spot is the IGP convergence window — this
// bench sweeps it and measures packets lost from a continuous flow.
#include <cstdio>
#include <vector>

#include "fabric/fabric.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "underlay/linkstate.hpp"

namespace {

using namespace sda;

constexpr net::VnId kVn{100};

net::MacAddress mac(std::uint64_t i) {
  return net::MacAddress::from_u64(0x0200'0000'0000ull | i);
}

struct OutageResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t purged_entries = 0;
  double recovery_ms = 0;  // last loss -> measured from outage start
  [[nodiscard]] std::uint64_t lost() const { return sent - delivered; }
};

OutageResult run(sim::Duration igp_convergence) {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.underlay.igp_convergence = igp_convergence;
  fabric::SdaFabric fabric{sim, config};

  fabric.add_border("b0");
  for (const char* name : {"e0", "e1", "e2"}) {
    fabric.add_edge(name);
    fabric.link(name, "b0");
  }
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  for (int i = 0; i < 2; ++i) {
    fabric::EndpointDefinition def;
    def.credential = "h" + std::to_string(i);
    def.secret = "pw";
    def.mac = mac(static_cast<std::uint64_t>(i));
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
  }
  net::Ipv4Address dst_ip;
  fabric.connect_endpoint("h0", "e0", 1);
  fabric.connect_endpoint("h1", "e1", 1,
                          [&](const fabric::OnboardResult& r) { dst_ip = r.ip; });
  sim.run();

  OutageResult result;
  sim::SimTime last_delivery;
  fabric.set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime at) {
        ++result.delivered;
        last_delivery = at;
      });

  // 1 kHz flow h0 -> h1 for 3 simulated seconds.
  constexpr auto kGap = std::chrono::milliseconds{1};
  const auto t_outage = sim::SimTime{std::chrono::seconds{1}};
  for (int p = 0; p < 3000; ++p) {
    sim.schedule_at(sim::SimTime{kGap * p}, [&] {
      ++result.sent;
      fabric.endpoint_send_udp(mac(0), dst_ip, 443, 200);
    });
  }

  // t=1s: e1 dies. h1's radio re-associates via e2 after 100 ms (fresh
  // onboarding). e0's cached entry keeps pointing at the dead e1 until the
  // IGP watcher fires.
  sim.schedule_at(t_outage, [&] {
    fabric.topology().set_node_state(fabric.edge("e1").config().node, false);
    fabric.underlay().topology_changed();
    fabric.edge("e1").reboot();
  });
  sim.schedule_at(t_outage + std::chrono::milliseconds{100}, [&] {
    fabric.connect_endpoint("h1", "e2", 1);
  });

  sim.run();
  result.purged_entries = fabric.edge("e0").counters().rloc_fallbacks;

  // Recovery time: gap between outage start and traffic being restored.
  // Approximate as the first delivery after the loss window; measure via
  // the largest inter-delivery gap after t_outage.
  result.recovery_ms =
      static_cast<double>((last_delivery - t_outage).count()) / 1e6;  // diagnostic only
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation (section 5.1): IGP convergence vs packets lost in an outage ===\n");
  std::printf("1 kHz flow; destination edge dies at t=1s; endpoint re-homes after 100 ms;\n");
  std::printf("the sender's cache blackholes until the IGP watcher purges it.\n\n");

  sda::stats::Table table{{"IGP convergence", "sent", "delivered", "lost", "loss %",
                           "cache entries purged"}};
  for (const auto ms : {25, 50, 100, 200, 500, 1000}) {
    const OutageResult r = run(std::chrono::milliseconds{ms});
    table.add_row({std::to_string(ms) + " ms", sda::stats::Table::num(std::size_t{r.sent}),
                   sda::stats::Table::num(std::size_t{r.delivered}),
                   sda::stats::Table::num(std::size_t{r.lost()}),
                   sda::stats::Table::num(100.0 * static_cast<double>(r.lost()) /
                                              static_cast<double>(r.sent),
                                          2),
                   sda::stats::Table::num(std::size_t{r.purged_entries})});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("takeaway: loss grows with the IGP convergence window — once the watcher\n");
  std::printf("fires, traffic falls back to the border default route and recovers (5.1).\n\n");

  // --- Where does the convergence window come from? -----------------------
  // The fabric models IGP convergence as one delay; the link-state module
  // implements the mechanism (detection + LSP flooding + SPF). Measure the
  // per-node view-convergence spread for an edge-router death in a
  // three-tier campus: nodes near the failure converge first.
  std::printf("link-state mechanics: per-node view convergence after an edge dies\n");
  std::printf("(3-tier campus: 2 borders, 2 distribution, 12 edges; detect 300 ms,\n");
  std::printf(" 1 ms/hop flooding, 50 ms SPF delay)\n\n");
  {
    sim::Simulator lsim;
    underlay::Topology topo;
    const auto b0 = topo.add_node("b0", net::Ipv4Address{10, 0, 0, 1});
    const auto b1 = topo.add_node("b1", net::Ipv4Address{10, 0, 0, 2});
    const auto d0 = topo.add_node("d0", net::Ipv4Address{10, 0, 0, 3});
    const auto d1 = topo.add_node("d1", net::Ipv4Address{10, 0, 0, 4});
    topo.add_link(b0, b1, std::chrono::microseconds{20});
    for (const auto d : {d0, d1}) {
      topo.add_link(d, b0, std::chrono::microseconds{50});
      topo.add_link(d, b1, std::chrono::microseconds{50});
    }
    std::vector<underlay::NodeId> edge_nodes;
    for (int e = 0; e < 12; ++e) {
      const auto n = topo.add_node("e" + std::to_string(e),
                                   net::Ipv4Address{10, 0, 1, static_cast<std::uint8_t>(e)});
      topo.add_link(n, e % 2 ? d1 : d0, std::chrono::microseconds{30});
      topo.add_link(n, e % 2 ? d0 : d1, std::chrono::microseconds{30});
      edge_nodes.push_back(n);
    }
    underlay::LinkStateProtocol igp{lsim, topo, {}};
    igp.start();
    lsim.run();

    const underlay::NodeId victim = edge_nodes[0];
    sda::stats::Summary convergence_ms;
    const sim::SimTime t0 = lsim.now();
    igp.set_view_change_callback([&](underlay::NodeId node) {
      if (node != victim && !igp.view_reachable(node, victim)) {
        convergence_ms.add(static_cast<double>((lsim.now() - t0).count()) / 1e6);
      }
    });
    topo.set_node_state(victim, false);
    igp.notify_node_change(victim);
    lsim.run();

    std::printf("  views converged: %zu nodes; first %.1f ms, median %.1f ms, last %.1f ms\n",
                convergence_ms.count(), convergence_ms.min(), convergence_ms.median(),
                convergence_ms.max());
    std::printf("  (the fabric-level 'IGP convergence' knob above stands in for this\n");
    std::printf("   detect+flood+SPF pipeline)\n");
  }
  return 0;
}
