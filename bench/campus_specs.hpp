// Shared building definitions for the Fig. 9 / Table 5 campus benches,
// matching the paper's deployments (Tables 3-4, Fig. 8):
//   Building A: 1 border, 7 edges, ~150 endpoints, few always-on devices.
//   Building B: 2 borders, 6 edges, ~450 endpoints, a substantial always-on
//               population (desktops, VoIP phones, cameras — §4.2) and more
//               east-west night traffic, which is what makes its edge
//               caches follow the day/night routine.
#pragma once

#include "workload/campus.hpp"

namespace sda::bench {

inline workload::CampusSpec building_a() {
  workload::CampusSpec spec;
  spec.name = "A";
  spec.borders = 1;
  spec.edges = 7;
  spec.users = 130;
  spec.permanent = 20;
  // ~150 provisioned endpoints, but far from all badge in on a given day
  // (paper Table 5: border day average of only 85 in building A).
  spec.weekday_absence = 0.4;
  spec.flows_per_hour = 6;
  spec.permanent_flows_per_hour = 1.0;  // quiet nights: caches retained
  spec.external_share = 0.7;
  spec.external_destinations = 40;
  // Small building: broad contact sets, so edge caches approach the border
  // table (paper: only a 16% decrease in A).
  spec.internal_contacts = 5;
  spec.internal_zipf = 0.5;
  spec.external_contacts = 8;
  spec.external_zipf = 0.7;
  spec.seed = 0xA;
  return spec;
}

inline workload::CampusSpec building_b() {
  workload::CampusSpec spec;
  spec.name = "B";
  spec.borders = 2;
  spec.edges = 6;
  spec.users = 170;
  spec.permanent = 225;
  spec.weekday_absence = 0.15;
  spec.flows_per_hour = 6;
  spec.permanent_flows_per_hour = 3.0;  // chatty nights: stale-entry cleanup
  spec.external_share = 0.5;            // more east-west enterprise traffic
  spec.external_destinations = 40;
  spec.external_ttl_seconds = 3 * 3600;
  // Large building with concentrated traffic: narrow contact sets pointed
  // at a few popular servers, so edges cache a small slice of the border
  // table (paper: 88% decrease in B).
  spec.internal_contacts = 2;
  spec.internal_zipf = 1.6;
  spec.external_contacts = 3;
  spec.external_zipf = 1.5;
  spec.seed = 0xB;
  return spec;
}

}  // namespace sda::bench
