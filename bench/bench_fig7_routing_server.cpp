// Figure 7 — Routing-server performance (paper §4.1).
//
//  7a: delay of 10k Map-Requests vs number of configured routes
//      (1 / 100 / 1k / 10k), boxplot stats relative to the 1-route minimum.
//  7b: same sweep for Map-Register (route updates).
//  7c: request sojourn time vs offered load (queries/s) through the
//      simulated 8-worker server front end, relative to the minimum.
//
// 7a/7b measure the *real* Patricia-trie-backed database with wall-clock
// timers — the paper's flat curves come from the trie's key-width-bound
// lookups, and that property must hold in this implementation, not just in
// a model. 7c exercises the queueing front end in simulated time.
#include <chrono>
#include <cstdio>
#include <vector>

#include "lisp/map_server.hpp"
#include "lisp/map_server_node.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "telemetry_sink.hpp"

namespace {

using namespace sda;

constexpr std::uint64_t kSeed = 99;  // rng seed of the 7c queueing front end

net::VnEid eid_of(std::uint32_t i) {
  return net::VnEid{net::VnId{1}, net::Eid{net::Ipv4Address{0x0A000000u + i}}};
}

lisp::MapServer make_server(std::uint32_t routes) {
  lisp::MapServer server;
  for (std::uint32_t i = 0; i < routes; ++i) {
    lisp::MappingRecord record;
    record.rlocs = {net::Rloc{net::Ipv4Address{0xC0A80001u + (i % 200)}}};
    server.register_mapping(eid_of(i), record);
  }
  return server;
}

/// Wall-clock timing of `queries` Map-Requests against a server holding
/// `routes` routes; each query targets a distinct EID (cache-hostile).
/// Times the full service path a real server executes per query: wire
/// decode of the request, database lookup, wire encode of the reply.
stats::Summary time_requests(std::uint32_t routes, std::uint32_t queries) {
  lisp::MapServer server = make_server(routes);
  stats::Summary delays_ns;
  delays_ns.reserve(queries);
  // Pre-encode the request messages (that work belongs to the client).
  std::vector<std::vector<std::uint8_t>> wire;
  wire.reserve(queries);
  for (std::uint32_t q = 0; q < queries; ++q) {
    lisp::MapRequest request;
    request.nonce = q;
    request.itr_rloc = net::Ipv4Address{0xC0A80001u};
    request.eid = eid_of(q % std::max(routes, 1u));
    wire.push_back(lisp::encode_message(lisp::Message{request}));
  }
  for (std::uint32_t q = 0; q < queries; ++q) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto message = lisp::decode_message(wire[q]);
    const lisp::MapReply reply = server.answer(std::get<lisp::MapRequest>(*message));
    const auto reply_bytes = lisp::encode_message(lisp::Message{reply});
    const auto t1 = std::chrono::steady_clock::now();
    if (reply_bytes.empty() || (reply.negative() && routes > 0)) std::abort();
    delays_ns.add(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  }
  return delays_ns;
}

/// Wall-clock timing of `updates` Map-Registers (distinct EIDs, alternating
/// RLOC so every update mutates state), including wire decode and the
/// Map-Notify encode that acknowledges each registration.
stats::Summary time_updates(std::uint32_t routes, std::uint32_t updates) {
  lisp::MapServer server = make_server(routes);
  stats::Summary delays_ns;
  delays_ns.reserve(updates);
  std::vector<std::vector<std::uint8_t>> wire;
  wire.reserve(updates);
  for (std::uint32_t u = 0; u < updates; ++u) {
    lisp::MapRegister reg;
    reg.nonce = u;
    reg.eid = eid_of(u % std::max(routes, 1u));
    reg.rlocs = {net::Rloc{net::Ipv4Address{0xC0A80001u + (u % 2)}}};
    wire.push_back(lisp::encode_message(lisp::Message{reg}));
  }
  for (std::uint32_t u = 0; u < updates; ++u) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto message = lisp::decode_message(wire[u]);
    const auto& reg = std::get<lisp::MapRegister>(*message);
    lisp::MappingRecord record;
    record.rlocs = reg.rlocs;
    record.ttl_seconds = reg.ttl_seconds;
    server.register_mapping(reg.eid, record);
    const lisp::MapNotify notify{reg.nonce, reg.eid, reg.rlocs};
    const auto notify_bytes = lisp::encode_message(lisp::Message{notify});
    const auto t1 = std::chrono::steady_clock::now();
    if (notify_bytes.empty()) std::abort();
    delays_ns.add(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  }
  return delays_ns;
}

void print_boxplot_table(const char* title, const char* x_label,
                         const std::vector<std::pair<std::string, stats::BoxStats>>& rows,
                         const char* csv_name = nullptr) {
  std::printf("%s\n", title);
  stats::Table table{{x_label, "w2.5", "q1", "median", "q3", "w97.5", "mean"}};
  std::vector<std::vector<std::string>> csv_rows;
  for (const auto& [label, box] : rows) {
    std::vector<std::string> cells = {label,
                                      stats::Table::num(box.whisker_low),
                                      stats::Table::num(box.q1),
                                      stats::Table::num(box.median),
                                      stats::Table::num(box.q3),
                                      stats::Table::num(box.whisker_high),
                                      stats::Table::num(box.mean)};
    table.add_row(cells);
    csv_rows.push_back(std::move(cells));
  }
  std::printf("%s\n", table.render().c_str());
  if (csv_name != nullptr) {
    bench::write_table(csv_name, {x_label, "w2.5", "q1", "median", "q3", "w97.5", "mean"},
                       std::move(csv_rows), kSeed);
  }
}

/// Fig. 7c: offered Poisson load through the simulated queueing front end.
stats::Summary simulate_load(double queries_per_second, std::uint32_t queries) {
  sim::Simulator sim;
  lisp::MapServer server = make_server(10000);
  lisp::MapServerNodeConfig config;
  config.rloc = net::Ipv4Address{0xC0A80001u};
  lisp::MapServerNode node{sim, server, config, 7};
  sim::Rng rng{kSeed};

  sim::SimTime at = sim::SimTime::zero();
  for (std::uint32_t q = 0; q < queries; ++q) {
    at += rng.exp_interarrival(queries_per_second);
    sim.schedule_at(at, [&node, q] {
      lisp::MapRequest request;
      request.nonce = q;
      request.eid = eid_of(q % 10000);
      node.submit_request(request, {});
    });
  }
  sim.run();
  return node.request_sojourns();
}

}  // namespace

int main() {
  std::printf("=== Figure 7: routing-server performance (paper section 4.1) ===\n\n");
  constexpr std::uint32_t kQueries = 10000;
  const std::vector<std::uint32_t> route_counts = {1, 100, 1000, 10000};

  // Warm up allocator/caches once so the 1-route baseline is not penalized.
  (void)time_requests(1000, 2000);

  // --- Fig. 7a: request delay vs configured routes ----------------------
  std::vector<std::pair<std::string, stats::BoxStats>> rows_7a;
  double base_request = 0;
  for (const std::uint32_t routes : route_counts) {
    const stats::Summary s = time_requests(routes, kQueries);
    if (routes == 1) base_request = s.min();
    rows_7a.emplace_back(std::to_string(routes),
                         s.box_stats().relative_to(std::max(base_request, 1.0)));
  }
  print_boxplot_table(
      "Fig. 7a — Map-Request delay vs #configured routes (relative to 1-route min)",
      "routes", rows_7a, "fig7a_request_delay");

  // --- Fig. 7b: update delay vs configured routes -----------------------
  std::vector<std::pair<std::string, stats::BoxStats>> rows_7b;
  double base_update = 0;
  for (const std::uint32_t routes : route_counts) {
    const stats::Summary s = time_updates(routes, kQueries);
    if (routes == 1) base_update = s.min();
    rows_7b.emplace_back(std::to_string(routes),
                         s.box_stats().relative_to(std::max(base_update, 1.0)));
  }
  print_boxplot_table(
      "Fig. 7b — Map-Register delay vs #configured routes (relative to 1-route min)",
      "routes", rows_7b, "fig7b_update_delay");

  // --- Fig. 7c: request delay vs offered load ---------------------------
  const std::vector<double> loads = {200, 400, 800, 1600, 3200};
  std::vector<stats::Summary> sojourns;
  double min_sojourn = 1e18;
  for (const double load : loads) {
    sojourns.push_back(simulate_load(load, 8000));
    min_sojourn = std::min(min_sojourn, sojourns.back().min());
  }
  std::vector<std::pair<std::string, stats::BoxStats>> rows_7c;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    rows_7c.emplace_back(stats::Table::num(loads[i], 0) + " q/s",
                         sojourns[i].box_stats().relative_to(min_sojourn));
  }
  print_boxplot_table(
      "Fig. 7c — Map-Request sojourn vs offered load (relative to min of all)",
      "load", rows_7c, "fig7c_load_sweep");

  // --- §4.1 sizing notes -------------------------------------------------
  std::printf("Sizing (paper section 4.1):\n");
  std::printf("  10k routes / 3 routes per endpoint (IPv4+IPv6+MAC) -> ~%d endpoints\n",
              10000 / 3);
  std::printf("  warehouse peak: 800 moves/s * 2 queries/move = 1600 q/s — covered by the\n");
  std::printf("  flat region of Fig. 7c above.\n");
  return 0;
}
