// Table 5 — Average FIB entries over a 5-week period, split into all /
// day (9:00-19:00 workdays) / night, for buildings A and B, plus the
// "Decrease" row (paper §4.2: 16% for building A, 88% for building B).
#include <cstdio>

#include "campus_specs.hpp"
#include "stats/table.hpp"

int main() {
  using namespace sda;
  std::printf("=== Table 5: 5-week FIB averages (day = 9:00-19:00 workdays) ===\n\n");

  workload::CampusWorkload campus_a{bench::building_a()};
  workload::CampusWorkload campus_b{bench::building_b()};
  const workload::CampusResult a = campus_a.run(5);
  const workload::CampusResult b = campus_b.run(5);

  stats::Table table{{"Router", "Period", "Building A", "Building B"}};
  table.add_row({"Border", "All", stats::Table::num(a.border_all, 0),
                 stats::Table::num(b.border_all, 0)});
  table.add_row({"Border", "Day", stats::Table::num(a.border_day, 0),
                 stats::Table::num(b.border_day, 0)});
  table.add_row({"Border", "Night", stats::Table::num(a.border_night, 0),
                 stats::Table::num(b.border_night, 0)});
  table.add_row({"Edge", "All", stats::Table::num(a.edge_all, 0),
                 stats::Table::num(b.edge_all, 0)});
  table.add_row({"Edge", "Day", stats::Table::num(a.edge_day, 0),
                 stats::Table::num(b.edge_day, 0)});
  table.add_row({"Edge", "Night", stats::Table::num(a.edge_night, 0),
                 stats::Table::num(b.edge_night, 0)});
  table.add_row({"Decrease", "",
                 stats::Table::num(100.0 * a.state_reduction(), 0) + "%",
                 stats::Table::num(100.0 * b.state_reduction(), 0) + "%"});
  std::printf("%s\n", table.render().c_str());

  std::printf("Paper reference: A border 50/85/19, edge 42/47/38, decrease 16%%;\n");
  std::printf("                 B border 291/362/227, edge 34/42/27, decrease 88%%.\n");
  return 0;
}
