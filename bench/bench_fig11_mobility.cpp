// Figure 11 — Handover-delay CDF under massive mobility (paper §4.3).
//
// Warehouse topology (Fig. 10 / Table 3): one border with an embedded
// routing server, 200 edge routers, 16,000 robot endpoints on the two
// "physical" edges, unidirectional UDP towards the border, and 800
// mobility events per second (~5% of endpoints move every second).
//
// Two control planes on identical topology and attach timings:
//   reactive (LISP): Map-Register + pub/sub sync to the border;
//   proactive (BGP): route-reflector replication to all 200 peers.
// The paper's headline: the proactive CDF sits roughly an order of
// magnitude to the right, with much higher variance, because the reflector
// updates peers "randomly, i.e. not by their need".
#include <cstdio>

#include "stats/cdf.hpp"
#include "stats/table.hpp"
#include "telemetry_sink.hpp"
#include "workload/warehouse.hpp"

int main() {
  using namespace sda;
  std::printf("=== Figure 11: handover delay CDF, reactive (LISP) vs proactive (BGP) ===\n");

  workload::WarehouseSpec spec;
  spec.edges = 200;
  spec.hosts = 16000;
  spec.moves_per_second = 800;
  spec.measure_seconds = 12;
  // Reflector CPU cost per peer UPDATE: at 800 moves/s over 200 peers this
  // keeps the output queue hot (utilization ~0.85) as in the overloaded
  // lab run the paper describes.
  spec.reflector.per_peer_send = std::chrono::microseconds{26};
  // Telemetry: trace every flow's first packet in the reactive run and
  // export the fabric's metrics snapshot (per-edge map-cache hits/misses,
  // SMR counts, onboarding/roam/first-packet histograms) plus the traces
  // that decompose the first-packet latency hop by hop.
  spec.trace_first_packets = true;
  spec.inspect_reactive = [](fabric::SdaFabric& f) {
    const telemetry::Snapshot snap = bench::export_fabric_metrics(f, "fig11_mobility_metrics");
    bench::export_path_traces(f, "fig11_mobility_traces");
    std::uint64_t hits = 0, misses = 0, smr_sent = 0;
    for (const auto& [name, value] : snap.counters) {
      if (name.ends_with(".map_cache.hits")) hits += value;
      if (name.ends_with(".map_cache.misses")) misses += value;
      if (name.ends_with(".smr_sent")) smr_sent += value;
    }
    std::printf("telemetry: map-cache %llu hits / %llu misses, %llu SMRs sent\n",
                static_cast<unsigned long long>(hits), static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(smr_sent));
    const auto fp = snap.histograms.find("fabric.first_packet_us");
    if (fp != snap.histograms.end() && fp->second.total > 0) {
      std::printf("telemetry: first packet n=%llu p50=%.0fus p95=%.0fus (traced: %zu kept)\n",
                  static_cast<unsigned long long>(fp->second.total),
                  fp->second.quantile(0.5), fp->second.quantile(0.95),
                  f.path_tracer().completed().size());
    }
  };
  workload::WarehouseWorkload warehouse{spec};

  std::printf("running reactive (LISP) control plane...\n");
  std::size_t lisp_moves = 0;
  const stats::Summary lisp = warehouse.run_reactive(&lisp_moves);
  std::printf("running proactive (BGP route-reflector) control plane...\n\n");
  std::size_t bgp_moves = 0;
  const stats::Summary bgp = warehouse.run_proactive(&bgp_moves);

  // The paper normalizes to the minimum observed handover delay.
  const double base = std::min(lisp.min(), bgp.min());
  const stats::Cdf lisp_cdf = stats::Cdf{lisp.samples()}.normalized_to(base);
  const stats::Cdf bgp_cdf = stats::Cdf{bgp.samples()}.normalized_to(base);

  stats::Table table{{"percentile", "LISP (norm.)", "BGP (norm.)", "BGP/LISP"}};
  for (const double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    const double l = lisp_cdf.quantile(p);
    const double b = bgp_cdf.quantile(p);
    table.add_row({stats::Table::num(100 * p, 0) + "th", stats::Table::num(l, 2),
                   stats::Table::num(b, 2), stats::Table::num(b / l, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::vector<std::pair<double, double>> lisp_series, bgp_series;
  for (const auto& [x, y] : lisp_cdf.series(64)) lisp_series.emplace_back(x, y);
  for (const auto& [x, y] : bgp_cdf.series(64)) bgp_series.emplace_back(x, y);
  std::printf("%s\n", stats::ascii_multiplot({{"LISP (reactive)", 'L', lisp_series},
                                              {"BGP (proactive)", 'B', bgp_series}},
                                             96, 18,
                                             "CDF of handover delay (normalized to min)")
                          .c_str());

  bench::write_xy("fig11_lisp_cdf", "normalized_delay", "fraction", lisp_cdf.series(256),
                  spec.seed);
  bench::write_xy("fig11_bgp_cdf", "normalized_delay", "fraction", bgp_cdf.series(256),
                  spec.seed);

  std::printf("moves measured: LISP %zu, BGP %zu\n", lisp_moves, bgp_moves);
  std::printf("median handover: LISP %.2f ms, BGP %.2f ms  (ratio %.1fx)\n",
              1e3 * lisp.median(), 1e3 * bgp.median(), bgp.median() / lisp.median());
  std::printf("stddev:          LISP %.2f ms, BGP %.2f ms\n", 1e3 * lisp.stddev(),
              1e3 * bgp.stddev());
  std::printf("paper reference: proactive ~10x slower to converge, higher variance.\n");
  return 0;
}
