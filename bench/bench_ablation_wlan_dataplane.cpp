// Ablation (§2 "Mobility" / Table 1) — centralized vs distributed wireless
// data plane.
//
// The traditional enterprise WLAN tunnels every frame from the AP to a
// central controller before it enters the network: easy mobility (the
// anchor never moves) but triangular routing and a controller bottleneck.
// SDA keeps only the control plane central and routes data from the AP's
// edge. This bench runs the same station population, traffic, and roaming
// pattern through both modes and reports:
//   * end-to-end data latency (steady state, caches warm);
//   * controller data-plane load (frames, bytes, CPU busy time);
//   * handover delay (the one metric the legacy design wins).
#include <cstdio>

#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "wlan/controller.hpp"

namespace {

using namespace sda;

constexpr net::VnId kVn{100};
constexpr unsigned kEdges = 6;
constexpr unsigned kApsPerEdge = 2;
constexpr unsigned kStations = 120;
constexpr unsigned kWarmFlows = 2;   // per station, to fill map caches
constexpr unsigned kProbeFlows = 6;  // measured per station
constexpr unsigned kRoams = 200;

net::MacAddress mac(std::uint64_t i) {
  return net::MacAddress::from_u64(0x0200'0000'0000ull | i);
}

struct ModeResult {
  stats::Summary data_latency_ms;
  stats::Summary handover_ms;
  std::uint64_t frames_tunneled = 0;
  std::uint64_t controller_busy_us = 0;
  std::uint64_t delivered = 0;
};

ModeResult run(wlan::DataPlaneMode mode) {
  sim::Simulator sim;
  fabric::FabricConfig fconfig;
  fconfig.l2_gateway = false;
  fabric::SdaFabric fabric{sim, fconfig};
  fabric.add_border("b0");
  fabric.add_edge("e-anchor");
  fabric.link("e-anchor", "b0", std::chrono::microseconds{50});
  for (unsigned e = 0; e < kEdges; ++e) {
    const std::string name = "e" + std::to_string(e);
    fabric.add_edge(name);
    fabric.link(name, "b0", std::chrono::microseconds{50});
  }
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  wlan::WlanConfig wconfig;
  wconfig.mode = mode;
  wconfig.controller_edge = "e-anchor";
  wlan::WlanController wlc{fabric, wconfig};
  std::vector<std::string> ap_names;
  for (unsigned e = 0; e < kEdges; ++e) {
    for (unsigned a = 0; a < kApsPerEdge; ++a) {
      const std::string name = "ap-" + std::to_string(e) + "-" + std::to_string(a);
      wlc.add_access_point({name, "e" + std::to_string(e), static_cast<std::uint16_t>(a + 1)});
      ap_names.push_back(name);
    }
  }

  std::vector<net::Ipv4Address> ips(kStations);
  for (unsigned s = 0; s < kStations; ++s) {
    fabric::EndpointDefinition def;
    def.credential = "sta" + std::to_string(s);
    def.secret = "pw";
    def.mac = mac(s);
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    wlc.associate(def.credential, ap_names[s % ap_names.size()],
                  [&ips, s](const wlan::AssociationResult& r) { ips[s] = r.ip; });
  }
  sim.run();

  ModeResult result;
  sim::SimTime last_delivery;
  wlc.set_station_delivery_listener([&](const dataplane::AttachedEndpoint&,
                                        const net::OverlayFrame&, sim::SimTime at) {
    ++result.delivered;
    last_delivery = at;
  });

  sim::Rng rng{77};

  // Warm-up flows: fill map caches on every path we will measure.
  for (unsigned s = 0; s < kStations; ++s) {
    for (unsigned k = 0; k < kWarmFlows; ++k) {
      wlc.station_send_udp(mac(s), ips[(s + 1 + k) % kStations], 443, 400);
    }
  }
  sim.run();

  // Measured flows: one probe at a time, running the simulator dry between
  // probes, so send->delivery spans exactly one frame's path.
  for (unsigned s = 0; s < kStations; ++s) {
    for (unsigned k = 0; k < kProbeFlows; ++k) {
      const unsigned dst = (s + 1 + k) % kStations;
      const sim::SimTime t0 = sim.now();
      const std::uint64_t before = result.delivered;
      wlc.station_send_udp(mac(s), ips[dst], 443, 400);
      sim.run();
      if (result.delivered > before) {
        result.data_latency_ms.add(static_cast<double>((last_delivery - t0).count()) / 1e6);
      }
    }
  }

  // Roams: random station to a random other AP; measure handover.
  for (unsigned r = 0; r < kRoams; ++r) {
    const unsigned s = static_cast<unsigned>(rng.next_below(kStations));
    const std::string& target = ap_names[rng.next_below(ap_names.size())];
    if (wlc.ap_of(mac(s)) == target) continue;
    wlc.roam(mac(s), target, [&](const wlan::AssociationResult& res) {
      if (res.success) {
        result.handover_ms.add(static_cast<double>(res.elapsed.count()) / 1e6);
      }
    });
    sim.run();
  }

  result.frames_tunneled = wlc.stats().frames_tunneled;
  result.controller_busy_us =
      static_cast<std::uint64_t>(wlc.stats().busy_time.count() / 1000);
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation (section 2, Table 1): wireless data-plane placement ===\n");
  std::printf("%u stations, %u APs on %u edges; same traffic and roaming both modes\n\n",
              kStations, kEdges * kApsPerEdge, kEdges);

  const ModeResult distributed = run(wlan::DataPlaneMode::Distributed);
  const ModeResult centralized = run(wlan::DataPlaneMode::Centralized);

  sda::stats::Table table{{"metric", "distributed (SDA)", "centralized (legacy WLC)"}};
  table.add_row({"median data latency (ms)",
                 sda::stats::Table::num(distributed.data_latency_ms.median(), 3),
                 sda::stats::Table::num(centralized.data_latency_ms.median(), 3)});
  table.add_row({"p95 data latency (ms)",
                 sda::stats::Table::num(distributed.data_latency_ms.percentile(95), 3),
                 sda::stats::Table::num(centralized.data_latency_ms.percentile(95), 3)});
  table.add_row({"median handover (ms)",
                 sda::stats::Table::num(distributed.handover_ms.median(), 3),
                 sda::stats::Table::num(centralized.handover_ms.median(), 3)});
  table.add_row({"frames through controller",
                 sda::stats::Table::num(std::size_t{distributed.frames_tunneled}),
                 sda::stats::Table::num(std::size_t{centralized.frames_tunneled})});
  table.add_row({"controller CPU busy (us)",
                 sda::stats::Table::num(std::size_t{distributed.controller_busy_us}),
                 sda::stats::Table::num(std::size_t{centralized.controller_busy_us})});
  std::printf("%s\n", table.render().c_str());

  std::printf("takeaway (Table 1): the legacy sink wins only on handover (anchor never\n");
  std::printf("moves); it pays triangular routing on every frame and its controller CPU\n");
  std::printf("scales with *traffic*, while SDA's controller scales with *events*.\n");
  return 0;
}
