// Ablation (§3.2.2) — absorbing the reactive protocol's initial delay.
//
// "A drawback of using a reactive protocol such as LISP is the initial
// packet loss until the edge router downloads the route... We have
// overcome this issue by installing a default route in all edge routers
// that points to the border router, and by synchronizing the routing state
// in the border."
//
// This bench quantifies that design decision: the same cold-start flow set
// runs (a) with the SDA border default route and (b) classic-LISP style
// (drop until the Map-Reply arrives), under increasing routing-server
// load. Reported per mode: first-packet loss, first-packet delivery
// latency, and warm-path latency.
#include <cstdio>
#include <optional>
#include <vector>

#include "fabric/fabric.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

using namespace sda;

constexpr net::VnId kVn{100};
constexpr unsigned kEdges = 10;
constexpr unsigned kHostsPerEdge = 8;
constexpr unsigned kColdFlows = 300;

net::MacAddress mac(std::uint64_t i) {
  return net::MacAddress::from_u64(0x0200'0000'0000ull | i);
}

struct ModeResult {
  std::uint64_t first_packets_sent = 0;
  std::uint64_t first_packets_lost = 0;
  stats::Summary first_packet_ms;  // latency of delivered first packets
  stats::Summary warm_packet_ms;
};

ModeResult run(bool default_route_fallback, sim::Duration extra_server_latency) {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.default_route_fallback = default_route_fallback;
  config.l2_gateway = false;
  config.seed = 5;
  // Model a loaded routing server with a slower service time.
  config.map_server.request_service =
      std::chrono::microseconds{25} + std::chrono::duration_cast<std::chrono::microseconds>(
                                          extra_server_latency);
  fabric::SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  for (unsigned e = 0; e < kEdges; ++e) {
    fabric.add_edge("e" + std::to_string(e));
    fabric.link("e" + std::to_string(e), "b0", std::chrono::microseconds{80});
  }
  // Short edge-to-edge ring links: the direct overlay path is cheaper than
  // the border detour, so the default-route fallback has a visible cost.
  for (unsigned e = 0; e < kEdges; ++e) {
    fabric.link("e" + std::to_string(e), "e" + std::to_string((e + 1) % kEdges),
                std::chrono::microseconds{20});
  }
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  std::vector<net::Ipv4Address> ips(kEdges * kHostsPerEdge);
  for (unsigned i = 0; i < ips.size(); ++i) {
    fabric::EndpointDefinition def;
    def.credential = "h" + std::to_string(i);
    def.secret = "pw";
    def.mac = mac(i);
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    fabric.connect_endpoint(def.credential, "e" + std::to_string(i % kEdges), 1,
                            [&ips, i](const fabric::OnboardResult& r) { ips[i] = r.ip; });
  }
  sim.run();

  ModeResult result;
  std::uint64_t delivered = 0;
  std::uint64_t burst_baseline = 0;
  sim::SimTime last_delivery, first_in_burst;
  fabric.set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime at) {
        ++delivered;
        last_delivery = at;
        if (delivered == burst_baseline + 1) first_in_burst = at;
      });

  sim::Rng rng{31};
  for (unsigned f = 0; f < kColdFlows; ++f) {
    // Always a cross-edge pair: same-edge flows never touch the map cache.
    const auto src = rng.next_below(ips.size());
    auto dst = rng.next_below(ips.size());
    while (dst % kEdges == src % kEdges) dst = (dst + 1) % ips.size();

    // Cold burst: 5 packets, 2 ms apart — a TCP-handshake-like opening.
    // With a slow routing server more of the burst falls inside the
    // resolution window.
    constexpr int kBurst = 5;
    burst_baseline = delivered;
    const sim::SimTime t0 = sim.now();
    for (int p = 0; p < kBurst; ++p) {
      sim.schedule_after(std::chrono::milliseconds{2 * p}, [&fabric, src, dst, &ips] {
        fabric.endpoint_send_udp(mac(src), ips[dst], 443, 400);
      });
    }
    sim.run();
    result.first_packets_sent += kBurst;
    const std::uint64_t got = delivered - burst_baseline;
    result.first_packets_lost += kBurst - got;
    if (got > 0) {
      // Time until the flow's first packet actually got through.
      result.first_packet_ms.add(static_cast<double>((first_in_burst - t0).count()) / 1e6);
    }

    // Warm packet (mapping now cached): the direct-path latency.
    const std::uint64_t before2 = delivered;
    const sim::SimTime t1 = sim.now();
    fabric.endpoint_send_udp(mac(src), ips[dst], 443, 400);
    sim.run();
    if (delivered > before2) {
      result.warm_packet_ms.add(static_cast<double>((last_delivery - t1).count()) / 1e6);
    }
  }
  return result;
}

void print_mode_row(sda::stats::Table& table, const char* label, const ModeResult& r) {
  table.add_row(
      {label, sda::stats::Table::num(std::size_t{r.first_packets_sent}),
       sda::stats::Table::num(std::size_t{r.first_packets_lost}),
       r.first_packet_ms.empty() ? "-" : sda::stats::Table::num(r.first_packet_ms.median(), 3),
       sda::stats::Table::num(r.warm_packet_ms.median(), 3)});
}

}  // namespace

int main() {
  std::printf("=== Ablation (section 3.2.2): absorbing the reactive initial delay ===\n");
  std::printf("%u cold flows across %u edges; border default route vs drop-on-miss\n\n",
              kColdFlows, kEdges);

  for (const auto extra_us : {0, 2000, 10000}) {
    const auto extra = std::chrono::microseconds{extra_us};
    const ModeResult with_default = run(true, extra);
    const ModeResult classic = run(false, extra);

    std::printf("routing-server service time: %d us\n", 25 + extra_us);
    sda::stats::Table table{{"mode", "first pkts", "lost", "first-pkt median ms",
                             "warm median ms"}};
    print_mode_row(table, "SDA (border default route)", with_default);
    print_mode_row(table, "classic LISP (drop on miss)", classic);
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("takeaway: the default route converts first-packet *loss* into a bounded\n");
  std::printf("extra hop through the border, and the cost stays flat as the routing\n");
  std::printf("server slows down — the border absorbs the resolution delay (3.2.2).\n");
  return 0;
}
