// Ablation (§3.4) — mobility signaling vs. traffic pattern.
//
// "Regarding signaling scalability, this method depends on traffic
// patterns: if the roaming endpoint is very popular, we will have to
// update a significant portion of edge routers. On the contrary, endpoints
// that receive traffic from few sources require less signaling... the
// control plane doesn't need to update *all* edge routers that have the
// stale location, but only those that require it."
//
// One endpoint roams; K other endpoints (its active correspondents) keep
// sending to it. We count control-plane messages for the reactive design
// (Map-Register + Map-Notify + pub/sub + data-triggered SMR + re-requests)
// against the proactive baseline (route reflected to every edge), sweeping
// both the fabric size E and the correspondent count K.
#include <cstdio>
#include <vector>

#include "bgp/route_reflector.hpp"
#include "fabric/fabric.hpp"
#include "stats/table.hpp"

namespace {

using namespace sda;

constexpr net::VnId kVn{100};

net::MacAddress mac(std::uint64_t i) {
  return net::MacAddress::from_u64(0x0200'0000'0000ull | i);
}

/// Control messages the reactive plane spends on one roam of a host with
/// `senders` active correspondents in an `edges`-edge fabric.
std::uint64_t reactive_messages(unsigned edges, unsigned senders) {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.seed = 3;
  fabric::SdaFabric fabric{sim, config};
  fabric.add_border("b0");
  for (unsigned e = 0; e < edges; ++e) {
    fabric.add_edge("e" + std::to_string(e));
    fabric.link("e" + std::to_string(e), "b0");
  }
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  // The popular host on e0, correspondents spread over the other edges.
  net::Ipv4Address popular_ip;
  fabric::EndpointDefinition popular;
  popular.credential = "popular";
  popular.secret = "pw";
  popular.mac = mac(0);
  popular.vn = kVn;
  popular.group = net::GroupId{10};
  fabric.provision_endpoint(popular);
  fabric.connect_endpoint("popular", "e0", 1,
                          [&](const fabric::OnboardResult& r) { popular_ip = r.ip; });
  for (unsigned s = 0; s < senders; ++s) {
    fabric::EndpointDefinition def;
    def.credential = "s" + std::to_string(s);
    def.secret = "pw";
    def.mac = mac(1 + s);
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    fabric.connect_endpoint(def.credential, "e" + std::to_string(1 + s % (edges - 1)), 1);
  }
  sim.run();

  // Correspondents warm their caches towards the popular host.
  for (unsigned s = 0; s < senders; ++s) {
    fabric.endpoint_send_udp(mac(1 + s), popular_ip, 443, 100);
  }
  sim.run();

  auto control_total = [&] {
    std::uint64_t total = fabric.map_server().stats().registers +
                          fabric.map_server().stats().requests;
    for (const auto& name : fabric.edge_names()) {
      total += fabric.edge(name).counters().smr_sent;
    }
    // Pub/sub messages: one per border per publish; approximate with the
    // border's applied publish count.
    for (const auto& name : fabric.border_names()) {
      total += fabric.border(name).counters().publishes_applied +
               fabric.border(name).counters().withdrawals_applied;
    }
    return total;
  };

  const std::uint64_t before = control_total();
  fabric.roam_endpoint(mac(0), "e" + std::to_string(edges - 1), 2);
  sim.run();
  // Every correspondent keeps talking: stale caches trigger SMRs and
  // re-resolution (Fig. 6).
  for (unsigned s = 0; s < senders; ++s) {
    fabric.endpoint_send_udp(mac(1 + s), popular_ip, 443, 100);
  }
  sim.run();
  for (unsigned s = 0; s < senders; ++s) {  // post-refresh traffic, no signaling
    fabric.endpoint_send_udp(mac(1 + s), popular_ip, 443, 100);
  }
  sim.run();
  return control_total() - before;
}

/// Messages the proactive plane spends: the reflector replicates the
/// roamed host's route to every other peer, senders or not.
std::uint64_t proactive_messages(unsigned edges) {
  sim::Simulator sim;
  bgp::RouteReflector reflector{sim, bgp::ReflectorConfig{}, 5};
  std::vector<std::unique_ptr<bgp::BgpPeer>> peers;
  for (unsigned i = 0; i <= edges; ++i) {  // edges + border
    peers.push_back(std::make_unique<bgp::BgpPeer>(net::Ipv4Address{0x0A000000u + i}));
    reflector.add_client(*peers.back());
  }
  const net::VnEid eid{kVn, net::Eid{net::Ipv4Address{10, 100, 0, 3}}};
  reflector.announce(peers[1]->rloc(), eid, peers[1]->rloc());
  sim.run();
  return reflector.stats().routes_replicated + 1;  // + the announcement itself
}

}  // namespace

int main() {
  std::printf("=== Ablation (section 3.4): mobility signaling vs traffic pattern ===\n");
  std::printf("one host roams; K correspondents keep sending; count control messages\n\n");

  sda::stats::Table table{{"edges", "correspondents", "reactive msgs", "proactive msgs",
                           "reactive scales with"}};
  for (const unsigned edges : {25u, 50u, 100u, 200u}) {
    for (const unsigned senders : {4u, 16u, 64u}) {
      if (senders >= edges) continue;
      const auto reactive = reactive_messages(edges, senders);
      const auto proactive = proactive_messages(edges);
      table.add_row({sda::stats::Table::num(std::size_t{edges}),
                     sda::stats::Table::num(std::size_t{senders}),
                     sda::stats::Table::num(std::size_t{reactive}),
                     sda::stats::Table::num(std::size_t{proactive}),
                     reactive < proactive ? "senders (K)" : "senders (K) - large K"});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("takeaway: reactive signaling tracks the number of *active correspondents*\n");
  std::printf("and is flat in fabric size; proactive signaling tracks the number of\n");
  std::printf("*routers* regardless of who actually talks to the roamed host (3.4).\n");
  return 0;
}
