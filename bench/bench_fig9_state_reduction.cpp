// Figure 9 — FIB entries in border vs edge routers over three weeks
// (paper §4.2), for buildings A and B, sampled hourly.
//
// Reproduces the paper's qualitative results:
//  * edge routers hold a small fraction of the border's overlay state
//    (the reactive-protocol saving — ~30% of border state in A, ~6% in B);
//  * the border follows the authenticated-user population (daily and
//    weekly pattern);
//  * building A's edges retain cached routes between workdays, clearing
//    around the weekend (TTL expiry), while building B's edges track the
//    day/night routine more closely thanks to night-time negative
//    resolutions cleaning stale entries.
#include <cstdio>

#include "campus_specs.hpp"
#include "stats/table.hpp"
#include "telemetry_sink.hpp"

namespace {

using namespace sda;

void run_building(const workload::CampusSpec& spec) {
  workload::CampusWorkload campus{spec};
  const workload::CampusResult result = campus.run(3);

  std::printf("--- Building %s: %u border, %u edge, %u users + %u always-on ---\n",
              spec.name.c_str(), spec.borders, spec.edges, spec.users, spec.permanent);

  std::vector<std::pair<double, double>> border_series, edge_series;
  for (const auto& p : result.border_fib.points()) {
    border_series.emplace_back(p.time.hours() / 24.0, p.value);
  }
  for (const auto& p : result.edge_fib.points()) {
    edge_series.emplace_back(p.time.hours() / 24.0, p.value);
  }
  std::printf("%s\n",
              stats::ascii_multiplot(
                  {{"border avg FIB", 'B', border_series}, {"edge avg FIB", 'e', edge_series}},
                  96, 18, "FIB entries vs time (days), 3 weeks")
                  .c_str());

  stats::Table table{{"router", "mean FIB", "day mean", "night mean"}};
  table.add_row({"border", stats::Table::num(result.border_all, 1),
                 stats::Table::num(result.border_day, 1),
                 stats::Table::num(result.border_night, 1)});
  table.add_row({"edge", stats::Table::num(result.edge_all, 1),
                 stats::Table::num(result.edge_day, 1),
                 stats::Table::num(result.edge_night, 1)});
  std::printf("%s", table.render().c_str());
  std::printf("edge/border state ratio: %.2f (reduction %.0f%%)\n\n",
              result.edge_all / result.border_all, 100.0 * result.state_reduction());

  bench::write_timeseries("fig9_building_" + spec.name + "_border", {"fib_entries"},
                          bench::rows_from_timeseries(result.border_fib), spec.seed);
  bench::write_timeseries("fig9_building_" + spec.name + "_edge", {"fib_entries"},
                          bench::rows_from_timeseries(result.edge_fib), spec.seed);
}

}  // namespace

int main() {
  std::printf("=== Figure 9: border vs edge FIB occupancy, 3 weeks hourly ===\n");
  std::printf("(paper: edges carry ~30%% of border state in building A, ~6%% in B)\n\n");
  run_building(sda::bench::building_a());
  run_building(sda::bench::building_b());
  return 0;
}
