// Chaos convergence: delivered-traffic fraction under a seeded fault storm.
//
// A redundant campus fabric carries continuous flows while the fault plane
// batters it: stochastic control- and data-plane loss, a staggered random
// link-flap storm, a routing-server outage window, and a border pub/sub
// feed disconnect with snapshot resync on reconnect. The bench reports the
// fraction of sent packets that arrived, how long after the storm the
// fabric took to return to loss-free delivery, and what the hardening
// machinery (retransmits, register acks, resyncs) did to get there.
//
// Fully deterministic for a fixed seed: rerunning produces byte-identical
// tables and CSV, so chaos results are comparable across code changes.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fabric/fabric.hpp"
#include "fabric/lanes.hpp"
#include "faults/fault_plane.hpp"
#include "stats/table.hpp"
#include "telemetry_sink.hpp"

namespace {

using namespace sda;
using std::chrono::milliseconds;
using std::chrono::seconds;

constexpr net::VnId kVn{100};
constexpr std::uint64_t kSeed = 0x5DA;

constexpr int kFlows = 12;                      // endpoint pairs sending from t=0
constexpr int kLateFlows = 4;                   // endpoints that onboard mid-storm
constexpr auto kSendGap = milliseconds{5};      // 200 Hz per flow
constexpr auto kRunFor = seconds{10};
constexpr auto kChaosStart = seconds{2};
constexpr auto kChaosEnd = seconds{6};
constexpr auto kBucket = milliseconds{100};

net::MacAddress mac(std::uint64_t i) {
  return net::MacAddress::from_u64(0x0200'0000'0000ull | i);
}

std::string host(int i) { return std::string{"h"} + std::to_string(i); }

struct ChaosResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double reconvergence_ms = -1;  // storm end -> last lossy bucket (-1 = never lossy)
  std::uint64_t control_drops = 0;
  std::uint64_t data_drops = 0;
  std::uint64_t request_retries = 0;
  std::uint64_t register_retries = 0;
  std::uint64_t feed_dropped = 0;
  std::uint64_t snapshots = 0;
  std::vector<std::pair<double, double>> fraction_series;  // (seconds, fraction)

  [[nodiscard]] double fraction() const {
    return sent ? static_cast<double>(delivered) / static_cast<double>(sent) : 1.0;
  }
};

ChaosResult run(double control_loss, double data_loss, bool export_telemetry = false) {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.seed = kSeed;
  config.map_request_retries = 8;
  config.map_register_retries = 10;
  fabric::SdaFabric fabric{sim, config};

  // Redundant campus: every edge dual-homed to two distribution nodes, so
  // a single flapped link degrades paths without partitioning anything.
  fabric.add_border("b0");
  fabric.add_underlay_node("d0");
  fabric.add_underlay_node("d1");
  fabric.link("d0", "b0");
  fabric.link("d1", "b0");
  fabric.link("d0", "d1");
  std::vector<std::string> edges;
  for (int e = 0; e < 6; ++e) {
    edges.push_back(std::string{"e"} + std::to_string(e));
    fabric.add_edge(edges.back());
    fabric.link(edges.back(), "d0");
    fabric.link(edges.back(), "d1");
  }
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  std::vector<net::Ipv4Address> ips(kFlows + kLateFlows);
  for (int i = 0; i < kFlows + kLateFlows; ++i) {
    fabric::EndpointDefinition def;
    def.credential = host(i);
    def.secret = "pw";
    def.mac = mac(static_cast<std::uint64_t>(i));
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    if (i < kFlows) {
      fabric.connect_endpoint(
          def.credential, edges[static_cast<std::size_t>(i) % edges.size()], 1,
          [&ips, i](const fabric::OnboardResult& r) { ips[static_cast<std::size_t>(i)] = r.ip; });
    }
  }
  sim.run();

  faults::FaultPlane plane{sim, fabric.underlay(), kSeed};
  // Injected faults land in the fabric's flight recorder next to the
  // control-plane events they provoke — one merged timeline per run.
  plane.set_recorder(&fabric.flight_recorder());

  ChaosResult result;
  const auto buckets = static_cast<std::size_t>(kRunFor / kBucket) + 1;
  std::vector<std::uint64_t> sent_in(buckets, 0), arrived_in(buckets, 0);
  const sim::SimTime t0 = sim.now();
  const auto bucket_of = [&](sim::SimTime at) {
    const auto idx = static_cast<std::size_t>((at - t0) / kBucket);
    return idx < buckets ? idx : buckets - 1;
  };
  fabric.set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime at) {
        ++result.delivered;
        ++arrived_in[bucket_of(at)];
      });

  // Continuous traffic: flow i -> flow i+1 (different edge). Flows toward
  // the late endpoints start only once their target has an address —
  // before that, the "application" has nothing to talk to.
  for (int i = 0; i < kFlows + kLateFlows; ++i) {
    const auto peer = static_cast<std::size_t>((i + 1) % (kFlows + kLateFlows));
    for (sim::Duration at = kSendGap * i / (kFlows + kLateFlows); at < kRunFor;
         at += kSendGap) {
      sim.schedule_at(t0 + at, [&, i, peer] {
        if (ips[peer].is_unspecified()) return;  // target not onboarded yet
        if (!fabric.endpoint_send_udp(mac(static_cast<std::uint64_t>(i)), ips[peer], 443,
                                      200)) {
          return;  // sender itself not attached yet
        }
        ++result.sent;
        ++sent_in[bucket_of(sim.now())];
      });
    }
  }

  // --- The storm (all seeded, all inside [kChaosStart, kChaosEnd)) --------
  sim.schedule_at(t0 + kChaosStart, [&] {
    faults::LossModel control;
    control.loss = control_loss;
    plane.set_control_loss(control);
    faults::LossModel data;
    data.loss = data_loss;
    data.extra_jitter_chance = 0.1;
    data.extra_jitter_max = milliseconds{2};
    plane.set_data_loss(data);
  });
  sim.schedule_at(t0 + kChaosEnd, [&] {
    plane.set_control_loss({});
    plane.set_data_loss({});
  });
  // Four random links flap 400ms each, staggered so the fabric never
  // partitions; IGP reconvergence and border fallback cover the holes.
  faults::FlapSchedule storm;
  storm.first_down = kChaosStart + milliseconds{200};
  storm.down_for = milliseconds{400};
  plane.random_link_storm(4, storm, milliseconds{500});
  // Routing server blacked out for 1.5s mid-storm.
  plane.server_outage(fabric.map_server_node(), kChaosStart + seconds{1}, milliseconds{1500});
  // Border feed cut during the storm; reconnect triggers snapshot resync.
  sim.schedule_at(t0 + kChaosStart + milliseconds{500},
                  [&] { fabric.set_border_feed_connected("b0", false); });
  sim.schedule_at(t0 + kChaosEnd - seconds{1},
                  [&] { fabric.set_border_feed_connected("b0", true); });

  // --- Mid-storm churn: the control plane has to work while being hit ----
  // Late endpoints onboard into the storm (registrations face loss, then
  // the server outage; reliable Map-Register must carry them through).
  sim.schedule_at(t0 + kChaosStart + milliseconds{600}, [&] {
    for (int i = kFlows; i < kFlows + kLateFlows; ++i) {
      fabric.connect_endpoint(
          host(i), edges[static_cast<std::size_t>(i) % edges.size()], 2,
          [&ips, i](const fabric::OnboardResult& r) { ips[static_cast<std::size_t>(i)] = r.ip; });
    }
  });
  // One endpoint roams mid-storm: its sender holds a stale cache entry and
  // must be refreshed by data-triggered SMR over the lossy control plane.
  sim.schedule_at(t0 + kChaosStart + milliseconds{1200},
                  [&] { fabric.roam_endpoint(mac(1), edges[4], 3); });

  sim.run();

  // Per-bucket delivered fraction and the re-convergence point: the last
  // bucket that still lost traffic, measured from the end of the storm.
  const auto chaos_end_bucket = static_cast<std::size_t>(kChaosEnd / kBucket);
  for (std::size_t b = 0; b < buckets; ++b) {
    if (sent_in[b] == 0) continue;
    const double fraction =
        static_cast<double>(arrived_in[b]) / static_cast<double>(sent_in[b]);
    result.fraction_series.emplace_back(
        static_cast<double>(b) * std::chrono::duration<double>(kBucket).count(), fraction);
    if (arrived_in[b] < sent_in[b]) {
      result.reconvergence_ms =
          (static_cast<double>(b + 1) - static_cast<double>(chaos_end_bucket)) *
          std::chrono::duration<double>(kBucket).count() * 1e3;
    }
  }
  if (result.reconvergence_ms < 0 && result.sent != result.delivered) {
    result.reconvergence_ms = 0;  // losses happened but never bucketed (drained late)
  }

  result.control_drops = plane.counters().control_drops;
  result.data_drops = plane.counters().data_drops;
  for (const auto& name : edges) {
    result.request_retries += fabric.edge(name).counters().map_request_retries;
    result.register_retries += fabric.edge(name).counters().map_register_retries;
  }
  result.feed_dropped = fabric.border_publishes_dropped("b0");
  result.snapshots = fabric.border("b0").counters().snapshots_applied;
  if (export_telemetry) {
    bench::export_fabric_metrics(fabric, "chaos_convergence_metrics");
    bench::export_flight_recorder(fabric, "chaos_convergence_events");
  }
  return result;
}

// --- HA drill: kill a routing server mid-run, with and without failover ----
//
// Scale-out fabric (2 routing servers, edges round-robined between them),
// border default route disabled so Map-Request resolution is load-bearing.
// Server 0 is blacked out for 3s mid-run while three *cold* flows start —
// all from edges homed on the dead server, so their first packets need a
// resolution it cannot answer. With HA off those flows blackhole until the
// server returns; with HA on the heartbeat monitor fails the edges over to
// the replica and the cold starts cost a millisecond-scale blip. A late
// endpoint also onboards mid-outage: its registration is missed by the dead
// primary and must be repaired by anti-entropy once the server is back.

struct DrillResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  double reconvergence_ms = -1;  // outage end -> last lossy bucket
  std::uint64_t failovers = 0;
  std::uint64_t failbacks = 0;
  std::uint64_t anti_entropy_repairs = 0;
  std::uint64_t request_retries = 0;

  [[nodiscard]] double fraction() const {
    return sent ? static_cast<double>(delivered) / static_cast<double>(sent) : 1.0;
  }
};

DrillResult run_drill(bool ha_on) {
  constexpr int kDrillFlows = 12;
  constexpr auto kDrillRun = seconds{8};
  constexpr auto kKillAt = seconds{2};
  constexpr auto kKillFor = seconds{3};

  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.seed = kSeed;
  config.routing_servers = 2;
  config.default_route_fallback = false;  // resolution failures are visible
  config.pending_packet_limit = 8;
  config.map_request_retries = 8;
  config.map_register_retries = 10;
  if (ha_on) {
    config.ha.failover = true;
    config.ha.heartbeat_interval = milliseconds{100};
    config.ha.heartbeat_timeout = milliseconds{30};
    config.ha.down_after_misses = 3;
    config.ha.up_after_acks = 4;
    config.ha.anti_entropy_interval = milliseconds{500};
  }
  fabric::SdaFabric fabric{sim, config};

  fabric.add_border("b0");
  fabric.add_border("b1");
  std::vector<std::string> edges;
  for (int e = 0; e < 6; ++e) {
    edges.push_back(std::string{"e"} + std::to_string(e));
    fabric.add_edge(edges.back());
    fabric.link(edges.back(), "b0");
    fabric.link(edges.back(), "b1");
  }
  fabric.link("b0", "b1");
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  std::vector<net::Ipv4Address> ips(kDrillFlows + 1);
  for (int i = 0; i < kDrillFlows + 1; ++i) {
    fabric::EndpointDefinition def;
    def.credential = host(i);
    def.secret = "pw";
    def.mac = mac(static_cast<std::uint64_t>(i));
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    if (i < kDrillFlows) {
      fabric.connect_endpoint(
          def.credential, edges[static_cast<std::size_t>(i) % edges.size()], 1,
          [&ips, i](const fabric::OnboardResult& r) { ips[static_cast<std::size_t>(i)] = r.ip; });
    }
  }
  // The HA heartbeat timers never drain the queue: drive time explicitly.
  sim.run_until(sim.now() + seconds{1});

  faults::FaultPlane plane{sim, fabric.underlay(), kSeed};
  plane.set_recorder(&fabric.flight_recorder());

  DrillResult result;
  const auto buckets = static_cast<std::size_t>(kDrillRun / kBucket) + 1;
  std::vector<std::uint64_t> sent_in(buckets, 0), arrived_in(buckets, 0);
  const sim::SimTime t0 = sim.now();
  const auto bucket_of = [&](sim::SimTime at) {
    const auto idx = static_cast<std::size_t>((at - t0) / kBucket);
    return idx < buckets ? idx : buckets - 1;
  };
  fabric.set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime at) {
        ++result.delivered;
        ++arrived_in[bucket_of(at)];
      });

  // Flow sets: h0..h5 talk in a ring from t=0 (caches warm long before the
  // kill); h6/h8/h10 — on edges e0/e2/e4, all homed on server 0 — start
  // cold toward idle peers mid-outage, forcing fresh resolutions.
  const auto flow = [&](int from, int to, sim::Duration start) {
    for (sim::Duration at = start + kSendGap * from / kDrillFlows; at < kDrillRun;
         at += kSendGap) {
      sim.schedule_at(t0 + at, [&, from, to] {
        if (!fabric.endpoint_send_udp(mac(static_cast<std::uint64_t>(from)),
                                      ips[static_cast<std::size_t>(to)], 443, 200)) {
          return;
        }
        ++result.sent;
        ++sent_in[bucket_of(sim.now())];
      });
    }
  };
  for (int i = 0; i < 6; ++i) flow(i, (i + 1) % 6, sim::Duration{0});
  const auto cold_start = kKillAt + milliseconds{600};
  flow(6, 9, cold_start);
  flow(8, 11, cold_start);
  flow(10, 7, cold_start);

  // The kill: routing server 0 dark for 3s (database preserved — a reboot,
  // not a disk loss).
  plane.server_outage(fabric.map_server_node(0), kKillAt, kKillFor);
  // A late endpoint onboards mid-outage: the dead primary misses its
  // registration, leaving a divergence only anti-entropy can repair.
  sim.schedule_at(t0 + seconds{3}, [&] {
    fabric.connect_endpoint(host(kDrillFlows), edges[1], 2,
                            [&ips](const fabric::OnboardResult& r) { ips.back() = r.ip; });
  });

  sim.run_until(t0 + kDrillRun + seconds{2});  // drain late flushes

  const auto outage_end_bucket = static_cast<std::size_t>((kKillAt + kKillFor) / kBucket);
  for (std::size_t b = 0; b < buckets; ++b) {
    if (sent_in[b] == 0 || arrived_in[b] >= sent_in[b]) continue;
    result.reconvergence_ms =
        (static_cast<double>(b + 1) - static_cast<double>(outage_end_bucket)) *
        std::chrono::duration<double>(kBucket).count() * 1e3;
  }
  for (const auto& name : edges) {
    result.request_retries += fabric.edge(name).counters().map_request_retries;
  }
  if (const fabric::HaMonitor* ha = fabric.ha_monitor()) {
    result.failovers = ha->counters().failovers;
    result.failbacks = ha->counters().failbacks;
    result.anti_entropy_repairs = ha->counters().anti_entropy_repairs;
  }
  return result;
}

// --- Election drill: kill the elected leader, resurrect it stale ------------
//
// Same scale-out fabric with leader election on: server 0 leads until it is
// blacked out mid-run; the replica's watchdog opens a new term and takes
// over the acking authority and the pub/sub feed (borders snapshot-resync
// onto it). The dead ex-leader then returns still believing it leads — its
// stale-term asserts/acks/pushes must all be fenced (zero stale accepts).

struct ElectionDrillResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t term = 0;
  std::size_t leader = 0;
  std::uint64_t elections = 0;
  std::uint64_t resyncs = 0;        // border snapshot pulls (feed re-homes)
  std::uint64_t stale_rejects = 0;  // epoch-fenced messages, all receivers
  std::uint64_t stale_accepts = 0;  // fence breaches (must be 0)
  std::uint64_t min_feed_epoch = 0;

  [[nodiscard]] double fraction() const {
    return sent ? static_cast<double>(delivered) / static_cast<double>(sent) : 1.0;
  }
};

ElectionDrillResult run_election_drill() {
  constexpr int kDrillFlows = 12;
  constexpr auto kDrillRun = seconds{9};
  constexpr auto kKillAt = seconds{2};
  constexpr auto kKillFor = seconds{3};  // resurrects at 5s, stale

  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.seed = kSeed;
  config.routing_servers = 2;
  config.default_route_fallback = false;
  config.pending_packet_limit = 8;
  config.map_request_retries = 8;
  config.map_register_retries = 10;
  config.ha.failover = true;
  config.ha.heartbeat_interval = milliseconds{100};
  config.ha.heartbeat_timeout = milliseconds{30};
  config.ha.down_after_misses = 3;
  config.ha.up_after_acks = 4;
  config.ha.anti_entropy_interval = milliseconds{500};
  config.ha.election = true;
  config.ha.election_heartbeat_interval = milliseconds{100};
  config.ha.election_timeout = milliseconds{400};
  config.ha.election_claim_timeout = milliseconds{60};
  fabric::SdaFabric fabric{sim, config};

  fabric.add_border("b0");
  fabric.add_border("b1");
  std::vector<std::string> edges;
  for (int e = 0; e < 6; ++e) {
    edges.push_back(std::string{"e"} + std::to_string(e));
    fabric.add_edge(edges.back());
    fabric.link(edges.back(), "b0");
    fabric.link(edges.back(), "b1");
  }
  fabric.link("b0", "b1");
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  std::vector<net::Ipv4Address> ips(kDrillFlows + 1);
  for (int i = 0; i < kDrillFlows + 1; ++i) {
    fabric::EndpointDefinition def;
    def.credential = host(i);
    def.secret = "pw";
    def.mac = mac(static_cast<std::uint64_t>(i));
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    if (i < kDrillFlows) {
      fabric.connect_endpoint(
          def.credential, edges[static_cast<std::size_t>(i) % edges.size()], 1,
          [&ips, i](const fabric::OnboardResult& r) { ips[static_cast<std::size_t>(i)] = r.ip; });
    }
  }
  sim.run_until(sim.now() + seconds{1});

  faults::FaultPlane plane{sim, fabric.underlay(), kSeed};
  plane.set_recorder(&fabric.flight_recorder());

  ElectionDrillResult result;
  const sim::SimTime t0 = sim.now();
  fabric.set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime) {
        ++result.delivered;
      });
  const auto flow = [&](int from, int to, sim::Duration start) {
    for (sim::Duration at = start + kSendGap * from / kDrillFlows; at < kDrillRun;
         at += kSendGap) {
      sim.schedule_at(t0 + at, [&, from, to] {
        if (!fabric.endpoint_send_udp(mac(static_cast<std::uint64_t>(from)),
                                      ips[static_cast<std::size_t>(to)], 443, 200)) {
          return;
        }
        ++result.sent;
      });
    }
  };
  for (int i = 0; i < 6; ++i) flow(i, (i + 1) % 6, sim::Duration{0});
  flow(6, 9, kKillAt + milliseconds{600});
  flow(8, 11, kKillAt + milliseconds{600});

  // Kill the leader; it resurrects at kKillAt + kKillFor still on its old
  // term. A late endpoint onboards while the new leader runs the control
  // plane — its registration is acked under the new term.
  plane.server_outage(fabric.map_server_node(0), kKillAt, kKillFor);
  sim.schedule_at(t0 + seconds{4}, [&] {
    fabric.connect_endpoint(host(kDrillFlows), edges[1], 2,
                            [&ips](const fabric::OnboardResult& r) { ips.back() = r.ip; });
  });

  sim.run_until(t0 + kDrillRun + seconds{2});

  const fabric::HaMonitor& ha = *fabric.ha_monitor();
  result.term = ha.epoch();
  result.leader = ha.leader();
  result.elections = ha.counters().elections_started;
  result.stale_rejects = ha.counters().epoch_rejections;
  result.stale_accepts = fabric.stale_epoch_acks_accepted();
  result.min_feed_epoch = ~std::uint64_t{0};
  for (const auto& name : fabric.border_names()) {
    const auto& border = fabric.border(name);
    result.resyncs += border.counters().snapshots_applied;
    result.stale_rejects += border.counters().stale_epoch_rejected;
    result.min_feed_epoch = std::min(result.min_feed_epoch, border.feed_epoch());
  }
  for (const auto& name : edges) {
    result.stale_rejects += fabric.edge(name).counters().stale_epoch_rejected;
  }
  return result;
}

// --- Oscillation drill: flap dampening vs failover churn --------------------
//
// Server 0 oscillates at the miss/ack boundary (down long enough to be
// declared dead, up long enough to pass fail-back hysteresis, three
// times). Without dampening that is three full failover/failback churn
// cycles; with it the penalty crosses the suppress threshold after the
// first flap and the server is held down until the penalty decays.

struct OscillationDrillResult {
  std::uint64_t failovers = 0;
  std::uint64_t failbacks = 0;
  std::uint64_t suppressions = 0;
  bool released = false;  // suppression lifted once the penalty decayed
};

OscillationDrillResult run_oscillation_drill(bool dampening_on) {
  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.seed = kSeed;
  config.routing_servers = 2;
  config.ha.failover = true;
  config.ha.heartbeat_interval = milliseconds{100};
  config.ha.heartbeat_timeout = milliseconds{30};
  config.ha.down_after_misses = 3;
  config.ha.up_after_acks = 4;
  config.ha.dampening = dampening_on;
  config.ha.dampening_penalty = 1000.0;
  config.ha.dampening_suppress = 1500.0;
  config.ha.dampening_reuse = 500.0;
  config.ha.dampening_half_life = seconds{1};
  fabric::SdaFabric fabric{sim, config};

  fabric.add_border("b0");
  fabric.add_border("b1");
  for (int e = 0; e < 4; ++e) {
    const std::string name = std::string{"e"} + std::to_string(e);
    fabric.add_edge(name);
    fabric.link(name, "b0");
    fabric.link(name, "b1");
  }
  fabric.link("b0", "b1");
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  sim.run_until(sim.now() + milliseconds{500});

  faults::FaultPlane plane{sim, fabric.underlay(), kSeed};
  plane.server_oscillation(fabric.map_server_node(0), milliseconds{100},
                           /*down_for=*/milliseconds{400}, /*up_for=*/milliseconds{600},
                           /*cycles=*/3);
  sim.run_until(sim.now() + seconds{8});  // oscillation + penalty decay

  OscillationDrillResult result;
  const fabric::HaMonitor& ha = *fabric.ha_monitor();
  result.failovers = ha.counters().failovers;
  result.failbacks = ha.counters().failbacks;
  result.suppressions = ha.counters().suppressions;
  result.released = !ha.suppressed(0) && ha.server_up(0);
  return result;
}

// --- Quorum drill: minority partition must elect NO leader ------------------
//
// Three routing servers (one per border) with quorum elections on. Border
// b2 — hosting replica 2 — is partitioned off: the minority side loses the
// leader's asserts, opens term after term, and every candidacy must stall
// leaderless (no majority reachable) while the two-node majority keeps
// leader 0 and serves onboards normally. On heal the minority's inflated
// term forces one quorate re-election and the cluster reconverges.

struct QuorumDrillResult {
  std::uint64_t stalls = 0;
  std::uint64_t minority_led_samples = 0;  // minority believed it led (must be 0)
  std::uint64_t minority_wins = 0;         // breach-audit counter (must be 0)
  long long mid_leader = -2;               // majority consensus mid-partition
  long long final_leader = -2;
  std::uint64_t term = 0;
  bool quorum_dipped = false;    // the quorum gauge went 0 during the partition
  bool quorum_held_at_end = false;
  bool onboard_ok = false;
  std::uint64_t stale_accepts = 0;
  bool invariant_pass = false;  // no-minority-leader at quiesce
};

long long leader_as_int(std::size_t leader) {
  return leader == fabric::HaMonitor::kNoLeader ? -1 : static_cast<long long>(leader);
}

QuorumDrillResult run_quorum_drill() {
  constexpr auto kPartitionAt = seconds{2};
  constexpr auto kPartitionFor = seconds{3};
  constexpr auto kDrillRun = seconds{9};

  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.seed = kSeed;
  config.routing_servers = 3;
  config.map_request_retries = 8;
  config.map_register_retries = 10;
  config.ha.failover = true;
  config.ha.heartbeat_interval = milliseconds{100};
  config.ha.heartbeat_timeout = milliseconds{30};
  config.ha.down_after_misses = 3;
  config.ha.up_after_acks = 4;
  config.ha.anti_entropy_interval = milliseconds{500};
  config.ha.election = true;
  config.ha.election_heartbeat_interval = milliseconds{100};
  config.ha.election_timeout = milliseconds{400};
  config.ha.election_claim_timeout = milliseconds{60};
  config.ha.election_quorum = true;
  fabric::SdaFabric fabric{sim, config};

  fabric.add_border("b0");
  fabric.add_border("b1");
  fabric.add_border("b2");
  std::vector<std::string> edges;
  for (int e = 0; e < 6; ++e) {
    edges.push_back(std::string{"e"} + std::to_string(e));
    fabric.add_edge(edges.back());
    fabric.link(edges.back(), "b0");
    fabric.link(edges.back(), "b1");
    fabric.link(edges.back(), "b2");
  }
  fabric.link("b0", "b1");
  fabric.link("b1", "b2");
  fabric.link("b0", "b2");
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  for (int i = 0; i < 7; ++i) {
    fabric::EndpointDefinition def;
    def.credential = host(i);
    def.secret = "pw";
    def.mac = mac(static_cast<std::uint64_t>(i));
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    if (i < 6) {
      fabric.connect_endpoint(def.credential, edges[static_cast<std::size_t>(i)], 1,
                              [](const fabric::OnboardResult&) {});
    }
  }
  sim.run_until(sim.now() + seconds{1});

  faults::FaultPlane plane{sim, fabric.underlay(), kSeed};
  plane.set_recorder(&fabric.flight_recorder());

  const sim::SimTime t0 = sim.now();
  // Partition replica 2's hosting border: the one-node minority side.
  const auto minority_node =
      fabric.underlay().topology().node_by_loopback(fabric.border("b2").rloc());
  plane.partition_node(*minority_node, kPartitionAt, kPartitionFor);

  QuorumDrillResult result;
  const fabric::HaMonitor& ha = *fabric.ha_monitor();
  // Sample the minority's self-belief through the partition window: with
  // quorum elections it must never assert leadership, and the quorum gauge
  // must dip while its candidacies stall.
  for (auto at = kPartitionAt + milliseconds{50}; at < kPartitionAt + kPartitionFor;
       at += milliseconds{100}) {
    sim.schedule_at(t0 + at, [&] {
      if (ha.node_believes_leader(2)) ++result.minority_led_samples;
      if (ha.quorum_lost()) result.quorum_dipped = true;
    });
  }
  sim.schedule_at(t0 + kPartitionAt + milliseconds{2500},
                  [&] { result.mid_leader = leader_as_int(ha.leader()); });
  // The majority keeps serving: an onboard mid-partition completes normally.
  sim.schedule_at(t0 + kPartitionAt + milliseconds{1500}, [&] {
    fabric.connect_endpoint(host(6), edges[1], 2,
                            [&result](const fabric::OnboardResult&) { result.onboard_ok = true; });
  });

  sim.run_until(t0 + kDrillRun);

  result.stalls = ha.counters().quorum_stalls;
  result.minority_wins = ha.counters().minority_leaders;
  result.final_leader = leader_as_int(ha.leader());
  result.term = ha.epoch();
  result.quorum_held_at_end = !ha.quorum_lost();
  result.stale_accepts = fabric.stale_epoch_acks_accepted();
  for (const auto& v : fabric.telemetry().assurance.evaluate_invariants()) {
    if (v.name == "no-minority-leader") result.invariant_pass = v.pass;
  }
  return result;
}

// --- Catch-up drill: log replay vs snapshot resync --------------------------
//
// Two routing servers; replica 1 reboots (database preserved) for 2s while
// a dozen endpoints onboard — a lag only anti-entropy can repair. Three
// arms by catchup_log_capacity: a roomy log repairs by delta replay (far
// fewer control bytes than a table exchange), capacity 0 is the legacy
// snapshot-only path, and a log smaller than the missed delta has its
// horizon passed and must fall back to the snapshot exchange.

struct CatchupDrillResult {
  std::size_t capacity = 0;
  std::uint64_t replays = 0;
  std::uint64_t entries = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t replay_bytes = 0;
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t catchup_n = 0;  // assurance.catchup_convergence_us samples
  bool converged = false;
};

CatchupDrillResult run_catchup_drill(std::size_t log_capacity) {
  constexpr int kBaseline = 40;
  constexpr int kDelta = 12;
  constexpr auto kOutageAt = seconds{2};
  constexpr auto kOutageFor = seconds{2};
  constexpr auto kDrillRun = seconds{8};

  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.seed = kSeed;
  config.routing_servers = 2;
  config.map_register_retries = 10;
  config.causal_tracing = true;  // populates assurance.catchup_convergence_us
  config.ha.failover = true;
  config.ha.heartbeat_interval = milliseconds{100};
  config.ha.heartbeat_timeout = milliseconds{30};
  config.ha.down_after_misses = 3;
  config.ha.up_after_acks = 4;
  config.ha.anti_entropy_interval = milliseconds{500};
  config.ha.catchup_log_capacity = log_capacity;
  fabric::SdaFabric fabric{sim, config};

  fabric.add_border("b0");
  fabric.add_border("b1");
  std::vector<std::string> edges;
  for (int e = 0; e < 4; ++e) {
    edges.push_back(std::string{"e"} + std::to_string(e));
    fabric.add_edge(edges.back());
    fabric.link(edges.back(), "b0");
    fabric.link(edges.back(), "b1");
  }
  fabric.link("b0", "b1");
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  for (int i = 0; i < kBaseline + kDelta; ++i) {
    fabric::EndpointDefinition def;
    def.credential = host(i);
    def.secret = "pw";
    def.mac = mac(static_cast<std::uint64_t>(i));
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    if (i < kBaseline) {
      fabric.connect_endpoint(def.credential, edges[static_cast<std::size_t>(i) % edges.size()],
                              1, [](const fabric::OnboardResult&) {});
    }
  }
  // Baseline settles and at least one anti-entropy round records the
  // replica as caught up with the leader's log position.
  sim.run_until(sim.now() + seconds{1});

  faults::FaultPlane plane{sim, fabric.underlay(), kSeed};
  plane.set_recorder(&fabric.flight_recorder());

  const sim::SimTime t0 = sim.now();
  const fabric::HaMonitor& ha = *fabric.ha_monitor();
  plane.server_outage(fabric.map_server_node(1), kOutageAt, kOutageFor);
  // Counters at outage start: the drill reports outage-repair deltas so
  // baseline-propagation noise cannot pollute the traffic comparison.
  auto before = std::make_shared<fabric::HaMonitor::Counters>();
  sim.schedule_at(t0 + kOutageAt, [&ha, before] { *before = ha.counters(); });
  // The delta the rebooting replica misses.
  sim.schedule_at(t0 + kOutageAt + milliseconds{300}, [&] {
    for (int i = kBaseline; i < kBaseline + kDelta; ++i) {
      fabric.connect_endpoint(host(i), edges[static_cast<std::size_t>(i) % edges.size()], 2,
                              [](const fabric::OnboardResult&) {});
    }
  });

  sim.run_until(t0 + kDrillRun);

  const fabric::HaMonitor::Counters& after = ha.counters();
  CatchupDrillResult result;
  result.capacity = log_capacity;
  result.replays = after.catchup_replays - before->catchup_replays;
  result.entries = after.catchup_entries_replayed - before->catchup_entries_replayed;
  result.fallbacks = after.catchup_snapshot_fallbacks - before->catchup_snapshot_fallbacks;
  result.replay_bytes = after.catchup_replay_bytes - before->catchup_replay_bytes;
  result.snapshot_bytes = after.snapshot_bytes - before->snapshot_bytes;
  const telemetry::Snapshot snap = fabric.telemetry().metrics.snapshot();
  const auto it = snap.histograms.find("assurance.catchup_convergence_us");
  result.catchup_n = it == snap.histograms.end() ? 0 : it->second.total;
  result.converged = ha.last_divergence() == 0;
  return result;
}

// --- Stampede drill: post-election admission ramp sheds the re-register rush

struct StampedeDrillResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t ramp_sheds = 0;
  std::uint64_t sheds = 0;
  std::size_t peak_backlog = 0;
  std::size_t limit = 0;
  int onboards_done = 0;
  int onboards_asked = 0;
  std::size_t parked = 0;
  long long leader = -2;
  bool ramp_ended = false;

  [[nodiscard]] double fraction() const {
    return sent ? static_cast<double>(delivered) / static_cast<double>(sent) : 1.0;
  }
};

StampedeDrillResult run_stampede_drill() {
  constexpr int kWarm = 6;
  constexpr int kBurst = 16;
  constexpr auto kKillAt = seconds{2};
  constexpr auto kKillFor = seconds{4};  // dead through the whole stampede
  constexpr auto kDrillRun = seconds{10};

  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.seed = kSeed;
  config.routing_servers = 2;
  config.map_request_retries = 8;
  config.map_register_retries = 10;
  // Slow registers + a tight admission bound make the burst visible: the
  // just-elected leader must shed, not queue, the re-registration rush.
  config.map_server.register_service = milliseconds{20};
  config.map_server.admission_limit = 4;
  config.map_server.shed_retry_after = milliseconds{100};
  config.ha.failover = true;
  config.ha.heartbeat_interval = milliseconds{100};
  config.ha.heartbeat_timeout = milliseconds{30};
  config.ha.down_after_misses = 3;
  config.ha.up_after_acks = 4;
  config.ha.anti_entropy_interval = milliseconds{500};
  config.ha.election = true;
  config.ha.election_heartbeat_interval = milliseconds{100};
  config.ha.election_timeout = milliseconds{400};
  config.ha.election_claim_timeout = milliseconds{60};
  config.ha.post_election_ramp = seconds{2};
  fabric::SdaFabric fabric{sim, config};

  fabric.add_border("b0");
  fabric.add_border("b1");
  std::vector<std::string> edges;
  for (int e = 0; e < 6; ++e) {
    edges.push_back(std::string{"e"} + std::to_string(e));
    fabric.add_edge(edges.back());
    fabric.link(edges.back(), "b0");
    fabric.link(edges.back(), "b1");
  }
  fabric.link("b0", "b1");
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  std::vector<net::Ipv4Address> ips(kWarm);
  for (int i = 0; i < kWarm + kBurst; ++i) {
    fabric::EndpointDefinition def;
    def.credential = host(i);
    def.secret = "pw";
    def.mac = mac(static_cast<std::uint64_t>(i));
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    if (i < kWarm) {
      // Staggered so the bounded admission queue never sheds the warm-up.
      sim.schedule_at(sim.now() + milliseconds{80} * i, [&fabric, &ips, &edges, i] {
        fabric.connect_endpoint(
            host(i), edges[static_cast<std::size_t>(i)], 1,
            [&ips, i](const fabric::OnboardResult& r) { ips[static_cast<std::size_t>(i)] = r.ip; });
      });
    }
  }
  sim.run_until(sim.now() + seconds{1});

  faults::FaultPlane plane{sim, fabric.underlay(), kSeed};
  plane.set_recorder(&fabric.flight_recorder());

  StampedeDrillResult result;
  result.onboards_asked = kBurst;
  result.limit = config.map_server.admission_limit;
  const sim::SimTime t0 = sim.now();
  fabric.set_delivery_listener(
      [&](const dataplane::AttachedEndpoint&, const net::OverlayFrame&, sim::SimTime) {
        ++result.delivered;
      });
  // Background traffic across the failover so a stampede mishap (a parked
  // frame leak, a starved resolution) would surface in the data plane.
  for (int i = 0; i < kWarm; ++i) {
    const auto peer = static_cast<std::size_t>((i + 1) % kWarm);
    for (sim::Duration at = kSendGap * i / kWarm; at < kDrillRun; at += kSendGap) {
      sim.schedule_at(t0 + at, [&, i, peer] {
        if (ips[peer].is_unspecified()) return;
        if (!fabric.endpoint_send_udp(mac(static_cast<std::uint64_t>(i)), ips[peer], 443, 200)) {
          return;
        }
        ++result.sent;
      });
    }
  }

  // Kill the leader; the replica wins the term and opens its ramp window.
  plane.server_outage(fabric.map_server_node(0), kKillAt, kKillFor);
  // The stampede: a burst of onboards lands mid-ramp on the fresh leader.
  sim.schedule_at(t0 + kKillAt + milliseconds{1500}, [&] {
    for (int i = kWarm; i < kWarm + kBurst; ++i) {
      fabric.connect_endpoint(host(i), edges[static_cast<std::size_t>(i) % edges.size()], 2,
                              [&result](const fabric::OnboardResult&) { ++result.onboards_done; });
    }
  });

  sim.run_until(t0 + kDrillRun + seconds{2});

  const lisp::MapServerNode& fresh = fabric.map_server_node(1);
  result.ramp_sheds = fresh.ramp_shed_submissions();
  result.sheds = fresh.shed_submissions();
  result.peak_backlog = fresh.peak_backlog();
  for (const auto& name : edges) result.parked += fabric.edge(name).parked_frame_count();
  result.leader = leader_as_int(fabric.ha_monitor()->leader());
  result.ramp_ended = !fresh.ramp_active();
  return result;
}

// --- Assurance drill: the causal tracer + assurance engine end to end -------
//
// The election-drill fabric with causal tracing on: onboards open Register
// operations, mid-run roams open Move and SmrFanout operations, and the
// leader kill opens a FailoverRehome operation — so one run populates all
// four assurance.* convergence histograms. At quiesce the engine audits the
// continuous invariants (epoch fencing, replica convergence, packet/trace
// leaks, pub/sub gap resolution) and the convergence SLOs. The breach mode
// re-runs with an artificial 100ms SMR delay to prove a violated SLO is
// actually caught, not vacuously green.

struct AssureDrillResult {
  std::uint64_t register_n = 0;
  std::uint64_t move_n = 0;
  std::uint64_t rehome_n = 0;
  std::uint64_t smr_n = 0;
  std::size_t open_ops = 0;
  std::uint64_t abandoned = 0;
  std::vector<telemetry::Verdict> invariants;
  std::vector<telemetry::Verdict> slos;
};

AssureDrillResult run_assurance_drill(bool breach) {
  constexpr int kDrillFlows = 12;
  constexpr auto kDrillRun = seconds{9};
  constexpr auto kKillAt = seconds{2};
  constexpr auto kKillFor = seconds{3};

  sim::Simulator sim;
  fabric::FabricConfig config;
  config.l2_gateway = false;
  config.seed = kSeed;
  config.routing_servers = 2;
  config.default_route_fallback = false;
  config.pending_packet_limit = 8;
  config.map_request_retries = 8;
  config.map_register_retries = 10;
  config.ha.failover = true;
  config.ha.heartbeat_interval = milliseconds{100};
  config.ha.heartbeat_timeout = milliseconds{30};
  config.ha.down_after_misses = 3;
  config.ha.up_after_acks = 4;
  config.ha.anti_entropy_interval = milliseconds{500};
  config.ha.election = true;
  config.ha.election_heartbeat_interval = milliseconds{100};
  config.ha.election_timeout = milliseconds{400};
  config.ha.election_claim_timeout = milliseconds{60};
  config.causal_tracing = true;
  if (breach) config.smr_debug_delay = milliseconds{100};
  fabric::SdaFabric fabric{sim, config};

  fabric.add_border("b0");
  fabric.add_border("b1");
  std::vector<std::string> edges;
  for (int e = 0; e < 6; ++e) {
    edges.push_back(std::string{"e"} + std::to_string(e));
    fabric.add_edge(edges.back());
    fabric.link(edges.back(), "b0");
    fabric.link(edges.back(), "b1");
  }
  fabric.link("b0", "b1");
  fabric.finalize();
  fabric.define_vn({kVn, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});

  // Convergence SLOs. require_samples=true makes an unpopulated histogram a
  // failure — the gate cannot go green because tracing silently broke.
  telemetry::AssuranceEngine& assurance = fabric.telemetry().assurance;
  assurance.add_slo({"smr-fanout-p95", "assurance.smr_fanout_us", 0.95, 20'000.0, true});
  assurance.add_slo(
      {"move-convergence-p95", "assurance.move_convergence_us", 0.95, 300'000.0, true});
  assurance.add_slo({"register-rtt-p95", "assurance.register_rtt_us", 0.95, 250'000.0, true});
  assurance.add_slo(
      {"failover-rehome-p95", "assurance.failover_rehome_us", 0.95, 400'000.0, true});

  std::vector<net::Ipv4Address> ips(kDrillFlows + 1);
  for (int i = 0; i < kDrillFlows + 1; ++i) {
    fabric::EndpointDefinition def;
    def.credential = host(i);
    def.secret = "pw";
    def.mac = mac(static_cast<std::uint64_t>(i));
    def.vn = kVn;
    def.group = net::GroupId{10};
    fabric.provision_endpoint(def);
    if (i < kDrillFlows) {
      fabric.connect_endpoint(
          def.credential, edges[static_cast<std::size_t>(i) % edges.size()], 1,
          [&ips, i](const fabric::OnboardResult& r) { ips[static_cast<std::size_t>(i)] = r.ip; });
    }
  }
  sim.run_until(sim.now() + seconds{1});

  faults::FaultPlane plane{sim, fabric.underlay(), kSeed};
  plane.set_recorder(&fabric.flight_recorder());

  const sim::SimTime t0 = sim.now();
  const auto flow = [&](int from, int to, sim::Duration start) {
    for (sim::Duration at = start + kSendGap * from / kDrillFlows; at < kDrillRun;
         at += kSendGap) {
      sim.schedule_at(t0 + at, [&, from, to] {
        fabric.endpoint_send_udp(mac(static_cast<std::uint64_t>(from)),
                                 ips[static_cast<std::size_t>(to)], 443, 200);
      });
    }
  };
  for (int i = 0; i < 6; ++i) flow(i, (i + 1) % 6, sim::Duration{0});

  // Roams bracket the outage (clean SMR timing on both sides of the kill —
  // the old edge re-solicits once more ~1s after the roam, and that second
  // SMR must also resolve before/after the kill window, not inside it):
  // h1's peer h0 holds a stale cache entry each time and must be SMR'd.
  sim.schedule_at(t0 + milliseconds{500}, [&] { fabric.roam_endpoint(mac(1), edges[4], 3); });
  sim.schedule_at(t0 + milliseconds{6500}, [&] { fabric.roam_endpoint(mac(3), edges[5], 3); });

  // Kill the elected leader: the replica's watchdog opens a new term and
  // the borders re-home onto it (the FailoverRehome operation). A late
  // endpoint registers under the new leader mid-outage.
  plane.server_outage(fabric.map_server_node(0), kKillAt, kKillFor);
  sim.schedule_at(t0 + seconds{4}, [&] {
    fabric.connect_endpoint(host(kDrillFlows), edges[1], 2,
                            [&ips](const fabric::OnboardResult& r) { ips.back() = r.ip; });
  });

  sim.run_until(t0 + kDrillRun + seconds{3});  // quiesce: every op must resolve

  AssureDrillResult result;
  const telemetry::Snapshot snap = fabric.telemetry().metrics.snapshot();
  const auto hist_n = [&snap](const char* name) -> std::uint64_t {
    const auto it = snap.histograms.find(name);
    return it == snap.histograms.end() ? 0 : it->second.total;
  };
  result.register_n = hist_n("assurance.register_rtt_us");
  result.move_n = hist_n("assurance.move_convergence_us");
  result.rehome_n = hist_n("assurance.failover_rehome_us");
  result.smr_n = hist_n("assurance.smr_fanout_us");
  result.open_ops = fabric.telemetry().causal.open_count();
  result.abandoned = fabric.telemetry().causal.abandoned_count();
  result.invariants = assurance.evaluate_invariants();
  result.slos = assurance.evaluate_slos(snap);

  if (!breach) {
    // The span trees of the faithful run are the Chrome-trace artifact
    // (chrome://tracing / Perfetto); the breach run is diagnostics only.
    if (const auto dir = bench::results_dir()) {
      if (fabric.telemetry().causal.write_chrome_trace(*dir, "assurance_causal_trace")) {
        std::printf("chrome trace written to %s/assurance_causal_trace.json\n", dir->c_str());
      }
    }
  }
  return result;
}

void print_assure_lines(const char* mode, const AssureDrillResult& r) {
  std::printf(
      "assure mode=%s register_n=%llu move_n=%llu rehome_n=%llu smr_n=%llu "
      "open_ops=%llu abandoned=%llu\n",
      mode, static_cast<unsigned long long>(r.register_n),
      static_cast<unsigned long long>(r.move_n),
      static_cast<unsigned long long>(r.rehome_n),
      static_cast<unsigned long long>(r.smr_n),
      static_cast<unsigned long long>(r.open_ops),
      static_cast<unsigned long long>(r.abandoned));
  for (const auto& v : r.invariants) {
    std::printf("averdict mode=%s name=%s pass=%d detail=%s\n", mode, v.name.c_str(),
                v.pass ? 1 : 0, v.detail.c_str());
  }
  for (const auto& v : r.slos) {
    std::printf("aslo mode=%s name=%s pass=%d detail=%s\n", mode, v.name.c_str(),
                v.pass ? 1 : 0, v.detail.c_str());
  }
}

void print_drill_line(const char* mode, const DrillResult& r) {
  std::printf(
      "drill ha=%s sent=%llu delivered=%llu fraction=%.4f reconv_ms=%.0f "
      "failovers=%llu failbacks=%llu anti_entropy_repairs=%llu rq_retries=%llu\n",
      mode, static_cast<unsigned long long>(r.sent),
      static_cast<unsigned long long>(r.delivered), r.fraction(), r.reconvergence_ms,
      static_cast<unsigned long long>(r.failovers),
      static_cast<unsigned long long>(r.failbacks),
      static_cast<unsigned long long>(r.anti_entropy_repairs),
      static_cast<unsigned long long>(r.request_retries));
}

void print_election_drill_line(const ElectionDrillResult& r) {
  std::printf(
      "edrill term=%llu leader=%llu elections=%llu resyncs=%llu stale_rejects=%llu "
      "stale_accepts=%llu min_feed_epoch=%llu fraction=%.4f\n",
      static_cast<unsigned long long>(r.term), static_cast<unsigned long long>(r.leader),
      static_cast<unsigned long long>(r.elections),
      static_cast<unsigned long long>(r.resyncs),
      static_cast<unsigned long long>(r.stale_rejects),
      static_cast<unsigned long long>(r.stale_accepts),
      static_cast<unsigned long long>(r.min_feed_epoch), r.fraction());
}

void print_oscillation_drill_line(const char* mode, const OscillationDrillResult& r) {
  std::printf(
      "odrill dampening=%s failovers=%llu failbacks=%llu suppressions=%llu released=%d\n",
      mode, static_cast<unsigned long long>(r.failovers),
      static_cast<unsigned long long>(r.failbacks),
      static_cast<unsigned long long>(r.suppressions), r.released ? 1 : 0);
}

void print_quorum_drill_line(const QuorumDrillResult& r) {
  std::printf(
      "qdrill stalls=%llu minority_led=%llu minority_wins=%llu mid_leader=%lld "
      "final_leader=%lld term=%llu quorum_dipped=%d quorum_held=%d onboard_ok=%d "
      "stale_accepts=%llu invariant=%d\n",
      static_cast<unsigned long long>(r.stalls),
      static_cast<unsigned long long>(r.minority_led_samples),
      static_cast<unsigned long long>(r.minority_wins), r.mid_leader, r.final_leader,
      static_cast<unsigned long long>(r.term), r.quorum_dipped ? 1 : 0,
      r.quorum_held_at_end ? 1 : 0, r.onboard_ok ? 1 : 0,
      static_cast<unsigned long long>(r.stale_accepts), r.invariant_pass ? 1 : 0);
}

void print_catchup_drill_line(const char* arm, const CatchupDrillResult& r) {
  std::printf(
      "cdrill arm=%s capacity=%llu replays=%llu entries=%llu fallbacks=%llu "
      "replay_bytes=%llu snapshot_bytes=%llu catchup_n=%llu converged=%d\n",
      arm, static_cast<unsigned long long>(r.capacity),
      static_cast<unsigned long long>(r.replays),
      static_cast<unsigned long long>(r.entries),
      static_cast<unsigned long long>(r.fallbacks),
      static_cast<unsigned long long>(r.replay_bytes),
      static_cast<unsigned long long>(r.snapshot_bytes),
      static_cast<unsigned long long>(r.catchup_n), r.converged ? 1 : 0);
}

// --- Sharded chaos drill --------------------------------------------------
// The parallel-core counterpart of the fault-storm runs above: a 4-lane
// LaneFabric with in-transit drops, executed at 1, 2 and 4 workers. Every
// arm must produce the same flight-log digest, the same drop count, and
// zero late cross-shard posts — the determinism contract under both
// concurrency and faults. This is also the workload the TSan leg of
// scripts/check_sanitized.sh runs, so the drill doubles as the race
// detector's target.
struct ShardedDrillResult {
  std::size_t workers = 0;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t cross = 0;
  std::uint64_t drops = 0;
  std::uint64_t late = 0;
  std::uint64_t digest = 0;
};

ShardedDrillResult run_sharded_drill(std::size_t workers) {
  fabric::LaneFabricConfig cfg;
  cfg.lanes = 4;
  cfg.workers = workers;
  cfg.edges_per_lane = 64;
  cfg.hops_per_packet = 64;
  cfg.packets_per_edge = 1;
  cfg.cross_lane_fraction = 0.25;
  cfg.fault_drop_per_million = 20'000;  // 2% of hops dropped in transit
  cfg.seed = kSeed;
  fabric::LaneFabric lane_fabric(cfg);
  lane_fabric.run();
  ShardedDrillResult r;
  r.workers = workers;
  r.events = lane_fabric.events_executed();
  r.delivered = lane_fabric.hops_delivered();
  r.cross = lane_fabric.cross_lane_posts();
  r.drops = lane_fabric.fault_drops();
  r.late = lane_fabric.late_posts();
  r.digest = lane_fabric.log_digest();
  return r;
}

void print_sharded_drill_line(const ShardedDrillResult& r, bool deterministic) {
  std::printf(
      "sharded-drill workers=%zu events=%llu delivered=%llu cross=%llu drops=%llu "
      "late=%llu digest=%016llx deterministic=%d\n",
      r.workers, static_cast<unsigned long long>(r.events),
      static_cast<unsigned long long>(r.delivered),
      static_cast<unsigned long long>(r.cross),
      static_cast<unsigned long long>(r.drops),
      static_cast<unsigned long long>(r.late),
      static_cast<unsigned long long>(r.digest), deterministic ? 1 : 0);
}

void print_stampede_drill_line(const StampedeDrillResult& r) {
  std::printf(
      "sdrill ramp_sheds=%llu sheds=%llu peak=%llu limit=%llu onboards=%d asked=%d "
      "parked=%llu leader=%lld ramp_ended=%d fraction=%.4f\n",
      static_cast<unsigned long long>(r.ramp_sheds),
      static_cast<unsigned long long>(r.sheds),
      static_cast<unsigned long long>(r.peak_backlog),
      static_cast<unsigned long long>(r.limit), r.onboards_done, r.onboards_asked,
      static_cast<unsigned long long>(r.parked), r.leader, r.ramp_ended ? 1 : 0,
      r.fraction());
}

}  // namespace

int main(int argc, char** argv) {
  const bool assure_only = argc > 1 && std::strcmp(argv[1], "--assure") == 0;
  if (assure_only) {
    // Machine-parseable mode for scripts/check_assurance.sh: the causal-
    // tracing drill (all four convergence histograms + invariant audit),
    // then the same drill with a deliberately slowed SMR path to prove the
    // smr-fanout SLO breach is caught.
    print_assure_lines("normal", run_assurance_drill(false));
    print_assure_lines("breach", run_assurance_drill(true));
    return 0;
  }
  const bool sharded_only = argc > 1 && std::strcmp(argv[1], "--sharded-drill") == 0;
  if (sharded_only) {
    // Machine-parseable mode for the TSan leg of scripts/check_sanitized.sh:
    // the sharded fault drill at each worker count, with a digest-equality
    // verdict on every line.
    const ShardedDrillResult w1 = run_sharded_drill(1);
    const ShardedDrillResult w2 = run_sharded_drill(2);
    const ShardedDrillResult w4 = run_sharded_drill(4);
    const bool deterministic = w1.digest == w2.digest && w1.digest == w4.digest;
    print_sharded_drill_line(w1, deterministic);
    print_sharded_drill_line(w2, deterministic);
    print_sharded_drill_line(w4, deterministic);
    return deterministic && w1.late == 0 && w2.late == 0 && w4.late == 0 ? 0 : 1;
  }
  const bool drill_only = argc > 1 && std::strcmp(argv[1], "--drill") == 0;
  if (drill_only) {
    // Machine-parseable mode for scripts/check_failover.sh: the server-kill
    // drill with and without the HA layer, then the leader-election and
    // flap-dampening drills, nothing else.
    print_drill_line("on", run_drill(true));
    print_drill_line("off", run_drill(false));
    print_election_drill_line(run_election_drill());
    print_oscillation_drill_line("on", run_oscillation_drill(true));
    print_oscillation_drill_line("off", run_oscillation_drill(false));
    print_quorum_drill_line(run_quorum_drill());
    // Catch-up arms: a roomy log (delta replay), no log (snapshot-only
    // legacy path), and a log smaller than the missed delta (horizon passed
    // -> snapshot fallback).
    print_catchup_drill_line("log", run_catchup_drill(4096));
    print_catchup_drill_line("snap", run_catchup_drill(0));
    print_catchup_drill_line("horizon", run_catchup_drill(8));
    print_stampede_drill_line(run_stampede_drill());
    return 0;
  }
  std::printf("=== Chaos convergence: delivered traffic under a seeded fault storm ===\n");
  std::printf("%d flows at 200 Hz for 10s; storm in [2s, 6s): control/data loss,\n", kFlows);
  std::printf("4-link flap storm, 1.5s routing-server outage, border feed cut+resync.\n");
  std::printf("re-convergence = last lossy 100ms bucket, measured from storm end.\n\n");

  stats::Table table{{"control loss", "data loss", "sent", "delivered", "fraction",
                      "reconv (ms)", "ctl drops", "rq retries", "reg retries",
                      "feed lost", "snapshots"}};
  std::vector<std::pair<double, double>> reference_series;
  for (const double loss : {0.0, 0.1, 0.2, 0.3}) {
    // The 20%-loss run is the reference: its series goes to CSV and its
    // telemetry snapshot + fault/event timeline are exported.
    const ChaosResult r = run(loss, 0.02, /*export_telemetry=*/loss == 0.2);
    if (loss == 0.2) reference_series = r.fraction_series;
    table.add_row({stats::Table::num(100.0 * loss, 0) + " %", "2 %",
                   stats::Table::num(std::size_t{r.sent}),
                   stats::Table::num(std::size_t{r.delivered}),
                   stats::Table::num(r.fraction(), 4),
                   r.reconvergence_ms < 0 ? "none" : stats::Table::num(r.reconvergence_ms, 0),
                   stats::Table::num(std::size_t{r.control_drops}),
                   stats::Table::num(std::size_t{r.request_retries}),
                   stats::Table::num(std::size_t{r.register_retries}),
                   stats::Table::num(std::size_t{r.feed_dropped}),
                   stats::Table::num(std::size_t{r.snapshots})});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("takeaway: data-plane loss bounds the in-storm fraction; the control-plane\n");
  std::printf("hardening (backoff retransmits, reliable registers, feed resync) keeps the\n");
  std::printf("post-storm fraction at 1.0 — nothing stays blackholed once faults clear.\n\n");

  bench::write_timeseries("chaos_delivered_fraction", {"delivered_fraction"},
                          bench::rows_from_series(reference_series), kSeed);

  std::printf("=== HA drill: 3s routing-server kill + mid-outage cold flows ===\n");
  std::printf("2 routing servers, border default route off; with HA the heartbeat\n");
  std::printf("monitor fails edges over to the replica, anti-entropy repairs the\n");
  std::printf("primary's missed registrations after it returns.\n\n");
  stats::Table drill_table{{"ha", "sent", "delivered", "fraction", "reconv (ms)",
                            "failovers", "failbacks", "ae repairs", "rq retries"}};
  for (const bool ha_on : {true, false}) {
    const DrillResult d = run_drill(ha_on);
    drill_table.add_row(
        {ha_on ? "on" : "off", stats::Table::num(std::size_t{d.sent}),
         stats::Table::num(std::size_t{d.delivered}), stats::Table::num(d.fraction(), 4),
         d.reconvergence_ms < 0 ? "none" : stats::Table::num(d.reconvergence_ms, 0),
         stats::Table::num(std::size_t{d.failovers}),
         stats::Table::num(std::size_t{d.failbacks}),
         stats::Table::num(std::size_t{d.anti_entropy_repairs}),
         stats::Table::num(std::size_t{d.request_retries})});
  }
  std::printf("%s\n", drill_table.render().c_str());
  std::printf("takeaway: without failover, flows homed on the dead server blackhole\n");
  std::printf("until it returns; with HA the same kill costs a sub-second blip and the\n");
  std::printf("replica divergence is repaired by anti-entropy instead of staying stale.\n\n");

  std::printf("=== Election drill: leader killed, resurrected stale ===\n");
  const ElectionDrillResult e = run_election_drill();
  std::printf(
      "term %llu, leader %llu after the kill; %llu border snapshot resyncs re-homed the\n"
      "feed; %llu stale-epoch messages fenced, %llu accepted; delivered fraction %.4f.\n\n",
      static_cast<unsigned long long>(e.term), static_cast<unsigned long long>(e.leader),
      static_cast<unsigned long long>(e.resyncs),
      static_cast<unsigned long long>(e.stale_rejects),
      static_cast<unsigned long long>(e.stale_accepts), e.fraction());

  std::printf("=== Oscillation drill: 3 down/up cycles on server 0 ===\n");
  const OscillationDrillResult damped = run_oscillation_drill(true);
  const OscillationDrillResult churn = run_oscillation_drill(false);
  std::printf(
      "dampening off: %llu failovers, %llu failbacks (full churn every cycle).\n"
      "dampening on:  %llu failover, %llu suppression%s; server released after decay: %s.\n",
      static_cast<unsigned long long>(churn.failovers),
      static_cast<unsigned long long>(churn.failbacks),
      static_cast<unsigned long long>(damped.failovers),
      static_cast<unsigned long long>(damped.suppressions),
      damped.suppressions == 1 ? "" : "s", damped.released ? "yes" : "no");

  std::printf("\n=== Assurance drill: causal tracing + invariant audit ===\n");
  const AssureDrillResult a = run_assurance_drill(false);
  std::printf(
      "operations traced: %llu registrations, %llu moves, %llu re-homes, %llu SMR\n"
      "fan-outs; %llu open at quiesce, %llu abandoned.\n",
      static_cast<unsigned long long>(a.register_n),
      static_cast<unsigned long long>(a.move_n),
      static_cast<unsigned long long>(a.rehome_n),
      static_cast<unsigned long long>(a.smr_n),
      static_cast<unsigned long long>(a.open_ops),
      static_cast<unsigned long long>(a.abandoned));
  for (const auto& v : a.invariants) {
    std::printf("  [%s] %s: %s\n", v.pass ? "PASS" : "FAIL", v.name.c_str(),
                v.detail.c_str());
  }
  for (const auto& v : a.slos) {
    std::printf("  [%s] %s: %s\n", v.pass ? "PASS" : "FAIL", v.name.c_str(),
                v.detail.c_str());
  }
  return 0;
}
