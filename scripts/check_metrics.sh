#!/usr/bin/env bash
# Validate the telemetry JSON export schema end to end.
#
#   scripts/check_metrics.sh [path/to/bench_micro]
#
# Runs bench_micro's telemetry schema probe (the timing loops are skipped
# via --benchmark_filter) with SDA_RESULTS_DIR pointed at a tmpdir, then
# checks that:
#   * both snapshots parse as JSON with the counters/gauges/histograms shape;
#   * the expected hierarchical metric names are present;
#   * every histogram carries a consistent bucket layout (total = counts
#     + under/overflow);
#   * counters are monotonic between the first and second snapshot;
#   * the Prometheus rendering exists and exposes sda_-prefixed metrics.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-build/bench/bench_micro}"
if [[ ! -x "$BENCH" ]]; then
  echo "check_metrics: bench_micro binary not found at $BENCH" >&2
  exit 1
fi

TMPDIR_RESULTS="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_RESULTS"' EXIT

SDA_RESULTS_DIR="$TMPDIR_RESULTS" "$BENCH" --benchmark_filter='NothingMatchesThis' \
  >/dev/null

python3 - "$TMPDIR_RESULTS" <<'PY'
import json
import sys

results = sys.argv[1]

def load(name):
    with open(f"{results}/{name}.json") as f:
        snap = json.load(f)
    for section in ("counters", "gauges", "histograms"):
        assert section in snap, f"{name}: missing section {section!r}"
        assert isinstance(snap[section], dict), f"{name}: {section} is not an object"
    for metric, value in snap["counters"].items():
        assert isinstance(value, int) and value >= 0, f"{name}: counter {metric}={value!r}"
    for metric, value in snap["gauges"].items():
        assert isinstance(value, (int, float)), f"{name}: gauge {metric}={value!r}"
    for metric, hist in snap["histograms"].items():
        for field in ("lo", "hi", "counts", "underflow", "overflow", "total", "sum"):
            assert field in hist, f"{name}: histogram {metric} missing {field!r}"
        assert hist["lo"] < hist["hi"], f"{name}: histogram {metric} empty range"
        in_range = sum(hist["counts"])
        assert in_range + hist["underflow"] + hist["overflow"] == hist["total"], (
            f"{name}: histogram {metric} bucket sum mismatch")
    return snap

first = load("bench_micro_metrics")
second = load("bench_micro_metrics_2")

# The probe fabric has two edges, a border, and the fabric-level histograms.
for expected in ("edge[0].map_cache.misses", "edge[1].map_cache.hits",
                 "edge[0].smr_sent", "map_server.requests", "border[0].hairpinned"):
    assert expected in first["counters"], f"missing expected counter {expected!r}"
for expected in ("fabric.first_packet_us", "fabric.onboard_ms"):
    assert expected in first["histograms"], f"missing expected histogram {expected!r}"
assert first["histograms"]["fabric.onboard_ms"]["total"] == 2, "probe onboarded 2 endpoints"

# Scale-out routing-server family (PR 4): one front-end per server, each
# with its own submission/occupancy metrics.
for expected in ("routing_server[0].dropped_submissions",
                 "routing_server[1].dropped_submissions",
                 "routing_server[0].shed_submissions",
                 "routing_server[1].shed_submissions"):
    assert expected in first["counters"], f"missing expected counter {expected!r}"
for expected in ("routing_server[0].online", "routing_server[1].in_flight"):
    assert expected in first["gauges"], f"missing expected gauge {expected!r}"

# HA family (PR 4/6): heartbeat failover, anti-entropy, leader election,
# and flap dampening all export under the ha.* prefix.
for expected in ("ha.heartbeats_sent", "ha.failovers", "ha.anti_entropy_rounds",
                 "ha.elections_started", "ha.leaders_elected", "ha.epoch_rejections",
                 "ha.suppressions"):
    assert expected in first["counters"], f"missing expected counter {expected!r}"
for expected in ("ha.servers_up", "ha.replica_divergence", "ha.election.term",
                 "ha.election.leader", "ha.dampening.suppressed"):
    assert expected in first["gauges"], f"missing expected gauge {expected!r}"
# The probe runs long enough for the heartbeat/anti-entropy timers to have
# fired. Fault-free, so no election runs — server 0 leads the implicit
# first term — and nothing is suppressed or diverged.
assert first["counters"]["ha.heartbeats_sent"] > 0, "HA heartbeats never fired"
assert first["counters"]["ha.anti_entropy_rounds"] > 0, "anti-entropy never ran"
assert first["gauges"]["ha.election.term"] >= 1, "election term still 0"
assert first["gauges"]["ha.election.leader"] == 0, "fault-free probe should keep leader 0"
assert first["gauges"]["ha.dampening.suppressed"] == 0, "phantom dampening suppression"
assert first["gauges"]["ha.replica_divergence"] == 0, "replicas diverged in a fault-free probe"
assert first["gauges"]["ha.servers_up"] == 2, "both routing servers should be up"

# Partition-tolerance family (PR 9): quorum elections, log-based catch-up,
# and the post-election admission ramp all export their instrumentation.
for expected in ("ha.quorum_stalls", "ha.minority_leaders", "ha.catchup.replays",
                 "ha.catchup.entries_replayed", "ha.catchup.snapshot_fallbacks",
                 "ha.catchup.replay_bytes", "ha.catchup.snapshot_bytes",
                 "routing_server[0].ramp_sheds", "routing_server[1].ramp_sheds"):
    assert expected in first["counters"], f"missing expected counter {expected!r}"
for expected in ("ha.election.quorum", "routing_server[0].admission_ramp"):
    assert expected in first["gauges"], f"missing expected gauge {expected!r}"
# Fault-free probe: no candidacy ever stalls, no minority leads, and the
# quorum gauge reads healthy.
assert first["counters"]["ha.quorum_stalls"] == 0, "phantom quorum stall in a fault-free probe"
assert first["counters"]["ha.minority_leaders"] == 0, "minority leadership in a fault-free probe"
assert first["gauges"]["ha.election.quorum"] == 1, "fault-free probe should hold quorum"

# Assurance family (PR 8): the convergence histograms exist, and with
# causal tracing on the probe's registrations populate register_rtt.
for expected in ("assurance.register_rtt_us", "assurance.move_convergence_us",
                 "assurance.failover_rehome_us", "assurance.smr_fanout_us",
                 "assurance.catchup_convergence_us"):
    assert expected in first["histograms"], f"missing expected histogram {expected!r}"
assert first["histograms"]["assurance.register_rtt_us"]["total"] >= 2, \
    "causal tracing produced no completed registration operations"

# Same schema in both snapshots, and counters never go backwards.
assert set(first["counters"]) == set(second["counters"]), "counter sets diverged"
assert set(first["histograms"]) == set(second["histograms"]), "histogram sets diverged"
regressed = [m for m in first["counters"] if second["counters"][m] < first["counters"][m]]
assert not regressed, f"counters regressed between snapshots: {regressed}"
moved = sum(second["counters"][m] - first["counters"][m] for m in first["counters"])
assert moved > 0, "second snapshot shows no traffic progress"

prom = open(f"{results}/bench_micro_metrics.prom").read()
assert "# TYPE sda_edge_0_map_cache_misses counter" in prom, "prometheus counter missing"
assert "sda_fabric_first_packet_us_bucket" in prom, "prometheus histogram missing"

print(f"check_metrics: OK ({len(first['counters'])} counters, "
      f"{len(first['gauges'])} gauges, {len(first['histograms'])} histograms)")
PY
