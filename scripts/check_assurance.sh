#!/usr/bin/env bash
# Assurance-plane gate: causal tracing, convergence SLOs, and the
# continuous invariant audit must all have teeth.
#
#   scripts/check_assurance.sh [path/to/bench_chaos_convergence]
#
# Runs the bench's --assure mode twice inside the binary (a faithful
# chaos drill, then the same drill with a deliberately slowed SMR path)
# and checks that:
#   * the drill populated all four assurance.* convergence histograms —
#     registrations, moves, failover re-homes, and SMR fan-outs each
#     produced at least one completed causal operation;
#   * no causal operation is still open at quiesce (the no-pending-trace
#     leak invariant backs this from inside the engine too);
#   * every continuous invariant PASSes in both runs (epoch fencing,
#     replica convergence, parked-packet/trace leaks, pub/sub gaps);
#   * every convergence SLO PASSes in the faithful run; and
#   * the injected 100ms SMR delay demonstrably trips the smr-fanout-p95
#     SLO in the breach run — the gate is proven capable of going red.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-build/bench/bench_chaos_convergence}"
if [[ ! -x "$BENCH" ]]; then
  echo "check_assurance: bench_chaos_convergence binary not found at $BENCH" >&2
  exit 1
fi

ASSURE_OUT="$(mktemp)"
trap 'rm -f "$ASSURE_OUT"' EXIT
"$BENCH" --assure >"$ASSURE_OUT"

python3 - "$ASSURE_OUT" <<'PY'
import sys

summary = {}
invariants = {"normal": {}, "breach": {}}
slos = {"normal": {}, "breach": {}}
for line in open(sys.argv[1]):
    fields = line.split()
    if not fields or fields[0] not in ("assure", "averdict", "aslo"):
        continue
    kv = dict(f.split("=", 1) for f in fields[1:] if "=" in f)
    mode = kv.pop("mode")
    if fields[0] == "assure":
        summary[mode] = {k: int(v) for k, v in kv.items()}
    elif fields[0] == "averdict":
        invariants[mode][kv["name"]] = int(kv["pass"])
    else:
        slos[mode][kv["name"]] = int(kv["pass"])

assert set(summary) == {"normal", "breach"}, \
    f"expected normal+breach assure lines, got {sorted(summary)}"

# The faithful drill must populate every convergence histogram: each kind
# of control-plane operation both started and completed.
normal = summary["normal"]
for kind in ("register_n", "move_n", "rehome_n", "smr_n"):
    assert normal[kind] >= 1, f"no completed {kind[:-2]} operations traced"
assert normal["open_ops"] == 0, \
    f"{normal['open_ops']} causal operations still open at quiesce (trace leak)"

# Every continuous invariant must hold in both runs (the SMR delay slows
# convergence but must not break correctness).
for mode in ("normal", "breach"):
    assert invariants[mode], f"no invariant verdicts in {mode} run"
    failed = sorted(n for n, p in invariants[mode].items() if not p)
    assert not failed, f"invariants failed in {mode} run: {failed}"

expected_invariants = {
    "zero-stale-epoch-accepts", "replica-divergence-converged",
    "no-parked-packet-leak", "no-pending-trace-leak", "pubsub-gap-resolved",
}
assert expected_invariants <= set(invariants["normal"]), \
    f"missing invariants: {sorted(expected_invariants - set(invariants['normal']))}"

# Faithful run: every SLO green.
assert slos["normal"], "no SLO verdicts in normal run"
failed = sorted(n for n, p in slos["normal"].items() if not p)
assert not failed, f"SLOs failed in faithful run: {failed}"

# Breach run: the artificially slowed SMR path must trip its SLO — the
# gate is demonstrably capable of catching a violation.
assert slos["breach"].get("smr-fanout-p95") == 0, \
    "100ms SMR delay did not trip smr-fanout-p95: the SLO gate is toothless"
# ...while the unrelated SLOs stay green (the breach is attributed, not
# a blanket failure).
for name in ("register-rtt-p95", "failover-rehome-p95"):
    assert slos["breach"].get(name) == 1, f"unrelated SLO {name} failed in breach run"

print(f"check_assurance: OK (ops traced: {normal['register_n']} register, "
      f"{normal['move_n']} move, {normal['rehome_n']} rehome, "
      f"{normal['smr_n']} smr; 0 open, {normal['abandoned']} abandoned; "
      f"{len(invariants['normal'])} invariants PASS, "
      f"{len(slos['normal'])} SLOs PASS, breach caught)")
PY
