#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer + UBSan.
#
#   scripts/check_sanitized.sh [--drill] [extra ctest args...]
#
# Uses a separate build tree (build-asan/) so the regular build stays
# untouched. Any sanitizer report fails the run (halt_on_error).
#
# With --drill, additionally runs the chaos bench's failover/election/
# quorum/catch-up/stampede drill suite under the sanitizers — the drills
# exercise partition, reboot, and shed paths the unit tests cannot reach
# at scale.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_DRILL=0
if [[ "${1:-}" == "--drill" ]]; then
  RUN_DRILL=1
  shift
fi

cmake -B build-asan -G Ninja -DSDA_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan

export ASAN_OPTIONS="detect_leaks=1:halt_on_error=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir build-asan --output-on-failure "$@"

if [[ "$RUN_DRILL" == 1 ]]; then
  echo "check_sanitized: running drill suite under sanitizers"
  build-asan/bench/bench_chaos_convergence --drill >/dev/null
  echo "check_sanitized: drill suite clean"
fi
