#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
#   scripts/check_sanitized.sh [--drill] [--tsan] [extra ctest args...]
#
# Default: AddressSanitizer + UBSan over the full suite in a separate
# build tree (build-asan/) so the regular build stays untouched. Any
# sanitizer report fails the run (halt_on_error).
#
# With --drill, additionally runs the chaos bench's failover/election/
# quorum/catch-up/stampede drill suite under the sanitizers — the drills
# exercise partition, reboot, and shed paths the unit tests cannot reach
# at scale.
#
# With --tsan, instead builds with ThreadSanitizer (build-tsan/) and runs
# the concurrency-bearing tests (SPSC ring, sharded simulator, lane
# fabric) plus the sharded chaos drill at 1/2/4 workers — the only code
# in the tree where threads share state, and therefore the only code TSan
# can say anything about.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_DRILL=0
RUN_TSAN=0
while [[ "${1:-}" == "--drill" || "${1:-}" == "--tsan" ]]; do
  if [[ "$1" == "--drill" ]]; then RUN_DRILL=1; else RUN_TSAN=1; fi
  shift
done

if [[ "$RUN_TSAN" == 1 ]]; then
  cmake -B build-tsan -G Ninja -DSDA_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  # Only the targets the leg runs: the test binary and the drill bench.
  cmake --build build-tsan --target sda_tests bench_chaos_convergence
  export TSAN_OPTIONS="halt_on_error=1"
  ctest --test-dir build-tsan --output-on-failure -R '(Spsc|Sharded|LaneFabric)' "$@"
  echo "check_sanitized: running sharded chaos drill under TSan"
  build-tsan/bench/bench_chaos_convergence --sharded-drill
  echo "check_sanitized: TSan leg clean"
  exit 0
fi

cmake -B build-asan -G Ninja -DSDA_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan

export ASAN_OPTIONS="detect_leaks=1:halt_on_error=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir build-asan --output-on-failure "$@"

if [[ "$RUN_DRILL" == 1 ]]; then
  echo "check_sanitized: running drill suite under sanitizers"
  build-asan/bench/bench_chaos_convergence --drill >/dev/null
  echo "check_sanitized: drill suite clean"
fi
