#!/usr/bin/env bash
# Build and run the full test suite under AddressSanitizer + UBSan.
#
#   scripts/check_sanitized.sh [extra ctest args...]
#
# Uses a separate build tree (build-asan/) so the regular build stays
# untouched. Any sanitizer report fails the run (halt_on_error).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -G Ninja -DSDA_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan

export ASAN_OPTIONS="detect_leaks=1:halt_on_error=1"
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
ctest --test-dir build-asan --output-on-failure "$@"
