#!/usr/bin/env bash
# Build, test, and regenerate every paper table/figure.
#
#   scripts/run_all.sh [--release] [results-dir]
#
# With a results-dir argument, benches additionally dump raw CSV series
# there (SDA_RESULTS_DIR). --release builds -O3/NDEBUG into build-release/
# (the default tree is RelWithDebInfo) — use it when regenerating the
# perf-gate baseline or timing-sensitive figures.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build
CMAKE_ARGS=()
if [[ "${1:-}" == "--release" ]]; then
  BUILD_DIR=build-release
  CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE=Release)
  shift
fi

cmake -B "$BUILD_DIR" -G Ninja "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR"
ctest --test-dir "$BUILD_DIR" --output-on-failure

if [[ $# -ge 1 ]]; then
  mkdir -p "$1"
  export SDA_RESULTS_DIR="$(cd "$1" && pwd)"
  echo "CSV results -> $SDA_RESULTS_DIR"
fi

for b in "$BUILD_DIR"/bench/bench_*; do
  echo
  echo "######## $b"
  "$b"
done
