#!/usr/bin/env bash
# Build, test, and regenerate every paper table/figure.
#
#   scripts/run_all.sh [results-dir]
#
# With a results-dir argument, benches additionally dump raw CSV series
# there (SDA_RESULTS_DIR).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

if [[ $# -ge 1 ]]; then
  mkdir -p "$1"
  export SDA_RESULTS_DIR="$(cd "$1" && pwd)"
  echo "CSV results -> $SDA_RESULTS_DIR"
fi

for b in build/bench/bench_*; do
  echo
  echo "######## $b"
  "$b"
done
