#!/usr/bin/env bash
# Tier-1 perf-regression gate over the bench_micro perf probes.
#
#   scripts/check_perf.sh [path/to/bench_micro] [path/to/baseline.json]
#
# Runs bench_micro's perf probes (the google-benchmark timing loops are
# skipped via --benchmark_filter; the probes have their own fixed-iteration
# timers) with SDA_BENCH_JSON pointed at a tmpfile, then diffs against the
# committed baseline (bench/BENCH_micro.json by default):
#   * FAIL if any probe's ops/sec drops more than 25% below baseline;
#   * FAIL if the dispatch loop allocated at steady state (the InlineAction
#     SBO + slot-recycling design makes it allocation-free);
#   * FAIL if the disabled causal tracer's per-hook call pattern allocated
#     (tracing off must cost one predictable branch, nothing more);
#   * FAIL if the deterministic fabric first-packet p50 grows >25%
#     (sim-time, so this is pipeline work, not machine speed);
#   * FAIL if the sharded core's flight-log digest differs across worker
#     counts, if any cross-shard event lands late, or — on machines with
#     >= 4 hardware threads — if 4 workers deliver < 1.5x the events/s of
#     one (the speedup floor is skipped, with a note, on smaller boxes);
#   * SKIP (exit 0, with a warning) when the baseline is absent or the
#     binary is an unoptimized/sanitized build — sanitizer trees stay green.
#
# Wall-clock probes are best-of-3: a shared/loaded machine can halve a
# single run's throughput, so only a slowdown that persists across three
# attempts fails the gate. Genuine regressions fail every attempt.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-build/bench/bench_micro}"
BASELINE="${2:-bench/BENCH_micro.json}"
ATTEMPTS="${CHECK_PERF_ATTEMPTS:-3}"

if [[ ! -x "$BENCH" ]]; then
  echo "check_perf: bench_micro binary not found at $BENCH" >&2
  exit 1
fi
if [[ ! -f "$BASELINE" ]]; then
  echo "check_perf: WARNING: baseline $BASELINE absent; skipping (regenerate" >&2
  echo "check_perf: with SDA_BENCH_JSON=$BASELINE $BENCH" >&2
  exit 0
fi

TMPDIR_RESULTS="$(mktemp -d)"
trap 'rm -rf "$TMPDIR_RESULTS"' EXIT

rc=0
for attempt in $(seq 1 "$ATTEMPTS"); do
  if [[ "$attempt" -gt 1 ]]; then
    echo "check_perf: retrying (attempt $attempt/$ATTEMPTS; transient machine load?)"
    sleep "$attempt"  # let whatever stole the CPU drain before re-measuring
  fi
  SDA_BENCH_JSON="$TMPDIR_RESULTS/BENCH_micro.json" "$BENCH" \
    --benchmark_filter='NothingMatchesThis' >/dev/null

  rc=0
  python3 - "$TMPDIR_RESULTS/BENCH_micro.json" "$BASELINE" <<'PY' || rc=$?
import json
import sys

with open(sys.argv[1]) as f:
    current = json.load(f)
with open(sys.argv[2]) as f:
    baseline = json.load(f)

if not current.get("optimized", False):
    print("check_perf: SKIP (unoptimized build; numbers not comparable)")
    sys.exit(0)
if current.get("sanitized", False):
    print("check_perf: SKIP (sanitized build; numbers not comparable)")
    sys.exit(0)

TOLERANCE = 0.75  # fail on >25% regression
failures = []

for name, base in baseline.get("metrics", {}).items():
    probe = current.get("metrics", {}).get(name)
    if probe is None:
        failures.append(f"{name}: missing from current run")
        continue
    ratio = probe["ops_per_sec"] / base["ops_per_sec"]
    marker = "FAIL" if ratio < TOLERANCE else "ok"
    print(f"check_perf: {name}: {probe['ops_per_sec']:,.0f} ops/s "
          f"(baseline {base['ops_per_sec']:,.0f}, {ratio:.2f}x, "
          f"p50 {probe['p50_ns']:.0f}ns p99 {probe['p99_ns']:.0f}ns) [{marker}]")
    if ratio < TOLERANCE:
        failures.append(
            f"{name}: {probe['ops_per_sec']:,.0f} ops/s is "
            f"{(1 - ratio) * 100:.0f}% below baseline {base['ops_per_sec']:,.0f}")

allocs = current.get("dispatch_steady_state_allocs")
print(f"check_perf: dispatch_steady_state_allocs: {allocs}")
if allocs != 0:
    failures.append(f"dispatch loop allocated at steady state ({allocs} allocations)")

tracing_allocs = current.get("tracing_disabled_allocs")
print(f"check_perf: tracing_disabled_allocs: {tracing_allocs}")
if tracing_allocs != 0:
    failures.append(
        f"disabled causal tracer allocated ({tracing_allocs} allocations); "
        "the tracing-off hot path must be allocation-free")

# Sharded-core gate. Determinism and conservatism are hard requirements on
# any machine: a seeded run must hash identically at 1 vs 4 workers, and no
# cross-shard event may ever arrive below its target shard's clock. The
# 1.5x speedup floor only binds where the hardware can actually run 4
# workers in parallel; on smaller boxes it is reported but not enforced.
sharded = current.get("sharded_scaling")
if sharded is None:
    failures.append("sharded_scaling: missing from current run")
else:
    eps = sharded.get("events_per_sec", {})
    hw = sharded.get("hardware_threads", 0)
    speedup = sharded.get("speedup4", 0.0)
    print(f"check_perf: sharded_scaling: w1 {eps.get('workers1', 0):,.0f} ev/s, "
          f"w2 {eps.get('workers2', 0):,.0f} ev/s, w4 {eps.get('workers4', 0):,.0f} ev/s "
          f"(speedup4 {speedup:.2f}x, {hw} hardware threads)")
    if not sharded.get("deterministic", False):
        failures.append(
            "sharded_scaling: flight-log digest differs across worker counts; "
            "the sharded core must be byte-deterministic")
    if sharded.get("late_posts", 1) != 0:
        failures.append(
            f"sharded_scaling: {sharded.get('late_posts')} cross-shard events "
            "arrived below their target shard's clock (lookahead violated)")
    if hw >= 4:
        if speedup < 1.5:
            failures.append(
                f"sharded_scaling: speedup4 {speedup:.2f}x below the 1.5x floor "
                f"on a {hw}-thread machine")
    else:
        print(f"check_perf: sharded_scaling: SKIP speedup floor "
              f"({hw} hardware threads < 4; scaling not measurable here)")

base_fp = baseline.get("fabric_first_packet_us_p50", 0.0)
cur_fp = current.get("fabric_first_packet_us_p50", 0.0)
print(f"check_perf: fabric_first_packet_us_p50: {cur_fp:.1f}us (baseline {base_fp:.1f}us)")
if base_fp > 0 and cur_fp > base_fp / TOLERANCE:
    failures.append(
        f"first-packet p50 {cur_fp:.1f}us regressed >25% over baseline {base_fp:.1f}us")

if failures:
    for failure in failures:
        print(f"check_perf: FAIL: {failure}", file=sys.stderr)
    sys.exit(1)
print("check_perf: OK")
PY
  if [[ "$rc" -eq 0 ]]; then
    exit 0
  fi
done
exit "$rc"
