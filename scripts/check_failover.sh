#!/usr/bin/env bash
# Routing-server kill drill: assert the HA layer actually carries traffic
# through a control-plane outage.
#
#   scripts/check_failover.sh [path/to/bench_chaos_convergence]
#
# Runs the bench's --drill mode (2 routing servers, border default route
# off, server 0 killed for 3s while cold flows start from edges homed on
# it) and checks that:
#   * with HA on, the delivered fraction stays >= 99% and any residual
#     loss re-converges within 500ms of the outage ending;
#   * heartbeat failover and fail-back each fired exactly once, and
#     anti-entropy repaired the registration the dead primary missed;
#   * with HA off, the same kill is visible (fraction <= 97%, loss
#     persisting past the outage) — i.e. the drill has teeth and the
#     HA-on result is not an artifact of a toothless scenario.
#
# Then the election drill (leader killed, resurrected stale) and the
# oscillation drill (3 down/up cycles with/without flap dampening):
#   * killing the elected leader opens a new term with a different leader,
#     the pub/sub feed re-homes via border snapshot resyncs, and every
#     stale-epoch message from the resurrected ex-leader is fenced —
#     zero stale accepts;
#   * an oscillating server causes at most one failover with dampening on
#     (suppression holds it down until the penalty decays), versus churn
#     on every cycle with dampening off.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-build/bench/bench_chaos_convergence}"
if [[ ! -x "$BENCH" ]]; then
  echo "check_failover: bench_chaos_convergence binary not found at $BENCH" >&2
  exit 1
fi

DRILL_OUT="$(mktemp)"
trap 'rm -f "$DRILL_OUT"' EXIT
"$BENCH" --drill >"$DRILL_OUT"

python3 - "$DRILL_OUT" <<'PY'
import sys

runs = {}
election = None
oscillation = {}
for line in open(sys.argv[1]):
    fields = line.split()
    if not fields:
        continue
    kv = dict(f.split("=", 1) for f in fields[1:])
    if fields[0] == "drill":
        mode = kv.pop("ha")
        runs[mode] = {k: float(v) for k, v in kv.items()}
    elif fields[0] == "edrill":
        election = {k: float(v) for k, v in kv.items()}
    elif fields[0] == "odrill":
        mode = kv.pop("dampening")
        oscillation[mode] = {k: float(v) for k, v in kv.items()}

assert set(runs) == {"on", "off"}, f"expected HA on+off drill lines, got {sorted(runs)}"
on, off = runs["on"], runs["off"]

assert on["sent"] > 0 and on["sent"] == off["sent"], \
    f"drill runs diverged: sent {on['sent']} vs {off['sent']}"

# HA on: the kill must be survivable...
assert on["fraction"] >= 0.99, f"HA-on delivered fraction {on['fraction']:.4f} < 0.99"
# ...and whatever blip remains must clear within 500ms of the outage end.
assert on["reconv_ms"] <= 500, f"HA-on re-convergence {on['reconv_ms']:.0f}ms > 500ms"
assert on["failovers"] >= 1, "heartbeat monitor never declared the server down"
assert on["failbacks"] >= 1, "server never failed back after recovery"
assert on["anti_entropy_repairs"] >= 1, \
    "anti-entropy repaired nothing despite a mid-outage registration"

# HA off: the same kill must hurt, or the drill proves nothing.
assert off["fraction"] <= 0.97, \
    f"HA-off delivered fraction {off['fraction']:.4f} > 0.97: outage not visible"
assert off["reconv_ms"] > 0, "HA-off run shows no post-outage loss to recover from"
assert off["fraction"] + 0.02 <= on["fraction"], \
    "HA on/off fractions too close to attribute to failover"

# Election drill: the leader kill must open a new term under a new leader...
assert election is not None, "no edrill line in drill output"
assert election["term"] >= 2, f"leader kill never opened a new term (term {election['term']:.0f})"
assert election["leader"] != 0, "dead server 0 still considered leader after the kill"
assert election["elections"] >= 1, "no election was ever started"
# ...the pub/sub feed must re-home onto the new leader via snapshot resync...
assert election["resyncs"] >= 1, "no border snapshot resync: feed never re-homed"
assert election["min_feed_epoch"] >= 2, \
    f"a border is still on the old feed epoch ({election['min_feed_epoch']:.0f})"
# ...and the resurrected stale leader must be fenced, never believed.
assert election["stale_rejects"] >= 1, \
    "resurrected ex-leader produced no fenced stale-epoch messages"
assert election["stale_accepts"] == 0, \
    f"{election['stale_accepts']:.0f} stale-epoch acks accepted: epoch fence leaked"
assert election["fraction"] >= 0.97, \
    f"election-drill delivered fraction {election['fraction']:.4f} < 0.97"

# Oscillation drill: dampening must cap churn at one failover...
assert set(oscillation) == {"on", "off"}, \
    f"expected dampening on+off odrill lines, got {sorted(oscillation)}"
damped, churn = oscillation["on"], oscillation["off"]
assert damped["failovers"] == 1, \
    f"oscillating server caused {damped['failovers']:.0f} failovers despite dampening"
assert damped["suppressions"] >= 1, "dampening never suppressed the flapping server"
assert damped["released"] == 1, "suppression never released after the penalty decayed"
# ...and without dampening the same oscillation must churn, or the drill
# proves nothing.
assert churn["failovers"] >= 2, \
    f"undamped oscillation caused only {churn['failovers']:.0f} failovers: no churn to damp"

print(f"check_failover: OK (HA-on fraction {on['fraction']:.4f}, "
      f"HA-off {off['fraction']:.4f}, HA-on reconv {on['reconv_ms']:.0f}ms, "
      f"failovers {on['failovers']:.0f}, repairs {on['anti_entropy_repairs']:.0f}; "
      f"election term {election['term']:.0f} leader {election['leader']:.0f}, "
      f"resyncs {election['resyncs']:.0f}, stale rejects {election['stale_rejects']:.0f}, "
      f"stale accepts 0; damped failovers {damped['failovers']:.0f} "
      f"vs undamped {churn['failovers']:.0f})")
PY
