#!/usr/bin/env bash
# Routing-server kill drill: assert the HA layer actually carries traffic
# through a control-plane outage.
#
#   scripts/check_failover.sh [path/to/bench_chaos_convergence]
#
# Runs the bench's --drill mode (2 routing servers, border default route
# off, server 0 killed for 3s while cold flows start from edges homed on
# it) and checks that:
#   * with HA on, the delivered fraction stays >= 99% and any residual
#     loss re-converges within 500ms of the outage ending;
#   * heartbeat failover and fail-back each fired exactly once, and
#     anti-entropy repaired the registration the dead primary missed;
#   * with HA off, the same kill is visible (fraction <= 97%, loss
#     persisting past the outage) — i.e. the drill has teeth and the
#     HA-on result is not an artifact of a toothless scenario.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-build/bench/bench_chaos_convergence}"
if [[ ! -x "$BENCH" ]]; then
  echo "check_failover: bench_chaos_convergence binary not found at $BENCH" >&2
  exit 1
fi

DRILL_OUT="$(mktemp)"
trap 'rm -f "$DRILL_OUT"' EXIT
"$BENCH" --drill >"$DRILL_OUT"

python3 - "$DRILL_OUT" <<'PY'
import sys

runs = {}
for line in open(sys.argv[1]):
    fields = line.split()
    if not fields or fields[0] != "drill":
        continue
    kv = dict(f.split("=", 1) for f in fields[1:])
    mode = kv.pop("ha")
    runs[mode] = {k: float(v) for k, v in kv.items()}

assert set(runs) == {"on", "off"}, f"expected HA on+off drill lines, got {sorted(runs)}"
on, off = runs["on"], runs["off"]

assert on["sent"] > 0 and on["sent"] == off["sent"], \
    f"drill runs diverged: sent {on['sent']} vs {off['sent']}"

# HA on: the kill must be survivable...
assert on["fraction"] >= 0.99, f"HA-on delivered fraction {on['fraction']:.4f} < 0.99"
# ...and whatever blip remains must clear within 500ms of the outage end.
assert on["reconv_ms"] <= 500, f"HA-on re-convergence {on['reconv_ms']:.0f}ms > 500ms"
assert on["failovers"] >= 1, "heartbeat monitor never declared the server down"
assert on["failbacks"] >= 1, "server never failed back after recovery"
assert on["anti_entropy_repairs"] >= 1, \
    "anti-entropy repaired nothing despite a mid-outage registration"

# HA off: the same kill must hurt, or the drill proves nothing.
assert off["fraction"] <= 0.97, \
    f"HA-off delivered fraction {off['fraction']:.4f} > 0.97: outage not visible"
assert off["reconv_ms"] > 0, "HA-off run shows no post-outage loss to recover from"
assert off["fraction"] + 0.02 <= on["fraction"], \
    "HA on/off fractions too close to attribute to failover"

print(f"check_failover: OK (HA-on fraction {on['fraction']:.4f}, "
      f"HA-off {off['fraction']:.4f}, HA-on reconv {on['reconv_ms']:.0f}ms, "
      f"failovers {on['failovers']:.0f}, repairs {on['anti_entropy_repairs']:.0f})")
PY
