#!/usr/bin/env bash
# Routing-server kill drill: assert the HA layer actually carries traffic
# through a control-plane outage.
#
#   scripts/check_failover.sh [path/to/bench_chaos_convergence]
#
# Runs the bench's --drill mode (2 routing servers, border default route
# off, server 0 killed for 3s while cold flows start from edges homed on
# it) and checks that:
#   * with HA on, the delivered fraction stays >= 99% and any residual
#     loss re-converges within 500ms of the outage ending;
#   * heartbeat failover and fail-back each fired exactly once, and
#     anti-entropy repaired the registration the dead primary missed;
#   * with HA off, the same kill is visible (fraction <= 97%, loss
#     persisting past the outage) — i.e. the drill has teeth and the
#     HA-on result is not an artifact of a toothless scenario.
#
# Then the election drill (leader killed, resurrected stale) and the
# oscillation drill (3 down/up cycles with/without flap dampening):
#   * killing the elected leader opens a new term with a different leader,
#     the pub/sub feed re-homes via border snapshot resyncs, and every
#     stale-epoch message from the resurrected ex-leader is fenced —
#     zero stale accepts;
#   * an oscillating server causes at most one failover with dampening on
#     (suppression holds it down until the penalty decays), versus churn
#     on every cycle with dampening off.
#
# Then the partition-tolerance drills:
#   * quorum drill: a partitioned one-node minority never asserts
#     leadership (every candidacy stalls on a failed quorum), the two-node
#     majority keeps its leader and serves onboards, and on heal the
#     cluster reconverges quorate under the original leader;
#   * catch-up drill: a rebooted replica that missed a dozen onboards
#     repairs by bounded-log delta replay with measurably fewer control
#     bytes than the snapshot table exchange, falls back to the snapshot
#     when the log horizon has passed, and converges on every arm;
#   * stampede drill: a freshly elected leader sheds the re-registration
#     rush while its admission ramp opens — bounded backlog, no parked
#     frames, every onboard completing via jittered retry-after.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${1:-build/bench/bench_chaos_convergence}"
if [[ ! -x "$BENCH" ]]; then
  echo "check_failover: bench_chaos_convergence binary not found at $BENCH" >&2
  exit 1
fi

DRILL_OUT="$(mktemp)"
trap 'rm -f "$DRILL_OUT"' EXIT
"$BENCH" --drill >"$DRILL_OUT"

python3 - "$DRILL_OUT" <<'PY'
import sys

runs = {}
election = None
oscillation = {}
quorum = None
catchup = {}
stampede = None
for line in open(sys.argv[1]):
    fields = line.split()
    if not fields:
        continue
    kv = dict(f.split("=", 1) for f in fields[1:])
    if fields[0] == "drill":
        mode = kv.pop("ha")
        runs[mode] = {k: float(v) for k, v in kv.items()}
    elif fields[0] == "edrill":
        election = {k: float(v) for k, v in kv.items()}
    elif fields[0] == "odrill":
        mode = kv.pop("dampening")
        oscillation[mode] = {k: float(v) for k, v in kv.items()}
    elif fields[0] == "qdrill":
        quorum = {k: float(v) for k, v in kv.items()}
    elif fields[0] == "cdrill":
        arm = kv.pop("arm")
        catchup[arm] = {k: float(v) for k, v in kv.items()}
    elif fields[0] == "sdrill":
        stampede = {k: float(v) for k, v in kv.items()}

assert set(runs) == {"on", "off"}, f"expected HA on+off drill lines, got {sorted(runs)}"
on, off = runs["on"], runs["off"]

assert on["sent"] > 0 and on["sent"] == off["sent"], \
    f"drill runs diverged: sent {on['sent']} vs {off['sent']}"

# HA on: the kill must be survivable...
assert on["fraction"] >= 0.99, f"HA-on delivered fraction {on['fraction']:.4f} < 0.99"
# ...and whatever blip remains must clear within 500ms of the outage end.
assert on["reconv_ms"] <= 500, f"HA-on re-convergence {on['reconv_ms']:.0f}ms > 500ms"
assert on["failovers"] >= 1, "heartbeat monitor never declared the server down"
assert on["failbacks"] >= 1, "server never failed back after recovery"
assert on["anti_entropy_repairs"] >= 1, \
    "anti-entropy repaired nothing despite a mid-outage registration"

# HA off: the same kill must hurt, or the drill proves nothing.
assert off["fraction"] <= 0.97, \
    f"HA-off delivered fraction {off['fraction']:.4f} > 0.97: outage not visible"
assert off["reconv_ms"] > 0, "HA-off run shows no post-outage loss to recover from"
assert off["fraction"] + 0.02 <= on["fraction"], \
    "HA on/off fractions too close to attribute to failover"

# Election drill: the leader kill must open a new term under a new leader...
assert election is not None, "no edrill line in drill output"
assert election["term"] >= 2, f"leader kill never opened a new term (term {election['term']:.0f})"
assert election["leader"] != 0, "dead server 0 still considered leader after the kill"
assert election["elections"] >= 1, "no election was ever started"
# ...the pub/sub feed must re-home onto the new leader via snapshot resync...
assert election["resyncs"] >= 1, "no border snapshot resync: feed never re-homed"
assert election["min_feed_epoch"] >= 2, \
    f"a border is still on the old feed epoch ({election['min_feed_epoch']:.0f})"
# ...and the resurrected stale leader must be fenced, never believed.
assert election["stale_rejects"] >= 1, \
    "resurrected ex-leader produced no fenced stale-epoch messages"
assert election["stale_accepts"] == 0, \
    f"{election['stale_accepts']:.0f} stale-epoch acks accepted: epoch fence leaked"
assert election["fraction"] >= 0.97, \
    f"election-drill delivered fraction {election['fraction']:.4f} < 0.97"

# Oscillation drill: dampening must cap churn at one failover...
assert set(oscillation) == {"on", "off"}, \
    f"expected dampening on+off odrill lines, got {sorted(oscillation)}"
damped, churn = oscillation["on"], oscillation["off"]
assert damped["failovers"] == 1, \
    f"oscillating server caused {damped['failovers']:.0f} failovers despite dampening"
assert damped["suppressions"] >= 1, "dampening never suppressed the flapping server"
assert damped["released"] == 1, "suppression never released after the penalty decayed"
# ...and without dampening the same oscillation must churn, or the drill
# proves nothing.
assert churn["failovers"] >= 2, \
    f"undamped oscillation caused only {churn['failovers']:.0f} failovers: no churn to damp"

# Quorum drill: the partitioned minority must stall leaderless...
assert quorum is not None, "no qdrill line in drill output"
assert quorum["stalls"] >= 1, "minority candidacies never stalled on a failed quorum"
assert quorum["minority_led"] == 0, \
    f"minority believed it led in {quorum['minority_led']:.0f} samples: quorum gate leaked"
assert quorum["minority_wins"] == 0, \
    f"{quorum['minority_wins']:.0f} minority-quorum leaderships asserted"
assert quorum["quorum_dipped"] == 1, "ha.election.quorum gauge never dipped mid-partition"
# ...while the majority keeps a leader and keeps serving...
assert quorum["mid_leader"] == 0, \
    f"majority lost its leader mid-partition (leader {quorum['mid_leader']:.0f})"
assert quorum["onboard_ok"] == 1, "mid-partition onboard on the majority side never completed"
assert quorum["stale_accepts"] == 0, \
    f"{quorum['stale_accepts']:.0f} stale-epoch acks accepted during the partition"
# ...and heal reconverges quorate with the invariant green.
assert quorum["final_leader"] == 0, \
    f"cluster did not reconverge on leader 0 after heal (leader {quorum['final_leader']:.0f})"
assert quorum["quorum_held"] == 1, "quorum gauge still reads lost after reconvergence"
assert quorum["invariant"] == 1, "no-minority-leader invariant failed"

# Catch-up drill: delta replay must beat the snapshot exchange...
assert set(catchup) == {"log", "snap", "horizon"}, \
    f"expected log+snap+horizon cdrill lines, got {sorted(catchup)}"
log, snap, horizon = catchup["log"], catchup["snap"], catchup["horizon"]
assert log["replays"] >= 1, "roomy-log arm never repaired by delta replay"
assert log["entries"] >= 1, "delta replay carried no log entries"
assert log["fallbacks"] == 0, "roomy-log arm fell back to a snapshot"
assert snap["replays"] == 0, "log-disabled arm somehow replayed a log"
assert snap["snapshot_bytes"] > 0, "log-disabled arm moved no snapshot bytes"
assert 0 < log["replay_bytes"] < snap["snapshot_bytes"], \
    (f"delta replay ({log['replay_bytes']:.0f}B) not cheaper than the snapshot "
     f"exchange ({snap['snapshot_bytes']:.0f}B)")
# ...a lag past the log horizon must fall back to the snapshot...
assert horizon["fallbacks"] >= 1, "horizon-passed arm never fell back to a snapshot"
assert horizon["snapshot_bytes"] > 0, "horizon fallback moved no snapshot bytes"
# ...and every arm converges, with the catch-up histogram populated.
for arm, r in catchup.items():
    assert r["converged"] == 1, f"catch-up arm {arm} did not converge"
    assert r["catchup_n"] >= 1, \
        f"assurance.catchup_convergence_us empty in arm {arm}"

# Stampede drill: the fresh leader's ramp must shed the rush, not queue it...
assert stampede is not None, "no sdrill line in drill output"
assert stampede["ramp_sheds"] >= 1, "admission ramp never shed a post-election register"
assert stampede["peak"] <= stampede["limit"], \
    (f"backlog peaked at {stampede['peak']:.0f} > admission limit "
     f"{stampede['limit']:.0f}: in-flight not bounded")
# ...and every shed onboard must complete via its jittered retry-after.
assert stampede["onboards"] == stampede["asked"], \
    f"only {stampede['onboards']:.0f}/{stampede['asked']:.0f} stampede onboards completed"
assert stampede["parked"] == 0, \
    f"{stampede['parked']:.0f} frames left parked after the stampede: packet leak"
assert stampede["leader"] == 1, \
    f"replica 1 did not hold leadership through the stampede (leader {stampede['leader']:.0f})"
assert stampede["ramp_ended"] == 1, "ramp window never closed"
assert stampede["fraction"] >= 0.97, \
    f"stampede-drill delivered fraction {stampede['fraction']:.4f} < 0.97"

print(f"check_failover: OK (HA-on fraction {on['fraction']:.4f}, "
      f"HA-off {off['fraction']:.4f}, HA-on reconv {on['reconv_ms']:.0f}ms, "
      f"failovers {on['failovers']:.0f}, repairs {on['anti_entropy_repairs']:.0f}; "
      f"election term {election['term']:.0f} leader {election['leader']:.0f}, "
      f"resyncs {election['resyncs']:.0f}, stale rejects {election['stale_rejects']:.0f}, "
      f"stale accepts 0; damped failovers {damped['failovers']:.0f} "
      f"vs undamped {churn['failovers']:.0f}; quorum stalls {quorum['stalls']:.0f} "
      f"minority wins 0; replay {log['replay_bytes']:.0f}B vs snapshot "
      f"{snap['snapshot_bytes']:.0f}B, horizon fallbacks {horizon['fallbacks']:.0f}; "
      f"ramp sheds {stampede['ramp_sheds']:.0f}, "
      f"stampede onboards {stampede['onboards']:.0f}/{stampede['asked']:.0f})")
PY
