#include "stats/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sda::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[48];
  const int n = std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf, static_cast<std::size_t>(n));
}

std::string Table::num(std::size_t v) { return std::to_string(v); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) line += " | ";
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      line += cell;
      line.append(widths[c] - cell.size(), ' ');
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += "-+-";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

namespace {

struct Bounds {
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();

  void absorb(const std::vector<std::pair<double, double>>& points) {
    for (const auto& [x, y] : points) {
      xmin = std::min(xmin, x);
      xmax = std::max(xmax, x);
      ymin = std::min(ymin, y);
      ymax = std::max(ymax, y);
    }
  }
  [[nodiscard]] bool valid() const { return xmin <= xmax && ymin <= ymax; }
};

void plot_into(std::vector<std::string>& canvas, const Bounds& b,
               const std::vector<std::pair<double, double>>& points, char glyph) {
  const std::size_t height = canvas.size();
  if (height == 0) return;
  const std::size_t width = canvas[0].size();
  const double xspan = b.xmax > b.xmin ? b.xmax - b.xmin : 1.0;
  const double yspan = b.ymax > b.ymin ? b.ymax - b.ymin : 1.0;
  for (const auto& [x, y] : points) {
    const auto col = static_cast<std::size_t>(
        std::round((x - b.xmin) / xspan * static_cast<double>(width - 1)));
    const auto row = static_cast<std::size_t>(
        std::round((y - b.ymin) / yspan * static_cast<double>(height - 1)));
    canvas[height - 1 - row][col] = glyph;
  }
}

std::string frame(const std::vector<std::string>& canvas, const Bounds& b,
                  const std::string& title, const std::string& legend) {
  std::string out;
  if (!title.empty()) out += title + '\n';
  if (!legend.empty()) out += legend + '\n';
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%10.3g +", b.ymax);
  out += buf;
  out.append(canvas.empty() ? 0 : canvas[0].size(), '-');
  out += '\n';
  for (const auto& line : canvas) out += "           |" + line + '\n';
  std::snprintf(buf, sizeof(buf), "%10.3g +", b.ymin);
  out += buf;
  out.append(canvas.empty() ? 0 : canvas[0].size(), '-');
  out += '\n';
  std::snprintf(buf, sizeof(buf), "            x: [%.3g, %.3g]\n", b.xmin, b.xmax);
  out += buf;
  return out;
}

}  // namespace

std::string ascii_plot(const std::vector<std::pair<double, double>>& series, std::size_t width,
                       std::size_t height, const std::string& title) {
  return ascii_multiplot({LabelledSeries{"", '*', series}}, width, height, title);
}

std::string ascii_multiplot(const std::vector<LabelledSeries>& series, std::size_t width,
                            std::size_t height, const std::string& title) {
  Bounds b;
  for (const auto& s : series) b.absorb(s.points);
  if (!b.valid() || width == 0 || height == 0) return title + " (no data)\n";

  std::vector<std::string> canvas(height, std::string(width, ' '));
  std::string legend;
  for (const auto& s : series) {
    plot_into(canvas, b, s.points, s.glyph);
    if (!s.label.empty()) {
      if (!legend.empty()) legend += "   ";
      legend += s.glyph;
      legend += " = " + s.label;
    }
  }
  return frame(canvas, b, title, legend);
}

}  // namespace sda::stats
