// Fixed-bucket histogram for counting events by magnitude.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sda::stats {

/// A histogram with `buckets` equal-width bins over [lo, hi); out-of-range
/// samples land in saturating under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double sample, std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Lower edge of bucket i.
  [[nodiscard]] double bucket_lo(std::size_t i) const;

  /// Renders bucket bars, e.g. for bench output.
  [[nodiscard]] std::string render(std::size_t bar_width = 48) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace sda::stats
