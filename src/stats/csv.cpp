#include "stats/csv.hpp"

#include <cstdio>
#include <cstdlib>

namespace sda::stats {

std::optional<std::string> results_dir() {
  const char* dir = std::getenv("SDA_RESULTS_DIR");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  return std::string{dir};
}

namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

bool write_csv(const std::string& dir, const std::string& name,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  const std::string path = dir + "/" + name + ".csv";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  auto write_row = [file](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) std::fputc(',', file);
      std::fputs(escape(row[i]).c_str(), file);
    }
    std::fputc('\n', file);
  };
  write_row(header);
  for (const auto& row : rows) write_row(row);
  std::fclose(file);
  return true;
}

bool write_series_csv(const std::string& dir, const std::string& name,
                      const std::string& x_label, const std::string& y_label,
                      const std::vector<std::pair<double, double>>& series) {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(series.size());
  char buf[64];
  for (const auto& [x, y] : series) {
    std::snprintf(buf, sizeof(buf), "%.9g", x);
    std::string xs = buf;
    std::snprintf(buf, sizeof(buf), "%.9g", y);
    rows.push_back({std::move(xs), std::string{buf}});
  }
  return write_csv(dir, name, {x_label, y_label}, rows);
}

bool write_timeseries_csv(const std::string& dir, const std::string& name,
                          const std::string& y_label, const TimeSeries& series) {
  std::vector<std::pair<double, double>> points;
  points.reserve(series.size());
  for (const auto& p : series.points()) points.emplace_back(p.time.hours(), p.value);
  return write_series_csv(dir, name, "hours", y_label, points);
}

}  // namespace sda::stats
