// CSV export of bench results.
//
// Benches print human-readable tables/plots to stdout; when the
// SDA_RESULTS_DIR environment variable is set they additionally dump raw
// series as CSV so figures can be re-plotted with external tooling.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "stats/timeseries.hpp"

namespace sda::stats {

/// The results directory from $SDA_RESULTS_DIR; nullopt when unset/empty.
[[nodiscard]] std::optional<std::string> results_dir();

/// Writes rows to `<dir>/<name>.csv` with a header line. Returns false on
/// any I/O failure (benches treat CSV export as best-effort).
bool write_csv(const std::string& dir, const std::string& name,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

/// Convenience: (x, y) series -> two-column CSV.
bool write_series_csv(const std::string& dir, const std::string& name,
                      const std::string& x_label, const std::string& y_label,
                      const std::vector<std::pair<double, double>>& series);

/// Convenience: a TimeSeries -> (hours, value) CSV.
bool write_timeseries_csv(const std::string& dir, const std::string& name,
                          const std::string& y_label, const TimeSeries& series);

}  // namespace sda::stats
