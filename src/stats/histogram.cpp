#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdio>

namespace sda::stats {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double sample, std::uint64_t count) {
  total_ += count;
  if (sample < lo_) {
    underflow_ += count;
    return;
  }
  if (sample >= hi_) {
    overflow_ += count;
    return;
  }
  const auto idx = static_cast<std::size_t>((sample - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
  counts_[std::min(idx, counts_.size() - 1)] += count;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%12.4g | ", bucket_lo(i));
    out += buf;
    const auto bar = static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                              static_cast<double>(peak) *
                                              static_cast<double>(bar_width));
    out.append(bar, '#');
    std::snprintf(buf, sizeof(buf), " %llu\n", static_cast<unsigned long long>(counts_[i]));
    out += buf;
  }
  if (underflow_ != 0 || overflow_ != 0) {
    std::snprintf(buf, sizeof(buf), "   (underflow %llu, overflow %llu)\n",
                  static_cast<unsigned long long>(underflow_),
                  static_cast<unsigned long long>(overflow_));
    out += buf;
  }
  return out;
}

}  // namespace sda::stats
