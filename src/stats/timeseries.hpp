// Time-stamped measurement series (e.g. hourly FIB occupancy samples).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace sda::stats {

/// An append-only series of (sim-time, value) samples.
class TimeSeries {
 public:
  struct Point {
    sim::SimTime time;
    double value = 0;
  };

  void add(sim::SimTime time, double value) { points_.push_back({time, value}); }

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Mean of all values; 0 if empty.
  [[nodiscard]] double mean() const;

  /// Mean over points where `keep(time)` is true (e.g. working hours only);
  /// 0 if no point matches.
  [[nodiscard]] double mean_where(const std::function<bool(sim::SimTime)>& keep) const;

  [[nodiscard]] double max() const;

  /// Element-wise sum of several series sampled at identical times (used to
  /// average per-router series). All series must have equal length.
  [[nodiscard]] static TimeSeries average(const std::vector<const TimeSeries*>& series);

 private:
  std::vector<Point> points_;
};

}  // namespace sda::stats
