// Empirical cumulative distribution functions.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace sda::stats {

/// An empirical CDF built from raw samples. Supports evaluation in both
/// directions and rendering as the (x, F(x)) series the paper's Fig. 11
/// plots.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const;

  /// Smallest sample value v with F(v) >= fraction (inverse CDF).
  [[nodiscard]] double quantile(double fraction) const;

  /// Evaluates the CDF at `points` evenly spaced sample values between
  /// min and max; returns (x, F(x)) pairs suitable for plotting/printing.
  [[nodiscard]] std::vector<std::pair<double, double>> series(std::size_t points) const;

  /// All samples divided by `base` (the paper normalizes Fig. 11 to the
  /// minimum observed handover delay).
  [[nodiscard]] Cdf normalized_to(double base) const;

  [[nodiscard]] std::size_t count() const { return sorted_.size(); }
  [[nodiscard]] double min() const { return sorted_.empty() ? 0 : sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.empty() ? 0 : sorted_.back(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace sda::stats
