// ASCII rendering of result tables and simple plots for bench output.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace sda::stats {

/// Builds a column-aligned ASCII table. Rows are added as string cells;
/// numeric helpers format with sensible precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` decimals.
  [[nodiscard]] static std::string num(double v, int precision = 3);
  [[nodiscard]] static std::string num(std::size_t v);

  /// Renders with a header separator, e.g.:
  ///   name   | col
  ///   -------+----
  ///   value  | 1.0
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders an ASCII line chart of a (x, y) series (used to eyeball CDFs and
/// time series in bench output). `height` terminal rows, `width` columns.
[[nodiscard]] std::string ascii_plot(const std::vector<std::pair<double, double>>& series,
                                     std::size_t width = 72, std::size_t height = 16,
                                     const std::string& title = {});

/// Renders several labelled series on one canvas, each with its own glyph.
struct LabelledSeries {
  std::string label;
  char glyph = '*';
  std::vector<std::pair<double, double>> points;
};
[[nodiscard]] std::string ascii_multiplot(const std::vector<LabelledSeries>& series,
                                          std::size_t width = 72, std::size_t height = 16,
                                          const std::string& title = {});

}  // namespace sda::stats
