#include "stats/timeseries.hpp"

#include <algorithm>
#include <cassert>

namespace sda::stats {

double TimeSeries::mean() const {
  if (points_.empty()) return 0;
  double acc = 0;
  for (const auto& p : points_) acc += p.value;
  return acc / static_cast<double>(points_.size());
}

double TimeSeries::mean_where(const std::function<bool(sim::SimTime)>& keep) const {
  double acc = 0;
  std::size_t n = 0;
  for (const auto& p : points_) {
    if (keep(p.time)) {
      acc += p.value;
      ++n;
    }
  }
  return n == 0 ? 0 : acc / static_cast<double>(n);
}

double TimeSeries::max() const {
  double best = 0;
  for (const auto& p : points_) best = std::max(best, p.value);
  return best;
}

TimeSeries TimeSeries::average(const std::vector<const TimeSeries*>& series) {
  TimeSeries out;
  if (series.empty()) return out;
  const std::size_t n = series.front()->size();
  for (const auto* s : series) {
    assert(s->size() == n);
    (void)s;
  }
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0;
    for (const auto* s : series) acc += s->points()[i].value;
    out.add(series.front()->points()[i].time, acc / static_cast<double>(series.size()));
  }
  return out;
}

}  // namespace sda::stats
