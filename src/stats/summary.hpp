// Sample accumulation and distribution summaries (boxplot statistics).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace sda::stats {

/// Five-number-plus boxplot summary matching the paper's "boxplot (95%)"
/// figures: median, quartiles, and 2.5th/97.5th percentile whiskers.
struct BoxStats {
  double whisker_low = 0;   // p2.5
  double q1 = 0;            // p25
  double median = 0;        // p50
  double q3 = 0;            // p75
  double whisker_high = 0;  // p97.5
  double mean = 0;
  double min = 0;
  double max = 0;
  std::size_t count = 0;

  /// All fields divided by `base` (for the paper's "relative to minimum"
  /// normalization). `base` must be nonzero.
  [[nodiscard]] BoxStats relative_to(double base) const;

  [[nodiscard]] std::string to_string() const;
};

/// Collects double-valued samples and computes summary statistics.
class Summary {
 public:
  Summary() = default;
  explicit Summary(std::vector<double> samples) : samples_(std::move(samples)) {}

  void add(double sample) { samples_.push_back(sample); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;  // sample (n-1) stddev; 0 if count < 2

  /// Interpolated percentile, p in [0, 100]. Sorts lazily (amortized).
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50); }

  [[nodiscard]] BoxStats box_stats() const;

  /// Merges another summary's samples into this one.
  void merge(const Summary& other);

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // cache; invalidated by add()
};

}  // namespace sda::stats
