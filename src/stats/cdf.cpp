#include "stats/cdf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sda::stats {

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::at(double x) const {
  if (sorted_.empty()) return 0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(std::distance(sorted_.begin(), it)) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double fraction) const {
  assert(!sorted_.empty());
  const double f = std::clamp(fraction, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      std::ceil(f * static_cast<double>(sorted_.size())));
  return sorted_[idx == 0 ? 0 : std::min(idx - 1, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Cdf::series(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1 ? hi
                    : lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

Cdf Cdf::normalized_to(double base) const {
  assert(base != 0.0);
  std::vector<double> scaled = sorted_;
  for (auto& v : scaled) v /= base;
  return Cdf{std::move(scaled)};
}

}  // namespace sda::stats
