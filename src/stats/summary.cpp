#include "stats/summary.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace sda::stats {

BoxStats BoxStats::relative_to(double base) const {
  assert(base != 0.0);
  BoxStats r = *this;
  r.whisker_low /= base;
  r.q1 /= base;
  r.median /= base;
  r.q3 /= base;
  r.whisker_high /= base;
  r.mean /= base;
  r.min /= base;
  r.max /= base;
  return r;
}

std::string BoxStats::to_string() const {
  char buf[160];
  const int n = std::snprintf(
      buf, sizeof(buf), "[w- %.3f | q1 %.3f | med %.3f | q3 %.3f | w+ %.3f] mean %.3f n=%zu",
      whisker_low, q1, median, q3, whisker_high, mean, count);
  return std::string(buf, static_cast<std::size_t>(n));
}

void Summary::ensure_sorted() const {
  if (sorted_.size() != samples_.size()) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
  }
}

double Summary::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::mean() const {
  if (samples_.empty()) return 0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0;
  const double m = mean();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double p) const {
  assert(!samples_.empty());
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

BoxStats Summary::box_stats() const {
  BoxStats b;
  if (samples_.empty()) return b;
  b.whisker_low = percentile(2.5);
  b.q1 = percentile(25);
  b.median = percentile(50);
  b.q3 = percentile(75);
  b.whisker_high = percentile(97.5);
  b.mean = mean();
  b.min = min();
  b.max = max();
  b.count = count();
  return b;
}

void Summary::merge(const Summary& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_.clear();
}

}  // namespace sda::stats
