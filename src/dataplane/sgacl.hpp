// Group-based ACL (SGACL): the second stage of the egress pipeline.
//
// An exact-match table on (source GroupId, destination GroupId) enforcing
// the connectivity matrix (paper Fig. 4). Per-rule hit counters feed the
// Fig. 12 drop-rate analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"
#include "policy/matrix.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::dataplane {

/// The SGACL of one router. Rules are installed per destination group as
/// endpoints onboard (egress enforcement) or per source group (ingress
/// ablation); lookup falls back to the configured default action.
class Sgacl {
 public:
  explicit Sgacl(policy::Action default_action = policy::Action::Allow)
      : default_action_(default_action) {}

  /// Replaces all rules for `destination` with `rules` (the onboarding
  /// download / policy-push path).
  void install_destination_rules(net::VnId vn, net::GroupId destination,
                                 const std::vector<policy::Rule>& rules);

  /// Removes all rules whose destination is `destination` (last endpoint of
  /// that group detached).
  void remove_destination_rules(net::VnId vn, net::GroupId destination);

  /// Installs one rule directly (ingress ablation path).
  void install_rule(net::VnId vn, const policy::Rule& rule);

  /// Evaluates the pipeline stage and bumps counters. Unknown groups pass.
  [[nodiscard]] policy::Action evaluate(net::VnId vn, net::GroupId source,
                                        net::GroupId destination);

  [[nodiscard]] std::size_t rule_count() const;

  struct Counters {
    std::uint64_t permits = 0;
    std::uint64_t drops = 0;
    [[nodiscard]] std::uint64_t total() const { return permits + drops; }
    /// Drops per thousand evaluations (Fig. 12's permille metric).
    [[nodiscard]] double drop_permille() const {
      return total() == 0 ? 0.0 : 1000.0 * static_cast<double>(drops) /
                                      static_cast<double>(total());
    }
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

  /// Registers pull probes for the counters and a rule-count gauge under
  /// `prefix` (e.g. "edge[3].sgacl"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

  void clear();

 private:
  struct Key {
    std::uint32_t vn;
    std::uint16_t src;
    std::uint16_t dst;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return (std::size_t{k.vn} << 32) ^ (std::size_t{k.src} << 16) ^ k.dst;
    }
  };

  policy::Action default_action_;
  std::unordered_map<Key, policy::Action, KeyHash> rules_;
  Counters counters_;
};

}  // namespace sda::dataplane
