// Group-based ACL (SGACL): the second stage of the egress pipeline.
//
// An exact-match table on (source GroupId, destination GroupId) enforcing
// the connectivity matrix (paper Fig. 4). Per-rule hit counters feed the
// Fig. 12 drop-rate analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/types.hpp"
#include "policy/matrix.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::dataplane {

/// What traffic gets when its destination group's rules have not been
/// provisioned yet (policy-server outage, download still in flight).
/// Open = fall through to the default action (availability over policy);
/// Closed = deny until the rules actually arrive (policy over availability).
enum class PolicyFailMode : std::uint8_t { Open, Closed };

/// The SGACL of one router. Rules are installed per destination group as
/// endpoints onboard (egress enforcement) or per source group (ingress
/// ablation); lookup falls back to the configured default action.
class Sgacl {
 public:
  explicit Sgacl(policy::Action default_action = policy::Action::Allow)
      : default_action_(default_action) {}

  /// Replaces all rules for `destination` with `rules` (the onboarding
  /// download / policy-push path).
  void install_destination_rules(net::VnId vn, net::GroupId destination,
                                 const std::vector<policy::Rule>& rules);

  /// Removes all rules whose destination is `destination` (last endpoint of
  /// that group detached).
  void remove_destination_rules(net::VnId vn, net::GroupId destination);

  /// Installs one rule directly (ingress ablation path).
  void install_rule(net::VnId vn, const policy::Rule& rule);

  /// Evaluates the pipeline stage and bumps counters. Unknown groups pass.
  /// Under PolicyFailMode::Closed, a miss for an unprovisioned destination
  /// group denies instead of falling through to the default action.
  [[nodiscard]] policy::Action evaluate(net::VnId vn, net::GroupId source,
                                        net::GroupId destination);

  /// Fail-open (default, legacy behavior) vs fail-closed for destination
  /// groups whose rules never downloaded. Only meaningful for egress
  /// enforcement, where install_destination_rules marks provisioning.
  void set_fail_mode(PolicyFailMode mode) { fail_mode_ = mode; }
  [[nodiscard]] PolicyFailMode fail_mode() const { return fail_mode_; }

  /// True once install_destination_rules has run for (vn, destination)
  /// and the rules have not been removed since.
  [[nodiscard]] bool provisioned(net::VnId vn, net::GroupId destination) const;

  [[nodiscard]] std::size_t rule_count() const;

  struct Counters {
    std::uint64_t permits = 0;
    std::uint64_t drops = 0;
    /// Subset of drops caused by fail-closed hitting an unprovisioned group.
    std::uint64_t fail_closed_drops = 0;
    [[nodiscard]] std::uint64_t total() const { return permits + drops; }
    /// Drops per thousand evaluations (Fig. 12's permille metric).
    [[nodiscard]] double drop_permille() const {
      return total() == 0 ? 0.0 : 1000.0 * static_cast<double>(drops) /
                                      static_cast<double>(total());
    }
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  void reset_counters() { counters_ = {}; }

  /// Registers pull probes for the counters and a rule-count gauge under
  /// `prefix` (e.g. "edge[3].sgacl"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

  void clear();

 private:
  struct Key {
    std::uint32_t vn;
    std::uint16_t src;
    std::uint16_t dst;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return (std::size_t{k.vn} << 32) ^ (std::size_t{k.src} << 16) ^ k.dst;
    }
  };
  struct DestKey {
    std::uint32_t vn;
    std::uint16_t dst;
    friend bool operator==(const DestKey&, const DestKey&) = default;
  };
  struct DestKeyHash {
    std::size_t operator()(const DestKey& k) const noexcept {
      return (std::size_t{k.vn} << 16) ^ k.dst;
    }
  };

  policy::Action default_action_;
  PolicyFailMode fail_mode_ = PolicyFailMode::Open;
  std::unordered_map<Key, policy::Action, KeyHash> rules_;
  // Destination groups whose rule download completed (even if the matrix
  // row was empty) — distinguishes "no rule matched" from "rules missing".
  std::unordered_set<DestKey, DestKeyHash> provisioned_;
  Counters counters_;
};

}  // namespace sda::dataplane
