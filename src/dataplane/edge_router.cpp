#include "dataplane/edge_router.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/metrics.hpp"

namespace sda::dataplane {

namespace {

std::uint64_t group_key(net::VnId vn, net::GroupId group) {
  return (std::uint64_t{vn.value()} << 16) | group.value();
}

}  // namespace

EdgeRouter::EdgeRouter(sim::Simulator& simulator, EdgeRouterConfig config)
    : simulator_(simulator),
      config_(std::move(config)),
      rng_(config_.seed ^ config_.rloc.value()),
      cache_(config_.map_cache_capacity),
      sgacl_(config_.default_action) {
  sgacl_.set_fail_mode(config_.policy_fail_mode);
}

// ---------------------------------------------------------------------------
// Endpoint lifecycle
// ---------------------------------------------------------------------------

void EdgeRouter::attach_endpoint(const AttachedEndpoint& endpoint) {
  assert(!endpoint.ip.is_unspecified());
  // Replace any stale attachment of the same MAC.
  detach_endpoint(endpoint.mac, /*deregister=*/false);

  endpoints_[endpoint.mac] = endpoint;
  const net::VnEid ip_eid{endpoint.vn, net::Eid{endpoint.ip}};
  eid_to_mac_[ip_eid] = endpoint.mac;
  local_.install(ip_eid, LocalEntry{endpoint.port, endpoint.group, endpoint.mac});

  if (endpoint.ipv6) {
    const net::VnEid v6_eid{endpoint.vn, net::Eid{*endpoint.ipv6}};
    eid_to_mac_[v6_eid] = endpoint.mac;
    local_.install(v6_eid, LocalEntry{endpoint.port, endpoint.group, endpoint.mac});
  }
  if (endpoint.register_mac) {
    const net::VnEid mac_eid{endpoint.vn, net::Eid{endpoint.mac}};
    eid_to_mac_[mac_eid] = endpoint.mac;
    local_.install(mac_eid, LocalEntry{endpoint.port, endpoint.group, endpoint.mac});
  }

  // Download the SGACL rules where this endpoint's group is the destination
  // (Fig. 3 step 2; egress enforcement needs only these, §5.3).
  if (++group_refcounts_[group_key(endpoint.vn, endpoint.group)] == 1 && download_rules_) {
    try_download_rules(endpoint.vn, endpoint.group);
  }

  // Publish the endpoint's location (Fig. 3 step 4) — one route per
  // identity (IPv4, IPv6, MAC): the paper's "3 routes per endpoint" (§4.1).
  register_eid(ip_eid, endpoint.group);
  if (endpoint.ipv6) {
    register_eid(net::VnEid{endpoint.vn, net::Eid{*endpoint.ipv6}}, endpoint.group);
  }
  if (endpoint.register_mac) {
    register_eid(net::VnEid{endpoint.vn, net::Eid{endpoint.mac}}, endpoint.group);
  }
  maybe_schedule_register_refresh();
}

void EdgeRouter::maybe_schedule_register_refresh() {
  if (config_.register_refresh_interval.count() == 0 || register_refresh_armed_) return;
  if (endpoints_.empty()) return;
  register_refresh_armed_ = true;
  simulator_.schedule_after(config_.register_refresh_interval, [this] {
    register_refresh_armed_ = false;
    // Soft-state refresh: re-register every identity of every endpoint.
    for (const auto& [mac, endpoint] : endpoints_) {
      register_eid(net::VnEid{endpoint.vn, net::Eid{endpoint.ip}}, endpoint.group);
      if (endpoint.ipv6) {
        register_eid(net::VnEid{endpoint.vn, net::Eid{*endpoint.ipv6}}, endpoint.group);
      }
      if (endpoint.register_mac) {
        register_eid(net::VnEid{endpoint.vn, net::Eid{endpoint.mac}}, endpoint.group);
      }
    }
    maybe_schedule_register_refresh();
  });
}

void EdgeRouter::detach_endpoint(const net::MacAddress& mac, bool deregister) {
  const auto it = endpoints_.find(mac);
  if (it == endpoints_.end()) return;
  const AttachedEndpoint endpoint = it->second;
  endpoints_.erase(it);

  const net::VnEid ip_eid{endpoint.vn, net::Eid{endpoint.ip}};
  eid_to_mac_.erase(ip_eid);
  local_.remove(ip_eid);
  if (endpoint.ipv6) {
    const net::VnEid v6_eid{endpoint.vn, net::Eid{*endpoint.ipv6}};
    eid_to_mac_.erase(v6_eid);
    local_.remove(v6_eid);
  }
  if (endpoint.register_mac) {
    const net::VnEid mac_eid{endpoint.vn, net::Eid{endpoint.mac}};
    eid_to_mac_.erase(mac_eid);
    local_.remove(mac_eid);
  }

  const auto ref = group_refcounts_.find(group_key(endpoint.vn, endpoint.group));
  if (ref != group_refcounts_.end() && --ref->second == 0) {
    group_refcounts_.erase(ref);
    sgacl_.remove_destination_rules(endpoint.vn, endpoint.group);
    pending_rule_downloads_.erase(group_key(endpoint.vn, endpoint.group));
    if (release_group_) release_group_(endpoint.vn, endpoint.group);
  }

  // Any in-flight registration retransmit for a departed identity must die
  // with it: a stale resend could overwrite the EID's new home.
  abandon_pending_register(ip_eid);
  if (endpoint.ipv6) abandon_pending_register(net::VnEid{endpoint.vn, net::Eid{*endpoint.ipv6}});
  if (endpoint.register_mac) {
    abandon_pending_register(net::VnEid{endpoint.vn, net::Eid{endpoint.mac}});
  }

  if (deregister && send_map_register_) {
    // Withdrawal is modeled as a zero-TTL register; roaming departures
    // skip this (the new edge overwrites the mapping). Every registered
    // identity (IPv4/IPv6/MAC) is withdrawn.
    send_register(ip_eid, net::GroupId::unknown(), 0);
    if (endpoint.ipv6) {
      send_register(net::VnEid{endpoint.vn, net::Eid{*endpoint.ipv6}}, net::GroupId::unknown(),
                    0);
    }
    if (endpoint.register_mac) {
      send_register(net::VnEid{endpoint.vn, net::Eid{endpoint.mac}}, net::GroupId::unknown(), 0);
    }
  }
}

bool EdgeRouter::retag_endpoint(const net::MacAddress& mac, net::GroupId new_group) {
  const auto it = endpoints_.find(mac);
  if (it == endpoints_.end()) return false;
  AttachedEndpoint& endpoint = it->second;
  if (endpoint.group == new_group) return true;

  const auto old_key = group_key(endpoint.vn, endpoint.group);
  const auto ref = group_refcounts_.find(old_key);
  if (ref != group_refcounts_.end() && --ref->second == 0) {
    group_refcounts_.erase(ref);
    sgacl_.remove_destination_rules(endpoint.vn, endpoint.group);
    pending_rule_downloads_.erase(old_key);
    if (release_group_) release_group_(endpoint.vn, endpoint.group);
  }

  endpoint.group = new_group;
  const net::VnEid ip_eid{endpoint.vn, net::Eid{endpoint.ip}};
  local_.retag(ip_eid, new_group);
  if (endpoint.ipv6) {
    local_.retag(net::VnEid{endpoint.vn, net::Eid{*endpoint.ipv6}}, new_group);
  }
  if (endpoint.register_mac) {
    local_.retag(net::VnEid{endpoint.vn, net::Eid{endpoint.mac}}, new_group);
  }

  if (++group_refcounts_[group_key(endpoint.vn, new_group)] == 1 && download_rules_) {
    try_download_rules(endpoint.vn, new_group);
  }
  register_eid(ip_eid, new_group);  // refresh the mapping's group tag
  return true;
}

void EdgeRouter::try_download_rules(net::VnId vn, net::GroupId group) {
  if (!download_rules_) return;
  if (const auto rules = download_rules_(vn, group)) {
    sgacl_.install_destination_rules(vn, group, *rules);
    pending_rule_downloads_.erase(group_key(vn, group));
    return;
  }
  // Policy server unreachable: the group stays unprovisioned (the SGACL
  // fail mode decides what its traffic gets) and a retry is booked.
  ++counters_.rule_download_failures;
  pending_rule_downloads_[group_key(vn, group)] = {vn, group};
  maybe_schedule_rule_retry();
}

void EdgeRouter::maybe_schedule_rule_retry() {
  if (config_.rule_retry_interval.count() == 0 || rule_retry_armed_) return;
  if (pending_rule_downloads_.empty()) return;
  rule_retry_armed_ = true;
  simulator_.schedule_after(config_.rule_retry_interval, [this] {
    rule_retry_armed_ = false;
    const auto snapshot = pending_rule_downloads_;  // retries mutate the set
    for (const auto& [key, pair] : snapshot) {
      if (!group_refcounts_.contains(key)) {
        pending_rule_downloads_.erase(key);  // group left while we waited
        continue;
      }
      ++counters_.rule_download_retries;
      try_download_rules(pair.first, pair.second);
    }
    maybe_schedule_rule_retry();  // re-arm while failures remain
  });
}

const AttachedEndpoint* EdgeRouter::find_endpoint(const net::MacAddress& mac) const {
  const auto it = endpoints_.find(mac);
  return it == endpoints_.end() ? nullptr : &it->second;
}

const AttachedEndpoint* EdgeRouter::find_endpoint(const net::VnEid& eid) const {
  const auto it = eid_to_mac_.find(eid);
  if (it == eid_to_mac_.end()) return nullptr;
  return find_endpoint(it->second);
}

// ---------------------------------------------------------------------------
// Ingress pipeline
// ---------------------------------------------------------------------------

void EdgeRouter::endpoint_transmit(const net::MacAddress& source_mac,
                                   const net::OverlayFrame& tagged_frame) {
  ++counters_.frames_from_endpoints;
  const AttachedEndpoint* source = find_endpoint(source_mac);
  if (!source) {
    ++counters_.no_route_drops;  // unauthenticated port: drop
    return;
  }

  // Access-VLAN check (§3.5 element i): the frame's tag must match the
  // port's VLAN (both absent counts as matching). The tag is then stripped
  // — VLANs are local to edge ports and never enter the overlay.
  if (tagged_frame.vlan_id != source->vlan) {
    ++counters_.vlan_drops;
    return;
  }
  net::OverlayFrame frame = tagged_frame;
  frame.vlan_id.reset();

  // Broadcast traffic is absorbed by the L2 gateway (§3.5): it never floods
  // the fabric.
  if (frame.destination_mac.is_broadcast()) {
    if (broadcast_handler_) broadcast_handler_(*this, *source, frame);
    return;
  }

  // Unicast ARP (gateway-converted requests, and replies) rides the L2
  // MAC-keyed pipeline.
  if (frame.is_arp()) {
    forward_by_mac(*source, frame);
    return;
  }

  const net::VnEid destination{source->vn, frame.destination_eid()};
  if (tracer_) tracer_->ingress(source->vn, frame, config_.name, simulator_.now());

  // Same-edge destination: run the egress pipeline directly.
  if (local_.lookup(destination) != nullptr) {
    ++counters_.locally_switched;
    if (tracer_) {
      tracer_->note(source->vn, frame, telemetry::HopKind::LocalSwitch, config_.name,
                    simulator_.now());
    }
    egress_deliver(destination, source->group, false, frame);
    return;
  }

  const lisp::MapCacheEntry* entry = cache_.lookup(destination, simulator_.now());
  if (entry != nullptr && !entry->negative() && !rloc_usable(entry->primary_rloc())) {
    // Mapping points at an RLOC the IGP says is gone (§5.1): bypass it and
    // ride the border default until the endpoint re-registers elsewhere.
    ++counters_.default_routed;
    if (tracer_) {
      tracer_->note(source->vn, frame, telemetry::HopKind::DefaultRoute, config_.name,
                    simulator_.now(), "rloc-fallback");
    }
    encap_to(config_.border_rloc, destination, source->group, false, frame);
    return;
  }
  if (entry != nullptr && !entry->negative()) {
    if (config_.enforce_on_ingress) {
      // §5.3 ablation: enforce here using the (possibly stale) cached group.
      if (sgacl_.evaluate(source->vn, source->group, entry->group) == policy::Action::Deny) {
        ++counters_.policy_drops;
        if (tracer_) {
          tracer_->note(source->vn, frame, telemetry::HopKind::SgaclDeny, config_.name,
                        simulator_.now(), "ingress");
        }
        return;
      }
      encap_to(entry->primary_rloc(), destination, source->group, true, frame);
      return;
    }
    encap_to(entry->primary_rloc(), destination, source->group, false, frame);
    return;
  }

  if (entry == nullptr) resolve(destination, false);
  if (!config_.default_route_fallback) {
    // Classic LISP (§3.2.2 ablation): nothing rides a default route while
    // the Map-Reply is outstanding. With a pending-packet queue configured
    // the flow's first packets wait for the reply instead of being lost;
    // negative entries (the EID truly is unknown) still drop.
    if (config_.pending_packet_limit > 0 && entry == nullptr) {
      auto& queue = pending_l3_[destination];
      if (queue.size() < config_.pending_packet_limit) {
        ++counters_.packets_parked;
        queue.emplace_back(source->group, frame);
        return;
      }
    }
    ++counters_.resolution_drops;
    if (tracer_) {
      tracer_->note(source->vn, frame, telemetry::HopKind::Drop, config_.name, simulator_.now(),
                    "resolution-pending");
    }
    return;
  }
  // Miss (or negative): default route to the border while resolution runs.
  ++counters_.default_routed;
  if (tracer_) {
    tracer_->note(source->vn, frame, telemetry::HopKind::DefaultRoute, config_.name,
                  simulator_.now(), entry == nullptr ? "cache-miss" : "negative-entry");
  }
  encap_to(config_.border_rloc, destination, source->group, false, frame);
}

// ---------------------------------------------------------------------------
// Egress pipeline
// ---------------------------------------------------------------------------

void EdgeRouter::receive_fabric_frame(const net::FabricFrame& frame) {
  ++counters_.decapsulated;
  if (tracer_ && !frame.inner.is_arp()) {
    tracer_->note(frame.vn, frame.inner, telemetry::HopKind::Decap, config_.name,
                  simulator_.now());
  }
  if (frame.inner.is_arp()) {
    // Unicast-converted ARP from an L2 gateway: deliver to the target MAC.
    const net::VnEid mac_eid{frame.vn, net::Eid{frame.inner.destination_mac}};
    if (const AttachedEndpoint* target = find_endpoint(mac_eid)) {
      ++counters_.frames_delivered;
      if (deliver_local_) deliver_local_(*target, frame.inner);
    } else {
      ++counters_.no_route_drops;
    }
    return;
  }

  const net::VnEid destination{frame.vn, frame.inner.destination_eid()};

  if (local_.lookup(destination) != nullptr) {
    egress_deliver(destination, frame.source_group, frame.policy_applied, frame.inner);
    return;
  }

  // Not local: the endpoint roamed away (or never was here). Tell the
  // sender to refresh (Fig. 6 step 2) and forward the traffic onward so it
  // is not lost (step 3).
  solicit(destination, frame.outer_source);

  net::OverlayFrame inner = frame.inner;
  if (inner.hop_limit() <= 1) {
    ++counters_.ttl_drops;  // transient edge<->border loop protection (§5.2)
    if (tracer_) {
      tracer_->note(frame.vn, inner, telemetry::HopKind::Drop, config_.name, simulator_.now(),
                    "ttl");
    }
    return;
  }
  inner.set_hop_limit(static_cast<std::uint8_t>(inner.hop_limit() - 1));

  const lisp::MapCacheEntry* entry = cache_.lookup(destination, simulator_.now());
  if (entry != nullptr && !entry->negative() && entry->primary_rloc() != config_.rloc) {
    ++counters_.stale_forwards;
    if (tracer_) {
      tracer_->note(frame.vn, inner, telemetry::HopKind::StaleForward, config_.name,
                    simulator_.now());
    }
    encap_to(entry->primary_rloc(), destination, frame.source_group, frame.policy_applied,
             inner);
    return;
  }
  if (entry == nullptr) resolve(destination, false);
  if (is_border(frame.outer_source)) {
    // Came *from* a border and we have no better idea: bouncing it back
    // would loop (§5.2); hold the line and drop after resolution kicks in.
    ++counters_.no_route_drops;
    if (tracer_) {
      tracer_->note(frame.vn, inner, telemetry::HopKind::Drop, config_.name, simulator_.now(),
                    "no-route");
    }
    return;
  }
  ++counters_.default_routed;
  encap_to(config_.border_rloc, destination, frame.source_group, frame.policy_applied, inner);
}

void EdgeRouter::egress_deliver(const net::VnEid& destination, net::GroupId source_group,
                                bool policy_already_applied, const net::OverlayFrame& frame) {
  // Stage 1: VRF lookup -> (port, destination GroupId).
  const LocalEntry* entry = local_.lookup(destination);
  assert(entry != nullptr);

  // Stage 2: exact-match group ACL, unless already enforced upstream.
  if (!policy_already_applied &&
      sgacl_.evaluate(destination.vn, source_group, entry->group) == policy::Action::Deny) {
    ++counters_.policy_drops;
    if (tracer_) {
      tracer_->note(destination.vn, frame, telemetry::HopKind::SgaclDeny, config_.name,
                    simulator_.now(), "stage2");
    }
    return;
  }
  if (tracer_) {
    tracer_->note(destination.vn, frame, telemetry::HopKind::SgaclPermit, config_.name,
                  simulator_.now(), policy_already_applied ? "policy-bit" : "stage2");
  }

  const AttachedEndpoint* endpoint = find_endpoint(destination);
  assert(endpoint != nullptr);
  ++counters_.frames_delivered;
  if (tracer_) {
    tracer_->note(destination.vn, frame, telemetry::HopKind::Deliver, config_.name,
                  simulator_.now());
  }
  if (deliver_local_) {
    if (endpoint->vlan) {
      // Re-apply the destination port's access VLAN (§3.5 element i).
      net::OverlayFrame tagged = frame;
      tagged.vlan_id = endpoint->vlan;
      deliver_local_(*endpoint, tagged);
    } else {
      deliver_local_(*endpoint, frame);
    }
  }
}

// ---------------------------------------------------------------------------
// Encapsulation and control plane
// ---------------------------------------------------------------------------

void EdgeRouter::encap_to(net::Ipv4Address rloc, const net::VnEid& destination,
                          net::GroupId source_group, bool policy_applied,
                          const net::OverlayFrame& frame) {
  if (tracer_) {
    std::string detail = "to ";
    detail += rloc.to_string();
    tracer_->note(destination.vn, frame, telemetry::HopKind::Encap, config_.name,
                  simulator_.now(), detail);
  }
  net::FabricFrame out;
  out.outer_source = config_.rloc;
  out.outer_destination = rloc;
  out.vn = destination.vn;
  out.source_group = source_group;
  out.policy_applied = policy_applied;
  out.inner = frame;
  ++counters_.encapsulated;
  if (send_data_) send_data_(out);
}

void EdgeRouter::resolve(const net::VnEid& eid, bool smr_invoked, std::uint64_t trace) {
  if (!send_map_request_) return;
  if (pending_requests_.contains(eid)) return;
  pending_requests_[eid] = PendingRequest{next_nonce_++, config_.map_request_retries,
                                          smr_invoked, trace, config_.map_request_timeout};
  transmit_map_request(eid);
}

void EdgeRouter::transmit_map_request(const net::VnEid& eid) {
  const auto it = pending_requests_.find(eid);
  if (it == pending_requests_.end()) return;  // answered meanwhile

  lisp::MapRequest request;
  request.nonce = it->second.nonce;
  request.eid = eid;
  request.itr_rloc = config_.rloc;
  request.smr_invoked = it->second.smr_invoked;
  request.trace = it->second.trace;
  ++counters_.map_requests_sent;
  send_map_request_(request);

  // Arm the retransmission timer: fires only if still unanswered. When no
  // retries remain, the timer's job is to clear the pending entry so a
  // later packet can retrigger resolution. Each retransmit backs off with
  // decorrelated jitter so loss-induced storms spread out.
  const std::uint64_t nonce = it->second.nonce;
  auto retransmit = [this, eid, nonce] {
    const auto pending = pending_requests_.find(eid);
    if (pending == pending_requests_.end()) return;
    if (pending->second.nonce != nonce) return;  // superseded by a newer attempt
    if (pending->second.retries_left == 0) {
      // Out of retries: give up so a later packet can retrigger resolution.
      pending_requests_.erase(pending);
      drop_parked(eid);
      return;
    }
    --pending->second.retries_left;
    pending->second.nonce = next_nonce_++;
    pending->second.timeout = next_backoff(pending->second.timeout, config_.map_request_timeout,
                                           config_.map_request_timeout_cap);
    ++counters_.map_request_retries;
    transmit_map_request(eid);
  };
  // Per-resolution timer: must stay in the scheduler's inline buffer. If a
  // future capture (a Packet, a MapReply) pushes it past the SBO threshold,
  // fail the build here instead of silently allocating per miss.
  static_assert(sim::InlineAction::fits_inline<decltype(retransmit)>,
                "map-request retransmit timer must not heap-allocate");
  it->second.timer = simulator_.schedule_after(it->second.timeout, std::move(retransmit));
}

void EdgeRouter::receive_map_request_busy(const net::VnEid& eid, sim::Duration retry_after) {
  const auto it = pending_requests_.find(eid);
  if (it == pending_requests_.end()) return;  // answered (or given up) meanwhile
  ++counters_.server_busy;
  simulator_.cancel(it->second.timer);
  if (it->second.retries_left == 0) {
    pending_requests_.erase(it);
    drop_parked(eid);
    return;
  }
  --it->second.retries_left;
  it->second.nonce = next_nonce_++;
  // Honor the server's retry-after instead of the local RTO — but jitter
  // it: every shed client hears the same hint, and retrying at the exact
  // deadline re-synchronizes the stampede the shed was deflecting.
  it->second.timer = simulator_.schedule_after(jittered_retry_after(retry_after),
                                               [this, eid] { transmit_map_request(eid); });
}

void EdgeRouter::receive_map_register_busy(const net::VnEid& eid, sim::Duration retry_after) {
  const auto it = pending_registers_.find(eid);
  if (it == pending_registers_.end()) return;  // acked or abandoned meanwhile
  ++counters_.server_busy;
  simulator_.cancel(it->second.timer);
  if (it->second.retries_left == 0) {
    pending_registers_.erase(it);
    return;
  }
  --it->second.retries_left;
  it->second.timer = simulator_.schedule_after(jittered_retry_after(retry_after),
                                               [this, eid] { transmit_map_register(eid); });
}

sim::Duration EdgeRouter::jittered_retry_after(sim::Duration retry_after) {
  if (!config_.retransmit_jitter) return retry_after;
  // Uniform in [retry_after, 3*retry_after): never earlier than the
  // server's hint, spread enough that shed peers do not re-collide.
  return sim::decorrelated_backoff(rng_, retry_after, retry_after, retry_after * 3);
}

void EdgeRouter::drop_parked(const net::VnEid& eid) {
  const auto it = pending_l3_.find(eid);
  if (it == pending_l3_.end()) return;
  counters_.resolution_drops += it->second.size();
  pending_l3_.erase(it);
}

void EdgeRouter::solicit(const net::VnEid& eid, net::Ipv4Address sender_rloc) {
  if (!send_smr_ || sender_rloc == config_.rloc) return;
  const sim::SimTime now = simulator_.now();
  auto& per_sender = last_smr_[eid];
  const auto it = per_sender.find(sender_rloc);
  if (it != per_sender.end() && now - it->second < config_.smr_min_interval) return;
  per_sender[sender_rloc] = now;
  ++counters_.smr_sent;
  send_smr_(sender_rloc, lisp::SolicitMapRequest{eid, config_.rloc});
}

void EdgeRouter::register_eid(const net::VnEid& eid, net::GroupId group) {
  send_register(eid, group, config_.register_ttl_seconds);
}

void EdgeRouter::send_register(const net::VnEid& eid, net::GroupId group,
                               std::uint32_t ttl_seconds) {
  if (!send_map_register_) return;
  if (ttl_seconds != 0) ++counters_.registers_sent;  // withdrawals not counted

  if (config_.map_register_retries == 0) {
    // Classic fire-and-forget registration.
    lisp::MapRegister reg;
    reg.nonce = next_nonce_++;
    reg.eid = eid;
    reg.rlocs = {net::Rloc{config_.rloc}};
    reg.ttl_seconds = ttl_seconds;
    if (ttl_seconds != 0) reg.group = group.value();
    send_map_register_(reg);
    return;
  }

  // Reliable registration: book (or replace) the pending entry and
  // retransmit until the Map-Notify ack comes back. A fresh registration
  // for an EID supersedes any pending one (latest intent wins).
  auto [it, inserted] = pending_registers_.try_emplace(eid);
  PendingRegister& pending = it->second;
  if (!inserted) simulator_.cancel(pending.timer);
  pending.nonce = next_nonce_++;
  pending.group = group;
  pending.ttl_seconds = ttl_seconds;
  pending.retries_left = config_.map_register_retries;
  pending.timeout = config_.map_register_timeout;
  transmit_map_register(eid);
}

void EdgeRouter::transmit_map_register(const net::VnEid& eid) {
  const auto it = pending_registers_.find(eid);
  if (it == pending_registers_.end()) return;
  PendingRegister& pending = it->second;

  lisp::MapRegister reg;
  reg.nonce = pending.nonce;  // same nonce on every retransmit: acks match any copy
  reg.eid = eid;
  reg.rlocs = {net::Rloc{config_.rloc}};
  reg.ttl_seconds = pending.ttl_seconds;
  if (pending.ttl_seconds != 0) reg.group = pending.group.value();
  send_map_register_(reg);

  auto retransmit = [this, eid] {
    const auto entry = pending_registers_.find(eid);
    if (entry == pending_registers_.end()) return;
    if (entry->second.retries_left == 0) {
      // Out of retries. Keep nothing: the soft-state refresh timer (or the
      // next attach) re-registers the EID.
      pending_registers_.erase(entry);
      return;
    }
    --entry->second.retries_left;
    entry->second.timeout = next_backoff(entry->second.timeout, config_.map_register_timeout,
                                         config_.map_register_timeout_cap);
    ++counters_.map_register_retries;
    transmit_map_register(eid);
  };
  static_assert(sim::InlineAction::fits_inline<decltype(retransmit)>,
                "map-register retransmit timer must not heap-allocate");
  pending.timer = simulator_.schedule_after(pending.timeout, std::move(retransmit));
}

void EdgeRouter::abandon_pending_register(const net::VnEid& eid) {
  const auto it = pending_registers_.find(eid);
  if (it == pending_registers_.end()) return;
  simulator_.cancel(it->second.timer);
  pending_registers_.erase(it);
}

sim::Duration EdgeRouter::next_backoff(sim::Duration current, sim::Duration initial,
                                       sim::Duration cap) {
  if (config_.retransmit_jitter) {
    // Decorrelated jitter: grows on average, never below the initial RTO,
    // and desynchronizes retransmit storms across routers.
    return sim::decorrelated_backoff(rng_, current, initial, cap);
  }
  const double next_ns = std::min(static_cast<double>(current.count()) *
                                      config_.retransmit_backoff,
                                  static_cast<double>(cap.count()));
  return sim::Duration{static_cast<std::int64_t>(next_ns)};
}

void EdgeRouter::maybe_schedule_probe_sweep() {
  if (!config_.rloc_probing || !send_probe_ || probe_sweep_armed_) return;
  if (cache_.positive_size() == 0) return;
  probe_sweep_armed_ = true;
  simulator_.schedule_after(config_.probe_interval, [this] {
    probe_sweep_armed_ = false;
    run_probe_sweep();
    maybe_schedule_probe_sweep();  // re-arm while positive entries remain
  });
}

void EdgeRouter::run_probe_sweep() {
  // Collect the distinct RLOCs the cache currently points at.
  std::unordered_set<net::Ipv4Address> rlocs;
  cache_.walk([&rlocs](const net::VnEid&, const lisp::MapCacheEntry& entry) {
    if (!entry.negative()) rlocs.insert(entry.primary_rloc());
  });
  for (const net::Ipv4Address rloc : rlocs) {
    ++counters_.probes_sent;
    send_probe_(rloc, [this, rloc](bool alive) {
      if (alive) {
        down_rlocs_.erase(rloc);
        return;
      }
      ++counters_.probes_failed;
      down_rlocs_.insert(rloc);
      counters_.rloc_fallbacks += cache_.invalidate_rloc(rloc);
    });
  }
}

void EdgeRouter::receive_map_reply(const lisp::MapReply& reply) {
  const auto pending = pending_requests_.find(reply.eid);
  if (pending != pending_requests_.end()) {
    simulator_.cancel(pending->second.timer);
    pending_requests_.erase(pending);
  }
  cache_.install(reply.eid, reply, simulator_.now());
  maybe_schedule_probe_sweep();

  // Flush any L3 frames parked while this EID resolved (classic-LISP mode
  // with a pending-packet queue). A negative reply drops them: the EID is
  // genuinely unknown and the negative cache entry stops re-resolution.
  const auto l3 = pending_l3_.find(reply.eid);
  if (l3 != pending_l3_.end()) {
    auto held = std::move(l3->second);
    pending_l3_.erase(l3);
    const lisp::MapCacheEntry* entry = cache_.lookup(reply.eid, simulator_.now());
    if (entry != nullptr && !entry->negative()) {
      for (const auto& [group, frame] : held) {
        ++counters_.parked_flushed;
        encap_to(entry->primary_rloc(), reply.eid, group, false, frame);
      }
    } else {
      counters_.resolution_drops += held.size();
    }
  }

  // Flush any L2 frames parked on this EID.
  const auto parked = pending_l2_.find(reply.eid);
  if (parked == pending_l2_.end()) return;
  auto frames = std::move(parked->second);
  pending_l2_.erase(parked);
  if (reply.negative()) return;  // target unknown: parked frames are dropped
  for (const auto& [source_mac, frame] : frames) {
    if (const AttachedEndpoint* source = find_endpoint(source_mac)) {
      forward_by_mac(*source, frame);
    }
  }
}

void EdgeRouter::forward_by_mac(const AttachedEndpoint& source, const net::OverlayFrame& frame) {
  const net::VnEid destination{source.vn, net::Eid{frame.destination_mac}};

  if (const LocalEntry* entry = local_.lookup(destination)) {
    // Local L2 delivery still passes micro-segmentation.
    if (sgacl_.evaluate(source.vn, source.group, entry->group) == policy::Action::Deny) {
      ++counters_.policy_drops;
      return;
    }
    if (const AttachedEndpoint* target = find_endpoint(destination)) {
      ++counters_.frames_delivered;
      ++counters_.locally_switched;
      if (deliver_local_) deliver_local_(*target, frame);
    }
    return;
  }

  const lisp::MapCacheEntry* entry = cache_.lookup(destination, simulator_.now());
  if (entry != nullptr && !entry->negative()) {
    encap_to(entry->primary_rloc(), destination, source.group, false, frame);
    return;
  }
  if (entry != nullptr) {
    ++counters_.no_route_drops;  // negative-cached MAC: nothing to do
    return;
  }
  resolve(destination, false);
  auto& queue = pending_l2_[destination];
  constexpr std::size_t kMaxParkedPerEid = 8;
  if (queue.size() < kMaxParkedPerEid) {
    queue.emplace_back(source.mac, frame);
  } else {
    ++counters_.no_route_drops;
  }
}

void EdgeRouter::transmit_l2(const AttachedEndpoint& source, const net::OverlayFrame& frame,
                             net::Ipv4Address target_rloc) {
  const net::VnEid destination{source.vn, net::Eid{frame.destination_mac}};
  encap_to(target_rloc, destination, source.group, false, frame);
}

bool EdgeRouter::receive_map_notify(const lisp::MapNotify& notify) {
  // Split-brain fence: a notify from an older election epoch comes from a
  // deposed primary — neither its ack (the retransmit keeps running until
  // the real leader answers) nor its mobility payload may be believed.
  if (notify.epoch != 0) {
    if (notify.epoch < control_epoch_) {
      ++counters_.stale_epoch_rejected;
      return false;
    }
    control_epoch_ = notify.epoch;
  }
  // Reliable-registration ack: a notify whose nonce matches a pending
  // register acknowledges it — consume it, never install it as a mapping.
  const auto pending = pending_registers_.find(notify.eid);
  if (pending != pending_registers_.end() && pending->second.nonce == notify.nonce) {
    simulator_.cancel(pending->second.timer);
    pending_registers_.erase(pending);
    ++counters_.registers_acked;
    return true;
  }
  // A duplicate ack for our *own* still-attached endpoint (retransmit
  // crossed the first ack on the wire) must not masquerade as a mobility
  // update either.
  if (local_.lookup(notify.eid) != nullptr) return true;

  // Fig. 5 steps 2-3: the mapping moved; cache the new location so in-flight
  // traffic for the roamed endpoint is forwarded to its new edge.
  if (notify.rlocs.empty()) {
    cache_.invalidate(notify.eid);
    return true;
  }
  cache_.install(notify.eid, notify.rlocs, config_.register_ttl_seconds, simulator_.now());
  maybe_schedule_probe_sweep();
  return true;
}

void EdgeRouter::receive_smr(const lisp::SolicitMapRequest& smr) {
  // Our cached mapping for this EID is stale: drop it and re-resolve now.
  ++counters_.smr_received;
  cache_.invalidate(smr.eid);
  resolve(smr.eid, true, smr.trace);
}

void EdgeRouter::on_rloc_reachability(net::Ipv4Address rloc, bool reachable) {
  if (reachable) {
    down_rlocs_.erase(rloc);
    reselect_border();  // fail back once the primary border returns
    return;
  }
  down_rlocs_.insert(rloc);
  // §5.1: fall back to the border default route until the EIDs re-register.
  counters_.rloc_fallbacks += cache_.invalidate_rloc(rloc);
  reselect_border();  // repoint the default route if a border just died
}

void EdgeRouter::set_border_rlocs(std::vector<net::Ipv4Address> rlocs) {
  border_rlocs_ = std::move(rlocs);
  if (!border_rlocs_.empty()) config_.border_rloc = border_rlocs_.front();
  reselect_border();
}

void EdgeRouter::reselect_border() {
  if (border_rlocs_.size() < 2) return;  // nothing to fail over to
  // First live candidate wins; with everything down, stick to the primary
  // (any choice blackholes equally, and this makes recovery deterministic).
  net::Ipv4Address desired = border_rlocs_.front();
  for (const net::Ipv4Address candidate : border_rlocs_) {
    if (rloc_usable(candidate)) {
      desired = candidate;
      break;
    }
  }
  if (desired == config_.border_rloc) return;
  if (desired == border_rlocs_.front()) {
    ++counters_.border_failbacks;
  } else {
    ++counters_.border_failovers;
  }
  config_.border_rloc = desired;
}

bool EdgeRouter::is_border(net::Ipv4Address rloc) const {
  if (rloc == config_.border_rloc) return true;
  return std::find(border_rlocs_.begin(), border_rlocs_.end(), rloc) != border_rlocs_.end();
}

void EdgeRouter::install_rules(net::VnId vn, net::GroupId destination,
                               const std::vector<policy::Rule>& rules) {
  sgacl_.install_destination_rules(vn, destination, rules);
  // A server push satisfies any pending download retry for the group.
  pending_rule_downloads_.erase(group_key(vn, destination));
}

void EdgeRouter::register_metrics(telemetry::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  const auto add = [&](const char* leaf, const std::uint64_t& field) {
    registry.register_counter(telemetry::join(prefix, leaf), [&field] { return field; });
  };
  add("frames_from_endpoints", counters_.frames_from_endpoints);
  add("frames_delivered", counters_.frames_delivered);
  add("encapsulated", counters_.encapsulated);
  add("decapsulated", counters_.decapsulated);
  add("locally_switched", counters_.locally_switched);
  add("default_routed", counters_.default_routed);
  add("map_requests_sent", counters_.map_requests_sent);
  add("registers_sent", counters_.registers_sent);
  add("smr_sent", counters_.smr_sent);
  add("smr_received", counters_.smr_received);
  add("stale_forwards", counters_.stale_forwards);
  add("policy_drops", counters_.policy_drops);
  add("ttl_drops", counters_.ttl_drops);
  add("no_route_drops", counters_.no_route_drops);
  add("rloc_fallbacks", counters_.rloc_fallbacks);
  add("probes_sent", counters_.probes_sent);
  add("probes_failed", counters_.probes_failed);
  add("map_request_retries", counters_.map_request_retries);
  add("map_register_retries", counters_.map_register_retries);
  add("registers_acked", counters_.registers_acked);
  add("resolution_drops", counters_.resolution_drops);
  add("vlan_drops", counters_.vlan_drops);
  add("server_busy", counters_.server_busy);
  add("packets_parked", counters_.packets_parked);
  add("parked_flushed", counters_.parked_flushed);
  add("border_failovers", counters_.border_failovers);
  add("border_failbacks", counters_.border_failbacks);
  add("rule_download_failures", counters_.rule_download_failures);
  add("rule_download_retries", counters_.rule_download_retries);
  add("stale_epoch_rejected", counters_.stale_epoch_rejected);
  registry.register_gauge(telemetry::join(prefix, "fib_size"),
                          [this] { return static_cast<double>(fib_size()); });
  registry.register_gauge(telemetry::join(prefix, "endpoints"),
                          [this] { return static_cast<double>(endpoints_.size()); });
  cache_.register_metrics(registry, telemetry::join(prefix, "map_cache"));
  sgacl_.register_metrics(registry, telemetry::join(prefix, "sgacl"));
}

void EdgeRouter::reboot() {
  cache_.clear();
  local_.clear();
  sgacl_.clear();
  endpoints_.clear();
  eid_to_mac_.clear();
  group_refcounts_.clear();
  for (auto& [eid, pending] : pending_requests_) simulator_.cancel(pending.timer);
  pending_requests_.clear();
  for (auto& [eid, pending] : pending_registers_) simulator_.cancel(pending.timer);
  pending_registers_.clear();
  last_smr_.clear();
  pending_l2_.clear();
  pending_l3_.clear();
  pending_rule_downloads_.clear();
}

}  // namespace sda::dataplane
