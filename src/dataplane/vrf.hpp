// Per-VN virtual routing and forwarding table for locally attached
// endpoints.
//
// Each entry maps an overlay EID to the switch port it lives behind plus
// the endpoint's GroupId — the (Overlay IP, GroupId) association the egress
// pipeline's first stage resolves (paper Fig. 4). Entries are created by
// host onboarding and removed on detach, which is what keeps the GroupId
// fresh under egress enforcement (§5.3).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "net/eid.hpp"
#include "net/types.hpp"
#include "trie/patricia.hpp"

namespace sda::dataplane {

using PortId = std::uint16_t;

struct LocalEntry {
  PortId port = 0;
  net::GroupId group;
  net::MacAddress mac;  // for L2 delivery / ARP answers
  friend bool operator==(const LocalEntry&, const LocalEntry&) = default;
};

/// All VRFs of one router, keyed by VN. IPv4/IPv6/MAC EIDs share a VRF.
class VrfSet {
 public:
  /// Installs (or replaces) a local endpoint entry.
  void install(const net::VnEid& eid, const LocalEntry& entry);

  /// Removes an entry; true if present.
  bool remove(const net::VnEid& eid);

  /// Exact host lookup within the VN.
  [[nodiscard]] const LocalEntry* lookup(const net::VnEid& eid) const;

  /// Updates just the GroupId of an existing entry (re-authentication after
  /// a policy change); true if the entry exists.
  bool retag(const net::VnEid& eid, net::GroupId group);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t size(net::VnId vn) const;

  void walk(const std::function<void(const net::VnEid&, const LocalEntry&)>& visit) const;

  void clear();

 private:
  struct Tables {
    trie::PatriciaTrie<LocalEntry> v4;
    trie::PatriciaTrie<LocalEntry> v6;
    trie::PatriciaTrie<LocalEntry> mac;

    [[nodiscard]] trie::PatriciaTrie<LocalEntry>& family(net::EidFamily f) {
      switch (f) {
        case net::EidFamily::Ipv4: return v4;
        case net::EidFamily::Ipv6: return v6;
        case net::EidFamily::Mac: return mac;
      }
      return v4;
    }
  };

  std::map<net::VnId, Tables> vrfs_;
};

}  // namespace sda::dataplane
