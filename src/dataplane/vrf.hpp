// Per-VN virtual routing and forwarding table for locally attached
// endpoints.
//
// Each entry maps an overlay EID to the switch port it lives behind plus
// the endpoint's GroupId — the (Overlay IP, GroupId) association the egress
// pipeline's first stage resolves (paper Fig. 4). Entries are created by
// host onboarding and removed on detach, which is what keeps the GroupId
// fresh under egress enforcement (§5.3).
//
// Lookups are exact host matches, so the table is a single open-addressed
// flat hash probed once on the combined (VN, EID) key — the previous
// std::map<VnId, three Patricia tries> layout cost a red-black descent plus
// a bit-trie walk per packet. Linear probing over a power-of-two slot
// vector keeps the probe sequence in one or two cache lines.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/eid.hpp"
#include "net/types.hpp"

namespace sda::dataplane {

using PortId = std::uint16_t;

struct LocalEntry {
  PortId port = 0;
  net::GroupId group;
  net::MacAddress mac;  // for L2 delivery / ARP answers
  friend bool operator==(const LocalEntry&, const LocalEntry&) = default;
};

/// All VRFs of one router, keyed by (VN, EID). IPv4/IPv6/MAC EIDs share a
/// VRF; VN isolation is part of the key, not a table-of-tables.
class VrfSet {
 public:
  /// Installs (or replaces) a local endpoint entry.
  void install(const net::VnEid& eid, const LocalEntry& entry);

  /// Removes an entry; true if present.
  bool remove(const net::VnEid& eid);

  /// Exact host lookup within the VN. The returned pointer is valid until
  /// the next install/remove/clear.
  [[nodiscard]] const LocalEntry* lookup(const net::VnEid& eid) const;

  /// Updates just the GroupId of an existing entry (re-authentication after
  /// a policy change); true if the entry exists.
  bool retag(const net::VnEid& eid, net::GroupId group);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t size(net::VnId vn) const;

  /// Visits every entry in deterministic (VN, family, EID) order.
  void walk(const std::function<void(const net::VnEid&, const LocalEntry&)>& visit) const;

  void clear();

 private:
  enum class SlotState : std::uint8_t { Empty, Occupied, Tombstone };

  struct Slot {
    net::VnEid key;
    LocalEntry value;
    SlotState state = SlotState::Empty;
  };

  /// Probe for `eid`: index of its occupied slot, or SIZE_MAX.
  [[nodiscard]] std::size_t find_slot(const net::VnEid& eid) const;

  /// Grows (or compacts tombstones) to keep the probe chains short.
  void rehash(std::size_t min_capacity);

  std::vector<Slot> slots_;       // power-of-two length, empty until first insert
  std::size_t size_ = 0;          // occupied
  std::size_t tombstones_ = 0;    // deleted-but-not-reclaimed
};

}  // namespace sda::dataplane
