#include "dataplane/border_router.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace sda::dataplane {

BorderRouter::BorderRouter(sim::Simulator& simulator, BorderRouterConfig config)
    : simulator_(simulator), config_(std::move(config)), sgacl_(config_.default_action) {}

bool BorderRouter::receive_publish(const lisp::Publish& publish) {
  // Split-brain fence: reject pushes from a deposed leader's epoch; a
  // *newer* epoch means the feed re-homed to a freshly elected leader, so
  // adopt it and pull a snapshot from the new authority (discarding this
  // update — the snapshot supersedes it).
  if (publish.epoch != 0) {
    if (publish.epoch < feed_epoch_) {
      ++counters_.stale_epoch_rejected;
      return false;
    }
    if (publish.epoch > feed_epoch_) {
      // First epoch observation (feed_epoch_ == 0) is the election layer
      // coming up mid-stream: the feed is still the same continuous
      // sequence, so adopt silently. A later term bump means the feed
      // re-homed to a new leader — discard and pull its snapshot.
      const bool rehomed = feed_epoch_ != 0;
      feed_epoch_ = publish.epoch;
      if (rehomed) {
        request_resync();
        return true;
      }
    }
  }
  if (publish.seq != 0) {
    // While a snapshot is in flight, individual updates are discarded: the
    // snapshot supersedes them, and any update it misses re-surfaces as a
    // gap on the next sequenced publish.
    if (resync_in_flight_) return true;
    if (publish.seq != next_publish_seq_) {
      ++counters_.out_of_sequence;
      request_resync();
      return true;
    }
    ++next_publish_seq_;
  }
  if (publish.withdrawal()) {
    if (synced_.erase(publish.eid) > 0) ++counters_.withdrawals_applied;
    return true;
  }
  lisp::MappingRecord record;
  record.rlocs = publish.rlocs;
  record.ttl_seconds = publish.ttl_seconds;
  synced_[publish.eid] = std::move(record);
  ++counters_.publishes_applied;
  return true;
}

void BorderRouter::bootstrap_sync(const lisp::MapServer& server) {
  synced_.clear();
  server.walk([this](const net::VnEid& eid, const lisp::MappingRecord& record) {
    synced_[eid] = record;
  });
}

void BorderRouter::apply_snapshot(
    const std::vector<std::pair<net::VnEid, lisp::MappingRecord>>& entries,
    std::uint64_t next_seq, std::uint64_t epoch) {
  synced_.clear();
  for (const auto& [eid, record] : entries) synced_[eid] = record;
  next_publish_seq_ = next_seq;
  feed_epoch_ = std::max(feed_epoch_, epoch);
  resync_in_flight_ = false;
  simulator_.cancel(resync_timer_);
  resync_timer_ = {};
  ++counters_.snapshots_applied;
}

void BorderRouter::request_resync() {
  ++counters_.resyncs_requested;
  resync_in_flight_ = true;
  if (request_resync_) request_resync_();
  // The snapshot request or reply can itself be lost; keep asking until a
  // snapshot lands (apply_snapshot cancels the retry).
  simulator_.cancel(resync_timer_);
  resync_timer_ = simulator_.schedule_after(config_.resync_retry, [this] {
    if (resync_in_flight_) request_resync();
  });
}

void BorderRouter::add_external_prefix(net::VnId vn, const net::Ipv4Prefix& prefix,
                                       net::GroupId group) {
  external_[vn.value()].insert(trie::BitKey::from_ipv4_prefix(prefix), ExternalRoute{group});
}

const BorderRouter::ExternalRoute* BorderRouter::external_route(
    const net::VnEid& destination) const {
  if (destination.eid.is_ipv4()) {
    const auto it = external_.find(destination.vn.value());
    if (it == external_.end()) return nullptr;
    const auto match =
        it->second.longest_match(trie::BitKey::from_ipv4(destination.eid.ipv4()));
    return match ? match->second : nullptr;
  }
  if (destination.eid.is_ipv6()) {
    const auto it = external_v6_.find(destination.vn.value());
    if (it == external_v6_.end()) return nullptr;
    const auto match =
        it->second.longest_match(trie::BitKey::from_ipv6(destination.eid.ipv6()));
    return match ? match->second : nullptr;
  }
  return nullptr;
}

void BorderRouter::add_external_prefix(net::VnId vn, const net::Ipv6Prefix& prefix,
                                       net::GroupId group) {
  external_v6_[vn.value()].insert(trie::BitKey::from_ipv6_prefix(prefix), ExternalRoute{group});
}

void BorderRouter::external_receive(net::VnId vn, net::GroupId source_group,
                                    const net::OverlayFrame& frame) {
  ++counters_.external_in;
  const net::VnEid destination{vn, frame.destination_eid()};
  const auto it = synced_.find(destination);
  if (it == synced_.end() || it->second.rlocs.empty()) {
    ++counters_.no_route_drops;
    return;
  }
  encap_to(it->second.primary_rloc(), vn, source_group, false, frame);
}

net::GroupId BorderRouter::rewritten_group(net::VnId vn, net::GroupId group) {
  const auto it = group_rewrites_.find((std::uint64_t{vn.value()} << 16) | group.value());
  if (it == group_rewrites_.end()) return group;
  ++counters_.group_rewrites;
  return it->second;
}

void BorderRouter::add_group_rewrite(net::VnId vn, net::GroupId from, net::GroupId to) {
  group_rewrites_[(std::uint64_t{vn.value()} << 16) | from.value()] = to;
}

bool BorderRouter::remove_group_rewrite(net::VnId vn, net::GroupId from) {
  return group_rewrites_.erase((std::uint64_t{vn.value()} << 16) | from.value()) > 0;
}

void BorderRouter::receive_fabric_frame(const net::FabricFrame& frame_in) {
  net::FabricFrame frame = frame_in;
  // Service insertion (§5.4): transit traffic may be re-tagged so the rest
  // of the chain applies a different policy.
  frame.source_group = rewritten_group(frame.vn, frame.source_group);
  if (frame.inner.is_arp()) {
    ++counters_.no_route_drops;  // ARP never crosses the border
    return;
  }
  const net::VnEid destination{frame.vn, frame.inner.destination_eid()};

  // Overlay endpoint known via the synchronized table? Hairpin to its edge.
  const auto it = synced_.find(destination);
  if (it != synced_.end() && !it->second.rlocs.empty()) {
    const net::Ipv4Address target = it->second.primary_rloc();
    if (target == config_.rloc) {
      ++counters_.no_route_drops;  // registered to us but not external: stale
      return;
    }
    net::OverlayFrame inner = frame.inner;
    if (inner.hop_limit() <= 1) {
      ++counters_.ttl_drops;  // edge<->border transient loop guard (§5.2)
      if (tracer_) {
        tracer_->note(frame.vn, inner, telemetry::HopKind::Drop, config_.name, simulator_.now(),
                      "ttl");
      }
      return;
    }
    inner.set_hop_limit(static_cast<std::uint8_t>(inner.hop_limit() - 1));
    ++counters_.hairpinned;
    if (tracer_) {
      std::string detail = "to ";
      detail += target.to_string();
      tracer_->note(frame.vn, inner, telemetry::HopKind::Hairpin, config_.name, simulator_.now(),
                    detail);
    }
    encap_to(target, frame.vn, frame.source_group, frame.policy_applied, inner);
    return;
  }

  // External destination (Internet / DC).
  if (const ExternalRoute* route = external_route(destination)) {
    if (!frame.policy_applied && !route->group.is_unknown() &&
        sgacl_.evaluate(frame.vn, frame.source_group, route->group) == policy::Action::Deny) {
      ++counters_.policy_drops;
      if (tracer_) {
        tracer_->note(frame.vn, frame.inner, telemetry::HopKind::SgaclDeny, config_.name,
                      simulator_.now(), "border-egress");
      }
      return;
    }
    ++counters_.external_out;
    if (tracer_) {
      tracer_->note(frame.vn, frame.inner, telemetry::HopKind::ExternalOut, config_.name,
                    simulator_.now());
    }
    if (deliver_external_) deliver_external_(destination, frame.inner);
    return;
  }

  ++counters_.no_route_drops;
  if (tracer_) {
    tracer_->note(frame.vn, frame.inner, telemetry::HopKind::Drop, config_.name,
                  simulator_.now(), "no-route");
  }
}

void BorderRouter::register_metrics(telemetry::MetricsRegistry& registry,
                                    const std::string& prefix) const {
  const auto add = [&](const char* leaf, const std::uint64_t& field) {
    registry.register_counter(telemetry::join(prefix, leaf), [&field] { return field; });
  };
  add("publishes_applied", counters_.publishes_applied);
  add("withdrawals_applied", counters_.withdrawals_applied);
  add("out_of_sequence", counters_.out_of_sequence);
  add("resyncs_requested", counters_.resyncs_requested);
  add("snapshots_applied", counters_.snapshots_applied);
  add("hairpinned", counters_.hairpinned);
  add("external_out", counters_.external_out);
  add("external_in", counters_.external_in);
  add("policy_drops", counters_.policy_drops);
  add("no_route_drops", counters_.no_route_drops);
  add("ttl_drops", counters_.ttl_drops);
  add("group_rewrites", counters_.group_rewrites);
  add("stale_epoch_rejected", counters_.stale_epoch_rejected);
  registry.register_gauge(telemetry::join(prefix, "fib_size"),
                          [this] { return static_cast<double>(fib_size()); });
  sgacl_.register_metrics(registry, telemetry::join(prefix, "sgacl"));
}

void BorderRouter::encap_to(net::Ipv4Address rloc, net::VnId vn, net::GroupId source_group,
                            bool policy_applied, const net::OverlayFrame& frame) {
  net::FabricFrame out;
  out.outer_source = config_.rloc;
  out.outer_destination = rloc;
  out.vn = vn;
  out.source_group = source_group;
  out.policy_applied = policy_applied;
  out.inner = frame;
  if (send_data_) send_data_(out);
}

}  // namespace sda::dataplane
