#include "dataplane/sgacl.hpp"

#include <vector>

#include "telemetry/metrics.hpp"

namespace sda::dataplane {

void Sgacl::install_destination_rules(net::VnId vn, net::GroupId destination,
                                      const std::vector<policy::Rule>& rules) {
  remove_destination_rules(vn, destination);
  for (const auto& rule : rules) {
    rules_[Key{vn.value(), rule.pair.source.value(), rule.pair.destination.value()}] =
        rule.action;
  }
  provisioned_.insert(DestKey{vn.value(), destination.value()});
}

void Sgacl::remove_destination_rules(net::VnId vn, net::GroupId destination) {
  std::vector<Key> doomed;
  for (const auto& [key, action] : rules_) {
    if (key.vn == vn.value() && key.dst == destination.value()) doomed.push_back(key);
  }
  for (const auto& key : doomed) rules_.erase(key);
  provisioned_.erase(DestKey{vn.value(), destination.value()});
}

bool Sgacl::provisioned(net::VnId vn, net::GroupId destination) const {
  return provisioned_.contains(DestKey{vn.value(), destination.value()});
}

void Sgacl::install_rule(net::VnId vn, const policy::Rule& rule) {
  rules_[Key{vn.value(), rule.pair.source.value(), rule.pair.destination.value()}] = rule.action;
}

policy::Action Sgacl::evaluate(net::VnId vn, net::GroupId source, net::GroupId destination) {
  policy::Action action = default_action_;
  if (source.is_unknown() || destination.is_unknown()) {
    action = policy::Action::Allow;
  } else {
    const auto it = rules_.find(Key{vn.value(), source.value(), destination.value()});
    if (it != rules_.end()) {
      action = it->second;
    } else if (fail_mode_ == PolicyFailMode::Closed && !provisioned(vn, destination)) {
      // The destination group's rules never arrived (policy-server outage):
      // fail closed rather than apply a default the operator never chose.
      action = policy::Action::Deny;
      ++counters_.fail_closed_drops;
    }
  }
  if (action == policy::Action::Allow) {
    ++counters_.permits;
  } else {
    ++counters_.drops;
  }
  return action;
}

std::size_t Sgacl::rule_count() const { return rules_.size(); }

void Sgacl::register_metrics(telemetry::MetricsRegistry& registry,
                             const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "permits"),
                            [this] { return counters_.permits; });
  registry.register_counter(telemetry::join(prefix, "drops"), [this] { return counters_.drops; });
  registry.register_counter(telemetry::join(prefix, "fail_closed_drops"),
                            [this] { return counters_.fail_closed_drops; });
  registry.register_gauge(telemetry::join(prefix, "rules"),
                          [this] { return static_cast<double>(rule_count()); });
}

void Sgacl::clear() {
  rules_.clear();
  provisioned_.clear();
}

}  // namespace sda::dataplane
