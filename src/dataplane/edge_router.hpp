// The SDA edge router (fabric edge node).
//
// Implements the four functions of paper §3.3: encap/decap of endpoint
// traffic, inter-VN isolation via VRFs, roaming detection with location
// update, and group-rule enforcement. The ingress and egress pipelines
// follow Fig. 4; the default route to the border absorbs map-cache misses
// (§3.2.2); data-triggered SMRs refresh stale senders (Fig. 6); underlay
// reachability tracking falls traffic back to the border on outages (§5.1);
// reboot semantics reproduce §5.2.
//
// The router is environment-agnostic: all I/O goes through injected hooks,
// so unit tests can drive it with plain lambdas and the fabric layer wires
// it to the simulator, the underlay, and the control-plane nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dataplane/sgacl.hpp"
#include "dataplane/vrf.hpp"
#include "lisp/map_cache.hpp"
#include "lisp/messages.hpp"
#include "net/packet.hpp"
#include "policy/matrix.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/path_trace.hpp"
#include "underlay/topology.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::dataplane {

struct EdgeRouterConfig {
  std::string name;
  net::Ipv4Address rloc;
  underlay::NodeId node = 0;
  net::Ipv4Address border_rloc;  // default-route target
  std::size_t map_cache_capacity = 0;
  /// Map-cache entry TTL requested on registration (paper default 1440 min).
  std::uint32_t register_ttl_seconds = 1440 * 60;
  /// Minimum spacing between SMRs for the same EID (rate limiting).
  sim::Duration smr_min_interval = std::chrono::seconds{1};
  /// §5.3 ablation: enforce SGACL on ingress instead of egress.
  bool enforce_on_ingress = false;
  policy::Action default_action = policy::Action::Allow;
  /// LISP RLOC probing (§5.1's "explicit probing" alternative to watching
  /// the IGP): periodically probe every RLOC the map-cache points at;
  /// unanswered probes purge the affected entries. The probe timer only
  /// runs while positive cache entries exist, so an idle simulator drains.
  bool rloc_probing = false;
  sim::Duration probe_interval = std::chrono::seconds{10};
  /// Map-Requests are retransmitted until answered (control messages can
  /// be lost to underlay outages); 0 retries = fire-and-forget. The timeout
  /// is the *initial* RTO; each retransmit backs off (see below).
  sim::Duration map_request_timeout = std::chrono::seconds{1};
  unsigned map_request_retries = 3;
  /// Retransmission backoff policy, shared by Map-Request and Map-Register
  /// timers. With jitter (default), the next RTO is drawn uniformly from
  /// [initial, 3 * previous] (decorrelated jitter) so retransmit storms
  /// desynchronize across edges; without it, a plain exponential with this
  /// multiplier. Both are capped.
  bool retransmit_jitter = true;
  double retransmit_backoff = 2.0;
  sim::Duration map_request_timeout_cap = std::chrono::seconds{8};
  /// Reliable Map-Register: keep retransmitting (with the same backoff
  /// policy) until the routing server's Map-Notify ack arrives or retries
  /// run out. 0 = classic fire-and-forget registration.
  unsigned map_register_retries = 0;
  sim::Duration map_register_timeout = std::chrono::seconds{1};
  sim::Duration map_register_timeout_cap = std::chrono::seconds{16};
  /// Seed for the retransmission-jitter RNG (mixed with the RLOC so edges
  /// decorrelate even with identical config).
  std::uint64_t seed = 0x5DA;
  /// Periodic re-registration of every attached endpoint (LISP soft-state
  /// refresh; pairs with MapServer::expire_registrations). 0 = disabled.
  /// The timer runs only while endpoints are attached.
  sim::Duration register_refresh_interval{0};
  /// §3.2.2 design decision: with the border default route, packets are
  /// forwarded (and hairpinned by the synchronized border) while the
  /// routing server answers. false models classic LISP behaviour — the
  /// first packets of a flow are dropped until the Map-Reply arrives.
  bool default_route_fallback = true;
  /// Without the border default route, park up to this many frames per
  /// unresolved EID instead of dropping them; parked frames flush when the
  /// positive Map-Reply lands. 0 = classic drop-until-resolved.
  std::size_t pending_packet_limit = 0;
  /// What traffic gets when its destination group's SGACL rules have not
  /// downloaded (policy-server outage): fall through (Open, legacy) or
  /// deny until the rules arrive (Closed).
  PolicyFailMode policy_fail_mode = PolicyFailMode::Open;
  /// Retry cadence for rule downloads the policy server refused (outage).
  /// The timer runs only while failed downloads are outstanding. 0 = never
  /// retry (rules arrive only via a later attach or a server push).
  sim::Duration rule_retry_interval = std::chrono::seconds{1};
};

/// A fully onboarded endpoint as the edge sees it.
struct AttachedEndpoint {
  net::MacAddress mac;
  net::Ipv4Address ip;
  std::optional<net::Ipv6Address> ipv6;  // SLAAC identity, when the VN has one
  net::VnId vn;
  net::GroupId group;
  PortId port = 0;
  std::string credential;
  bool register_mac = false;  // also index by MAC for L2 services (§3.5)
  /// Access VLAN on the edge port, if the port is tagged. VLANs never
  /// stretch across the fabric (§3.5 element i): the tag is validated and
  /// stripped at ingress and re-applied at egress.
  std::optional<std::uint16_t> vlan;
};

class EdgeRouter {
 public:
  // --- Environment hooks (wired by the fabric layer or by tests) ---------
  /// Data plane: transmit an encapsulated frame into the underlay.
  using SendData = std::function<void(const net::FabricFrame&)>;
  /// Control plane: send a Map-Request to the routing server.
  using SendMapRequest = std::function<void(const lisp::MapRequest&)>;
  /// Control plane: send a Map-Register to the routing server.
  using SendMapRegister = std::function<void(const lisp::MapRegister&)>;
  /// Control plane: send an SMR to another edge's RLOC.
  using SendSmr = std::function<void(net::Ipv4Address to, const lisp::SolicitMapRequest&)>;
  /// Local delivery: the frame reached its destination endpoint.
  using DeliverLocal = std::function<void(const AttachedEndpoint&, const net::OverlayFrame&)>;
  /// Rule download from the policy server (onboarding step 2). nullopt =
  /// the server is unreachable; the edge books a retry and the SGACL fail
  /// mode governs traffic in the meantime.
  using DownloadRules =
      std::function<std::optional<std::vector<policy::Rule>>(net::VnId,
                                                             net::GroupId destination)>;
  /// Tell the policy server this edge no longer hosts a group.
  using ReleaseGroup = std::function<void(net::VnId, net::GroupId)>;
  /// L2 service hook: an ARP (or other broadcast) frame needs gateway help.
  using BroadcastHandler =
      std::function<void(EdgeRouter&, const AttachedEndpoint&, const net::OverlayFrame&)>;
  /// RLOC-probe hook: probe `rloc`, answer asynchronously with liveness.
  using SendProbe = std::function<void(net::Ipv4Address rloc, std::function<void(bool)>)>;

  EdgeRouter(sim::Simulator& simulator, EdgeRouterConfig config);

  void set_send_data(SendData fn) { send_data_ = std::move(fn); }
  void set_send_map_request(SendMapRequest fn) { send_map_request_ = std::move(fn); }
  void set_send_map_register(SendMapRegister fn) { send_map_register_ = std::move(fn); }
  void set_send_smr(SendSmr fn) { send_smr_ = std::move(fn); }
  void set_deliver_local(DeliverLocal fn) { deliver_local_ = std::move(fn); }
  void set_download_rules(DownloadRules fn) { download_rules_ = std::move(fn); }
  void set_release_group(ReleaseGroup fn) { release_group_ = std::move(fn); }
  void set_broadcast_handler(BroadcastHandler fn) { broadcast_handler_ = std::move(fn); }
  void set_send_probe(SendProbe fn) { send_probe_ = std::move(fn); }

  [[nodiscard]] const EdgeRouterConfig& config() const { return config_; }
  [[nodiscard]] net::Ipv4Address rloc() const { return config_.rloc; }
  [[nodiscard]] const std::string& name() const { return config_.name; }

  /// Points the default route at a single border (set late, once borders
  /// exist). Equivalent to set_border_rlocs({rloc}).
  void set_border_rloc(net::Ipv4Address rloc) { set_border_rlocs({rloc}); }

  /// Ordered border candidates for the default route: the first is the
  /// primary. Underlay reachability transitions repoint the default route
  /// at the first live candidate (border failover, and fail-back when the
  /// primary returns).
  void set_border_rlocs(std::vector<net::Ipv4Address> rlocs);
  [[nodiscard]] net::Ipv4Address active_border_rloc() const { return config_.border_rloc; }

  // --- Endpoint lifecycle (driven by the onboarding state machine) -------

  /// Installs a fully authenticated endpoint: VRF entry, SGACL destination
  /// rules, and a Map-Register for its IP (and MAC if register_mac).
  void attach_endpoint(const AttachedEndpoint& endpoint);

  /// Removes an endpoint. `deregister` withdraws its mapping from the
  /// routing server (clean departure); roaming leaves the registration to
  /// be overwritten by the new edge.
  void detach_endpoint(const net::MacAddress& mac, bool deregister = false);

  /// Re-tags an attached endpoint after a policy-server group change
  /// (egress enforcement keeps the (IP, GroupId) pair fresh, §5.3).
  bool retag_endpoint(const net::MacAddress& mac, net::GroupId new_group);

  [[nodiscard]] const AttachedEndpoint* find_endpoint(const net::MacAddress& mac) const;
  [[nodiscard]] const AttachedEndpoint* find_endpoint(const net::VnEid& eid) const;
  [[nodiscard]] std::size_t endpoint_count() const { return endpoints_.size(); }

  // --- Data plane entry points -------------------------------------------

  /// A locally attached endpoint transmits a frame (ingress pipeline).
  void endpoint_transmit(const net::MacAddress& source_mac, const net::OverlayFrame& frame);

  /// An encapsulated frame arrives from the underlay (egress pipeline).
  void receive_fabric_frame(const net::FabricFrame& frame);

  /// Transmits an L2 frame straight to a known RLOC — used by the L2
  /// gateway after it resolved broadcast ARP into a unicast target (§3.5).
  void transmit_l2(const AttachedEndpoint& source, const net::OverlayFrame& frame,
                   net::Ipv4Address target_rloc);

  /// L2 (MAC-keyed) forwarding with resolve-and-buffer on cache miss: MAC
  /// EIDs have no border default route, so frames wait for the Map-Reply.
  void forward_by_mac(const AttachedEndpoint& source, const net::OverlayFrame& frame);

  // --- Control plane entry points ----------------------------------------

  void receive_map_reply(const lisp::MapReply& reply);
  /// Returns false iff the notify carried a stale election epoch and was
  /// fenced off (its ack/mobility payload was ignored).
  bool receive_map_notify(const lisp::MapNotify& notify);
  void receive_smr(const lisp::SolicitMapRequest& smr);

  /// Split-brain fence: the highest election epoch this edge has observed.
  /// Map-Notifies from an older epoch are rejected (a deposed primary must
  /// not ack registers). Advertised by the fabric on leader changes and
  /// learned from any newer-epoch notify.
  void observe_control_epoch(std::uint64_t epoch) {
    control_epoch_ = std::max(control_epoch_, epoch);
  }
  [[nodiscard]] std::uint64_t control_epoch() const { return control_epoch_; }

  /// The routing server shed our Map-Request (bounded admission): back off
  /// for its retry-after instead of the local RTO.
  void receive_map_request_busy(const net::VnEid& eid, sim::Duration retry_after);
  /// Same for a shed Map-Register.
  void receive_map_register_busy(const net::VnEid& eid, sim::Duration retry_after);

  /// Underlay reachability transition for a remote RLOC (§5.1).
  void on_rloc_reachability(net::Ipv4Address rloc, bool reachable);

  /// Installs pushed rules (policy-server rule update fan-out).
  void install_rules(net::VnId vn, net::GroupId destination,
                     const std::vector<policy::Rule>& rules);

  // --- Operational events --------------------------------------------------

  /// Cold reboot (§5.2): all caches, VRFs, endpoints and rules are lost.
  void reboot();

  // --- Introspection -------------------------------------------------------

  /// Overlay-to-underlay mappings currently held (the Fig. 9 FIB metric).
  [[nodiscard]] std::size_t fib_size() const { return cache_.positive_size(); }
  [[nodiscard]] lisp::MapCache& map_cache() { return cache_; }
  [[nodiscard]] const lisp::MapCache& map_cache() const { return cache_; }
  [[nodiscard]] VrfSet& vrf() { return local_; }
  [[nodiscard]] Sgacl& sgacl() { return sgacl_; }
  [[nodiscard]] const Sgacl& sgacl() const { return sgacl_; }

  struct Counters {
    std::uint64_t frames_from_endpoints = 0;
    std::uint64_t frames_delivered = 0;
    std::uint64_t encapsulated = 0;
    std::uint64_t decapsulated = 0;
    std::uint64_t locally_switched = 0;   // src and dst on this edge
    std::uint64_t default_routed = 0;     // sent to border on cache miss
    std::uint64_t map_requests_sent = 0;
    std::uint64_t registers_sent = 0;
    std::uint64_t smr_sent = 0;
    std::uint64_t smr_received = 0;
    std::uint64_t stale_forwards = 0;     // old-edge forwarding (Fig. 6 step 3)
    std::uint64_t policy_drops = 0;
    std::uint64_t ttl_drops = 0;          // transient-loop protection (§5.2)
    std::uint64_t no_route_drops = 0;
    std::uint64_t rloc_fallbacks = 0;     // cache entries purged on outage (§5.1)
    std::uint64_t probes_sent = 0;
    std::uint64_t probes_failed = 0;
    std::uint64_t map_request_retries = 0;
    std::uint64_t map_register_retries = 0;  // reliable-registration resends
    std::uint64_t registers_acked = 0;       // Map-Notify acks consumed
    std::uint64_t resolution_drops = 0;  // miss drops when no default route
    std::uint64_t vlan_drops = 0;        // access-VLAN mismatch at ingress (§3.5)
    std::uint64_t server_busy = 0;       // control messages shed by admission
    std::uint64_t packets_parked = 0;    // frames held while resolution runs
    std::uint64_t parked_flushed = 0;    // parked frames sent after the reply
    std::uint64_t border_failovers = 0;  // default route moved off the primary
    std::uint64_t border_failbacks = 0;  // default route back on the primary
    std::uint64_t rule_download_failures = 0;  // policy server unreachable
    std::uint64_t rule_download_retries = 0;   // retry attempts booked
    std::uint64_t stale_epoch_rejected = 0;    // notifies fenced (split-brain)
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Registers pull probes for every counter under `prefix` (e.g.
  /// "edge[3]") and delegates to the embedded map cache ("<prefix>.map_cache")
  /// and SGACL ("<prefix>.sgacl"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

  /// Attaches an opt-in packet path tracer (nullptr detaches). The tracer
  /// records hop-by-hop transit for armed flows; when no flow is armed the
  /// hooks reduce to a pointer test plus an empty-map check.
  void set_tracer(telemetry::PathTracer* tracer) { tracer_ = tracer; }

  // --- Assurance-plane leak probes (quiesce invariants) -------------------

  /// Frames currently parked awaiting resolution (L2 + L3 queues).
  [[nodiscard]] std::size_t parked_frame_count() const {
    std::size_t parked = 0;
    for (const auto& [eid, frames] : pending_l2_) parked += frames.size();
    for (const auto& [eid, frames] : pending_l3_) parked += frames.size();
    return parked;
  }
  /// Map-Requests still awaiting a reply.
  [[nodiscard]] std::size_t pending_request_count() const { return pending_requests_.size(); }
  /// Registrations still awaiting their Map-Notify ack.
  [[nodiscard]] std::size_t pending_register_count() const { return pending_registers_.size(); }
  /// Causal trace id riding the in-flight resolution for `eid` (0 if none).
  /// Lets the fabric tell whether an SMR's trace was adopted by the target.
  [[nodiscard]] std::uint64_t pending_request_trace(const net::VnEid& eid) const {
    const auto it = pending_requests_.find(eid);
    return it == pending_requests_.end() ? 0 : it->second.trace;
  }

 private:
  /// Egress pipeline stage 1+2 for a frame that is local here.
  void egress_deliver(const net::VnEid& destination, net::GroupId source_group,
                      bool policy_already_applied, const net::OverlayFrame& frame);

  /// Encapsulates towards `rloc` and transmits.
  void encap_to(net::Ipv4Address rloc, const net::VnEid& destination, net::GroupId source_group,
                bool policy_applied, const net::OverlayFrame& frame);

  /// Issues a Map-Request for `eid` unless one is already pending. A
  /// nonzero `trace` attributes the resolution to a causal trace (e.g. the
  /// SMR fan-out op that triggered it) and rides the Map-Request.
  void resolve(const net::VnEid& eid, bool smr_invoked, std::uint64_t trace = 0);

  /// Sends (or resends) the Map-Request for a pending resolution and arms
  /// the retransmission timer.
  void transmit_map_request(const net::VnEid& eid);

  /// Data-triggered SMR to a sender holding a stale mapping (rate-limited).
  void solicit(const net::VnEid& eid, net::Ipv4Address sender_rloc);

  /// (Re)arms the RLOC-probe timer if probing is enabled and the cache
  /// holds positive entries; self-disarms when the cache empties.
  void maybe_schedule_probe_sweep();
  void run_probe_sweep();

  /// (Re)arms the registration-refresh timer while endpoints are attached.
  void maybe_schedule_register_refresh();

  void register_eid(const net::VnEid& eid, net::GroupId group);

  /// Sends a (re-)registration or withdrawal (ttl 0). With reliable
  /// registration enabled this books a pending entry that retransmits
  /// until the Map-Notify ack arrives.
  void send_register(const net::VnEid& eid, net::GroupId group, std::uint32_t ttl_seconds);

  /// Transmits the pending registration for `eid` and arms its timer.
  void transmit_map_register(const net::VnEid& eid);

  /// Drops (and disarms) any pending registration state for `eid` — used
  /// when the endpoint detaches so a stale retransmit cannot overwrite the
  /// EID's new home.
  void abandon_pending_register(const net::VnEid& eid);

  /// Next retransmission timeout under the configured backoff policy.
  [[nodiscard]] sim::Duration next_backoff(sim::Duration current, sim::Duration initial,
                                           sim::Duration cap);

  /// A shed server's retry-after hint, de-synchronized: uniform in
  /// [retry_after, 3*retry_after) so the deflected stampede does not
  /// re-collide at the exact deadline. Identity with jitter disabled.
  [[nodiscard]] sim::Duration jittered_retry_after(sim::Duration retry_after);

  /// Downloads (vn, group)'s rules; on refusal books the pair for retry.
  void try_download_rules(net::VnId vn, net::GroupId group);
  /// (Re)arms the rule-retry timer while refused downloads are outstanding.
  void maybe_schedule_rule_retry();

  /// Drops (and counts) every frame parked on `eid` — resolution failed.
  void drop_parked(const net::VnEid& eid);

  /// Repoints the default route at the first live border candidate.
  void reselect_border();
  [[nodiscard]] bool is_border(net::Ipv4Address rloc) const;

  sim::Simulator& simulator_;
  EdgeRouterConfig config_;
  sim::Rng rng_;

  VrfSet local_;
  lisp::MapCache cache_;
  Sgacl sgacl_;

  /// RLOCs currently unreachable per the IGP (LISP RLOC liveness, §5.1):
  /// mappings towards them are bypassed in favour of the border default.
  [[nodiscard]] bool rloc_usable(net::Ipv4Address rloc) const {
    return !down_rlocs_.contains(rloc);
  }

  std::unordered_map<net::MacAddress, AttachedEndpoint> endpoints_;
  std::unordered_set<net::Ipv4Address> down_rlocs_;
  /// Ordered default-route candidates (front = primary); empty when the
  /// edge was wired with a single static border_rloc only.
  std::vector<net::Ipv4Address> border_rlocs_;
  std::unordered_map<net::VnEid, net::MacAddress> eid_to_mac_;
  // (vn, group) -> number of attached endpoints with that group.
  std::unordered_map<std::uint64_t, std::size_t> group_refcounts_;
  struct PendingRequest {
    std::uint64_t nonce = 0;
    unsigned retries_left = 0;
    bool smr_invoked = false;
    std::uint64_t trace = 0;   // causal trace id carried by the Map-Request
    sim::Duration timeout{0};  // current RTO (grows under backoff)
    sim::EventHandle timer;    // armed retransmit (cancelled by busy/reply)
  };
  std::unordered_map<net::VnEid, PendingRequest> pending_requests_;
  /// Registrations awaiting their Map-Notify ack (reliable Map-Register);
  /// mirrors pending_requests_. ttl_seconds 0 marks a pending withdrawal.
  struct PendingRegister {
    std::uint64_t nonce = 0;
    net::GroupId group;
    std::uint32_t ttl_seconds = 0;
    unsigned retries_left = 0;
    sim::Duration timeout{0};
    sim::EventHandle timer;
  };
  std::unordered_map<net::VnEid, PendingRegister> pending_registers_;
  /// SMR rate limiting per (EID, soliciting sender): every stale sender
  /// must be refreshed, but each at most once per interval.
  std::unordered_map<net::VnEid, std::unordered_map<net::Ipv4Address, sim::SimTime>> last_smr_;
  /// Frames parked while a MAC EID resolves (bounded per EID).
  std::unordered_map<net::VnEid, std::vector<std::pair<net::MacAddress, net::OverlayFrame>>>
      pending_l2_;
  /// L3 frames parked while resolution runs (classic-LISP mode with
  /// pending_packet_limit > 0); flushed on a positive Map-Reply, dropped
  /// on a negative one or when resolution gives up.
  std::unordered_map<net::VnEid, std::vector<std::pair<net::GroupId, net::OverlayFrame>>>
      pending_l3_;
  /// (vn, group) pairs whose rule download the policy server refused —
  /// retried on a timer while the group is still hosted here.
  std::unordered_map<std::uint64_t, std::pair<net::VnId, net::GroupId>> pending_rule_downloads_;
  std::uint64_t next_nonce_ = 1;
  /// Highest election epoch observed (0 until the fabric runs elections).
  std::uint64_t control_epoch_ = 0;

  bool probe_sweep_armed_ = false;
  bool register_refresh_armed_ = false;
  bool rule_retry_armed_ = false;

  SendData send_data_;
  SendProbe send_probe_;
  SendMapRequest send_map_request_;
  SendMapRegister send_map_register_;
  SendSmr send_smr_;
  DeliverLocal deliver_local_;
  DownloadRules download_rules_;
  ReleaseGroup release_group_;
  BroadcastHandler broadcast_handler_;

  Counters counters_;
  telemetry::PathTracer* tracer_ = nullptr;
};

}  // namespace sda::dataplane
