#include "dataplane/vrf.hpp"

#include <algorithm>

namespace sda::dataplane {

namespace {

constexpr std::size_t kMinCapacity = 16;

std::size_t probe_start(const net::VnEid& eid, std::size_t capacity) {
  return std::hash<net::VnEid>{}(eid) & (capacity - 1);
}

}  // namespace

std::size_t VrfSet::find_slot(const net::VnEid& eid) const {
  if (slots_.empty()) return SIZE_MAX;
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = probe_start(eid, slots_.size());
  while (true) {
    const Slot& s = slots_[i];
    if (s.state == SlotState::Empty) return SIZE_MAX;
    if (s.state == SlotState::Occupied && s.key == eid) return i;
    i = (i + 1) & mask;  // tombstones keep the chain alive
  }
}

void VrfSet::rehash(std::size_t min_capacity) {
  std::size_t capacity = kMinCapacity;
  while (capacity < min_capacity) capacity <<= 1;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(capacity, Slot{});
  tombstones_ = 0;
  const std::size_t mask = capacity - 1;
  for (Slot& s : old) {
    if (s.state != SlotState::Occupied) continue;
    std::size_t i = probe_start(s.key, capacity);
    while (slots_[i].state == SlotState::Occupied) i = (i + 1) & mask;
    slots_[i] = std::move(s);
  }
}

void VrfSet::install(const net::VnEid& eid, const LocalEntry& entry) {
  // Keep the table at most ~70% full (occupied + tombstones) so probe
  // chains stay short; 2x headroom over live entries after a rehash.
  if (slots_.empty() || (size_ + tombstones_ + 1) * 10 > slots_.size() * 7) {
    rehash(std::max<std::size_t>(kMinCapacity, (size_ + 1) * 2));
  }
  const std::size_t mask = slots_.size() - 1;
  std::size_t i = probe_start(eid, slots_.size());
  std::size_t first_tombstone = SIZE_MAX;
  while (true) {
    Slot& s = slots_[i];
    if (s.state == SlotState::Occupied && s.key == eid) {
      s.value = entry;  // replace in place
      return;
    }
    if (s.state == SlotState::Tombstone && first_tombstone == SIZE_MAX) first_tombstone = i;
    if (s.state == SlotState::Empty) break;
    i = (i + 1) & mask;
  }
  if (first_tombstone != SIZE_MAX) {
    i = first_tombstone;
    --tombstones_;
  }
  slots_[i] = Slot{eid, entry, SlotState::Occupied};
  ++size_;
}

bool VrfSet::remove(const net::VnEid& eid) {
  const std::size_t i = find_slot(eid);
  if (i == SIZE_MAX) return false;
  slots_[i] = Slot{};
  slots_[i].state = SlotState::Tombstone;
  --size_;
  ++tombstones_;
  return true;
}

const LocalEntry* VrfSet::lookup(const net::VnEid& eid) const {
  const std::size_t i = find_slot(eid);
  return i == SIZE_MAX ? nullptr : &slots_[i].value;
}

bool VrfSet::retag(const net::VnEid& eid, net::GroupId group) {
  const std::size_t i = find_slot(eid);
  if (i == SIZE_MAX) return false;
  slots_[i].value.group = group;
  return true;
}

std::size_t VrfSet::size(net::VnId vn) const {
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.state == SlotState::Occupied && s.key.vn == vn) ++n;
  }
  return n;
}

void VrfSet::walk(
    const std::function<void(const net::VnEid&, const LocalEntry&)>& visit) const {
  std::vector<const Slot*> ordered;
  ordered.reserve(size_);
  for (const Slot& s : slots_) {
    if (s.state == SlotState::Occupied) ordered.push_back(&s);
  }
  // Deterministic walk order regardless of hash layout: VN, then EID
  // (families group together because Eid orders by family first).
  std::sort(ordered.begin(), ordered.end(), [](const Slot* a, const Slot* b) {
    if (a->key.vn != b->key.vn) return a->key.vn < b->key.vn;
    return a->key.eid < b->key.eid;
  });
  for (const Slot* s : ordered) visit(s->key, s->value);
}

void VrfSet::clear() {
  slots_.clear();
  size_ = 0;
  tombstones_ = 0;
}

}  // namespace sda::dataplane
