#include "dataplane/vrf.hpp"

namespace sda::dataplane {

void VrfSet::install(const net::VnEid& eid, const LocalEntry& entry) {
  vrfs_[eid.vn].family(eid.eid.family()).insert(trie::BitKey::from_eid(eid.eid), entry);
}

bool VrfSet::remove(const net::VnEid& eid) {
  const auto it = vrfs_.find(eid.vn);
  if (it == vrfs_.end()) return false;
  return it->second.family(eid.eid.family()).erase(trie::BitKey::from_eid(eid.eid));
}

const LocalEntry* VrfSet::lookup(const net::VnEid& eid) const {
  const auto it = vrfs_.find(eid.vn);
  if (it == vrfs_.end()) return nullptr;
  auto& tables = const_cast<Tables&>(it->second);
  return tables.family(eid.eid.family()).find_exact(trie::BitKey::from_eid(eid.eid));
}

bool VrfSet::retag(const net::VnEid& eid, net::GroupId group) {
  const auto it = vrfs_.find(eid.vn);
  if (it == vrfs_.end()) return false;
  LocalEntry* entry =
      it->second.family(eid.eid.family()).find_exact(trie::BitKey::from_eid(eid.eid));
  if (!entry) return false;
  entry->group = group;
  return true;
}

std::size_t VrfSet::size() const {
  std::size_t total = 0;
  for (const auto& [vn, tables] : vrfs_) {
    total += tables.v4.size() + tables.v6.size() + tables.mac.size();
  }
  return total;
}

std::size_t VrfSet::size(net::VnId vn) const {
  const auto it = vrfs_.find(vn);
  if (it == vrfs_.end()) return 0;
  return it->second.v4.size() + it->second.v6.size() + it->second.mac.size();
}

void VrfSet::walk(
    const std::function<void(const net::VnEid&, const LocalEntry&)>& visit) const {
  for (const auto& [vn, tables] : vrfs_) {
    const net::VnId vn_id = vn;
    tables.v4.walk([&](const trie::BitKey& key, const LocalEntry& entry) {
      net::Ipv4Address a{(std::uint32_t{key.bytes()[0]} << 24) |
                         (std::uint32_t{key.bytes()[1]} << 16) |
                         (std::uint32_t{key.bytes()[2]} << 8) | key.bytes()[3]};
      visit(net::VnEid{vn_id, net::Eid{a}}, entry);
    });
    tables.v6.walk([&](const trie::BitKey& key, const LocalEntry& entry) {
      net::Ipv6Address::Bytes b{};
      std::copy_n(key.bytes().begin(), 16, b.begin());
      visit(net::VnEid{vn_id, net::Eid{net::Ipv6Address{b}}}, entry);
    });
    tables.mac.walk([&](const trie::BitKey& key, const LocalEntry& entry) {
      net::MacAddress::Bytes b{};
      std::copy_n(key.bytes().begin(), 6, b.begin());
      visit(net::VnEid{vn_id, net::Eid{net::MacAddress{b}}}, entry);
    });
  }
}

void VrfSet::clear() { vrfs_.clear(); }

}  // namespace sda::dataplane
