// The SDA border router.
//
// Performs the edge functions plus two differences (paper §3.3): its FIB is
// pub/sub-synchronized with the routing server instead of reactive, and it
// holds routes to external networks. It owns the fabric default route, so
// it absorbs and hairpins the traffic edges send during map-cache misses
// (§3.2.2) — which is why the paper provisions it with a larger FIB and CPU.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dataplane/sgacl.hpp"
#include "lisp/map_server.hpp"
#include "lisp/messages.hpp"
#include "net/packet.hpp"
#include "net/prefix.hpp"
#include "sim/simulator.hpp"
#include "telemetry/path_trace.hpp"
#include "trie/patricia.hpp"
#include "underlay/topology.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::dataplane {

struct BorderRouterConfig {
  std::string name;
  net::Ipv4Address rloc;
  underlay::NodeId node = 0;
  policy::Action default_action = policy::Action::Allow;
  /// How long to wait for a requested snapshot before re-requesting it
  /// (the snapshot itself can be lost to control-plane faults).
  sim::Duration resync_retry = std::chrono::seconds{2};
};

class BorderRouter {
 public:
  using SendData = std::function<void(const net::FabricFrame&)>;
  /// Delivery of traffic leaving the fabric (Internet / data center).
  using DeliverExternal = std::function<void(const net::VnEid& destination,
                                             const net::OverlayFrame&)>;
  /// Asks the routing server for a full-state snapshot (re-subscribe).
  using RequestResync = std::function<void()>;

  BorderRouter(sim::Simulator& simulator, BorderRouterConfig config);

  void set_send_data(SendData fn) { send_data_ = std::move(fn); }
  void set_deliver_external(DeliverExternal fn) { deliver_external_ = std::move(fn); }
  void set_request_resync(RequestResync fn) { request_resync_ = std::move(fn); }

  [[nodiscard]] const BorderRouterConfig& config() const { return config_; }
  [[nodiscard]] net::Ipv4Address rloc() const { return config_.rloc; }
  [[nodiscard]] const std::string& name() const { return config_.name; }

  // --- Pub/sub FIB synchronization (Fig. 1 "sync" arrow) ------------------

  /// Applies one published update (install or withdrawal). Sequenced
  /// publishes (seq != 0) are gap-checked: a missing update means the feed
  /// lost a message, so the update is discarded and a snapshot resync is
  /// requested instead of silently diverging from the server. Epoch-stamped
  /// publishes (epoch != 0) are additionally fenced: a stale epoch is
  /// rejected (returns false), a newer one re-homes the feed (snapshot pull
  /// from the new leader).
  bool receive_publish(const lisp::Publish& publish);

  /// Full-table bootstrap when (re)subscribing to the routing server.
  void bootstrap_sync(const lisp::MapServer& server);

  /// Applies a full-state snapshot captured at feed position `next_seq`
  /// (the sequence number the *next* publish will carry). Replaces the
  /// synced table wholesale and re-arms in-order delivery from there.
  /// `epoch` (when nonzero) advances the feed's split-brain fence to the
  /// snapshotting leader's term.
  void apply_snapshot(const std::vector<std::pair<net::VnEid, lisp::MappingRecord>>& entries,
                      std::uint64_t next_seq, std::uint64_t epoch = 0);

  /// Triggers the resync protocol (gap detected, or an operator-driven
  /// reconnect after a feed outage). Retries until a snapshot applies.
  void request_resync();

  /// True while a requested snapshot has not yet been applied.
  [[nodiscard]] bool resync_in_flight() const { return resync_in_flight_; }

  /// The feed sequence number expected on the next publish.
  [[nodiscard]] std::uint64_t next_expected_seq() const { return next_publish_seq_; }

  /// Highest election epoch observed on the feed (0 until elections run).
  [[nodiscard]] std::uint64_t feed_epoch() const { return feed_epoch_; }

  /// The synchronized table (for entry-by-entry verification in tests).
  [[nodiscard]] const std::unordered_map<net::VnEid, lisp::MappingRecord>& synced() const {
    return synced_;
  }

  // --- External connectivity ----------------------------------------------

  /// Declares an external destination prefix (e.g. 0.0.0.0/0 = Internet)
  /// optionally classified into a group for egress policy at the border.
  void add_external_prefix(net::VnId vn, const net::Ipv4Prefix& prefix,
                           net::GroupId group = net::GroupId::unknown());
  void add_external_prefix(net::VnId vn, const net::Ipv6Prefix& prefix,
                           net::GroupId group = net::GroupId::unknown());

  /// Injects a packet arriving *from* an external network toward an overlay
  /// destination; the border encapsulates it to the serving edge.
  void external_receive(net::VnId vn, net::GroupId source_group,
                        const net::OverlayFrame& frame);

  // --- Service insertion (§5.4) -------------------------------------------
  // Operators can rewrite the group tag of traffic passing through this
  // router so that downstream devices in a service chain apply different
  // policies — "instead of applying different policies across the path for
  // the same group, they change the group along the way".

  /// Rewrites `from` -> `to` for traffic in `vn` transiting this border.
  void add_group_rewrite(net::VnId vn, net::GroupId from, net::GroupId to);
  /// Removes a rewrite; true if present.
  bool remove_group_rewrite(net::VnId vn, net::GroupId from);

  // --- Data plane ----------------------------------------------------------

  void receive_fabric_frame(const net::FabricFrame& frame);

  // --- Introspection -------------------------------------------------------

  /// Synchronized overlay mappings (the Fig. 9 border FIB metric).
  [[nodiscard]] std::size_t fib_size() const { return synced_.size(); }

  [[nodiscard]] Sgacl& sgacl() { return sgacl_; }

  struct Counters {
    std::uint64_t publishes_applied = 0;
    std::uint64_t withdrawals_applied = 0;
    std::uint64_t out_of_sequence = 0;   // feed gaps detected
    std::uint64_t resyncs_requested = 0;  // snapshot pulls issued (incl. retries)
    std::uint64_t snapshots_applied = 0;
    std::uint64_t hairpinned = 0;         // default-routed traffic re-encapped
    std::uint64_t external_out = 0;       // fabric -> external
    std::uint64_t external_in = 0;        // external -> fabric
    std::uint64_t policy_drops = 0;
    std::uint64_t no_route_drops = 0;
    std::uint64_t ttl_drops = 0;
    std::uint64_t group_rewrites = 0;  // service-insertion tag changes (§5.4)
    std::uint64_t stale_epoch_rejected = 0;  // feed pushes fenced (split-brain)
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Registers pull probes for every counter under `prefix` (e.g.
  /// "border[0]") plus the embedded SGACL ("<prefix>.sgacl"). Probes
  /// capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

  /// Attaches an opt-in packet path tracer (nullptr detaches).
  void set_tracer(telemetry::PathTracer* tracer) { tracer_ = tracer; }

 private:
  struct ExternalRoute {
    net::GroupId group;
  };

  void encap_to(net::Ipv4Address rloc, net::VnId vn, net::GroupId source_group,
                bool policy_applied, const net::OverlayFrame& frame);

  /// Looks up an external route covering `destination` in the VN.
  [[nodiscard]] const ExternalRoute* external_route(const net::VnEid& destination) const;

  /// Applies any configured service-insertion rewrite to `group`.
  [[nodiscard]] net::GroupId rewritten_group(net::VnId vn, net::GroupId group);

  sim::Simulator& simulator_;
  BorderRouterConfig config_;
  SendData send_data_;
  DeliverExternal deliver_external_;
  RequestResync request_resync_;

  std::unordered_map<net::VnEid, lisp::MappingRecord> synced_;
  std::uint64_t next_publish_seq_ = 1;
  std::uint64_t feed_epoch_ = 0;  // split-brain fence for the pub/sub feed
  bool resync_in_flight_ = false;
  sim::EventHandle resync_timer_;
  std::unordered_map<std::uint32_t, trie::PatriciaTrie<ExternalRoute>> external_;     // by VN
  std::unordered_map<std::uint32_t, trie::PatriciaTrie<ExternalRoute>> external_v6_;  // by VN
  /// (vn << 16 | from-group) -> replacement group.
  std::unordered_map<std::uint64_t, net::GroupId> group_rewrites_;
  Sgacl sgacl_;
  Counters counters_;
  telemetry::PathTracer* tracer_ = nullptr;
};

}  // namespace sda::dataplane
