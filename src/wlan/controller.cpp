#include "wlan/controller.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include "telemetry/metrics.hpp"


namespace sda::wlan {

WlanController::WlanController(fabric::SdaFabric& fabric, WlanConfig config)
    : fabric_(fabric),
      config_(std::move(config)),
      rng_(config_.seed),
      cpu_free_at_(std::max(1u, config_.workers), sim::SimTime::zero()) {
  // Fail fast if the anchor edge does not exist.
  (void)fabric_.edge(config_.controller_edge);
}

void WlanController::add_access_point(const AccessPointConfig& ap) {
  (void)fabric_.edge(ap.edge);  // must exist
  aps_[ap.name] = ap;
}

sim::SimTime WlanController::reserve_cpu(sim::Duration service) {
  auto it = std::min_element(cpu_free_at_.begin(), cpu_free_at_.end());
  const sim::SimTime start = std::max(*it, fabric_.simulator().now());
  const sim::SimTime finish = start + service;
  *it = finish;
  return finish;
}

const std::string& WlanController::ingress_edge(const std::string& ap) const {
  return config_.mode == DataPlaneMode::Centralized ? config_.controller_edge
                                                    : aps_.at(ap).edge;
}

void WlanController::associate(const std::string& credential, const std::string& ap,
                               AssociationCallback callback) {
  const auto it = aps_.find(ap);
  if (it == aps_.end()) throw std::invalid_argument("unknown AP: " + ap);
  ++stats_.associations;
  const sim::SimTime started = fabric_.simulator().now();

  // Association + 802.1X exchange serialized through the controller CPU.
  const sim::SimTime ready = reserve_cpu(config_.association_processing);
  fabric_.simulator().schedule_at(ready, [this, credential, ap, started,
                                          cb = std::move(callback)] {
    fabric_.connect_endpoint(
        credential, ingress_edge(ap), aps_.at(ap).port,
        [this, credential, ap, started, cb](const fabric::OnboardResult& r) {
          if (r.success) stations_[r.mac] = Station{credential, ap};
          if (cb) {
            cb(AssociationResult{r.success, ap, r.ip, fabric_.simulator().now() - started});
          }
        });
  });
}

void WlanController::roam(const net::MacAddress& mac, const std::string& ap,
                          AssociationCallback callback) {
  const auto station = stations_.find(mac);
  if (station == stations_.end()) throw std::invalid_argument("unknown station");
  if (aps_.find(ap) == aps_.end()) throw std::invalid_argument("unknown AP: " + ap);
  ++stats_.roams;
  const sim::SimTime started = fabric_.simulator().now();

  if (config_.mode == DataPlaneMode::Centralized) {
    // The anchor never moves: only the AP-side tunnel endpoint changes.
    // Key hand-off still costs controller CPU.
    const sim::SimTime ready = reserve_cpu(config_.association_processing / 2);
    fabric_.simulator().schedule_at(ready, [this, mac, ap, started, cb = std::move(callback)] {
      stations_.at(mac).ap = ap;
      if (cb) {
        AssociationResult result;
        result.success = true;
        result.ap = ap;
        result.elapsed = fabric_.simulator().now() - started;
        cb(result);
      }
    });
    return;
  }

  // Distributed: 802.11r fast transition, then L3 re-registration at the
  // new AP's edge (Fig. 5 machinery).
  const sim::SimTime ready = reserve_cpu(config_.association_processing / 2);
  fabric_.simulator().schedule_at(ready, [this, mac, ap, started, cb = std::move(callback)] {
    fabric_.roam_endpoint(mac, aps_.at(ap).edge, aps_.at(ap).port,
                          [this, mac, ap, started, cb](const fabric::OnboardResult& r) {
                            if (r.success) stations_.at(mac).ap = ap;
                            if (cb) {
                              cb(AssociationResult{r.success, ap, r.ip,
                                                   fabric_.simulator().now() - started});
                            }
                          });
  });
}

void WlanController::disassociate(const net::MacAddress& mac) {
  if (stations_.erase(mac) > 0) fabric_.disconnect_endpoint(mac);
}

bool WlanController::station_send_udp(const net::MacAddress& mac, net::Ipv4Address destination,
                                      std::uint16_t dport, std::uint16_t payload_bytes) {
  const auto station = stations_.find(mac);
  if (station == stations_.end()) return false;

  if (config_.mode == DataPlaneMode::Distributed) {
    return fabric_.endpoint_send_udp(mac, destination, dport, payload_bytes);
  }

  // Centralized: the frame tunnels from the AP's edge to the controller
  // anchor across the underlay, queues on the controller CPU, and only
  // then enters the overlay (triangular routing + bottleneck, §2).
  const AccessPointConfig& ap = aps_.at(station->second.ap);
  const auto ap_node = fabric_.edge(ap.edge).config().node;
  const auto anchor_rloc = fabric_.edge(config_.controller_edge).rloc();
  const auto tunnel = fabric_.underlay().transit_delay(
      ap_node, anchor_rloc, mac.to_u64(), payload_bytes + 50u /* CAPWAP-ish overhead */);
  if (!tunnel) return false;

  ++stats_.frames_tunneled;
  stats_.bytes_tunneled += payload_bytes;
  fabric_.simulator().schedule_after(*tunnel, [this, mac, destination, dport, payload_bytes] {
    const sim::SimTime done = reserve_cpu(config_.frame_processing);
    stats_.busy_time += config_.frame_processing;
    fabric_.simulator().schedule_at(done, [this, mac, destination, dport, payload_bytes] {
      fabric_.endpoint_send_udp(mac, destination, dport, payload_bytes);
    });
  });
  return true;
}

void WlanController::set_station_delivery_listener(StationDeliveryListener listener) {
  fabric_.set_delivery_listener([this, listener = std::move(listener)](
                                    const dataplane::AttachedEndpoint& endpoint,
                                    const net::OverlayFrame& frame, sim::SimTime at) {
    const auto station = stations_.find(endpoint.mac);
    if (station == stations_.end() || config_.mode == DataPlaneMode::Distributed) {
      listener(endpoint, frame, at);
      return;
    }
    // Centralized: the frame arrived at the anchor; it still has to tunnel
    // down to the station's AP (controller CPU + underlay transit).
    const AccessPointConfig& ap = aps_.at(station->second.ap);
    const auto anchor_node = fabric_.edge(config_.controller_edge).config().node;
    const auto ap_rloc = fabric_.edge(ap.edge).rloc();
    const auto down = fabric_.underlay().transit_delay(anchor_node, ap_rloc,
                                                       endpoint.mac.to_u64(),
                                                       frame.wire_size() + 50u);
    ++stats_.frames_tunneled;
    stats_.busy_time += config_.frame_processing;
    const sim::SimTime cpu_done = reserve_cpu(config_.frame_processing);
    const sim::SimTime delivered_at = down ? cpu_done + *down : cpu_done;
    fabric_.simulator().schedule_at(delivered_at, [listener, endpoint, frame, delivered_at] {
      listener(endpoint, frame, delivered_at);
    });
  });
}

std::optional<std::string> WlanController::ap_of(const net::MacAddress& mac) const {
  const auto it = stations_.find(mac);
  if (it == stations_.end()) return std::nullopt;
  return it->second.ap;
}

void WlanController::register_metrics(telemetry::MetricsRegistry& registry,
                                      const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "associations"),
                            [this] { return stats_.associations; });
  registry.register_counter(telemetry::join(prefix, "roams"), [this] { return stats_.roams; });
  registry.register_counter(telemetry::join(prefix, "frames_tunneled"),
                            [this] { return stats_.frames_tunneled; });
  registry.register_counter(telemetry::join(prefix, "bytes_tunneled"),
                            [this] { return stats_.bytes_tunneled; });
  registry.register_gauge(telemetry::join(prefix, "busy_seconds"), [this] {
    return std::chrono::duration<double>(stats_.busy_time).count();
  });
}

}  // namespace sda::wlan
