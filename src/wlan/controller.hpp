// Wireless LAN layer: access points + a centralized WLAN controller.
//
// The paper (§2 "Mobility", Table 1) contrasts two architectures:
//   * the traditional one — the WLAN controller is a *sink* for all
//     wireless traffic (centralized control AND data plane): every frame
//     tunnels from the AP to the controller before entering the network,
//     creating triangular routing and a scalability bottleneck;
//   * SDA's — the control plane stays centralized (association,
//     authentication, key caching for 802.11r fast transitions), but data
//     is routed directly from the AP's edge router (distributed data
//     plane).
// This module implements both modes against the same SdaFabric so the
// trade-off can be measured (bench_ablation_wlan_dataplane).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hpp"
#include "sim/random.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::wlan {

enum class DataPlaneMode {
  Distributed,  // SDA: AP traffic enters the fabric at the local edge
  Centralized,  // legacy: AP traffic tunnels to the controller anchor first
};

struct AccessPointConfig {
  std::string name;
  std::string edge;  // the edge router this AP is wired to
  dataplane::PortId port = 1;
};

struct WlanConfig {
  DataPlaneMode mode = DataPlaneMode::Distributed;
  /// Edge hosting the controller (and anchoring traffic in centralized
  /// mode). Must exist in the fabric.
  std::string controller_edge;
  /// Controller CPU per association / key exchange.
  sim::Duration association_processing = std::chrono::milliseconds{1};
  /// Controller CPU per tunneled data frame (centralized mode only) —
  /// this is the §2 scalability bottleneck.
  sim::Duration frame_processing = std::chrono::microseconds{8};
  unsigned workers = 4;
  std::uint64_t seed = 21;
};

/// Result of an association (wraps fabric onboarding).
struct AssociationResult {
  bool success = false;
  std::string ap;
  net::Ipv4Address ip;
  sim::Duration elapsed{};
};

class WlanController {
 public:
  using AssociationCallback = std::function<void(const AssociationResult&)>;

  WlanController(fabric::SdaFabric& fabric, WlanConfig config);

  void add_access_point(const AccessPointConfig& ap);

  /// Associates a provisioned endpoint with an AP: the controller runs the
  /// (capacity-limited) association/auth exchange, then the station
  /// onboards — at the AP's edge in distributed mode, at the controller's
  /// anchor edge in centralized mode.
  void associate(const std::string& credential, const std::string& ap,
                 AssociationCallback callback = {});

  /// Roams a station to another AP. Distributed mode pays the fabric
  /// re-registration (802.11r fast re-auth); centralized mode only moves
  /// the tunnel endpoint (the anchor never changes).
  void roam(const net::MacAddress& mac, const std::string& ap,
            AssociationCallback callback = {});

  void disassociate(const net::MacAddress& mac);

  /// Sends a UDP datagram from an associated station. In centralized mode
  /// the frame first tunnels AP-edge -> controller (queueing at the
  /// controller CPU) before entering the overlay.
  bool station_send_udp(const net::MacAddress& mac, net::Ipv4Address destination,
                        std::uint16_t dport, std::uint16_t payload_bytes);

  [[nodiscard]] std::optional<std::string> ap_of(const net::MacAddress& mac) const;
  [[nodiscard]] std::size_t station_count() const { return stations_.size(); }

  /// Station-level delivery listener: fires when a frame reaches the
  /// *station over the air*, i.e. including the anchor->AP downstream
  /// tunnel in centralized mode. Takes over the fabric's delivery-listener
  /// slot; non-station deliveries pass through with no added delay.
  using StationDeliveryListener =
      std::function<void(const dataplane::AttachedEndpoint&, const net::OverlayFrame&,
                         sim::SimTime)>;
  void set_station_delivery_listener(StationDeliveryListener listener);

  struct Stats {
    std::uint64_t associations = 0;
    std::uint64_t roams = 0;
    std::uint64_t frames_tunneled = 0;   // data frames through the controller
    std::uint64_t bytes_tunneled = 0;
    sim::Duration busy_time{};           // controller CPU consumed by data
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] DataPlaneMode mode() const { return config_.mode; }

  /// Registers pull probes for the stats fields (busy_time exported as a
  /// busy_seconds gauge) under `prefix` (e.g. "wlan"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  struct Station {
    std::string credential;
    std::string ap;
  };

  /// Reserves controller CPU; returns the completion time.
  sim::SimTime reserve_cpu(sim::Duration service);

  /// The edge a station's traffic enters the fabric at, per mode.
  [[nodiscard]] const std::string& ingress_edge(const std::string& ap) const;

  fabric::SdaFabric& fabric_;
  WlanConfig config_;
  sim::Rng rng_;
  std::unordered_map<std::string, AccessPointConfig> aps_;
  std::unordered_map<net::MacAddress, Station> stations_;
  std::vector<sim::SimTime> cpu_free_at_;
  Stats stats_;
};

}  // namespace sda::wlan
