// Fixed-width bit-string keys for Patricia tries.
//
// A BitKey is up to 128 bits of address material plus a significant-bit
// count (prefix length). Bit 0 is the most significant bit of byte 0, i.e.
// the natural network-order interpretation of an address.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "net/eid.hpp"
#include "net/ip_address.hpp"
#include "net/mac_address.hpp"
#include "net/prefix.hpp"

namespace sda::trie {

class BitKey {
 public:
  static constexpr std::uint16_t kMaxBits = 128;

  constexpr BitKey() = default;

  /// Builds a key from raw network-order bytes. Bits past `prefix_len` are
  /// zeroed so equal prefixes are bitwise equal.
  BitKey(std::span<const std::uint8_t> bytes, std::uint16_t width, std::uint16_t prefix_len);

  [[nodiscard]] static BitKey from_ipv4(net::Ipv4Address a, std::uint16_t prefix_len = 32);
  [[nodiscard]] static BitKey from_ipv4_prefix(const net::Ipv4Prefix& p);
  [[nodiscard]] static BitKey from_ipv6(const net::Ipv6Address& a, std::uint16_t prefix_len = 128);
  [[nodiscard]] static BitKey from_ipv6_prefix(const net::Ipv6Prefix& p);
  [[nodiscard]] static BitKey from_mac(const net::MacAddress& m);
  [[nodiscard]] static BitKey from_eid(const net::Eid& e);

  /// Total bits of the address family (32, 48 or 128).
  [[nodiscard]] constexpr std::uint16_t width() const { return width_; }
  /// Number of significant (prefix) bits.
  [[nodiscard]] constexpr std::uint16_t prefix_len() const { return prefix_len_; }
  /// True when every bit of the family is significant (a host key).
  [[nodiscard]] constexpr bool is_host() const { return prefix_len_ == width_; }

  /// The i-th bit (0 = MSB). `i` must be < width().
  [[nodiscard]] bool bit(std::uint16_t i) const {
    return (bytes_[i >> 3] >> (7 - (i & 7))) & 1;
  }

  /// Length of the longest common prefix with `other`, capped at
  /// min(prefix_len(), other.prefix_len()).
  [[nodiscard]] std::uint16_t common_prefix_len(const BitKey& other) const;

  /// True when this prefix covers `other` (other's first prefix_len() bits
  /// equal ours and other is at least as long). Families must match.
  [[nodiscard]] bool contains(const BitKey& other) const;

  /// A copy truncated to `len` bits.
  [[nodiscard]] BitKey truncated(std::uint16_t len) const;

  [[nodiscard]] const std::array<std::uint8_t, 16>& bytes() const { return bytes_; }

  [[nodiscard]] std::string to_string() const;  // hex bits, for diagnostics

  friend auto operator<=>(const BitKey&, const BitKey&) = default;

 private:
  std::array<std::uint8_t, 16> bytes_{};
  std::uint16_t width_ = 0;
  std::uint16_t prefix_len_ = 0;
};

}  // namespace sda::trie

template <>
struct std::hash<sda::trie::BitKey> {
  std::size_t operator()(const sda::trie::BitKey& k) const noexcept {
    std::size_t h = 0xcbf29ce484222325ull ^ (std::size_t{k.width()} << 32) ^ k.prefix_len();
    for (auto b : k.bytes()) h = (h ^ b) * 0x100000001b3ull;
    return h;
  }
};
