// Path-compressed binary radix trie (Patricia trie / PATRICIA, Morrison'68).
//
// This is the data structure the paper's routing server is built on (§4.1):
// lookup/insert/erase cost depends on key width, not on the number of
// stored routes — which is why the measured Map-Request latency is flat in
// the number of configured routes (Fig. 7a/7b).
//
// Keys are BitKeys (prefixes); values are arbitrary. Supports exact-match,
// longest-prefix-match, erase with node merging, and ordered traversal.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "trie/bitkey.hpp"

namespace sda::trie {

template <typename V>
class PatriciaTrie {
 public:
  PatriciaTrie() = default;

  /// Inserts or replaces the value at `key`. Returns true if the key was new.
  bool insert(const BitKey& key, V value) {
    assert(root_ == nullptr || key.width() == root_->key.width());
    if (!root_) {
      root_ = std::make_unique<Node>(key, std::move(value));
      ++size_;
      return true;
    }
    return insert_at(root_, key, std::move(value));
  }

  /// Exact-match lookup; nullptr if `key` (same prefix and length) is absent.
  [[nodiscard]] const V* find_exact(const BitKey& key) const {
    const Node* node = root_.get();
    while (node) {
      const std::uint16_t common = node->key.common_prefix_len(key);
      if (common < node->key.prefix_len()) return nullptr;  // diverged
      if (node->key.prefix_len() == key.prefix_len()) {
        return node->value ? &*node->value : nullptr;
      }
      node = node->child(key.bit(node->key.prefix_len()));
    }
    return nullptr;
  }

  [[nodiscard]] V* find_exact(const BitKey& key) {
    return const_cast<V*>(std::as_const(*this).find_exact(key));
  }

  /// Longest-prefix match: the most specific stored prefix covering `key`.
  /// Returns {covering prefix, value} or nullopt.
  [[nodiscard]] std::optional<std::pair<BitKey, const V*>> longest_match(
      const BitKey& key) const {
    std::optional<std::pair<BitKey, const V*>> best;
    const Node* node = root_.get();
    while (node) {
      const std::uint16_t common = node->key.common_prefix_len(key);
      if (common < node->key.prefix_len()) break;  // node prefix no longer covers key
      if (node->value) best = {node->key, &*node->value};
      if (node->key.prefix_len() >= key.prefix_len()) break;
      node = node->child(key.bit(node->key.prefix_len()));
    }
    return best;
  }

  /// Removes `key`. Returns true if it was present.
  bool erase(const BitKey& key) {
    std::unique_ptr<Node>* link = &root_;
    std::unique_ptr<Node>* parent_link = nullptr;
    while (*link) {
      Node* node = link->get();
      const std::uint16_t common = node->key.common_prefix_len(key);
      if (common < node->key.prefix_len()) return false;
      if (node->key.prefix_len() == key.prefix_len()) {
        if (!node->value) return false;
        node->value.reset();
        --size_;
        collapse(*link);
        if (parent_link) collapse(*parent_link);
        return true;
      }
      parent_link = link;
      link = &node->children[key.bit(node->key.prefix_len())];
    }
    return false;
  }

  /// Visits every (key, value) pair in lexicographic key order.
  void walk(const std::function<void(const BitKey&, const V&)>& visit) const {
    walk_node(root_.get(), visit);
  }

  /// Removes entries for which `predicate(key, value)` is true; returns the
  /// number removed.
  std::size_t erase_if(const std::function<bool(const BitKey&, const V&)>& predicate) {
    std::vector<BitKey> doomed;
    walk([&](const BitKey& k, const V& v) {
      if (predicate(k, v)) doomed.push_back(k);
    });
    for (const auto& k : doomed) erase(k);
    return doomed.size();
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    // Iterative teardown: the default recursive unique_ptr destruction can
    // overflow the stack on deep (uncompressed host-route) chains.
    std::vector<std::unique_ptr<Node>> stack;
    if (root_) stack.push_back(std::move(root_));
    while (!stack.empty()) {
      auto node = std::move(stack.back());
      stack.pop_back();
      for (auto& child : node->children) {
        if (child) stack.push_back(std::move(child));
      }
    }
    size_ = 0;
  }

  ~PatriciaTrie() { clear(); }
  PatriciaTrie(PatriciaTrie&&) noexcept = default;
  PatriciaTrie& operator=(PatriciaTrie&& other) noexcept {
    if (this != &other) {
      clear();
      root_ = std::move(other.root_);
      size_ = other.size_;
      other.size_ = 0;
    }
    return *this;
  }
  PatriciaTrie(const PatriciaTrie&) = delete;
  PatriciaTrie& operator=(const PatriciaTrie&) = delete;

 private:
  struct Node {
    Node(BitKey k, V v) : key(std::move(k)), value(std::move(v)) {}
    explicit Node(BitKey k) : key(std::move(k)) {}

    [[nodiscard]] const Node* child(bool bit) const { return children[bit].get(); }

    BitKey key;
    std::optional<V> value;
    std::array<std::unique_ptr<Node>, 2> children{};
  };

  bool insert_at(std::unique_ptr<Node>& link, const BitKey& key, V value) {
    Node* node = link.get();
    const std::uint16_t common = node->key.common_prefix_len(key);

    if (common < node->key.prefix_len()) {
      // Diverges inside this node's compressed path: split.
      auto fork = std::make_unique<Node>(node->key.truncated(common));
      const bool node_bit = node->key.bit(common);
      fork->children[node_bit] = std::move(link);
      if (common == key.prefix_len()) {
        // The new key *is* the fork point.
        fork->value = std::move(value);
      } else {
        fork->children[!node_bit] = std::make_unique<Node>(key, std::move(value));
      }
      link = std::move(fork);
      ++size_;
      return true;
    }

    if (node->key.prefix_len() == key.prefix_len()) {
      const bool was_new = !node->value;
      node->value = std::move(value);
      if (was_new) ++size_;
      return was_new;
    }

    // key is longer and covered by node's prefix: descend.
    auto& child = node->children[key.bit(node->key.prefix_len())];
    if (!child) {
      child = std::make_unique<Node>(key, std::move(value));
      ++size_;
      return true;
    }
    return insert_at(child, key, std::move(value));
  }

  /// Merges away a valueless node with zero or one children.
  static void collapse(std::unique_ptr<Node>& link) {
    Node* node = link.get();
    if (!node || node->value) return;
    const bool has0 = node->children[0] != nullptr;
    const bool has1 = node->children[1] != nullptr;
    if (has0 && has1) return;
    if (!has0 && !has1) {
      link.reset();
    } else {
      link = std::move(node->children[has1 ? 1 : 0]);
    }
  }

  static void walk_node(const Node* node,
                        const std::function<void(const BitKey&, const V&)>& visit) {
    if (!node) return;
    if (node->value) visit(node->key, *node->value);
    walk_node(node->children[0].get(), visit);
    walk_node(node->children[1].get(), visit);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace sda::trie
