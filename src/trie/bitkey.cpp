#include "trie/bitkey.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>

namespace sda::trie {

BitKey::BitKey(std::span<const std::uint8_t> bytes, std::uint16_t width,
               std::uint16_t prefix_len)
    : width_(width), prefix_len_(std::min(prefix_len, width)) {
  assert(width <= kMaxBits);
  assert(bytes.size() * 8 >= width);
  std::copy_n(bytes.begin(), (width + 7) / 8, bytes_.begin());
  // Zero bits beyond the prefix for canonical equality.
  const std::uint16_t full = prefix_len_ / 8;
  const std::uint16_t rem = prefix_len_ % 8;
  if (full < bytes_.size()) {
    if (rem != 0 && full < 16) {
      bytes_[full] &= static_cast<std::uint8_t>(0xFF << (8 - rem));
      for (std::size_t i = full + 1u; i < bytes_.size(); ++i) bytes_[i] = 0;
    } else {
      for (std::size_t i = full; i < bytes_.size(); ++i) bytes_[i] = 0;
    }
  }
}

BitKey BitKey::from_ipv4(net::Ipv4Address a, std::uint16_t prefix_len) {
  const auto b = a.bytes();
  return BitKey{{b.data(), b.size()}, 32, prefix_len};
}

BitKey BitKey::from_ipv4_prefix(const net::Ipv4Prefix& p) {
  return from_ipv4(p.address(), p.length());
}

BitKey BitKey::from_ipv6(const net::Ipv6Address& a, std::uint16_t prefix_len) {
  const auto& b = a.bytes();
  return BitKey{{b.data(), b.size()}, 128, prefix_len};
}

BitKey BitKey::from_ipv6_prefix(const net::Ipv6Prefix& p) {
  return from_ipv6(p.address(), p.length());
}

BitKey BitKey::from_mac(const net::MacAddress& m) {
  const auto& b = m.bytes();
  return BitKey{{b.data(), b.size()}, 48, 48};
}

BitKey BitKey::from_eid(const net::Eid& e) {
  switch (e.family()) {
    case net::EidFamily::Ipv4: return from_ipv4(e.ipv4());
    case net::EidFamily::Ipv6: return from_ipv6(e.ipv6());
    case net::EidFamily::Mac: return from_mac(e.mac());
  }
  return {};
}

std::uint16_t BitKey::common_prefix_len(const BitKey& other) const {
  const std::uint16_t limit = std::min(prefix_len_, other.prefix_len_);
  std::uint16_t matched = 0;
  const std::uint16_t full_bytes = limit / 8;
  for (std::uint16_t i = 0; i < full_bytes; ++i) {
    const std::uint8_t diff = bytes_[i] ^ other.bytes_[i];
    if (diff != 0) {
      matched = static_cast<std::uint16_t>(i * 8 + std::countl_zero(diff));
      return std::min(matched, limit);
    }
  }
  matched = static_cast<std::uint16_t>(full_bytes * 8);
  if (matched < limit) {
    const std::uint8_t diff = bytes_[full_bytes] ^ other.bytes_[full_bytes];
    matched = static_cast<std::uint16_t>(
        matched + (diff == 0 ? 8 : std::countl_zero(diff)));
  }
  return std::min(matched, limit);
}

bool BitKey::contains(const BitKey& other) const {
  if (width_ != other.width_ || other.prefix_len_ < prefix_len_) return false;
  return common_prefix_len(other) >= prefix_len_;
}

BitKey BitKey::truncated(std::uint16_t len) const {
  return BitKey{{bytes_.data(), bytes_.size()}, width_, std::min(len, prefix_len_)};
}

std::string BitKey::to_string() const {
  std::string out;
  out.reserve(40);
  char buf[4];
  for (std::uint16_t i = 0; i < (width_ + 7) / 8; ++i) {
    std::snprintf(buf, sizeof(buf), "%02x", bytes_[i]);
    out += buf;
  }
  out += "/" + std::to_string(prefix_len_);
  return out;
}

}  // namespace sda::trie
