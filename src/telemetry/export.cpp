#include "telemetry/export.hpp"

#include <cctype>
#include <cstdio>

#include "stats/csv.hpp"

namespace sda::telemetry {

namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else maps to '_'.
std::string prom_name(const std::string& name) {
  std::string out = "sda_";
  bool last_underscore = false;
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0;
    if (ok) {
      out += c;
      last_underscore = false;
    } else if (!last_underscore) {
      out += '_';
      last_underscore = true;
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool write_text(const std::string& dir, const std::string& name, const std::string& extension,
                const std::string& text) {
  const std::string path = dir + "/" + name + extension;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fputs(text.c_str(), file) >= 0;
  std::fclose(file);
  return ok;
}

}  // namespace

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + format_double(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = prom_name(name);
    out += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = hist.underflow;
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      cumulative += hist.counts[i];
      out += prom + "_bucket{le=\"" +
             format_double(hist.bucket_lo(i) + hist.bucket_width()) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(hist.total) + "\n";
    out += prom + "_sum " + format_double(hist.sum) + "\n";
    out += prom + "_count " + std::to_string(hist.total) + "\n";
  }
  return out;
}

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + std::to_string(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + format_double(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": {\"lo\": " + format_double(hist.spec.lo) +
           ", \"hi\": " + format_double(hist.spec.hi) + ", \"counts\": [";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(hist.counts[i]);
    }
    out += "], \"underflow\": " + std::to_string(hist.underflow) +
           ", \"overflow\": " + std::to_string(hist.overflow) +
           ", \"total\": " + std::to_string(hist.total) +
           ", \"sum\": " + format_double(hist.sum) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool write_json(const std::string& dir, const std::string& name, const Snapshot& snapshot) {
  return write_text(dir, name, ".json", to_json(snapshot));
}

bool write_prometheus(const std::string& dir, const std::string& name,
                      const Snapshot& snapshot) {
  return write_text(dir, name, ".prom", to_prometheus(snapshot));
}

bool write_timeseries_csv(const std::string& dir, const std::string& name,
                          const std::vector<std::string>& value_columns,
                          const std::vector<TimeseriesRow>& rows, std::uint64_t seed) {
  std::vector<std::string> header;
  header.reserve(value_columns.size() + 2);
  header.push_back("time_s");
  header.insert(header.end(), value_columns.begin(), value_columns.end());
  header.push_back("seed");

  const std::string seed_str = std::to_string(seed);
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> line;
    line.reserve(header.size());
    line.push_back(format_double(row.time_s));
    for (const double v : row.values) line.push_back(format_double(v));
    line.push_back(seed_str);
    cells.push_back(std::move(line));
  }
  return stats::write_csv(dir, name, header, cells);
}

bool write_xy_csv(const std::string& dir, const std::string& name, const std::string& x_label,
                  const std::string& y_label,
                  const std::vector<std::pair<double, double>>& series, std::uint64_t seed) {
  const std::string seed_str = std::to_string(seed);
  std::vector<std::vector<std::string>> cells;
  cells.reserve(series.size());
  for (const auto& [x, y] : series) {
    cells.push_back({format_double(x), format_double(y), seed_str});
  }
  return stats::write_csv(dir, name, {x_label, y_label, "seed"}, cells);
}

}  // namespace sda::telemetry
