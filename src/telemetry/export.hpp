// Exporters for telemetry snapshots and the shared bench CSV conventions.
//
// Three formats cover the consumers we have:
//  * Prometheus-style text — scrape-shaped, for eyeballing and diffing;
//  * JSON — machine-readable snapshot, validated by scripts/check_metrics.sh;
//  * CSV timeseries — the bench figure pipeline, with one convention for
//    every bench: first column "time_s" (simulated seconds), last column
//    "seed" (the run's RNG seed), so downstream plotting never has to
//    guess units or provenance again.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.hpp"

namespace sda::telemetry {

/// Renders a snapshot as Prometheus-style exposition text. Metric names
/// are sanitized ("edge[3].map_cache.misses" -> "sda_edge_3_map_cache_misses");
/// histograms expand to cumulative _bucket{le="..."} lines plus _sum/_count.
[[nodiscard]] std::string to_prometheus(const Snapshot& snapshot);

/// Renders a snapshot as a JSON object:
///   {"counters": {...}, "gauges": {...},
///    "histograms": {name: {"lo","hi","counts","underflow","overflow","total","sum"}}}
/// Keys are emitted in sorted order, so equal snapshots render identically.
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

/// Writes to_json(snapshot) to `<dir>/<name>.json`. Best-effort like the
/// CSV writers: returns false on I/O failure.
bool write_json(const std::string& dir, const std::string& name, const Snapshot& snapshot);

/// Writes to_prometheus(snapshot) to `<dir>/<name>.prom`.
bool write_prometheus(const std::string& dir, const std::string& name,
                      const Snapshot& snapshot);

/// One row of a bench timeseries: simulated time plus the value columns.
struct TimeseriesRow {
  double time_s = 0;
  std::vector<double> values;
};

/// Shared bench CSV exporter: header is "time_s,<columns...>,seed"; every
/// row is stamped with the run seed. All sim-time series across benches go
/// through here so column conventions stay consistent.
bool write_timeseries_csv(const std::string& dir, const std::string& name,
                          const std::vector<std::string>& value_columns,
                          const std::vector<TimeseriesRow>& rows, std::uint64_t seed);

/// Shared bench CSV exporter for non-time series (CDFs, size sweeps):
/// header is "<x_label>,<y_label>,seed".
bool write_xy_csv(const std::string& dir, const std::string& name, const std::string& x_label,
                  const std::string& y_label,
                  const std::vector<std::pair<double, double>>& series, std::uint64_t seed);

}  // namespace sda::telemetry
