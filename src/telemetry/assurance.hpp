// AssuranceEngine: declarative SLOs and continuous invariants.
//
// The paper's operational lesson is that a fabric is deployable only when
// convergence is *observable and bounded*. The engine holds two kinds of
// checks:
//
//  * SLOs — "quantile q of histogram H must be <= X" — evaluated against a
//    metrics Snapshot, so they work on any exported run without re-running
//    it;
//  * invariants — arbitrary named predicates over live fabric state
//    ("zero stale-epoch accepts", "no parked packets at quiesce") —
//    registered by the subsystems that own the state and evaluated on
//    demand.
//
// evaluate() returns one Verdict per check; inspect() renders them, and
// scripts/check_assurance.sh turns them into a tier-1 gate.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace sda::telemetry {

/// A convergence SLO over an exported histogram.
struct SloSpec {
  std::string name;       // e.g. "smr-fanout-p95"
  std::string histogram;  // snapshot key, e.g. "assurance.smr_fanout_us"
  double quantile = 0.95; // in [0, 1]
  double max_value = 0;   // same unit as the histogram samples
  /// Fail (rather than pass vacuously) when the histogram has no samples.
  bool require_samples = false;
};

struct Verdict {
  std::string name;
  bool pass = false;
  std::string detail;  // human-readable evidence ("p95=812us <= 20000us, n=14")
};

/// An invariant check: returns pass/fail plus a one-line detail.
using InvariantCheck = std::function<std::pair<bool, std::string>()>;

class AssuranceEngine {
 public:
  void add_slo(SloSpec spec) { slos_.push_back(std::move(spec)); }

  /// Re-registering a name replaces the check (so a rebuilt fabric layer
  /// can re-bind its invariants without duplicates).
  void add_invariant(const std::string& name, InvariantCheck check);

  void clear_slos() { slos_.clear(); }

  [[nodiscard]] std::size_t slo_count() const { return slos_.size(); }
  [[nodiscard]] std::size_t invariant_count() const { return invariants_.size(); }
  [[nodiscard]] bool empty() const { return slos_.empty() && invariants_.empty(); }

  /// Evaluates every invariant (registration order).
  [[nodiscard]] std::vector<Verdict> evaluate_invariants() const;

  /// Evaluates every SLO against `snapshot` (declaration order). A missing
  /// histogram fails; an empty one passes vacuously unless require_samples.
  [[nodiscard]] std::vector<Verdict> evaluate_slos(const Snapshot& snapshot) const;

  /// Invariants then SLOs, in one list.
  [[nodiscard]] std::vector<Verdict> evaluate(const Snapshot& snapshot) const;

  [[nodiscard]] static bool all_pass(const std::vector<Verdict>& verdicts);

 private:
  std::vector<SloSpec> slos_;
  std::vector<std::pair<std::string, InvariantCheck>> invariants_;
};

}  // namespace sda::telemetry
