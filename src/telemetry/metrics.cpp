#include "telemetry/metrics.hpp"

#include <algorithm>

namespace sda::telemetry {

std::string join(const std::string& prefix, const std::string& leaf) {
  if (prefix.empty()) return leaf;
  if (leaf.empty()) return prefix;
  return prefix + "." + leaf;
}

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

double HistogramSnapshot::bucket_width() const {
  return counts.empty() ? 0.0 : (spec.hi - spec.lo) / static_cast<double>(counts.size());
}

double HistogramSnapshot::bucket_lo(std::size_t i) const {
  return spec.lo + static_cast<double>(i) * bucket_width();
}

double HistogramSnapshot::quantile(double q) const {
  if (total == 0) return spec.lo;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = static_cast<double>(underflow);
  if (target <= cumulative) return spec.lo;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (target <= next && counts[i] > 0) {
      // Linear interpolation within the bucket.
      const double frac = (target - cumulative) / static_cast<double>(counts[i]);
      return bucket_lo(i) + frac * bucket_width();
    }
    cumulative = next;
  }
  return spec.hi;  // landed in overflow: clamp to the range edge
}

bool HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (spec != other.spec || counts.size() != other.counts.size()) return false;
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  underflow += other.underflow;
  overflow += other.overflow;
  total += other.total;
  sum += other.sum;
  return true;
}

namespace {
std::uint64_t saturating_sub(std::uint64_t a, std::uint64_t b) { return a > b ? a - b : 0; }
}  // namespace

HistogramSnapshot HistogramSnapshot::delta(const HistogramSnapshot& earlier) const {
  HistogramSnapshot out = *this;
  if (spec != earlier.spec || counts.size() != earlier.counts.size()) return out;
  for (std::size_t i = 0; i < out.counts.size(); ++i) {
    out.counts[i] = saturating_sub(out.counts[i], earlier.counts[i]);
  }
  out.underflow = saturating_sub(out.underflow, earlier.underflow);
  out.overflow = saturating_sub(out.overflow, earlier.overflow);
  out.total = saturating_sub(out.total, earlier.total);
  out.sum = sum > earlier.sum ? sum - earlier.sum : 0.0;
  return out;
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

Snapshot Snapshot::delta(const Snapshot& earlier) const {
  Snapshot out = *this;
  for (auto& [name, value] : out.counters) {
    const auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) value = saturating_sub(value, it->second);
  }
  for (auto& [name, hist] : out.histograms) {
    const auto it = earlier.histograms.find(name);
    if (it != earlier.histograms.end()) hist = hist.delta(it->second);
  }
  return out;
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, hist] : other.histograms) {
    const auto [it, inserted] = histograms.try_emplace(name, hist);
    if (!inserted) it->second.merge(hist);  // spec mismatch: local wins
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

LatencyHistogram& MetricsRegistry::histogram(const std::string& name, HistogramSpec spec) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, LatencyHistogram{spec}).first->second;
}

void MetricsRegistry::register_counter(const std::string& name, CounterProbe probe) {
  counter_probes_[name] = std::move(probe);
}

void MetricsRegistry::register_gauge(const std::string& name, GaugeProbe probe) {
  gauge_probes_[name] = std::move(probe);
}

namespace {
template <typename Map>
std::size_t erase_prefix(Map& map, const std::string& prefix) {
  std::size_t erased = 0;
  for (auto it = map.lower_bound(prefix); it != map.end() && it->first.rfind(prefix, 0) == 0;) {
    it = map.erase(it);
    ++erased;
  }
  return erased;
}
}  // namespace

std::size_t MetricsRegistry::unregister_prefix(const std::string& prefix) {
  std::size_t erased = 0;
  erased += erase_prefix(counters_, prefix);
  erased += erase_prefix(gauges_, prefix);
  erased += erase_prefix(histograms_, prefix);
  erased += erase_prefix(counter_probes_, prefix);
  erased += erase_prefix(gauge_probes_, prefix);
  return erased;
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  for (const auto& [name, cell] : counters_) snap.counters[name] = cell.value();
  for (const auto& [name, cell] : gauges_) snap.gauges[name] = cell.value();
  for (const auto& [name, probe] : counter_probes_) snap.counters[name] = probe();
  for (const auto& [name, probe] : gauge_probes_) snap.gauges[name] = probe();
  for (const auto& [name, cell] : histograms_) {
    HistogramSnapshot h;
    h.spec = cell.spec();
    h.counts = cell.histogram().counts();
    h.underflow = cell.histogram().underflow();
    h.overflow = cell.histogram().overflow();
    h.total = cell.histogram().total();
    h.sum = cell.sum();
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

std::size_t MetricsRegistry::size() const {
  return counters_.size() + gauges_.size() + histograms_.size() + counter_probes_.size() +
         gauge_probes_.size();
}

}  // namespace sda::telemetry
