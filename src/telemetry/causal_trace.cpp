#include "telemetry/causal_trace.hpp"

#include <algorithm>
#include <cstdio>

namespace sda::telemetry {

namespace {

std::string chrome_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double to_us(sim::SimTime t) { return static_cast<double>(t.nanoseconds()) / 1e3; }

void append_event(std::string& out, const std::string& name, const std::string& cat,
                  std::uint64_t tid, sim::SimTime start, sim::SimTime end,
                  const std::string& args) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%llu,"
                "\"ts\":%.3f,\"dur\":%.3f",
                name.c_str(), cat.c_str(), static_cast<unsigned long long>(tid), to_us(start),
                std::max(0.0, to_us(end) - to_us(start)));
  out += buf;
  if (!args.empty()) {
    out += ",\"args\":";
    out += args;
  }
  out += '}';
}

}  // namespace

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::Register: return "register";
    case OpKind::Move: return "move";
    case OpKind::SmrFanout: return "smr-fanout";
    case OpKind::FailoverRehome: return "failover-rehome";
    case OpKind::Catchup: return "catchup";
  }
  return "unknown";
}

std::string CausalTracer::key_of(OpKind kind, const std::string& label) {
  std::string key = op_kind_name(kind);
  key += '|';
  key += label;
  return key;
}

std::uint64_t CausalTracer::begin(OpKind kind, const std::string& label, sim::SimTime now) {
  if (!enabled_) return 0;
  const std::string key = key_of(kind, label);
  if (const auto it = open_by_key_.find(key); it != open_by_key_.end()) return it->second;
  const std::uint64_t id = next_id_++;
  Operation op;
  op.trace = id;
  op.kind = kind;
  op.label = label;
  op.start = now;
  op.end = now;
  open_.emplace(id, std::move(op));
  open_by_key_.emplace(key, id);
  return id;
}

std::uint64_t CausalTracer::find_open(OpKind kind, const std::string& label) const {
  if (!enabled_) return 0;
  const auto it = open_by_key_.find(key_of(kind, label));
  return it == open_by_key_.end() ? 0 : it->second;
}

std::uint64_t CausalTracer::span_begin(std::uint64_t trace, std::uint64_t parent,
                                       const char* name, const std::string& node,
                                       sim::SimTime now) {
  if (trace == 0) return 0;
  const auto it = open_.find(trace);
  if (it == open_.end()) return 0;
  Span span;
  span.id = next_id_++;
  span.parent = parent;
  span.name = name;
  span.node = node;
  span.start = now;
  span.end = now;
  it->second.spans.push_back(std::move(span));
  return it->second.spans.back().id;
}

void CausalTracer::span_end(std::uint64_t trace, std::uint64_t span, sim::SimTime now) {
  if (trace == 0 || span == 0) return;
  const auto it = open_.find(trace);
  if (it == open_.end()) return;
  for (Span& s : it->second.spans) {
    if (s.id == span) {
      s.end = now;
      s.open = false;
      return;
    }
  }
}

void CausalTracer::finish(std::uint64_t trace, sim::SimTime now) {
  if (trace == 0) return;
  const auto it = open_.find(trace);
  if (it == open_.end()) return;
  Operation op = std::move(it->second);
  open_.erase(it);
  open_by_key_.erase(key_of(op.kind, op.label));
  op.end = now;
  for (Span& s : op.spans) {
    if (s.open) {
      s.end = std::max(s.start, now);
      s.open = false;
    }
  }
  ++completed_count_;
  if (on_complete_) on_complete_(op);
  completed_.push_back(std::move(op));
  while (completed_.size() > keep_) completed_.pop_front();
}

void CausalTracer::abandon(std::uint64_t trace) {
  if (trace == 0) return;
  const auto it = open_.find(trace);
  if (it == open_.end()) return;
  open_by_key_.erase(key_of(it->second.kind, it->second.label));
  open_.erase(it);
  ++abandoned_count_;
}

std::vector<std::string> CausalTracer::open_labels() const {
  std::vector<std::string> labels;
  labels.reserve(open_.size());
  for (const auto& [id, op] : open_) {
    labels.push_back(key_of(op.kind, op.label));
  }
  std::sort(labels.begin(), labels.end());
  return labels;
}

std::string CausalTracer::to_chrome_trace() const {
  // One "thread" lane per operation kind keeps concurrent operations of the
  // same kind visually stacked; the op is the outer slice, spans nest under
  // it on the same lane (chrome://tracing nests by containment).
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Operation& op : completed_) {
    const auto tid = static_cast<std::uint64_t>(op.kind);
    if (!first) out += ',';
    first = false;
    std::string args = "{\"trace\":" + std::to_string(op.trace) + ",\"label\":\"" +
                       chrome_escape(op.label) + "\"}";
    append_event(out, std::string(op_kind_name(op.kind)) + " " + chrome_escape(op.label),
                 "operation", tid, op.start, op.end, args);
    for (const Span& span : op.spans) {
      out += ',';
      std::string span_args = "{\"span\":" + std::to_string(span.id) + ",\"parent\":" +
                              std::to_string(span.parent) + ",\"node\":\"" +
                              chrome_escape(span.node) + "\"}";
      append_event(out, chrome_escape(span.name), "span", tid, span.start, span.end, span_args);
    }
  }
  out += "]}\n";
  return out;
}

bool CausalTracer::write_chrome_trace(const std::string& dir, const std::string& name) const {
  const std::string path = dir + "/" + name + ".json";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const std::string text = to_chrome_trace();
  const bool ok = std::fputs(text.c_str(), file) >= 0;
  std::fclose(file);
  return ok;
}

}  // namespace sda::telemetry
