// Packet path tracing: opt-in hop-by-hop transit records.
//
// A trace is armed for one (vn, source EID, destination EID) flow; the
// next matching frame seen at an ingress point opens a PacketTrace, and
// every instrumented stage it passes through (edge encap, underlay
// transit, border hairpin, edge decap, SGACL verdict, local delivery)
// appends a timestamped hop. Terminal hops (delivery, a policy drop, an
// exit to an external network) complete the trace, which makes first-packet
// latency decomposable: the total is the sum of visible per-stage deltas.
//
// The hooks are safe to call unconditionally from the data plane: while no
// trace is armed or open, note()/ingress() return after one integer
// comparison, so compiled-in-but-idle tracing costs ~nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/eid.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace sda::telemetry {

enum class HopKind : std::uint8_t {
  Ingress,       // frame entered the fabric at an edge port
  LocalSwitch,   // source and destination on the same edge
  Encap,         // VXLAN-GPO encap towards a resolved RLOC
  DefaultRoute,  // map-cache miss: encap to the border default route
  Transit,       // arrived at the outer destination across the underlay
  Hairpin,       // border re-encapsulated default-routed traffic
  Decap,         // egress router decapsulated the frame
  StaleForward,  // old edge forwarded after a move (Fig. 6 step 3)
  SgaclPermit,   // group policy evaluated: permitted
  SgaclDeny,     // group policy evaluated: dropped (terminal)
  Deliver,       // handed to the destination endpoint (terminal)
  ExternalOut,   // left the fabric towards an external network (terminal)
  Drop,          // any other drop: TTL, no route, underlay loss (terminal)
};

[[nodiscard]] const char* hop_kind_name(HopKind kind);
[[nodiscard]] bool hop_is_terminal(HopKind kind);

struct TraceHop {
  sim::SimTime at;
  HopKind kind = HopKind::Ingress;
  std::string node;
  std::string detail;
};

struct PacketTrace {
  std::uint64_t id = 0;
  net::VnEid source;
  net::VnEid destination;
  sim::SimTime started;
  bool done = false;
  bool delivered = false;  // Deliver/ExternalOut vs SgaclDeny/Drop/abandoned

  std::vector<TraceHop> hops;

  /// Ingress -> last hop (total decomposable latency so far).
  [[nodiscard]] sim::Duration latency() const {
    return hops.empty() ? sim::Duration{0} : hops.back().at - started;
  }

  /// Multi-line rendering with per-hop time deltas.
  [[nodiscard]] std::string to_string() const;
};

class PathTracer {
 public:
  using CompletionCallback = std::function<void(const PacketTrace&)>;

  explicit PathTracer(std::size_t keep_completed = 256);

  /// Arms a one-shot trace for the next `source -> destination` frame seen
  /// at an ingress point. Re-arming the same flow replaces the pending
  /// trace. Returns the trace id.
  std::uint64_t arm(const net::VnEid& source, const net::VnEid& destination);

  /// Fires whenever a trace completes (after the terminal hop is appended).
  void set_completion_callback(CompletionCallback cb) { on_complete_ = std::move(cb); }

  /// True when no armed or open traces exist — the data plane's fast path.
  [[nodiscard]] bool idle() const { return armed_.empty() && open_.empty(); }

  // --- Data-plane hooks ----------------------------------------------------

  /// Ingress point: opens an armed trace if the frame matches (and then
  /// records the Ingress hop). Non-IP frames never match.
  void ingress(net::VnId vn, const net::OverlayFrame& frame, const std::string& node,
               sim::SimTime now);

  /// Appends a hop to the open trace for this frame's flow, if any.
  /// Terminal kinds complete the trace.
  void note(net::VnId vn, const net::OverlayFrame& frame, HopKind kind, const std::string& node,
            sim::SimTime now, std::string detail = {});

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] std::size_t armed_count() const { return armed_.size(); }
  [[nodiscard]] std::size_t open_count() const { return open_.size(); }
  /// Completed traces, oldest first (bounded; older ones are dropped).
  [[nodiscard]] const std::vector<PacketTrace>& completed() const { return completed_; }
  /// Traces abandoned because their flow was re-armed or re-ingressed
  /// while still open (e.g. the packet died silently in transit).
  [[nodiscard]] std::uint64_t abandoned() const { return abandoned_; }
  [[nodiscard]] const PacketTrace* find_completed(std::uint64_t id) const;

  void clear();

 private:
  struct FlowKey {
    net::VnEid source;
    net::VnEid destination;
    friend bool operator==(const FlowKey&, const FlowKey&) = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      return std::hash<net::VnEid>{}(k.source) ^ (std::hash<net::VnEid>{}(k.destination) << 1);
    }
  };

  /// The flow key of an IP frame, or nullopt for ARP and other non-IP.
  [[nodiscard]] static std::optional<FlowKey> key_of(net::VnId vn,
                                                     const net::OverlayFrame& frame);

  void complete(FlowKey key, PacketTrace trace, bool delivered);

  std::size_t keep_completed_;
  std::uint64_t next_id_ = 1;
  std::uint64_t abandoned_ = 0;
  std::unordered_map<FlowKey, std::uint64_t, FlowKeyHash> armed_;  // flow -> trace id
  std::unordered_map<FlowKey, PacketTrace, FlowKeyHash> open_;
  std::vector<PacketTrace> completed_;
  CompletionCallback on_complete_;
};

}  // namespace sda::telemetry
