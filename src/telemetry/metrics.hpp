// MetricsRegistry: one query surface over every subsystem's counters.
//
// The fabric grew ~13 ad-hoc per-subsystem Stats/Counters structs; this
// registry federates them under hierarchical dotted names (e.g.
// "edge[3].map_cache.misses") without changing any existing accessor.
// Two registration styles coexist:
//
//  * owned cells (Counter/Gauge/LatencyHistogram) for new instrumentation —
//    hot-path increments are a single add on a member integer;
//  * pull probes (register_counter/register_gauge with a callable) that
//    sample an existing struct field at snapshot() time — zero cost on the
//    instrumented hot path, which is how the legacy Stats structs migrate.
//
// snapshot() materializes everything into a plain-value Snapshot with
// deterministic (name-sorted) ordering; Snapshot::delta() subtracts an
// earlier snapshot so benches can report per-window rates, and
// HistogramSnapshot::merge() folds per-node latency histograms into a
// fabric-wide one.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "stats/histogram.hpp"

namespace sda::telemetry {

/// Joins hierarchical metric name segments: join("edge[3]", "miss") ->
/// "edge[3].miss". An empty prefix yields the leaf unchanged.
[[nodiscard]] std::string join(const std::string& prefix, const std::string& leaf);

/// An owned monotonic counter cell. Incrementing is one integer add; the
/// registry samples the value at snapshot time.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  Counter& operator++() {
    ++value_;
    return *this;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// An owned gauge cell (a value that can go down: queue depth, FIB size).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Bucket layout for a latency histogram: `buckets` equal-width bins over
/// [lo, hi), out-of-range samples land in under/overflow (stats::Histogram
/// semantics). Two histograms merge only if their specs match.
struct HistogramSpec {
  double lo = 0.0;
  double hi = 10'000.0;  // default: 0..10ms in microseconds
  std::size_t buckets = 50;

  friend bool operator==(const HistogramSpec&, const HistogramSpec&) = default;
};

/// An owned latency histogram (reuses the stats::Histogram bucket
/// machinery and additionally tracks the sample sum for mean latency).
class LatencyHistogram {
 public:
  explicit LatencyHistogram(HistogramSpec spec = {})
      : spec_(spec), histogram_(spec.lo, spec.hi, spec.buckets) {}

  void observe(double sample) {
    histogram_.add(sample);
    sum_ += sample;
  }

  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }
  [[nodiscard]] const stats::Histogram& histogram() const { return histogram_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  HistogramSpec spec_;
  stats::Histogram histogram_;
  double sum_ = 0;
};

/// A histogram materialized into plain values: safe to copy, merge across
/// nodes, and diff across time.
struct HistogramSnapshot {
  HistogramSpec spec;
  std::vector<std::uint64_t> counts;  // spec.buckets entries
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::uint64_t total = 0;
  double sum = 0;

  [[nodiscard]] double bucket_width() const;
  /// Lower edge of bucket i.
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double mean() const { return total == 0 ? 0.0 : sum / static_cast<double>(total); }

  /// Bucket-interpolated quantile (q in [0,1]); under/overflow samples clamp
  /// to the range edges.
  [[nodiscard]] double quantile(double q) const;

  /// Adds `other` bucket-wise (cross-node merge). Returns false (and leaves
  /// this unchanged) when the specs differ.
  bool merge(const HistogramSnapshot& other);

  /// Bucket-wise saturating subtraction: the samples observed since
  /// `earlier` was taken.
  [[nodiscard]] HistogramSnapshot delta(const HistogramSnapshot& earlier) const;
};

/// A point-in-time materialization of a registry: plain values with
/// deterministic (sorted-by-name) iteration order for exporters.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Counters and histograms become "since earlier" (saturating at 0 so a
  /// reset subsystem never underflows); gauges keep their current value.
  [[nodiscard]] Snapshot delta(const Snapshot& earlier) const;

  /// Cross-node/cross-shard fold: counters and gauges sum, histograms merge
  /// bucket-wise (skipped when specs mismatch — the local histogram wins),
  /// names union. Per-shard registries with identical schemas fold into one
  /// fabric-wide snapshot.
  void merge(const Snapshot& other);

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  using CounterProbe = std::function<std::uint64_t()>;
  using GaugeProbe = std::function<double()>;

  /// Owned cells, created on first use. References stay valid for the
  /// registry's lifetime (node-based map storage), so hot paths can cache
  /// them once and increment without any lookup.
  [[nodiscard]] Counter& counter(const std::string& name) { return counters_[name]; }
  [[nodiscard]] Gauge& gauge(const std::string& name) { return gauges_[name]; }
  [[nodiscard]] LatencyHistogram& histogram(const std::string& name, HistogramSpec spec = {});

  /// Pull probes sampled at snapshot() time. Re-registering a name
  /// replaces the probe. The callable must stay valid until the probe is
  /// unregistered (or the registry is destroyed) — unregister_prefix()
  /// before tearing down the instrumented subsystem.
  void register_counter(const std::string& name, CounterProbe probe);
  void register_gauge(const std::string& name, GaugeProbe probe);

  /// Removes every metric (owned or probe) whose name starts with
  /// `prefix`. Returns the number removed.
  std::size_t unregister_prefix(const std::string& prefix);

  [[nodiscard]] Snapshot snapshot() const;

  /// Total number of registered metrics (owned + probes).
  [[nodiscard]] std::size_t size() const;

 private:
  // std::map keeps references stable and iteration deterministic.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, LatencyHistogram> histograms_;
  std::map<std::string, CounterProbe> counter_probes_;
  std::map<std::string, GaugeProbe> gauge_probes_;
};

}  // namespace sda::telemetry
