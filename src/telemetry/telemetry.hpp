// The fabric-wide telemetry plane: one object bundling the five surfaces.
//
//  * metrics — MetricsRegistry federating every subsystem's counters;
//  * recorder — control-plane flight recorder (bounded event ring);
//  * tracer — opt-in per-packet path tracing;
//  * causal — opt-in control-plane span trees (operation-level tracing);
//  * assurance — declarative SLOs and continuous invariants over the rest.
//
// SdaFabric owns one; standalone subsystems (FaultPlane, WlanController,
// RouteReflector) register into whichever instance the experiment uses.
#pragma once

#include "telemetry/assurance.hpp"
#include "telemetry/causal_trace.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/path_trace.hpp"

namespace sda::telemetry {

struct Telemetry {
  MetricsRegistry metrics;
  FlightRecorder recorder;
  PathTracer tracer;
  CausalTracer causal;
  AssuranceEngine assurance;

  explicit Telemetry(std::size_t recorder_capacity = 2048, std::size_t trace_keep = 256,
                     std::size_t causal_keep = 256)
      : recorder(recorder_capacity), tracer(trace_keep), causal(causal_keep) {}
};

}  // namespace sda::telemetry
