// The fabric-wide telemetry plane: one object bundling the three surfaces.
//
//  * metrics — MetricsRegistry federating every subsystem's counters;
//  * recorder — control-plane flight recorder (bounded event ring);
//  * tracer — opt-in per-packet path tracing.
//
// SdaFabric owns one; standalone subsystems (FaultPlane, WlanController,
// RouteReflector) register into whichever instance the experiment uses.
#pragma once

#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/path_trace.hpp"

namespace sda::telemetry {

struct Telemetry {
  MetricsRegistry metrics;
  FlightRecorder recorder;
  PathTracer tracer;

  explicit Telemetry(std::size_t recorder_capacity = 2048, std::size_t trace_keep = 256)
      : recorder(recorder_capacity), tracer(trace_keep) {}
};

}  // namespace sda::telemetry
