#include "telemetry/flight_recorder.hpp"

#include <algorithm>

namespace sda::telemetry {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::MapRequest: return "map-request";
    case EventKind::MapReply: return "map-reply";
    case EventKind::MapRegister: return "map-register";
    case EventKind::MapNotify: return "map-notify";
    case EventKind::Smr: return "smr";
    case EventKind::Publish: return "publish";
    case EventKind::Resync: return "resync";
    case EventKind::SnapshotApplied: return "snapshot";
    case EventKind::PolicyPush: return "policy-push";
    case EventKind::GroupChange: return "group-change";
    case EventKind::RuleUpdate: return "rule-update";
    case EventKind::Onboard: return "onboard";
    case EventKind::Roam: return "roam";
    case EventKind::Disconnect: return "disconnect";
    case EventKind::Reboot: return "reboot";
    case EventKind::LinkState: return "link-state";
    case EventKind::FeedState: return "feed-state";
    case EventKind::Fault: return "fault";
    case EventKind::Trace: return "trace";
    case EventKind::Failover: return "failover";
    case EventKind::Failback: return "failback";
    case EventKind::AntiEntropy: return "anti-entropy";
    case EventKind::Shed: return "shed";
    case EventKind::ElectionStarted: return "election-started";
    case EventKind::LeaderElected: return "leader-elected";
    case EventKind::EpochRejected: return "epoch-rejected";
    case EventKind::ServerSuppressed: return "server-suppressed";
    case EventKind::QuorumLost: return "quorum-lost";
    case EventKind::QuorumRegained: return "quorum-regained";
    case EventKind::Custom: return "custom";
  }
  return "unknown";
}

std::string FlightEvent::to_string() const {
  std::string out = "[";
  out += at.to_string();
  out += "] ";
  out += event_kind_name(kind);
  if (!node.empty()) out += " " + node;
  if (!detail.empty()) out += ": " + detail;
  return out;
}

FlightRecorder::FlightRecorder(std::size_t capacity) {
  ring_.resize(std::max<std::size_t>(1, capacity));
}

void FlightRecorder::record(sim::SimTime at, EventKind kind, std::string node,
                            std::string detail) {
  if (!enabled_) return;
  FlightEvent& slot = ring_[seq_ % ring_.size()];
  slot.seq = ++seq_;
  slot.at = at;
  slot.kind = kind;
  slot.node = std::move(node);
  slot.detail = std::move(detail);
}

std::size_t FlightRecorder::size() const {
  return static_cast<std::size_t>(std::min<std::uint64_t>(seq_, ring_.size()));
}

std::uint64_t FlightRecorder::overwritten() const {
  return seq_ > ring_.size() ? seq_ - ring_.size() : 0;
}

std::vector<FlightEvent> FlightRecorder::events() const { return tail(ring_.size()); }

std::vector<FlightEvent> FlightRecorder::tail(std::size_t n) const {
  const std::size_t held = size();
  n = std::min(n, held);
  std::vector<FlightEvent> out;
  out.reserve(n);
  // seq_ is the seq of the newest event; walk the last n slots in order.
  for (std::uint64_t s = seq_ - n; s < seq_; ++s) {
    out.push_back(ring_[s % ring_.size()]);
  }
  return out;
}

std::vector<FlightEvent> FlightRecorder::for_node(const std::string& node) const {
  std::vector<FlightEvent> out;
  for (const auto& event : tail(ring_.size())) {
    if (event.node == node) out.push_back(event);
  }
  return out;
}

std::string FlightRecorder::dump(std::size_t max_events) const {
  const auto held = tail(max_events);
  std::string out;
  if (overwritten() > 0) {
    out += "(";
    out += std::to_string(overwritten());
    out += " earlier events overwritten)\n";
  }
  for (const auto& event : held) {
    out += event.to_string();
    out += "\n";
  }
  return out;
}

void FlightRecorder::clear() {
  for (auto& slot : ring_) slot = FlightEvent{};
  seq_ = 0;
}

}  // namespace sda::telemetry
