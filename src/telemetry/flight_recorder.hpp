// Control-plane flight recorder: a bounded ring of timestamped events.
//
// Every interesting control-plane transition (Map-Request/Reply/Register/
// Notify, SMR, pub/sub publish & resync, policy push, group change, fault
// injections, feed/link state) is recorded with the simulated time, the
// node it concerns, and a short free-form detail string. The ring is
// bounded — old events are overwritten, the overwrite count is kept — so
// it can stay enabled for the lifetime of a large run and still answer
// "what were the last N control-plane actions before this went wrong".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace sda::telemetry {

enum class EventKind : std::uint8_t {
  MapRequest,
  MapReply,
  MapRegister,
  MapNotify,
  Smr,
  Publish,
  Resync,
  SnapshotApplied,
  PolicyPush,
  GroupChange,
  RuleUpdate,
  Onboard,
  Roam,
  Disconnect,
  Reboot,
  LinkState,
  FeedState,
  Fault,
  Trace,
  Failover,     // edge group's requests repointed at a replica server
  Failback,     // hysteresis satisfied: back on the home server
  AntiEntropy,  // replica digest exchange / reconciliation round
  Shed,         // bounded admission shed a control message
  ElectionStarted,   // a replica lost the leader and opened a new term
  LeaderElected,     // a candidate won: new leader + epoch announced
  EpochRejected,     // a stale-epoch message was fenced off (split-brain)
  ServerSuppressed,  // flap dampening crossed the suppress/reuse threshold
  QuorumLost,        // a candidacy failed its majority ack count (stalled)
  QuorumRegained,    // a leader was elected with quorum after a stall
  Custom,
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

struct FlightEvent {
  std::uint64_t seq = 0;  // monotonic, starts at 1
  sim::SimTime at;
  EventKind kind = EventKind::Custom;
  std::string node;
  std::string detail;

  [[nodiscard]] std::string to_string() const;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 2048);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Records one event (no-op while disabled). Callers on busy paths
  /// should check enabled() first so detail strings are only built when
  /// they will be kept.
  void record(sim::SimTime at, EventKind kind, std::string node, std::string detail = {});

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Total events ever recorded.
  [[nodiscard]] std::uint64_t recorded() const { return seq_; }
  /// Events lost to ring wraparound.
  [[nodiscard]] std::uint64_t overwritten() const;

  /// All held events, oldest -> newest.
  [[nodiscard]] std::vector<FlightEvent> events() const;
  /// The newest `n` events, oldest -> newest.
  [[nodiscard]] std::vector<FlightEvent> tail(std::size_t n) const;
  /// Held events whose node matches, oldest -> newest (per-node scoping).
  [[nodiscard]] std::vector<FlightEvent> for_node(const std::string& node) const;

  /// Human-readable dump of the newest `max_events` events.
  [[nodiscard]] std::string dump(std::size_t max_events = SIZE_MAX) const;

  void clear();

 private:
  std::vector<FlightEvent> ring_;  // capacity slots; slot = (seq - 1) % capacity
  std::uint64_t seq_ = 0;
  bool enabled_ = true;
};

}  // namespace sda::telemetry
