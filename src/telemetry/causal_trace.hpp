// CausalTracer: span trees for control-plane operations.
//
// The per-packet PathTracer answers "where did this packet go"; the causal
// tracer answers "how long did this control-plane *operation* take, hop by
// hop". An operation (a registration, a host move, an SMR fan-out, a
// failover re-home) is opened with begin(), accumulates spans as its
// messages traverse the fabric, and is closed with finish(). The trace id
// rides inside the LISP messages themselves (a trailing optional field, so
// the wire format is unchanged when the id is 0) — whoever receives the
// message can attribute its hop to the right operation without any side
// channel.
//
// Zero-cost when disabled: begin() returns 0 and every other entry point
// early-outs on a 0 trace id, so an untraced fabric only ever pays one
// predictable branch.
//
// Completed operations are retained in a bounded ring (oldest dropped) and
// can be exported as Chrome trace-event JSON (chrome://tracing, Perfetto).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace sda::telemetry {

/// What kind of control-plane operation a trace covers. Drives which
/// convergence histogram the completion feeds.
enum class OpKind : std::uint8_t {
  Register,       // Map-Register sent -> accepted Map-Notify ack
  Move,           // roam start -> old edge applies the mobility Map-Notify
  SmrFanout,      // SMR sent -> stale sender's cache refreshed by Map-Reply
  FailoverRehome, // leader change -> every border re-homed via snapshot
  Catchup,        // replica lag detected -> digests agree again (replay or
                  // snapshot fallback)
};

[[nodiscard]] const char* op_kind_name(OpKind kind);

/// One hop (or one timed leg) inside an operation.
struct Span {
  std::uint64_t id = 0;      // unique within the tracer, never 0
  std::uint64_t parent = 0;  // parent span id, 0 = direct child of the op
  std::string name;          // e.g. "map-register", "notify-ack"
  std::string node;          // which router/server the leg runs on/toward
  sim::SimTime start{};
  sim::SimTime end{};
  bool open = true;
};

/// A control-plane operation: the root of one span tree.
struct Operation {
  std::uint64_t trace = 0;  // the id threaded through the messages
  OpKind kind = OpKind::Register;
  std::string label;        // human key, e.g. the EID or "epoch 3"
  sim::SimTime start{};
  sim::SimTime end{};
  std::vector<Span> spans;

  [[nodiscard]] sim::Duration duration() const { return end - start; }
};

class CausalTracer {
 public:
  using CompletionCallback = std::function<void(const Operation&)>;

  explicit CausalTracer(std::size_t keep = 256) : keep_(keep) {}

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Invoked (synchronously) whenever an operation finishes.
  void set_completion_callback(CompletionCallback cb) { on_complete_ = std::move(cb); }

  /// Opens an operation and returns its trace id (0 when disabled). If an
  /// operation with the same (kind, label) is already open — e.g. a
  /// retransmitted registration — the existing id is returned, so retries
  /// accumulate into one span tree.
  std::uint64_t begin(OpKind kind, const std::string& label, sim::SimTime now);

  /// The open operation for (kind, label), or 0.
  [[nodiscard]] std::uint64_t find_open(OpKind kind, const std::string& label) const;

  /// Opens a span under `trace`. Returns the span id (0 when the trace is
  /// unknown/0, which makes chained calls on untraced ops free).
  std::uint64_t span_begin(std::uint64_t trace, std::uint64_t parent, const char* name,
                           const std::string& node, sim::SimTime now);

  /// Closes a span. Unknown ids are ignored.
  void span_end(std::uint64_t trace, std::uint64_t span, sim::SimTime now);

  /// Completes the operation: stamps the end time, fires the completion
  /// callback, and retires it into the bounded completed ring. Still-open
  /// spans are clamped to the operation end. No-op for unknown ids (so a
  /// second ack finishing an already-finished op is harmless).
  void finish(std::uint64_t trace, sim::SimTime now);

  /// Drops an open operation without completing it (no callback, no
  /// retention). Used when the op can provably never finish.
  void abandon(std::uint64_t trace);

  [[nodiscard]] std::size_t open_count() const { return open_.size(); }
  [[nodiscard]] std::uint64_t completed_count() const { return completed_count_; }
  [[nodiscard]] std::uint64_t abandoned_count() const { return abandoned_count_; }
  [[nodiscard]] const std::deque<Operation>& completed() const { return completed_; }

  /// Labels of the operations still open (for leak diagnostics).
  [[nodiscard]] std::vector<std::string> open_labels() const;

  /// Chrome trace-event JSON ("traceEvents" array of complete events, one
  /// per operation and one per span; ts/dur in microseconds of sim time).
  /// Deterministic for a fixed seed. Load in chrome://tracing or Perfetto.
  [[nodiscard]] std::string to_chrome_trace() const;

  /// Writes to_chrome_trace() to `<dir>/<name>.json`.
  bool write_chrome_trace(const std::string& dir, const std::string& name) const;

 private:
  [[nodiscard]] static std::string key_of(OpKind kind, const std::string& label);

  bool enabled_ = false;
  std::size_t keep_;
  std::uint64_t next_id_ = 1;  // shared by traces and spans
  std::unordered_map<std::uint64_t, Operation> open_;
  std::unordered_map<std::string, std::uint64_t> open_by_key_;
  std::deque<Operation> completed_;
  std::uint64_t completed_count_ = 0;
  std::uint64_t abandoned_count_ = 0;
  CompletionCallback on_complete_;
};

}  // namespace sda::telemetry
