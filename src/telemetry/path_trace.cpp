#include "telemetry/path_trace.hpp"

namespace sda::telemetry {

const char* hop_kind_name(HopKind kind) {
  switch (kind) {
    case HopKind::Ingress: return "ingress";
    case HopKind::LocalSwitch: return "local-switch";
    case HopKind::Encap: return "encap";
    case HopKind::DefaultRoute: return "default-route";
    case HopKind::Transit: return "transit";
    case HopKind::Hairpin: return "hairpin";
    case HopKind::Decap: return "decap";
    case HopKind::StaleForward: return "stale-forward";
    case HopKind::SgaclPermit: return "sgacl-permit";
    case HopKind::SgaclDeny: return "sgacl-deny";
    case HopKind::Deliver: return "deliver";
    case HopKind::ExternalOut: return "external-out";
    case HopKind::Drop: return "drop";
  }
  return "unknown";
}

bool hop_is_terminal(HopKind kind) {
  switch (kind) {
    case HopKind::SgaclDeny:
    case HopKind::Deliver:
    case HopKind::ExternalOut:
    case HopKind::Drop:
      return true;
    default:
      return false;
  }
}

std::string PacketTrace::to_string() const {
  std::string out = "trace #" + std::to_string(id) + " " + source.to_string() + " -> " +
                    destination.to_string() +
                    (done ? (delivered ? " [delivered " : " [dropped ") : " [open ");
  out += std::to_string(latency().count() / 1000) + "us]\n";
  sim::SimTime previous = started;
  for (const auto& hop : hops) {
    out += "  +" + std::to_string((hop.at - previous).count() / 1000) + "us " +
           hop_kind_name(hop.kind);
    if (!hop.node.empty()) out += " @" + hop.node;
    if (!hop.detail.empty()) out += " (" + hop.detail + ")";
    out += "\n";
    previous = hop.at;
  }
  return out;
}

PathTracer::PathTracer(std::size_t keep_completed)
    : keep_completed_(std::max<std::size_t>(1, keep_completed)) {}

std::uint64_t PathTracer::arm(const net::VnEid& source, const net::VnEid& destination) {
  const FlowKey key{source, destination};
  // An open trace for the same flow can never finish now (its terminal hop
  // would be attributed to the new packet): abandon it.
  if (const auto open = open_.find(key); open != open_.end()) {
    ++abandoned_;
    open_.erase(open);
  }
  const std::uint64_t id = next_id_++;
  armed_[key] = id;
  return id;
}

std::optional<PathTracer::FlowKey> PathTracer::key_of(net::VnId vn,
                                                      const net::OverlayFrame& frame) {
  if (!frame.is_ipv4() && !frame.is_ipv6()) return std::nullopt;
  return FlowKey{net::VnEid{vn, frame.source_eid()}, net::VnEid{vn, frame.destination_eid()}};
}

void PathTracer::ingress(net::VnId vn, const net::OverlayFrame& frame, const std::string& node,
                         sim::SimTime now) {
  if (armed_.empty()) return;
  const auto key = key_of(vn, frame);
  if (!key) return;
  const auto it = armed_.find(*key);
  if (it == armed_.end()) return;

  PacketTrace trace;
  trace.id = it->second;
  trace.source = key->source;
  trace.destination = key->destination;
  trace.started = now;
  trace.hops.push_back(TraceHop{now, HopKind::Ingress, node, {}});
  armed_.erase(it);
  if (const auto open = open_.find(*key); open != open_.end()) {
    ++abandoned_;
    open_.erase(open);
  }
  open_.emplace(*key, std::move(trace));
}

void PathTracer::note(net::VnId vn, const net::OverlayFrame& frame, HopKind kind,
                      const std::string& node, sim::SimTime now, std::string detail) {
  if (open_.empty()) return;
  const auto key = key_of(vn, frame);
  if (!key) return;
  const auto it = open_.find(*key);
  if (it == open_.end()) return;

  it->second.hops.push_back(TraceHop{now, kind, node, std::move(detail)});
  if (hop_is_terminal(kind)) {
    PacketTrace trace = std::move(it->second);
    open_.erase(it);
    complete(*key, std::move(trace),
             kind == HopKind::Deliver || kind == HopKind::ExternalOut);
  }
}

void PathTracer::complete(FlowKey, PacketTrace trace, bool delivered) {
  trace.done = true;
  trace.delivered = delivered;
  if (completed_.size() >= keep_completed_) {
    completed_.erase(completed_.begin(),
                     completed_.begin() +
                         static_cast<std::ptrdiff_t>(completed_.size() - keep_completed_ + 1));
  }
  completed_.push_back(std::move(trace));
  if (on_complete_) on_complete_(completed_.back());
}

const PacketTrace* PathTracer::find_completed(std::uint64_t id) const {
  for (const auto& trace : completed_) {
    if (trace.id == id) return &trace;
  }
  return nullptr;
}

void PathTracer::clear() {
  armed_.clear();
  open_.clear();
  completed_.clear();
  abandoned_ = 0;
}

}  // namespace sda::telemetry
