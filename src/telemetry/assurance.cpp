#include "telemetry/assurance.hpp"

#include <algorithm>
#include <cstdio>

namespace sda::telemetry {

namespace {

std::string format_value(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void AssuranceEngine::add_invariant(const std::string& name, InvariantCheck check) {
  for (auto& [existing, fn] : invariants_) {
    if (existing == name) {
      fn = std::move(check);
      return;
    }
  }
  invariants_.emplace_back(name, std::move(check));
}

std::vector<Verdict> AssuranceEngine::evaluate_invariants() const {
  std::vector<Verdict> verdicts;
  verdicts.reserve(invariants_.size());
  for (const auto& [name, check] : invariants_) {
    auto [pass, detail] = check();
    verdicts.push_back(Verdict{name, pass, std::move(detail)});
  }
  return verdicts;
}

std::vector<Verdict> AssuranceEngine::evaluate_slos(const Snapshot& snapshot) const {
  std::vector<Verdict> verdicts;
  verdicts.reserve(slos_.size());
  for (const SloSpec& slo : slos_) {
    const auto it = snapshot.histograms.find(slo.histogram);
    if (it == snapshot.histograms.end()) {
      verdicts.push_back(Verdict{slo.name, false, "histogram " + slo.histogram + " not found"});
      continue;
    }
    const HistogramSnapshot& hist = it->second;
    if (hist.total == 0) {
      verdicts.push_back(Verdict{slo.name, !slo.require_samples,
                                 "no samples in " + slo.histogram});
      continue;
    }
    const double observed = hist.quantile(slo.quantile);
    const bool pass = observed <= slo.max_value;
    std::string detail = "p" + format_value(slo.quantile * 100) + "=" + format_value(observed) +
                         (pass ? " <= " : " > ") + format_value(slo.max_value) +
                         ", n=" + std::to_string(hist.total);
    verdicts.push_back(Verdict{slo.name, pass, std::move(detail)});
  }
  return verdicts;
}

std::vector<Verdict> AssuranceEngine::evaluate(const Snapshot& snapshot) const {
  std::vector<Verdict> verdicts = evaluate_invariants();
  std::vector<Verdict> slos = evaluate_slos(snapshot);
  verdicts.insert(verdicts.end(), std::make_move_iterator(slos.begin()),
                  std::make_move_iterator(slos.end()));
  return verdicts;
}

bool AssuranceEngine::all_pass(const std::vector<Verdict>& verdicts) {
  return std::all_of(verdicts.begin(), verdicts.end(),
                     [](const Verdict& v) { return v.pass; });
}

}  // namespace sda::telemetry
