#include "workload/policy_drops.hpp"

#include <array>
#include <cmath>

namespace sda::workload {

namespace {

constexpr net::VnId kVn{200};
constexpr net::GroupId kUserGroup{40};
constexpr net::GroupId kAllowedServices{50};
constexpr net::GroupId kRestrictedServices{60};
constexpr net::GroupId kNewlyRestricted{61};

/// Office presence factor by hour-of-day (fraction of users active).
double office_presence(unsigned hour_of_day) {
  if (hour_of_day < 7 || hour_of_day >= 21) return 0.03;
  if (hour_of_day < 9) return 0.3;
  if (hour_of_day < 18) return 0.9;
  return 0.25;
}

/// Remote/VPN users keep flatter hours.
double remote_presence(unsigned hour_of_day) {
  if (hour_of_day < 6) return 0.10;
  if (hour_of_day < 9) return 0.35;
  if (hour_of_day < 22) return 0.65;
  return 0.2;
}

}  // namespace

PolicyDropResult run_policy_drops(const PolicyDropSpec& spec) {
  sim::Rng rng{spec.seed};
  PolicyDropResult result;

  for (const DeviceProfile& profile : spec.devices) {
    // Each monitored device owns a real SGACL programmed from a matrix with
    // deny rules towards the restricted service groups.
    policy::ConnectivityMatrix matrix{policy::Action::Allow};
    matrix.set_rule(kUserGroup, kRestrictedServices, policy::Action::Deny);
    matrix.set_rule(kUserGroup, kNewlyRestricted, policy::Action::Deny);
    dataplane::Sgacl sgacl{policy::Action::Allow};
    sgacl.install_destination_rules(kVn, kRestrictedServices,
                                    matrix.rules_for_destination(kRestrictedServices));

    DeviceDropSeries series;
    series.name = profile.name;

    // Per-user denial memory: how often this user has been denied towards
    // each restricted group (humans give up).
    std::vector<std::array<unsigned, 2>> denial_counts(profile.users, {0, 0});
    bool update_applied = false;

    for (unsigned hour = 0; hour < spec.days * 24; ++hour) {
      const unsigned hod = hour % 24;
      const double presence =
          profile.remote_usage ? remote_presence(hod) : office_presence(hod);

      // The policy rollout lands: the new deny rule reaches this device.
      if (spec.policy_update_hour >= 0 &&
          hour >= static_cast<unsigned>(spec.policy_update_hour) && !update_applied) {
        sgacl.install_destination_rules(kVn, kNewlyRestricted,
                                        matrix.rules_for_destination(kNewlyRestricted));
        update_applied = true;
      }

      const auto before = sgacl.counters();
      for (unsigned u = 0; u < profile.users; ++u) {
        if (!rng.chance(presence)) continue;
        const double attempts = rng.exponential(profile.attempts_per_hour);
        const auto n = static_cast<unsigned>(attempts);
        for (unsigned a = 0; a < n; ++a) {
          // Pick a destination group for this new connection.
          double denied_share = profile.denied_pick_share;
          int restricted_idx = 0;
          net::GroupId destination = kAllowedServices;
          if (update_applied && spec.policy_update_hour >= 0) {
            // Transient: users still request the newly restricted
            // destination until they learn it is gone (exponential decay
            // over ~6 hours after the rollout).
            const double since =
                static_cast<double>(hour) - static_cast<double>(spec.policy_update_hour);
            const double transient =
                spec.update_transient_share * std::exp(-since / 6.0);
            if (rng.chance(transient)) {
              destination = kNewlyRestricted;
              restricted_idx = 1;
            }
          }
          if (destination == kAllowedServices && rng.chance(denied_share)) {
            destination = kRestrictedServices;
            restricted_idx = 0;
          }

          if (destination != kAllowedServices) {
            // Human give-up behaviour: retry probability decays with the
            // number of denials already experienced for this destination.
            const unsigned prior =
                denial_counts[u][static_cast<std::size_t>(restricted_idx)];
            const double retry_p = std::exp(-profile.give_up_rate * prior);
            if (!rng.chance(retry_p)) {
              destination = kAllowedServices;  // user redirected their work
            }
          }

          const policy::Action action = sgacl.evaluate(kVn, kUserGroup, destination);
          if (action == policy::Action::Deny) {
            ++denial_counts[u][destination == kNewlyRestricted ? 1 : 0];
          }
        }
      }
      const auto after = sgacl.counters();
      const std::uint64_t packets = after.total() - before.total();
      const std::uint64_t drops = after.drops - before.drops;
      series.total_packets += packets;
      series.total_drops += drops;
      const double permille =
          packets == 0 ? 0 : 1000.0 * static_cast<double>(drops) / static_cast<double>(packets);
      series.drop_permille.add(sim::SimTime{std::chrono::hours{hour}}, permille);
    }
    result.devices.push_back(std::move(series));
  }
  return result;
}

}  // namespace sda::workload
