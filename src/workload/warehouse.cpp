#include "workload/warehouse.hpp"

#include <unordered_map>

namespace sda::workload {

namespace {

constexpr net::VnId kRobotVn{1};
constexpr net::GroupId kRobotGroup{30};

sim::Duration seconds_d(double s) {
  return sim::Duration{static_cast<std::int64_t>(s * 1e9)};
}

struct PendingMove {
  sim::SimTime detach;
  std::optional<sim::SimTime> attach_done;
  std::optional<sim::SimTime> border_done;

  [[nodiscard]] bool complete() const { return attach_done && border_done; }
  [[nodiscard]] double handover_seconds() const {
    const sim::SimTime restored = std::max(*attach_done, *border_done);
    return static_cast<double>((restored - detach).count()) / 1e9;
  }
};

}  // namespace

stats::Summary WarehouseWorkload::run_reactive(std::size_t* moves_out) {
  sim::Simulator sim;
  sim::Rng rng{spec_.seed};

  fabric::FabricConfig config;
  config.timings = spec_.timings;
  config.l2_gateway = false;
  config.seed = spec_.seed ^ 0x3A;
  config.trace_first_packets = spec_.trace_first_packets;
  fabric::SdaFabric fabric(sim, config);

  fabric.add_border("border-0");
  for (unsigned e = 0; e < spec_.edges; ++e) {
    const std::string name = "edge-" + std::to_string(e);
    fabric.add_edge(name);
    fabric.link(name, "border-0", std::chrono::microseconds{50});
  }
  fabric.finalize();
  fabric.define_vn({kRobotVn, "robots", *net::Ipv4Prefix::parse("10.64.0.0/14")});
  fabric.add_external_prefix(kRobotVn, *net::Ipv4Prefix::parse("0.0.0.0/0"));

  struct Robot {
    net::MacAddress mac;
    net::Ipv4Address ip;
    unsigned edge = 0;  // 0 or 1: the two "physical" edges
    bool moving = false;
  };
  std::vector<Robot> robots(spec_.hosts);
  for (unsigned i = 0; i < spec_.hosts; ++i) {
    robots[i].mac = net::MacAddress::from_u64(0x0600'0000'0000ull | i);
    robots[i].edge = i % 2;
    fabric::EndpointDefinition def;
    def.credential = "robot-" + std::to_string(i);
    def.secret = "wheels";
    def.mac = robots[i].mac;
    def.vn = kRobotVn;
    def.group = kRobotGroup;
    fabric.provision_endpoint(def);
  }

  // Initial onboarding, staggered below the mobility-phase rate.
  const net::Ipv4Address sink{203u << 24 | 113};  // 203.0.0.113-ish external sink
  for (unsigned i = 0; i < spec_.hosts; ++i) {
    const sim::Duration when = seconds_d(static_cast<double>(i) / 600.0);
    sim.schedule_after(when, [&fabric, &robots, i, sink] {
      Robot& robot = robots[i];
      fabric.connect_endpoint("robot-" + std::to_string(i),
                              "edge-" + std::to_string(robot.edge), 1,
                              [&fabric, &robot, sink](const fabric::OnboardResult& r) {
                                if (!r.success) return;
                                robot.ip = r.ip;
                                // Prime the upstream UDP flow towards the
                                // border (the yellow arrow of Fig. 10).
                                fabric.endpoint_send_udp(robot.mac, sink, 9000, 1458);
                              });
    });
  }

  // Move tracking: the border-sync listener stamps convergence. A robot
  // stays `moving` until its move fully completes (attach + border sync),
  // so overlapping moves of one host can never cross-contaminate samples.
  std::unordered_map<net::VnEid, PendingMove> pending;
  std::unordered_map<net::VnEid, std::size_t> robot_of;
  stats::Summary handovers;
  std::size_t completed = 0;

  auto maybe_finish = [&](const net::VnEid& eid) {
    const auto it = pending.find(eid);
    if (it == pending.end() || !it->second.complete()) return;
    handovers.add(it->second.handover_seconds());
    ++completed;
    pending.erase(it);
    robots[robot_of.at(eid)].moving = false;
  };

  fabric.set_border_sync_listener([&](const std::string&, const net::VnEid& eid,
                                      const lisp::MappingRecord* record) {
    if (!record) return;
    const auto it = pending.find(eid);
    if (it == pending.end() || it->second.border_done) return;
    it->second.border_done = sim.now();
    maybe_finish(eid);
  });

  // Mobility phase: Poisson moves between the two physical edges.
  const double warmup_s = static_cast<double>(spec_.hosts) / 600.0 + 2.0;
  const sim::SimTime t0{seconds_d(warmup_s)};
  const sim::SimTime t_end = t0 + seconds_d(spec_.measure_seconds);

  std::function<void()> schedule_next_move = [&] {
    const sim::Duration gap = rng.exp_interarrival(spec_.moves_per_second);
    sim.schedule_after(gap, [&] {
      if (sim.now() >= t_end) return;
      schedule_next_move();
      // Pick a robot not currently mid-move.
      for (int attempt = 0; attempt < 4; ++attempt) {
        const std::size_t idx = rng.next_below(robots.size());
        Robot& robot = robots[idx];
        if (robot.moving || robot.ip.is_unspecified()) continue;
        robot.moving = true;
        robot.edge = 1 - robot.edge;
        const net::VnEid eid{kRobotVn, net::Eid{robot.ip}};
        pending[eid] = PendingMove{sim.now(), std::nullopt, std::nullopt};
        robot_of[eid] = idx;
        fabric.roam_endpoint(robot.mac, "edge-" + std::to_string(robot.edge), 1,
                             [&, eid, idx](const fabric::OnboardResult& r) {
                               const auto it = pending.find(eid);
                               if (it == pending.end()) return;
                               if (!r.success) {
                                 pending.erase(it);
                                 robots[idx].moving = false;
                                 return;
                               }
                               it->second.attach_done = sim.now();
                               maybe_finish(eid);
                             });
        return;
      }
    });
  };
  sim.schedule_at(t0, schedule_next_move);

  sim.run_until(t_end + seconds_d(2.0));  // drain in-flight moves

  if (moves_out) *moves_out = completed;
  if (spec_.inspect_reactive) spec_.inspect_reactive(fabric);
  return handovers;
}

stats::Summary WarehouseWorkload::run_proactive(std::size_t* moves_out) {
  sim::Simulator sim;
  sim::Rng rng{spec_.seed ^ 0xB6};

  bgp::RouteReflector reflector{sim, spec_.reflector, spec_.seed ^ 0x9};
  std::vector<std::unique_ptr<bgp::BgpPeer>> peers;
  // Peer 0 is the border; 1..edges are edge routers.
  for (unsigned i = 0; i <= spec_.edges; ++i) {
    peers.push_back(std::make_unique<bgp::BgpPeer>(net::Ipv4Address{(10u << 24) | (1000 + i)}));
    reflector.add_client(*peers.back());
  }
  bgp::BgpPeer& border_peer = *peers.front();

  // Identical attach timing model to the reactive run.
  const fabric::FabricTimings& t = spec_.timings;
  const sim::Duration hop = std::chrono::microseconds{50} + std::chrono::microseconds{5};
  const sim::Duration rtt = hop * 2;
  const sim::Duration attach_delay =
      t.detection + (rtt + t.auth_processing) * t.roam_auth_round_trips;

  struct Robot {
    net::VnEid eid;
    unsigned edge = 0;
    bool moving = false;
  };
  std::vector<Robot> robots(spec_.hosts);
  for (unsigned i = 0; i < spec_.hosts; ++i) {
    robots[i].eid =
        net::VnEid{kRobotVn, net::Eid{net::Ipv4Address{(10u << 24) | (1u << 22) | i}}};
    robots[i].edge = i % 2;
  }

  std::unordered_map<net::VnEid, sim::SimTime> pending;  // eid -> detach time
  std::unordered_map<net::VnEid, std::size_t> robot_of;
  stats::Summary handovers;
  std::size_t completed = 0;

  border_peer.set_install_callback([&](const net::VnEid& eid, net::Ipv4Address) {
    const auto it = pending.find(eid);
    if (it == pending.end()) return;
    handovers.add(static_cast<double>((sim.now() - it->second).count()) / 1e9);
    ++completed;
    pending.erase(it);
    // The robot may move again only once the fabric converged on this move.
    robots[robot_of.at(eid)].moving = false;
  });

  const sim::SimTime t_end{seconds_d(spec_.measure_seconds)};
  std::function<void()> schedule_next_move = [&] {
    const sim::Duration gap = rng.exp_interarrival(spec_.moves_per_second);
    sim.schedule_after(gap, [&] {
      if (sim.now() >= t_end) return;
      schedule_next_move();
      for (int attempt = 0; attempt < 4; ++attempt) {
        const std::size_t idx = rng.next_below(robots.size());
        Robot& robot = robots[idx];
        if (robot.moving) continue;
        robot.moving = true;
        robot.edge = 1 - robot.edge;
        pending[robot.eid] = sim.now();  // detach
        robot_of[robot.eid] = idx;
        const net::Ipv4Address new_edge_rloc = peers[1 + robot.edge]->rloc();
        sim.schedule_after(attach_delay, [&, idx, new_edge_rloc] {
          // The new edge announces the host route; the reflector replicates
          // it to all 200 peers — the border included, eventually.
          reflector.announce(new_edge_rloc, robots[idx].eid, new_edge_rloc);
        });
        return;
      }
    });
  };
  sim.schedule_at(sim::SimTime::zero(), schedule_next_move);

  sim.run_until(t_end + seconds_d(3.0));

  if (moves_out) *moves_out = completed;
  return handovers;
}

WarehouseResult WarehouseWorkload::run() {
  WarehouseResult result;
  result.lisp_handover_s = run_reactive(&result.lisp_moves);
  result.bgp_handover_s = run_proactive(&result.bgp_moves);
  result.peak_registers_per_second = spec_.moves_per_second;  // by construction
  return result;
}

}  // namespace sda::workload
