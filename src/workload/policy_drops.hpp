// Egress-policy drop-rate workload (Fig. 12).
//
// Models the paper's production observation: with group policy enforced on
// egress, traffic that will be denied still crosses the fabric — yet the
// measured waste is tiny (worst case ~0.2 permille) because the endpoints
// behind the drops are humans who stop retrying destinations that never
// answer. Three device profiles are monitored (branch router, campus edge,
// VPN gateway; ~11k endpoints combined), with a policy update mid-trace
// producing the transient drop spike the paper describes in §5.3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/sgacl.hpp"
#include "policy/matrix.hpp"
#include "sim/random.hpp"
#include "stats/timeseries.hpp"

namespace sda::workload {

struct DeviceProfile {
  std::string name;
  unsigned users = 1000;
  /// Mean new-connection attempts per present user per hour.
  double attempts_per_hour = 30.0;
  /// Probability a *new* destination pick is towards a denied group.
  double denied_pick_share = 0.004;
  /// Retry decay: after d denials of a (user, destination-group) pair the
  /// user retries with probability exp(-give_up_rate * d).
  double give_up_rate = 1.6;
  /// Diurnal usage: false = office pattern, true = remote/VPN (flatter
  /// hours, more exploratory traffic — the paper's VPN gateway showed
  /// distinctly higher drops).
  bool remote_usage = false;
};

struct PolicyDropSpec {
  std::vector<DeviceProfile> devices = {
      {.name = "branch", .users = 1500, .attempts_per_hour = 25,
       .denied_pick_share = 0.00015},
      {.name = "campus-edge", .users = 8000, .attempts_per_hour = 30,
       .denied_pick_share = 0.00010},
      {.name = "vpn-gw", .users = 1500, .attempts_per_hour = 35,
       .denied_pick_share = 0.00050, .give_up_rate = 1.1, .remote_usage = true},
  };
  unsigned days = 5;
  /// Hour (since start) at which a new deny rule is rolled out, causing the
  /// transient drop increase; <0 disables.
  int policy_update_hour = 52;
  /// Extra denied share during the transient, decaying over ~6h.
  double update_transient_share = 0.0015;
  std::uint64_t seed = 3;
};

struct DeviceDropSeries {
  std::string name;
  stats::TimeSeries drop_permille;  // hourly permille of dropped packets
  std::uint64_t total_packets = 0;
  std::uint64_t total_drops = 0;

  [[nodiscard]] double overall_permille() const {
    return total_packets == 0
               ? 0
               : 1000.0 * static_cast<double>(total_drops) / static_cast<double>(total_packets);
  }
  [[nodiscard]] double worst_hour_permille() const { return drop_permille.max(); }
};

struct PolicyDropResult {
  std::vector<DeviceDropSeries> devices;
};

/// Runs the hour-stepped drop model against real Sgacl tables.
[[nodiscard]] PolicyDropResult run_policy_drops(const PolicyDropSpec& spec);

}  // namespace sda::workload
