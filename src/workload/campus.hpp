// Campus workload: the diurnal presence + traffic model behind Fig. 9 and
// Table 5.
//
// Reproduces the paper's two office buildings (Table 4): users arrive on
// weekday mornings, work, and leave in the evening; a population of
// permanent endpoints (desktops, VoIP phones, cameras) never leaves. While
// present, endpoints open flows to external services and to each other;
// flows populate edge map-caches reactively, while the border's pub/sub FIB
// tracks exactly the authenticated-endpoint population. Night traffic from
// permanent endpoints towards departed hosts triggers negative resolutions
// that clean stale edge cache entries — the §4.2 mechanism that makes
// building B's edges follow the day/night routine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fabric/fabric.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/timeseries.hpp"

namespace sda::workload {

struct CampusSpec {
  std::string name = "A";
  unsigned borders = 1;
  unsigned edges = 7;
  unsigned users = 150;      // humans following the diurnal routine
  unsigned permanent = 25;   // always-on endpoints (IoT, desktops)
  /// Probability a user skips the office on a given weekday.
  double weekday_absence = 0.15;
  /// Probability a user shows up on a weekend day.
  double weekend_presence = 0.05;
  /// Mean flow initiations per present endpoint per hour.
  double flows_per_hour = 6.0;
  /// Mean flow initiations per permanent endpoint per hour (day and night).
  double permanent_flows_per_hour = 2.0;
  /// Share of flows towards external (Internet/DC) destinations.
  double external_share = 0.75;
  /// Number of distinct external destinations (Zipf-popular).
  unsigned external_destinations = 40;
  /// Each endpoint talks to a fixed contact set (hosts don't pick random
  /// peers): `internal_contacts` peers sampled Zipf(`internal_zipf`) over
  /// the population, and `external_contacts` services sampled
  /// Zipf(`external_zipf`) over the external set. The per-edge union of
  /// these sets is what bounds edge map-cache occupancy (Fig. 9).
  unsigned internal_contacts = 6;
  double internal_zipf = 0.6;
  unsigned external_contacts = 10;
  double external_zipf = 0.8;
  /// Map-cache TTL requested by edges, seconds (paper default: 1440 min).
  std::uint32_t register_ttl_seconds = 1440 * 60;
  /// TTL on external-prefix resolutions (shorter than endpoint routes).
  std::uint32_t external_ttl_seconds = 4 * 3600;
  std::uint64_t seed = 1;
};

struct CampusResult {
  stats::TimeSeries border_fib;  // hourly, averaged across border routers
  stats::TimeSeries edge_fib;    // hourly, averaged across edge routers
  std::vector<stats::TimeSeries> per_edge_fib;

  double border_all = 0, border_day = 0, border_night = 0;  // Table 5 rows
  double edge_all = 0, edge_day = 0, edge_night = 0;
  /// 1 - edge_all / border_all (the paper's "Decrease" row).
  [[nodiscard]] double state_reduction() const {
    return border_all == 0 ? 0 : 1.0 - edge_all / border_all;
  }
};

class CampusWorkload {
 public:
  explicit CampusWorkload(CampusSpec spec);
  ~CampusWorkload();

  /// Runs `weeks` simulated weeks (sampling hourly) and returns the series.
  CampusResult run(unsigned weeks);

  [[nodiscard]] fabric::SdaFabric& fabric() { return *fabric_; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }

 private:
  struct Host {
    std::string credential;
    net::MacAddress mac;
    std::string home_edge;
    bool permanent = false;
    bool present = false;
    net::Ipv4Address ip;  // known after first onboarding
    std::vector<std::size_t> internal_contacts;  // peer indices
    std::vector<std::uint32_t> external_contacts;  // external service ids
  };

  void build_topology();
  void provision_hosts();
  void schedule_day(unsigned day_index);
  void schedule_presence(Host& host, sim::SimTime arrive, sim::SimTime depart);
  void start_flow_process(Host& host);
  void send_one_flow(Host& host);
  void sample_hourly(CampusResult& result, sim::SimTime at);

  CampusSpec spec_;
  sim::Simulator simulator_;
  std::unique_ptr<fabric::SdaFabric> fabric_;
  sim::Rng rng_;
  std::vector<Host> hosts_;
  net::VnId vn_{100};
};

/// True during the paper's "day" window: 9:00-19:00 (§4.2, Table 5).
[[nodiscard]] bool is_work_hours(sim::SimTime t);
/// True Monday-Friday, with day 0 = Monday.
[[nodiscard]] bool is_weekday(sim::SimTime t);

}  // namespace sda::workload
