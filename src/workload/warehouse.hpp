// Warehouse workload: massive-mobility handover measurement (Fig. 10/11).
//
// Recreates the paper's lab setup: one border with an embedded routing
// server, 200 edge routers, 16,000 robot endpoints attached to the two
// "physical" edges, unidirectional UDP from hosts towards the border, and
// 800 mobility events per second bouncing hosts between the two edges.
//
// Handover delay is measured per move as
//     max(attach-complete, convergence-at-the-border) - detach,
// i.e. when the host can transmit again AND the rest of the fabric can
// reach it. Two control planes are compared on identical topology/timing:
//   * reactive (LISP): Map-Register + pub/sub to the border, Map-Notify to
//     the previous edge; only routers that need the update hear about it.
//   * proactive (BGP): the new edge announces to a route reflector that
//     replicates the update to all 200 peers; the border's (random)
//     position in the fan-out sets its convergence time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bgp/route_reflector.hpp"
#include "fabric/fabric.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"

namespace sda::workload {

struct WarehouseSpec {
  unsigned edges = 200;
  unsigned hosts = 16000;
  double moves_per_second = 800;        // ~5% of hosts move each second
  double measure_seconds = 20;          // steady-state measurement window
  /// Fast-roaming control timings (robots use PSK fast transition).
  fabric::FabricTimings timings{
      .detection = std::chrono::microseconds{500},
      .auth_processing = std::chrono::microseconds{500},
      .auth_round_trips = 2,
      .roam_auth_round_trips = 1,
      .rule_download_processing = std::chrono::microseconds{200},
      .dhcp_processing = std::chrono::milliseconds{1},
  };
  bgp::ReflectorConfig reflector;  // proactive-baseline knobs
  std::uint64_t seed = 11;
  /// Arm a path trace for the first packet of every flow in the reactive
  /// run (feeds the fabric.first_packet_us histogram and the trace log).
  bool trace_first_packets = false;
  /// Called with the reactive fabric after the run completes but before it
  /// is destroyed — the hook for exporting its telemetry snapshot.
  std::function<void(fabric::SdaFabric&)> inspect_reactive;
};

struct WarehouseResult {
  stats::Summary lisp_handover_s;  // per-move handover delay, seconds
  stats::Summary bgp_handover_s;
  std::size_t lisp_moves = 0;
  std::size_t bgp_moves = 0;
  /// Peak Map-Register+Map-Request rate seen by the routing server (§4.1).
  double peak_registers_per_second = 0;
};

class WarehouseWorkload {
 public:
  explicit WarehouseWorkload(WarehouseSpec spec) : spec_(std::move(spec)) {}

  /// Runs the reactive (LISP/SDA) configuration.
  [[nodiscard]] stats::Summary run_reactive(std::size_t* moves_out = nullptr);

  /// Runs the proactive (BGP route-reflector) configuration.
  [[nodiscard]] stats::Summary run_proactive(std::size_t* moves_out = nullptr);

  /// Runs both and returns the combined result.
  [[nodiscard]] WarehouseResult run();

 private:
  WarehouseSpec spec_;
};

}  // namespace sda::workload
