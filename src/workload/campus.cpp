#include "workload/campus.hpp"

#include <algorithm>
#include <cmath>

#include "fabric/topologies.hpp"

namespace sda::workload {

namespace {

constexpr auto kHour = std::chrono::hours{1};
constexpr auto kDay = std::chrono::hours{24};

sim::Duration hours_d(double h) {
  return sim::Duration{static_cast<std::int64_t>(h * 3600.0 * 1e9)};
}

}  // namespace

bool is_work_hours(sim::SimTime t) {
  const double hour_of_day = std::fmod(t.hours(), 24.0);
  return hour_of_day >= 9.0 && hour_of_day < 19.0;
}

bool is_weekday(sim::SimTime t) {
  const auto day = static_cast<long>(t.hours() / 24.0);
  return (day % 7) < 5;
}

CampusWorkload::CampusWorkload(CampusSpec spec) : spec_(std::move(spec)), rng_(spec_.seed) {
  fabric::FabricConfig config;
  config.register_ttl_seconds = spec_.register_ttl_seconds;
  config.seed = spec_.seed ^ 0xCA;
  config.l2_gateway = false;  // ARP churn is not part of the Fig. 9 metric
  fabric_ = std::make_unique<fabric::SdaFabric>(simulator_, config);
  build_topology();
  provision_hosts();

  // Fixed per-host contact sets (who this host actually talks to).
  sim::ZipfSampler internal_zipf{hosts_.size(), spec_.internal_zipf};
  sim::ZipfSampler external_zipf{spec_.external_destinations, spec_.external_zipf};
  for (std::size_t h = 0; h < hosts_.size(); ++h) {
    Host& host = hosts_[h];
    while (host.internal_contacts.size() < spec_.internal_contacts) {
      const std::size_t peer = internal_zipf.sample(rng_);
      if (peer == h) continue;
      if (std::find(host.internal_contacts.begin(), host.internal_contacts.end(), peer) ==
          host.internal_contacts.end()) {
        host.internal_contacts.push_back(peer);
      }
    }
    while (host.external_contacts.size() < spec_.external_contacts &&
           host.external_contacts.size() < spec_.external_destinations) {
      const auto svc = static_cast<std::uint32_t>(external_zipf.sample(rng_));
      if (std::find(host.external_contacts.begin(), host.external_contacts.end(), svc) ==
          host.external_contacts.end()) {
        host.external_contacts.push_back(svc);
      }
    }
  }
}

CampusWorkload::~CampusWorkload() = default;

void CampusWorkload::build_topology() {
  // Fig. 8 three-tier shape: edges dual-homed to distribution switches,
  // distribution meshed to the borders. FIB occupancy is what the Fig. 9 /
  // Table 5 experiments measure, so only connectivity (not path length)
  // matters here — but the tiered underlay also exercises ECMP.
  fabric::TieredCampusSpec topo;
  topo.borders = spec_.borders;
  topo.distribution = 2;
  topo.edges = spec_.edges;
  (void)fabric::build_tiered_campus(*fabric_, topo);
  fabric_->finalize();

  fabric_->define_vn({vn_, "corp", *net::Ipv4Prefix::parse("10.100.0.0/16")});
  fabric_->add_external_prefix(vn_, *net::Ipv4Prefix::parse("0.0.0.0/0"),
                               net::GroupId::unknown(), spec_.external_ttl_seconds);
}

void CampusWorkload::provision_hosts() {
  const net::GroupId employees{10};
  const net::GroupId devices{20};
  const unsigned total = spec_.users + spec_.permanent;
  hosts_.reserve(total);
  for (unsigned i = 0; i < total; ++i) {
    Host host;
    host.permanent = i >= spec_.users;
    host.credential = (host.permanent ? "dev-" : "user-") + spec_.name + std::to_string(i);
    host.mac = net::MacAddress::from_u64(0x0200'0000'0000ull | (spec_.seed << 20) | i);
    host.home_edge = "edge-" + std::to_string(i % spec_.edges);
    fabric::EndpointDefinition def;
    def.credential = host.credential;
    def.secret = "s3cret";
    def.mac = host.mac;
    def.vn = vn_;
    def.group = host.permanent ? devices : employees;
    fabric_->provision_endpoint(def);
    hosts_.push_back(std::move(host));
  }
}

void CampusWorkload::schedule_presence(Host& host, sim::SimTime arrive, sim::SimTime depart) {
  simulator_.schedule_at(arrive, [this, &host] {
    if (host.present) return;
    host.present = true;
    fabric_->connect_endpoint(host.credential, host.home_edge, 1,
                              [this, &host](const fabric::OnboardResult& result) {
                                if (result.success) {
                                  host.ip = result.ip;
                                  start_flow_process(host);
                                }
                              });
  });
  simulator_.schedule_at(depart, [this, &host] {
    if (!host.present) return;
    host.present = false;
    fabric_->disconnect_endpoint(host.mac);
  });
}

void CampusWorkload::schedule_day(unsigned day_index) {
  const sim::SimTime midnight{kDay * day_index};
  const bool weekday = (day_index % 7) < 5;

  for (auto& host : hosts_) {
    if (host.permanent) continue;  // handled once at t=0
    const double attend_p = weekday ? (1.0 - spec_.weekday_absence) : spec_.weekend_presence;
    if (!rng_.chance(attend_p)) continue;
    const double arrive_h = std::clamp(rng_.normal(9.0, 0.75), 6.5, 12.0);
    const double depart_h = std::clamp(rng_.normal(19.0, 1.0), arrive_h + 1.0, 23.5);
    schedule_presence(host, midnight + hours_d(arrive_h), midnight + hours_d(depart_h));
  }
}

void CampusWorkload::start_flow_process(Host& host) {
  const double rate_per_s =
      (host.permanent ? spec_.permanent_flows_per_hour : spec_.flows_per_hour) / 3600.0;
  const sim::Duration wait = rng_.exp_interarrival(rate_per_s);
  simulator_.schedule_after(wait, [this, &host] {
    if (!host.present) return;  // flow process dies on departure
    send_one_flow(host);
    start_flow_process(host);
  });
}

void CampusWorkload::send_one_flow(Host& host) {
  net::Ipv4Address destination;
  if (rng_.chance(spec_.external_share)) {
    // One of this host's external services (SaaS, DC workloads).
    const auto svc =
        host.external_contacts[rng_.next_below(host.external_contacts.size())];
    destination = net::Ipv4Address{0xC6336400u + svc};  // 198.51.100.x
  } else {
    // One of this host's peers — possibly one that already went home,
    // which is exactly what triggers the §4.2 negative-resolution cleanup.
    const Host& peer =
        hosts_[host.internal_contacts[rng_.next_below(host.internal_contacts.size())]];
    if (peer.ip.is_unspecified() || peer.mac == host.mac) return;
    destination = peer.ip;
  }
  fabric_->endpoint_send_udp(host.mac, destination, 443, 400);
}

void CampusWorkload::sample_hourly(CampusResult& result, sim::SimTime at) {
  double border_total = 0;
  for (const auto& name : fabric_->border_names()) {
    border_total += static_cast<double>(fabric_->border(name).fib_size());
  }
  result.border_fib.add(at, border_total / static_cast<double>(spec_.borders));

  double edge_total = 0;
  std::size_t i = 0;
  for (const auto& name : fabric_->edge_names()) {
    auto& edge = fabric_->edge(name);
    // Sweep TTL-expired entries so the FIB count reflects live state.
    edge.map_cache().sweep(at);
    const double fib = static_cast<double>(edge.fib_size());
    edge_total += fib;
    result.per_edge_fib[i++].add(at, fib);
  }
  result.edge_fib.add(at, edge_total / static_cast<double>(spec_.edges));
}

CampusResult CampusWorkload::run(unsigned weeks) {
  CampusResult result;
  result.per_edge_fib.resize(spec_.edges);

  // Permanent endpoints connect at t=0 and never leave.
  for (auto& host : hosts_) {
    if (!host.permanent) continue;
    host.present = true;
    fabric_->connect_endpoint(host.credential, host.home_edge, 1,
                              [this, &host](const fabric::OnboardResult& r) {
                                if (r.success) {
                                  host.ip = r.ip;
                                  start_flow_process(host);
                                }
                              });
  }

  const unsigned days = weeks * 7;
  for (unsigned day = 0; day < days; ++day) schedule_day(day);

  for (unsigned hour = 1; hour <= days * 24; ++hour) {
    const sim::SimTime at = sim::SimTime{kHour * hour};
    simulator_.schedule_at(at, [this, &result, at] { sample_hourly(result, at); });
  }

  simulator_.run_until(sim::SimTime{kDay * days});

  auto day_filter = [](sim::SimTime t) { return is_weekday(t) && is_work_hours(t); };
  auto night_filter = [](sim::SimTime t) { return !(is_weekday(t) && is_work_hours(t)); };
  result.border_all = result.border_fib.mean();
  result.border_day = result.border_fib.mean_where(day_filter);
  result.border_night = result.border_fib.mean_where(night_filter);
  result.edge_all = result.edge_fib.mean();
  result.edge_day = result.edge_fib.mean_where(day_filter);
  result.edge_night = result.edge_fib.mean_where(night_filter);
  return result;
}

}  // namespace sda::workload
