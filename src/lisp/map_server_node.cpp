#include "lisp/map_server_node.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/metrics.hpp"

namespace sda::lisp {

MapServerNode::MapServerNode(sim::Simulator& simulator, MapServer& server,
                             MapServerNodeConfig config, std::uint64_t seed)
    : simulator_(simulator),
      server_(server),
      config_(config),
      rng_(seed),
      worker_free_at_(std::max(1u, config.workers), sim::SimTime::zero()) {}

sim::Duration MapServerNode::jittered(sim::Duration base) {
  const double factor = rng_.lognormal(0.0, config_.jitter_sigma);
  return sim::Duration{static_cast<std::int64_t>(static_cast<double>(base.count()) * factor)};
}

sim::SimTime MapServerNode::reserve_worker(sim::Duration service) {
  auto it = std::min_element(worker_free_at_.begin(), worker_free_at_.end());
  const sim::SimTime start = std::max(*it, simulator_.now());
  const sim::SimTime finish = start + service;
  *it = finish;
  return finish;
}

void MapServerNode::track_backlog() {
  ++in_flight_;
  peak_backlog_ = std::max(peak_backlog_, in_flight_);
}

void MapServerNode::crash(bool preserve_database) {
  online_ = false;
  if (!preserve_database) server_.clear();
}

void MapServerNode::begin_admission_ramp(sim::Duration window) {
  if (config_.admission_limit == 0 || window.count() <= 0) return;
  ramp_start_ = simulator_.now();
  ramp_until_ = ramp_start_ + window;
}

bool MapServerNode::ramp_active() const { return simulator_.now() < ramp_until_; }

std::size_t MapServerNode::effective_admission_limit() const {
  const std::size_t limit = config_.admission_limit;
  if (limit == 0 || !ramp_active()) return limit;
  const std::size_t floor = std::max<std::size_t>(1, limit / 4);
  const double frac = static_cast<double>((simulator_.now() - ramp_start_).count()) /
                      static_cast<double>((ramp_until_ - ramp_start_).count());
  return floor + static_cast<std::size_t>(static_cast<double>(limit - floor) * frac);
}

bool MapServerNode::admission_full(const ShedCallback& on_shed) {
  const std::size_t limit = effective_admission_limit();
  if (limit == 0 || in_flight_ < limit) return false;
  ++shed_submissions_;
  if (ramp_active() && in_flight_ < config_.admission_limit) ++ramp_shed_submissions_;
  if (on_shed) on_shed(config_.shed_retry_after);
  return true;
}

void MapServerNode::submit_request(const MapRequest& request, RequestCallback callback,
                                   ShedCallback on_shed) {
  if (!online_) {
    ++dropped_submissions_;
    return;
  }
  if (admission_full(on_shed)) return;
  track_backlog();
  const sim::SimTime arrival = simulator_.now();
  const sim::SimTime done = reserve_worker(jittered(config_.request_service));
  simulator_.schedule_at(done, [this, request, arrival, cb = std::move(callback)] {
    --in_flight_;
    MapReply reply = server_.answer(request);
    reply.trace = request.trace;  // the reply stays on the requester's span tree
    const sim::Duration sojourn = simulator_.now() - arrival;
    request_sojourns_.add(static_cast<double>(sojourn.count()) / 1e9);
    if (cb) cb(reply, sojourn);
  });
}

void MapServerNode::submit_register(const MapRegister& registration, RegisterCallback callback,
                                    ShedCallback on_shed) {
  if (!online_) {
    ++dropped_submissions_;
    return;
  }
  if (admission_full(on_shed)) return;
  track_backlog();
  assert(!registration.rlocs.empty());
  const sim::SimTime arrival = simulator_.now();
  const sim::SimTime done = reserve_worker(jittered(config_.register_service));
  simulator_.schedule_at(done, [this, registration, arrival, cb = std::move(callback)] {
    --in_flight_;
    RegisterOutcome outcome;
    if (registration.ttl_seconds == 0) {
      // Zero-TTL register is a withdrawal (clean endpoint departure).
      server_.deregister(registration.eid, registration.rlocs.front().address,
                         simulator_.now());
    } else {
      MappingRecord record;
      record.rlocs = registration.rlocs;
      record.ttl_seconds = registration.ttl_seconds;
      record.group = net::GroupId{registration.group};
      record.refreshed_at = simulator_.now();  // soft-state refresh stamp
      outcome = server_.register_mapping(registration.eid, record);
    }
    const sim::Duration sojourn = simulator_.now() - arrival;
    register_sojourns_.add(static_cast<double>(sojourn.count()) / 1e9);
    // A withdrawal's ack carries an empty locator set so a receiver that
    // treats an unmatched notify as a mapping update invalidates rather
    // than resurrects the departed EID.
    MapNotify notify{registration.nonce, registration.eid,
                     registration.ttl_seconds == 0 ? std::vector<net::Rloc>{}
                                                   : registration.rlocs};
    notify.trace = registration.trace;  // ack rides the registration's span tree
    if (cb) cb(outcome, notify, sojourn);
  });
}

void MapServerNode::register_metrics(telemetry::MetricsRegistry& registry,
                                     const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "dropped_submissions"),
                            [this] { return dropped_submissions_; });
  registry.register_counter(telemetry::join(prefix, "shed_submissions"),
                            [this] { return shed_submissions_; });
  registry.register_counter(telemetry::join(prefix, "ramp_sheds"),
                            [this] { return ramp_shed_submissions_; });
  registry.register_gauge(telemetry::join(prefix, "admission_ramp"),
                          [this] { return ramp_active() ? 1.0 : 0.0; });
  registry.register_gauge(telemetry::join(prefix, "in_flight"),
                          [this] { return static_cast<double>(in_flight_); });
  registry.register_gauge(telemetry::join(prefix, "peak_backlog"),
                          [this] { return static_cast<double>(peak_backlog_); });
  registry.register_gauge(telemetry::join(prefix, "online"),
                          [this] { return online_ ? 1.0 : 0.0; });
}

}  // namespace sda::lisp
