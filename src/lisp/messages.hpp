// LISP control-plane messages (modeled on draft-ietf-lisp-rfc6833bis and
// draft-ietf-lisp-pubsub, simplified to the fields SDA uses).
//
// The simulator passes these as structured values; encode/decode to wire
// bytes exists for every message and is exercised by tests so the
// structured model stays faithful to a real implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/buffer.hpp"
#include "net/eid.hpp"
#include "sim/time.hpp"

namespace sda::lisp {

enum class MessageType : std::uint8_t {
  MapRequest = 1,
  MapReply = 2,
  MapRegister = 3,
  MapNotify = 4,
  SolicitMapRequest = 5,  // the data-triggered stale-entry refresh (Fig. 6)
  Subscribe = 6,
  Publish = 7,
};

/// Negative-reply actions (what an ITR should do on a miss).
enum class MapReplyAction : std::uint8_t {
  NoAction = 0,
  NativelyForward = 1,  // SDA: fall back to the border default route
  Drop = 2,
};

struct MapRequest {
  std::uint64_t nonce = 0;
  net::VnEid eid;
  net::Ipv4Address itr_rloc;  // where to send the reply
  bool smr_invoked = false;   // set when triggered by an SMR
  /// Causal trace id (assurance plane). Encoded as a trailing optional
  /// field only when nonzero, so the wire format is unchanged when tracing
  /// is off. 0 = untraced.
  std::uint64_t trace = 0;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<MapRequest> decode(net::ByteReader& r);
  friend bool operator==(const MapRequest&, const MapRequest&) = default;
};

struct MapReply {
  std::uint64_t nonce = 0;
  net::VnEid eid;
  std::vector<net::Rloc> rlocs;  // empty for a negative reply
  MapReplyAction action = MapReplyAction::NoAction;
  std::uint32_t ttl_seconds = 1440 * 60;
  std::uint16_t group = 0;  // destination SGT when distributed (§5.3 ablation)
  /// Causal trace id, copied from the Map-Request being answered. Trailing
  /// optional on the wire; 0 = untraced.
  std::uint64_t trace = 0;

  [[nodiscard]] bool negative() const { return rlocs.empty(); }

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<MapReply> decode(net::ByteReader& r);
  friend bool operator==(const MapReply&, const MapReply&) = default;
};

struct MapRegister {
  std::uint64_t nonce = 0;
  net::VnEid eid;
  std::vector<net::Rloc> rlocs;
  std::uint32_t ttl_seconds = 1440 * 60;
  bool want_notify = true;
  std::uint16_t group = 0;  // endpoint SGT when distributed (§5.3 ablation)
  /// Causal trace id of the registration operation. Trailing optional on
  /// the wire; 0 = untraced.
  std::uint64_t trace = 0;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<MapRegister> decode(net::ByteReader& r);
  friend bool operator==(const MapRegister&, const MapRegister&) = default;
};

/// Sent by the map server: acks a registration, and — on a mobility event —
/// tells the *previous* edge router that the EID moved (Fig. 5 step 2).
struct MapNotify {
  std::uint64_t nonce = 0;
  net::VnEid eid;
  std::vector<net::Rloc> rlocs;  // the new locator set
  /// Election epoch of the sending routing server (split-brain fence): a
  /// receiver that has observed a newer epoch rejects the notify, so a
  /// deposed primary cannot ack registers. 0 = unfenced (no election).
  std::uint64_t epoch = 0;
  /// Causal trace id: the registration op being acked, or the move op for
  /// a mobility notify. Trailing optional on the wire; 0 = untraced.
  std::uint64_t trace = 0;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<MapNotify> decode(net::ByteReader& r);
  friend bool operator==(const MapNotify&, const MapNotify&) = default;
};

/// Data-triggered control message (Fig. 6): the old edge router, on seeing
/// traffic for a departed EID, tells the *sender* to re-resolve.
struct SolicitMapRequest {
  net::VnEid eid;
  net::Ipv4Address source_rloc;  // who is soliciting
  /// Causal trace id of the SMR fan-out op. Trailing optional; 0 = untraced.
  std::uint64_t trace = 0;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<SolicitMapRequest> decode(net::ByteReader& r);
  friend bool operator==(const SolicitMapRequest&, const SolicitMapRequest&) = default;
};

/// Border routers subscribe to the full mapping feed (draft-ietf-lisp-pubsub;
/// the "sync" arrow of Fig. 1).
struct Subscribe {
  net::Ipv4Address subscriber_rloc;
  std::uint32_t vn = 0;  // 0 = all VNs

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<Subscribe> decode(net::ByteReader& r);
  friend bool operator==(const Subscribe&, const Subscribe&) = default;
};

struct Publish {
  net::VnEid eid;
  std::vector<net::Rloc> rlocs;  // empty = withdrawal
  std::uint32_t ttl_seconds = 1440 * 60;
  /// Feed sequence number (1-based, strictly increasing per feed). A
  /// subscriber that observes a gap lost an update and must pull a
  /// snapshot. 0 = unsequenced (direct injection in tests).
  std::uint64_t seq = 0;
  /// Election epoch of the publishing routing server (split-brain fence):
  /// subscribers reject pushes from a stale epoch and re-home to the new
  /// leader on a higher one. 0 = unfenced (no election).
  std::uint64_t epoch = 0;
  /// Causal trace id of the move op that produced this update. Trailing
  /// optional on the wire; 0 = untraced.
  std::uint64_t trace = 0;

  [[nodiscard]] bool withdrawal() const { return rlocs.empty(); }

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<Publish> decode(net::ByteReader& r);
  friend bool operator==(const Publish&, const Publish&) = default;
};

using Message = std::variant<MapRequest, MapReply, MapRegister, MapNotify, SolicitMapRequest,
                             Subscribe, Publish>;

/// Serializes any control message with a one-byte type tag.
[[nodiscard]] std::vector<std::uint8_t> encode_message(const Message& message);
[[nodiscard]] std::optional<Message> decode_message(std::span<const std::uint8_t> bytes);

/// Approximate wire size (for transit-delay modeling without serializing).
[[nodiscard]] std::size_t message_wire_size(const Message& message);

[[nodiscard]] std::string message_type_name(const Message& message);

}  // namespace sda::lisp
