#include "lisp/messages.hpp"

namespace sda::lisp {

namespace {

void encode_rlocs(net::ByteWriter& w, const std::vector<net::Rloc>& rlocs) {
  w.write_u8(static_cast<std::uint8_t>(rlocs.size()));
  for (const auto& r : rlocs) r.encode(w);
}

std::optional<std::vector<net::Rloc>> decode_rlocs(net::ByteReader& r) {
  const auto count = r.read_u8();
  if (!count) return std::nullopt;
  std::vector<net::Rloc> rlocs;
  rlocs.reserve(*count);
  for (std::uint8_t i = 0; i < *count; ++i) {
    const auto rloc = net::Rloc::decode(r);
    if (!rloc) return std::nullopt;
    rlocs.push_back(*rloc);
  }
  return rlocs;
}

// The causal trace id is a *trailing optional* field: written only when
// nonzero, so an untraced message is byte-identical to the pre-assurance
// wire format, and a pre-assurance decoder simply ignores the extra tail.
void encode_trace(net::ByteWriter& w, std::uint64_t trace) {
  if (trace != 0) w.write_u64(trace);
}

std::uint64_t decode_trace(net::ByteReader& r) {
  const auto trace = r.read_u64();
  return trace ? *trace : 0;
}

}  // namespace

void MapRequest::encode(net::ByteWriter& w) const {
  w.write_u64(nonce);
  eid.encode(w);
  w.write_array(itr_rloc.bytes());
  w.write_u8(smr_invoked ? 1 : 0);
  encode_trace(w, trace);
}

std::optional<MapRequest> MapRequest::decode(net::ByteReader& r) {
  const auto nonce = r.read_u64();
  if (!nonce) return std::nullopt;
  const auto eid = net::VnEid::decode(r);
  const auto itr = r.read_array<4>();
  const auto smr = r.read_u8();
  if (!eid || !itr || !smr) return std::nullopt;
  return MapRequest{*nonce, *eid, net::Ipv4Address::from_bytes(*itr), *smr != 0,
                    decode_trace(r)};
}

void MapReply::encode(net::ByteWriter& w) const {
  w.write_u64(nonce);
  eid.encode(w);
  encode_rlocs(w, rlocs);
  w.write_u8(static_cast<std::uint8_t>(action));
  w.write_u32(ttl_seconds);
  w.write_u16(group);
  encode_trace(w, trace);
}

std::optional<MapReply> MapReply::decode(net::ByteReader& r) {
  const auto nonce = r.read_u64();
  if (!nonce) return std::nullopt;
  const auto eid = net::VnEid::decode(r);
  if (!eid) return std::nullopt;
  auto rlocs = decode_rlocs(r);
  const auto action = r.read_u8();
  const auto ttl = r.read_u32();
  const auto group = r.read_u16();
  if (!rlocs || !action || !ttl || !group || *action > 2) return std::nullopt;
  return MapReply{*nonce,        *eid, std::move(*rlocs), static_cast<MapReplyAction>(*action),
                  *ttl,          *group, decode_trace(r)};
}

void MapRegister::encode(net::ByteWriter& w) const {
  w.write_u64(nonce);
  eid.encode(w);
  encode_rlocs(w, rlocs);
  w.write_u32(ttl_seconds);
  w.write_u8(want_notify ? 1 : 0);
  w.write_u16(group);
  encode_trace(w, trace);
}

std::optional<MapRegister> MapRegister::decode(net::ByteReader& r) {
  const auto nonce = r.read_u64();
  if (!nonce) return std::nullopt;
  const auto eid = net::VnEid::decode(r);
  if (!eid) return std::nullopt;
  auto rlocs = decode_rlocs(r);
  const auto ttl = r.read_u32();
  const auto notify = r.read_u8();
  const auto group = r.read_u16();
  if (!rlocs || !ttl || !notify || !group) return std::nullopt;
  return MapRegister{*nonce, *eid, std::move(*rlocs), *ttl, *notify != 0, *group,
                     decode_trace(r)};
}

void MapNotify::encode(net::ByteWriter& w) const {
  w.write_u64(nonce);
  eid.encode(w);
  encode_rlocs(w, rlocs);
  w.write_u64(epoch);
  encode_trace(w, trace);
}

std::optional<MapNotify> MapNotify::decode(net::ByteReader& r) {
  const auto nonce = r.read_u64();
  if (!nonce) return std::nullopt;
  const auto eid = net::VnEid::decode(r);
  if (!eid) return std::nullopt;
  auto rlocs = decode_rlocs(r);
  const auto epoch = r.read_u64();
  if (!rlocs || !epoch) return std::nullopt;
  return MapNotify{*nonce, *eid, std::move(*rlocs), *epoch, decode_trace(r)};
}

void SolicitMapRequest::encode(net::ByteWriter& w) const {
  eid.encode(w);
  w.write_array(source_rloc.bytes());
  encode_trace(w, trace);
}

std::optional<SolicitMapRequest> SolicitMapRequest::decode(net::ByteReader& r) {
  const auto eid = net::VnEid::decode(r);
  const auto src = r.read_array<4>();
  if (!eid || !src) return std::nullopt;
  return SolicitMapRequest{*eid, net::Ipv4Address::from_bytes(*src), decode_trace(r)};
}

void Subscribe::encode(net::ByteWriter& w) const {
  w.write_array(subscriber_rloc.bytes());
  w.write_u24(vn);
}

std::optional<Subscribe> Subscribe::decode(net::ByteReader& r) {
  const auto rloc = r.read_array<4>();
  const auto vn = r.read_u24();
  if (!rloc || !vn) return std::nullopt;
  return Subscribe{net::Ipv4Address::from_bytes(*rloc), *vn};
}

void Publish::encode(net::ByteWriter& w) const {
  eid.encode(w);
  encode_rlocs(w, rlocs);
  w.write_u32(ttl_seconds);
  w.write_u64(seq);
  w.write_u64(epoch);
  encode_trace(w, trace);
}

std::optional<Publish> Publish::decode(net::ByteReader& r) {
  const auto eid = net::VnEid::decode(r);
  if (!eid) return std::nullopt;
  auto rlocs = decode_rlocs(r);
  const auto ttl = r.read_u32();
  const auto seq = r.read_u64();
  const auto epoch = r.read_u64();
  if (!rlocs || !ttl || !seq || !epoch) return std::nullopt;
  return Publish{*eid, std::move(*rlocs), *ttl, *seq, *epoch, decode_trace(r)};
}

std::vector<std::uint8_t> encode_message(const Message& message) {
  net::ByteWriter w{64};
  w.write_u8(static_cast<std::uint8_t>(message.index() + 1));  // MessageType tag
  std::visit([&w](const auto& m) { m.encode(w); }, message);
  return std::move(w).take();
}

std::optional<Message> decode_message(std::span<const std::uint8_t> bytes) {
  net::ByteReader r{bytes};
  const auto type = r.read_u8();
  if (!type) return std::nullopt;
  switch (static_cast<MessageType>(*type)) {
    case MessageType::MapRequest: {
      const auto m = MapRequest::decode(r);
      if (m) return Message{*m};
      break;
    }
    case MessageType::MapReply: {
      auto m = MapReply::decode(r);
      if (m) return Message{std::move(*m)};
      break;
    }
    case MessageType::MapRegister: {
      auto m = MapRegister::decode(r);
      if (m) return Message{std::move(*m)};
      break;
    }
    case MessageType::MapNotify: {
      auto m = MapNotify::decode(r);
      if (m) return Message{std::move(*m)};
      break;
    }
    case MessageType::SolicitMapRequest: {
      const auto m = SolicitMapRequest::decode(r);
      if (m) return Message{*m};
      break;
    }
    case MessageType::Subscribe: {
      const auto m = Subscribe::decode(r);
      if (m) return Message{*m};
      break;
    }
    case MessageType::Publish: {
      auto m = Publish::decode(r);
      if (m) return Message{std::move(*m)};
      break;
    }
  }
  return std::nullopt;
}

std::size_t message_wire_size(const Message& message) {
  // Exact: serialize into a scratch writer. Control messages are small and
  // infrequent relative to data traffic, so this stays cheap.
  return encode_message(message).size();
}

std::string message_type_name(const Message& message) {
  switch (static_cast<MessageType>(message.index() + 1)) {
    case MessageType::MapRequest: return "map-request";
    case MessageType::MapReply: return "map-reply";
    case MessageType::MapRegister: return "map-register";
    case MessageType::MapNotify: return "map-notify";
    case MessageType::SolicitMapRequest: return "smr";
    case MessageType::Subscribe: return "subscribe";
    case MessageType::Publish: return "publish";
  }
  return "unknown";
}

}  // namespace sda::lisp
