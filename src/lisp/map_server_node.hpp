// A routing server as a simulated node: the passive MapServer database
// behind a multi-worker service queue.
//
// The paper's routing server ran on an 8-vCPU virtual router (§4.1); this
// node models it as a G/G/k queue — k worker threads, per-operation service
// time with lognormal jitter. The sojourn time (queue wait + service) is
// what Fig. 7c measures as "delay to answer route requests" under load.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "lisp/map_server.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "stats/summary.hpp"

namespace sda::lisp {

struct MapServerNodeConfig {
  net::Ipv4Address rloc;
  unsigned workers = 8;  // vCPUs of the paper's VM
  sim::Duration request_service = std::chrono::microseconds{25};
  sim::Duration register_service = std::chrono::microseconds{30};
  double jitter_sigma = 0.12;  // lognormal sigma on service time
  /// Bounded admission: jobs beyond this many waiting-or-in-service are
  /// shed with an explicit retry-after instead of queueing unboundedly
  /// (onboarding-storm overload protection). 0 = unbounded (legacy).
  std::size_t admission_limit = 0;
  /// Retry-after hint handed to the shed callback.
  sim::Duration shed_retry_after = std::chrono::milliseconds{200};
};

class MapServerNode {
 public:
  using RequestCallback = std::function<void(const MapReply&, sim::Duration sojourn)>;
  using RegisterCallback =
      std::function<void(const RegisterOutcome&, const MapNotify&, sim::Duration sojourn)>;
  /// Fired instead of the completion callback when bounded admission sheds
  /// the job; carries the server's retry-after hint.
  using ShedCallback = std::function<void(sim::Duration retry_after)>;

  MapServerNode(sim::Simulator& simulator, MapServer& server, MapServerNodeConfig config,
                std::uint64_t seed = 1);

  [[nodiscard]] MapServer& server() { return server_; }
  [[nodiscard]] const MapServerNodeConfig& config() const { return config_; }
  [[nodiscard]] net::Ipv4Address rloc() const { return config_.rloc; }

  /// Enqueues a Map-Request; the callback fires when the server answers.
  /// While the node is offline the submission is silently dropped — exactly
  /// what a client of a crashed server observes (no error, no answer).
  /// When bounded admission is configured and the queue is full, `on_shed`
  /// fires (synchronously) instead and the job is never enqueued.
  void submit_request(const MapRequest& request, RequestCallback callback,
                      ShedCallback on_shed = {});

  /// Enqueues a Map-Register; the callback fires with the outcome and the
  /// acknowledging Map-Notify. Dropped silently while offline; shed like
  /// submit_request when the admission queue is full.
  void submit_register(const MapRegister& registration, RegisterCallback callback,
                       ShedCallback on_shed = {});

  // --- Fault injection (outage windows, crash/restart) --------------------

  /// Takes the node off the network: submissions are swallowed without a
  /// callback until set_online(true). In-service jobs still complete (they
  /// were accepted before the outage).
  void set_online(bool online) { online_ = online; }
  [[nodiscard]] bool online() const { return online_; }

  /// Crash: go offline and optionally lose the registration database (a
  /// restart from disk preserves it; a cold crash rebuilds from re-registers).
  void crash(bool preserve_database);

  /// Submissions swallowed while offline.
  [[nodiscard]] std::uint64_t dropped_submissions() const { return dropped_submissions_; }

  /// Submissions shed by bounded admission (overload, not outage).
  [[nodiscard]] std::uint64_t shed_submissions() const { return shed_submissions_; }

  // --- Election-aware shedding (PR 9) -------------------------------------

  /// Opens a post-election ramp window: for the next `window` the
  /// effective admission limit climbs linearly from a quarter of the
  /// configured limit back to full, shedding the re-registration stampede
  /// a just-elected leader absorbs with retry-after instead of queueing
  /// it. No-op when admission is unbounded or `window` is zero.
  void begin_admission_ramp(sim::Duration window);

  /// The admission limit currently in force: the configured limit, scaled
  /// down while a ramp window is active (0 = unbounded).
  [[nodiscard]] std::size_t effective_admission_limit() const;
  [[nodiscard]] bool ramp_active() const;

  /// Submissions shed specifically because a ramp window lowered the limit
  /// (subset of shed_submissions()).
  [[nodiscard]] std::uint64_t ramp_shed_submissions() const { return ramp_shed_submissions_; }

  /// Jobs currently waiting or in service.
  [[nodiscard]] std::size_t in_flight() const { return in_flight_; }

  /// Sojourn-time samples (seconds) collected since construction.
  [[nodiscard]] const stats::Summary& request_sojourns() const { return request_sojourns_; }
  [[nodiscard]] const stats::Summary& register_sojourns() const { return register_sojourns_; }

  /// Highest backlog observed (requests waiting or in service).
  [[nodiscard]] std::size_t peak_backlog() const { return peak_backlog_; }

  /// Pull probes: drops/sheds/backlog under `prefix` (e.g. "routing_server[1]").
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  /// True (and counted) when the job must be shed; fires on_shed.
  bool admission_full(const ShedCallback& on_shed);
  /// Reserves the earliest-available worker from `now`, returning the
  /// completion time of a job with the given service time.
  sim::SimTime reserve_worker(sim::Duration service);
  sim::Duration jittered(sim::Duration base);
  void track_backlog();

  sim::Simulator& simulator_;
  MapServer& server_;
  MapServerNodeConfig config_;
  sim::Rng rng_;
  std::vector<sim::SimTime> worker_free_at_;
  bool online_ = true;
  sim::SimTime ramp_start_{};
  sim::SimTime ramp_until_{};
  std::uint64_t dropped_submissions_ = 0;
  std::uint64_t shed_submissions_ = 0;
  std::uint64_t ramp_shed_submissions_ = 0;
  std::size_t in_flight_ = 0;
  std::size_t peak_backlog_ = 0;
  stats::Summary request_sojourns_;
  stats::Summary register_sojourns_;
};

}  // namespace sda::lisp
