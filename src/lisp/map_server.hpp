// The SDA routing server (LISP map server / map resolver).
//
// Stores endpoint location — (VN, EID) -> RLOC set — in per-VN, per-family
// Patricia tries (paper §4.1 credits the trie for load-independent lookup
// latency). Supports host and prefix registrations, longest-prefix
// resolution, mobility move detection with previous-RLOC notification
// (Fig. 5), and a pub/sub feed that keeps border routers synchronized
// (Fig. 1 "sync" arrow).
//
// The MapServer itself is a passive, synchronous data structure so it can
// be measured directly (Fig. 7a/7b). MapServerNode (map_server_node.hpp)
// wraps it with the queueing/service-time front end used in simulations.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lisp/messages.hpp"
#include "net/eid.hpp"
#include "net/prefix.hpp"
#include "trie/patricia.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::lisp {

/// A stored mapping: the locator set serving an EID (or EID prefix).
struct MappingRecord {
  std::vector<net::Rloc> rlocs;
  std::uint32_t ttl_seconds = 1440 * 60;
  /// The endpoint's group tag, when known. Only consumed by the
  /// ingress-enforcement ablation (§5.3) — egress enforcement deliberately
  /// avoids distributing groups through the routing server.
  net::GroupId group{};
  /// When this registration was last (re)registered. Registrations are
  /// soft state: expire_registrations() ages them out past their TTL, and
  /// edges periodically re-register to keep them alive.
  sim::SimTime refreshed_at{};

  [[nodiscard]] net::Ipv4Address primary_rloc() const {
    return rlocs.empty() ? net::Ipv4Address{} : rlocs.front().address;
  }
  friend bool operator==(const MappingRecord&, const MappingRecord&) = default;
};

/// Replica-comparison equality: locator set, TTL, and group — but not
/// refreshed_at, which legitimately differs across replicas (each node
/// stamps its own arrival time for the same fanned-out register).
[[nodiscard]] bool equivalent(const MappingRecord& a, const MappingRecord& b);

/// Outcome of a registration, including mobility detection.
struct RegisterOutcome {
  bool created = false;  // first registration of this EID
  bool moved = false;    // RLOC set changed (mobility event)
  net::Ipv4Address previous_rloc;  // valid when moved
};

class MapServer {
 public:
  /// (eid, old primary rloc, new record) — fired when an EID's locator set
  /// changes; the fabric uses it to Map-Notify the previous edge router.
  using MoveCallback =
      std::function<void(const net::VnEid&, net::Ipv4Address, const MappingRecord&)>;
  /// (eid, record-or-withdrawal) — fired on every database change; feeds
  /// pub/sub subscribers (border routers).
  using PublishCallback = std::function<void(const net::VnEid&, const MappingRecord*)>;

  MapServer() = default;

  /// Registers (or refreshes) a host EID mapping.
  RegisterOutcome register_mapping(const net::VnEid& eid, const MappingRecord& record);

  /// Registers a covering prefix (e.g. the border's external /0, or a
  /// DC-subnet route). Resolution prefers more-specific host entries.
  void register_prefix(net::VnId vn, const net::Ipv4Prefix& prefix, const MappingRecord& record);
  void register_prefix(net::VnId vn, const net::Ipv6Prefix& prefix, const MappingRecord& record);

  /// Removes a host mapping, but only if `owner` still owns it (guards
  /// against a stale deregistration racing a re-registration elsewhere).
  /// `now` timestamps the tombstone left behind so anti-entropy can tell a
  /// deliberate deletion apart from a registration the peer never saw.
  bool deregister(const net::VnEid& eid, net::Ipv4Address owner, sim::SimTime now = {});

  /// Soft-state aging: removes (and publishes withdrawals for) every host
  /// registration whose TTL elapsed since its last refresh. Prefix
  /// registrations are operator state and never expire. Returns the
  /// number removed.
  std::size_t expire_registrations(sim::SimTime now);

  /// Crash semantics: drops every mapping (host and prefix) and L2 binding
  /// *without* publishing withdrawals — a dead server tells nobody.
  /// Subscribers reconcile via snapshot resync; edges rebuild the database
  /// through reliable re-registration.
  void clear();

  /// Longest-prefix resolution. nullopt = no covering mapping (negative).
  [[nodiscard]] std::optional<MappingRecord> resolve(const net::VnEid& eid) const;

  /// Exact-match host lookup (no prefix fallback).
  [[nodiscard]] const MappingRecord* find_host(const net::VnEid& eid) const;

  /// Builds the MapReply for a request (positive, or negative with
  /// NativelyForward so the ITR keeps using the border default).
  [[nodiscard]] MapReply answer(const MapRequest& request) const;

  /// TTL stamped on negative replies (the ITR's negative map-cache window:
  /// how long a miss is remembered before the EID is re-resolved).
  void set_negative_ttl_seconds(std::uint32_t ttl) { negative_ttl_seconds_ = ttl; }
  [[nodiscard]] std::uint32_t negative_ttl_seconds() const { return negative_ttl_seconds_; }

  // --- Replica anti-entropy (PR 4) ---------------------------------------

  /// Order-independent digest over all host mappings (EID, locator set,
  /// TTL, group — refreshed_at excluded, see equivalent()). Two replicas
  /// with the same registration contents produce the same digest, so a
  /// cheap digest exchange detects divergence without shipping the tables.
  [[nodiscard]] std::uint64_t digest() const;

  struct ReconcileStats {
    std::size_t pushed = 0;        // mappings copied into the peer
    std::size_t pulled = 0;        // mappings copied from the peer
    std::size_t removed_here = 0;  // deletions propagated from the peer
    std::size_t removed_peer = 0;  // deletions propagated to the peer
    [[nodiscard]] std::size_t total() const {
      return pushed + pulled + removed_here + removed_peer;
    }
  };

  /// Two-way newest-wins merge with `peer`: mappings only one side holds
  /// are copied across unless the other side's tombstone proves a newer
  /// deletion; mappings both hold converge on the later refreshed_at.
  /// Writes go through register_mapping/deregister, so whichever side has
  /// publish subscribers (the primary) notifies them of repairs. Tombstones
  /// older than `tombstone_horizon` are pruned on both sides afterwards.
  ReconcileStats reconcile_with(MapServer& peer, sim::SimTime now,
                                sim::Duration tombstone_horizon = std::chrono::minutes{5});

  /// Deletion marker left by deregister/expire, if one is still retained.
  [[nodiscard]] std::optional<sim::SimTime> tombstone(const net::VnEid& eid) const;
  [[nodiscard]] std::size_t tombstone_count() const { return tombstones_.size(); }

  // --- Log-style catch-up (PR 9) -----------------------------------------

  /// One sequenced mutation in the catch-up log: a register / refresh /
  /// move (tombstone == false, `record` valid) or a deletion (tombstone ==
  /// true). `stamped` is the refresh or deletion time — replays resolve
  /// newest-wins against local state exactly like reconcile_with.
  struct LogEntry {
    std::uint64_t seq = 0;
    net::VnEid eid;
    bool tombstone = false;
    MappingRecord record;
    sim::SimTime stamped{};
  };

  /// Arms the bounded mutation log: a ring of `capacity` entries appended
  /// on every host-mapping mutation (prefix registrations are operator
  /// state and not logged, matching digest()). Old entries fall off the
  /// horizon as the ring wraps. 0 disables the log (snapshot-only).
  void set_log_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t log_capacity() const { return log_capacity_; }

  /// The sequence the next mutation will take (starts at 1; monotonic
  /// across clear()). The newest retained entry is log_next_seq() - 1.
  [[nodiscard]] std::uint64_t log_next_seq() const { return log_next_seq_; }

  /// The oldest sequence the ring still holds (== log_next_seq() when
  /// empty or disabled).
  [[nodiscard]] std::uint64_t log_horizon_seq() const;

  /// Whether every entry in [from_seq, log_next_seq()) is still retained —
  /// i.e. a replica that applied everything below `from_seq` can catch up
  /// by replay instead of a full snapshot reconcile.
  [[nodiscard]] bool log_covers(std::uint64_t from_seq) const;

  /// Visits the retained entries with seq in [from_seq, log_next_seq())
  /// in sequence order; returns the number visited.
  std::size_t replay_log(std::uint64_t from_seq,
                         const std::function<void(const LogEntry&)>& visit) const;

  /// Applies one replayed leader-log entry with the same newest-wins /
  /// tombstone rules as reconcile_with, so replaying a delta converges to
  /// the same state a snapshot reconcile would.
  void apply_log_entry(const LogEntry& entry);

  /// Bumped by clear(): lets a peer tell a cold restart (replay seq state
  /// is meaningless, take the snapshot path) from plain lag.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  void set_move_callback(MoveCallback cb) { on_move_ = std::move(cb); }
  void set_publish_callback(PublishCallback cb) { on_publish_ = std::move(cb); }

  /// Endpoint (host) mappings across all VNs and families; infrastructure
  /// prefixes are not counted.
  [[nodiscard]] std::size_t mapping_count() const;

  /// Endpoint mappings stored for one VN.
  [[nodiscard]] std::size_t mapping_count(net::VnId vn) const;

  /// Raw entry count including prefix registrations (database footprint).
  [[nodiscard]] std::size_t total_entries() const;

  /// Visits every mapping (used to bootstrap a new pub/sub subscriber).
  void walk(const std::function<void(const net::VnEid&, const MappingRecord&)>& visit) const;

  // --- L2 service support (§3.5): overlay IP -> MAC bindings --------------

  /// Stores the IP->MAC pair for an endpoint (element iii of §3.5).
  void bind_l2(const net::VnEid& ip_eid, const net::MacAddress& mac);
  /// Removes the binding; true if present.
  bool unbind_l2(const net::VnEid& ip_eid);
  /// The MAC bound to an overlay IP, if any (used by L2 gateways to convert
  /// broadcast ARP into unicast).
  [[nodiscard]] std::optional<net::MacAddress> lookup_mac(const net::VnEid& ip_eid) const;

  struct Stats {
    std::uint64_t registers = 0;
    std::uint64_t moves = 0;
    std::uint64_t deregisters = 0;
    std::uint64_t requests = 0;
    std::uint64_t negative_replies = 0;
    std::uint64_t expirations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Registers pull probes for the stats fields and database-footprint
  /// gauges under `prefix` (e.g. "map_server"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  struct VnDatabase {
    trie::PatriciaTrie<MappingRecord> v4;
    trie::PatriciaTrie<MappingRecord> v6;
    trie::PatriciaTrie<MappingRecord> mac;

    [[nodiscard]] trie::PatriciaTrie<MappingRecord>& family(net::EidFamily f) {
      switch (f) {
        case net::EidFamily::Ipv4: return v4;
        case net::EidFamily::Ipv6: return v6;
        case net::EidFamily::Mac: return mac;
      }
      return v4;
    }
    [[nodiscard]] const trie::PatriciaTrie<MappingRecord>& family(net::EidFamily f) const {
      return const_cast<VnDatabase*>(this)->family(f);
    }
  };

  void publish(const net::VnEid& eid, const MappingRecord* record) const {
    if (on_publish_) on_publish_(eid, record);
  }

  void log_append(const net::VnEid& eid, const MappingRecord* record, sim::SimTime stamped);

  // std::map keeps VN iteration order deterministic for walk().
  std::map<net::VnId, VnDatabase> databases_;
  std::unordered_map<net::VnEid, net::MacAddress> l2_bindings_;
  // Deletion markers (EID -> when removed) so reconcile_with can tell
  // "peer deleted this" from "peer never heard of this". Crash-cleared.
  std::unordered_map<net::VnEid, sim::SimTime> tombstones_;
  // Catch-up log ring: slot (seq - 1) % capacity holds the seq'th mutation.
  std::vector<LogEntry> log_;
  std::size_t log_capacity_ = 0;
  std::size_t log_size_ = 0;  // entries retained (<= capacity)
  std::uint64_t log_next_seq_ = 1;
  std::uint64_t generation_ = 0;
  std::uint32_t negative_ttl_seconds_ = 60;
  MoveCallback on_move_;
  PublishCallback on_publish_;
  mutable Stats stats_;
};

}  // namespace sda::lisp
