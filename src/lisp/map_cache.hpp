// The edge router's map cache: on-demand overlay-to-underlay mappings.
//
// This is where the paper's reactive state saving materializes: an edge
// router only holds entries for destinations its attached endpoints are
// actively talking to (Fig. 9 counts exactly these entries). Entries carry
// the Map-Reply TTL; negative replies are cached briefly; capacity is
// bounded with LRU eviction to model small-FIB devices.
//
// Layout: entries live in a contiguous slot vector threaded by an intrusive
// index-linked LRU list (head = most recently used). The key index is a
// flat open-addressing table (power-of-two, linear probing, backward-shift
// deletion — no tombstones, so churn never forces a rehash). A hit is one
// flat-table probe plus four index writes to relink — no per-entry node
// allocation and no pointer chasing, unlike the previous std::list +
// std::unordered_map layout. Erased slots are recycled through a free list,
// so a cache at steady state (hits, refreshes, installs and evictions at
// capacity) performs no allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "lisp/messages.hpp"
#include "net/eid.hpp"
#include "sim/time.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::lisp {

struct MapCacheEntry {
  std::vector<net::Rloc> rlocs;  // empty = negative entry
  sim::SimTime expires_at;
  sim::SimTime inserted_at;
  net::GroupId group;  // destination SGT, when distributed (§5.3 ablation)

  [[nodiscard]] bool negative() const { return rlocs.empty(); }
  [[nodiscard]] net::Ipv4Address primary_rloc() const {
    return rlocs.empty() ? net::Ipv4Address{} : rlocs.front().address;
  }
};

class MapCache {
 public:
  /// `capacity` bounds the number of entries (models FIB size); 0 = unbounded.
  /// Bounded caches reserve their slots up front, so entry pointers stay
  /// stable until the entry itself is evicted or invalidated.
  explicit MapCache(std::size_t capacity = 0);

  /// Looks up `eid` at time `now`. Expired entries are removed and count as
  /// misses. Hits refresh LRU position. The returned pointer is valid until
  /// the next mutating call (install/invalidate/sweep/clear).
  [[nodiscard]] const MapCacheEntry* lookup(const net::VnEid& eid, sim::SimTime now) {
    const std::uint32_t i = index_find(eid);
    if (i == kNone) {
      ++stats_.misses;
      return nullptr;
    }
    if (slots_[i].entry.expires_at <= now) {
      erase_slot(i);
      ++stats_.expirations;
      ++stats_.misses;
      return nullptr;
    }
    touch(i);
    ++stats_.hits;
    return &slots_[i].entry;
  }

  /// Installs or replaces an entry from a Map-Reply.
  void install(const net::VnEid& eid, const MapReply& reply, sim::SimTime now);

  /// Installs a positive entry directly (used by Map-Notify handling).
  void install(const net::VnEid& eid, std::vector<net::Rloc> rlocs, std::uint32_t ttl_seconds,
               sim::SimTime now);

  /// Removes one entry; returns true if present.
  bool invalidate(const net::VnEid& eid);

  /// Removes every entry whose primary RLOC is `rloc` (underlay outage
  /// fallback, paper §5.1). Returns the number removed.
  std::size_t invalidate_rloc(net::Ipv4Address rloc);

  /// Drops expired entries (periodic sweep; Fig. 9's weekend cache clear).
  std::size_t sweep(sim::SimTime now);

  /// Drops everything (router reboot, §5.2).
  void clear();

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Number of non-negative (i.e. FIB-occupying) entries.
  [[nodiscard]] std::size_t positive_size() const { return positive_count_; }

  /// Visits entries in LRU order, most recently used first.
  void walk(const std::function<void(const net::VnEid&, const MapCacheEntry&)>& visit) const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t expirations = 0;
    std::uint64_t evictions = 0;
    std::uint64_t installs = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Registers pull probes for the stats fields and occupancy gauges under
  /// `prefix` (e.g. "edge[3].map_cache"). Probes capture `this`: call
  /// registry.unregister_prefix(prefix) before destroying this cache.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  struct Slot {
    net::VnEid eid;
    MapCacheEntry entry;
    std::uint32_t prev = kNone;  // towards MRU
    std::uint32_t next = kNone;  // towards LRU
  };

  /// Unlinks `i` from the LRU chain (does not free the slot).
  void unlink(std::uint32_t i) {
    Slot& s = slots_[i];
    if (s.prev != kNone) {
      slots_[s.prev].next = s.next;
    } else {
      head_ = s.next;
    }
    if (s.next != kNone) {
      slots_[s.next].prev = s.prev;
    } else {
      tail_ = s.prev;
    }
    s.prev = s.next = kNone;
  }

  /// Links `i` at the head (most recently used) of the chain.
  void link_front(std::uint32_t i) {
    Slot& s = slots_[i];
    s.prev = kNone;
    s.next = head_;
    if (head_ != kNone) slots_[head_].prev = i;
    head_ = i;
    if (tail_ == kNone) tail_ = i;
  }

  /// Unlink + link_front for a hit or refresh.
  void touch(std::uint32_t i) {
    if (head_ == i) return;
    unlink(i);
    link_front(i);
  }

  /// The key's home position in the probe table.
  [[nodiscard]] std::size_t home_of(const net::VnEid& eid) const {
    return std::hash<net::VnEid>{}(eid) & table_mask_;
  }

  /// Linear-probes the flat table; returns the slot index or kNone.
  [[nodiscard]] std::uint32_t index_find(const net::VnEid& eid) const {
    if (table_.empty()) return kNone;
    std::size_t idx = home_of(eid);
    while (true) {
      const std::uint32_t e = table_[idx];
      if (e == kNone) return kNone;
      if (slots_[e].eid == eid) return e;
      idx = (idx + 1) & table_mask_;
    }
  }

  /// Inserts `slot` under `eid`; the key must not already be present.
  void index_insert(const net::VnEid& eid, std::uint32_t slot);
  /// Removes `eid` from the table with backward-shift compaction.
  void index_erase(const net::VnEid& eid);
  /// Rebuilds the probe table at `new_table_size` (a power of two).
  void index_rehash(std::size_t new_table_size);
  /// Removes the entry in slot `i` entirely and recycles the slot.
  void erase_slot(std::uint32_t i);
  void evict_if_needed();
  /// Allocates a slot (from the free list when possible).
  std::uint32_t new_slot();

  std::size_t capacity_;
  std::size_t positive_count_ = 0;
  std::size_t size_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint32_t head_ = kNone;  // most recently used
  std::uint32_t tail_ = kNone;  // least recently used
  std::vector<std::uint32_t> table_;  // slot indices, kNone = empty
  std::size_t table_mask_ = 0;
  Stats stats_;
};

}  // namespace sda::lisp
