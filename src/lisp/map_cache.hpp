// The edge router's map cache: on-demand overlay-to-underlay mappings.
//
// This is where the paper's reactive state saving materializes: an edge
// router only holds entries for destinations its attached endpoints are
// actively talking to (Fig. 9 counts exactly these entries). Entries carry
// the Map-Reply TTL; negative replies are cached briefly; capacity is
// bounded with LRU eviction to model small-FIB devices.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lisp/messages.hpp"
#include "net/eid.hpp"
#include "sim/time.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::lisp {

struct MapCacheEntry {
  std::vector<net::Rloc> rlocs;  // empty = negative entry
  sim::SimTime expires_at;
  sim::SimTime inserted_at;
  net::GroupId group;  // destination SGT, when distributed (§5.3 ablation)

  [[nodiscard]] bool negative() const { return rlocs.empty(); }
  [[nodiscard]] net::Ipv4Address primary_rloc() const {
    return rlocs.empty() ? net::Ipv4Address{} : rlocs.front().address;
  }
};

class MapCache {
 public:
  /// `capacity` bounds the number of entries (models FIB size); 0 = unbounded.
  explicit MapCache(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Looks up `eid` at time `now`. Expired entries are removed and count as
  /// misses. Hits refresh LRU position.
  [[nodiscard]] const MapCacheEntry* lookup(const net::VnEid& eid, sim::SimTime now);

  /// Installs or replaces an entry from a Map-Reply.
  void install(const net::VnEid& eid, const MapReply& reply, sim::SimTime now);

  /// Installs a positive entry directly (used by Map-Notify handling).
  void install(const net::VnEid& eid, std::vector<net::Rloc> rlocs, std::uint32_t ttl_seconds,
               sim::SimTime now);

  /// Removes one entry; returns true if present.
  bool invalidate(const net::VnEid& eid);

  /// Removes every entry whose primary RLOC is `rloc` (underlay outage
  /// fallback, paper §5.1). Returns the number removed.
  std::size_t invalidate_rloc(net::Ipv4Address rloc);

  /// Drops expired entries (periodic sweep; Fig. 9's weekend cache clear).
  std::size_t sweep(sim::SimTime now);

  /// Drops everything (router reboot, §5.2).
  void clear();

  [[nodiscard]] std::size_t size() const { return index_.size(); }

  /// Number of non-negative (i.e. FIB-occupying) entries.
  [[nodiscard]] std::size_t positive_size() const { return positive_count_; }

  void walk(const std::function<void(const net::VnEid&, const MapCacheEntry&)>& visit) const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t expirations = 0;
    std::uint64_t evictions = 0;
    std::uint64_t installs = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Registers pull probes for the stats fields and occupancy gauges under
  /// `prefix` (e.g. "edge[3].map_cache"). Probes capture `this`: call
  /// registry.unregister_prefix(prefix) before destroying this cache.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  using LruList = std::list<std::pair<net::VnEid, MapCacheEntry>>;

  void erase_iter(LruList::iterator it);
  void evict_if_needed();

  std::size_t capacity_;
  std::size_t positive_count_ = 0;
  LruList lru_;  // front = most recently used
  std::unordered_map<net::VnEid, LruList::iterator> index_;
  Stats stats_;
};

}  // namespace sda::lisp
