#include "lisp/map_cache.hpp"

#include <algorithm>
#include <vector>

#include "telemetry/metrics.hpp"

namespace sda::lisp {

MapCache::MapCache(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ != 0) {
    // Bounded caches never grow past capacity: reserving up front keeps
    // entry pointers stable and the steady state allocation-free. +1 because
    // an install at capacity briefly holds the newcomer before evicting.
    slots_.reserve(capacity_ + 1);
    std::size_t table_size = 16;
    while ((capacity_ + 1) * 10 > table_size * 7) table_size <<= 1;
    index_rehash(table_size);
  }
}

std::uint32_t MapCache::new_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t i = free_slots_.back();
    free_slots_.pop_back();
    return i;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void MapCache::index_rehash(std::size_t new_table_size) {
  const std::vector<std::uint32_t> old = std::move(table_);
  table_.assign(new_table_size, kNone);
  table_mask_ = new_table_size - 1;
  for (const std::uint32_t e : old) {
    if (e == kNone) continue;
    std::size_t idx = home_of(slots_[e].eid);
    while (table_[idx] != kNone) idx = (idx + 1) & table_mask_;
    table_[idx] = e;
  }
}

void MapCache::index_insert(const net::VnEid& eid, std::uint32_t slot) {
  // Keep the load factor under 70% so probe chains stay short.
  if ((size_ + 1) * 10 > table_.size() * 7) {
    index_rehash(std::max<std::size_t>(16, table_.size() * 2));
  }
  std::size_t idx = home_of(eid);
  while (table_[idx] != kNone) idx = (idx + 1) & table_mask_;
  table_[idx] = slot;
  ++size_;
}

void MapCache::index_erase(const net::VnEid& eid) {
  std::size_t i = home_of(eid);
  while (true) {
    const std::uint32_t e = table_[i];
    if (e == kNone) return;  // not present
    if (slots_[e].eid == eid) break;
    i = (i + 1) & table_mask_;
  }
  --size_;
  // Backward-shift deletion: pull cluster members whose home position lies
  // at or before the hole back over it, instead of leaving a tombstone.
  std::size_t j = i;
  while (true) {
    j = (j + 1) & table_mask_;
    const std::uint32_t e = table_[j];
    if (e == kNone) break;
    const std::size_t k = home_of(slots_[e].eid);
    const bool home_between_hole_and_j = (i < j) ? (k > i && k <= j) : (k > i || k <= j);
    if (!home_between_hole_and_j) {
      table_[i] = e;
      i = j;
    }
  }
  table_[i] = kNone;
}

void MapCache::install(const net::VnEid& eid, const MapReply& reply, sim::SimTime now) {
  MapCacheEntry entry;
  entry.rlocs = reply.rlocs;
  entry.inserted_at = now;
  entry.expires_at = now + std::chrono::seconds{reply.ttl_seconds};
  entry.group = net::GroupId{reply.group};
  ++stats_.installs;

  const std::uint32_t existing = index_find(eid);
  if (existing != kNone) {
    Slot& s = slots_[existing];
    if (!s.entry.negative()) --positive_count_;
    s.entry = std::move(entry);
    if (!s.entry.negative()) ++positive_count_;
    touch(existing);
    return;
  }
  const std::uint32_t i = new_slot();
  slots_[i].eid = eid;
  slots_[i].entry = std::move(entry);
  link_front(i);
  index_insert(eid, i);
  if (!slots_[i].entry.negative()) ++positive_count_;
  evict_if_needed();
}

void MapCache::install(const net::VnEid& eid, std::vector<net::Rloc> rlocs,
                       std::uint32_t ttl_seconds, sim::SimTime now) {
  MapReply synthetic;
  synthetic.eid = eid;
  synthetic.rlocs = std::move(rlocs);
  synthetic.ttl_seconds = ttl_seconds;
  install(eid, synthetic, now);
}

bool MapCache::invalidate(const net::VnEid& eid) {
  const std::uint32_t i = index_find(eid);
  if (i == kNone) return false;
  erase_slot(i);
  return true;
}

std::size_t MapCache::invalidate_rloc(net::Ipv4Address rloc) {
  std::vector<std::uint32_t> doomed;
  for (std::uint32_t i = head_; i != kNone; i = slots_[i].next) {
    if (!slots_[i].entry.negative() && slots_[i].entry.primary_rloc() == rloc) {
      doomed.push_back(i);
    }
  }
  for (const std::uint32_t i : doomed) erase_slot(i);
  return doomed.size();
}

std::size_t MapCache::sweep(sim::SimTime now) {
  std::vector<std::uint32_t> doomed;
  for (std::uint32_t i = head_; i != kNone; i = slots_[i].next) {
    if (slots_[i].entry.expires_at <= now) doomed.push_back(i);
  }
  for (const std::uint32_t i : doomed) {
    erase_slot(i);
    ++stats_.expirations;
  }
  return doomed.size();
}

void MapCache::clear() {
  slots_.clear();
  free_slots_.clear();
  table_.assign(table_.size(), kNone);
  size_ = 0;
  head_ = tail_ = kNone;
  positive_count_ = 0;
  if (capacity_ != 0) slots_.reserve(capacity_ + 1);
}

void MapCache::walk(
    const std::function<void(const net::VnEid&, const MapCacheEntry&)>& visit) const {
  for (std::uint32_t i = head_; i != kNone; i = slots_[i].next) {
    visit(slots_[i].eid, slots_[i].entry);
  }
}

void MapCache::erase_slot(std::uint32_t i) {
  if (!slots_[i].entry.negative()) --positive_count_;
  unlink(i);
  index_erase(slots_[i].eid);
  slots_[i].entry = MapCacheEntry{};  // release the rloc vector now
  free_slots_.push_back(i);
}

void MapCache::evict_if_needed() {
  while (capacity_ != 0 && size_ > capacity_) {
    erase_slot(tail_);
    ++stats_.evictions;
  }
}

void MapCache::register_metrics(telemetry::MetricsRegistry& registry,
                                const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "hits"), [this] { return stats_.hits; });
  registry.register_counter(telemetry::join(prefix, "misses"), [this] { return stats_.misses; });
  registry.register_counter(telemetry::join(prefix, "expirations"),
                            [this] { return stats_.expirations; });
  registry.register_counter(telemetry::join(prefix, "evictions"),
                            [this] { return stats_.evictions; });
  registry.register_counter(telemetry::join(prefix, "installs"),
                            [this] { return stats_.installs; });
  registry.register_gauge(telemetry::join(prefix, "size"),
                          [this] { return static_cast<double>(size()); });
  registry.register_gauge(telemetry::join(prefix, "positive_size"),
                          [this] { return static_cast<double>(positive_size()); });
}

}  // namespace sda::lisp
