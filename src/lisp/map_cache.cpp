#include "lisp/map_cache.hpp"

#include <vector>

#include "telemetry/metrics.hpp"

namespace sda::lisp {

const MapCacheEntry* MapCache::lookup(const net::VnEid& eid, sim::SimTime now) {
  const auto it = index_.find(eid);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second->second.expires_at <= now) {
    erase_iter(it->second);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  // Refresh LRU position.
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return &lru_.front().second;
}

void MapCache::install(const net::VnEid& eid, const MapReply& reply, sim::SimTime now) {
  MapCacheEntry entry;
  entry.rlocs = reply.rlocs;
  entry.inserted_at = now;
  entry.expires_at = now + std::chrono::seconds{reply.ttl_seconds};
  entry.group = net::GroupId{reply.group};
  ++stats_.installs;

  const auto it = index_.find(eid);
  if (it != index_.end()) {
    if (!it->second->second.negative()) --positive_count_;
    it->second->second = std::move(entry);
    if (!it->second->second.negative()) ++positive_count_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(eid, std::move(entry));
  index_.emplace(eid, lru_.begin());
  if (!lru_.front().second.negative()) ++positive_count_;
  evict_if_needed();
}

void MapCache::install(const net::VnEid& eid, std::vector<net::Rloc> rlocs,
                       std::uint32_t ttl_seconds, sim::SimTime now) {
  MapReply synthetic;
  synthetic.eid = eid;
  synthetic.rlocs = std::move(rlocs);
  synthetic.ttl_seconds = ttl_seconds;
  install(eid, synthetic, now);
}

bool MapCache::invalidate(const net::VnEid& eid) {
  const auto it = index_.find(eid);
  if (it == index_.end()) return false;
  erase_iter(it->second);
  return true;
}

std::size_t MapCache::invalidate_rloc(net::Ipv4Address rloc) {
  std::vector<LruList::iterator> doomed;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (!it->second.negative() && it->second.primary_rloc() == rloc) doomed.push_back(it);
  }
  for (auto it : doomed) erase_iter(it);
  return doomed.size();
}

std::size_t MapCache::sweep(sim::SimTime now) {
  std::vector<LruList::iterator> doomed;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->second.expires_at <= now) doomed.push_back(it);
  }
  for (auto it : doomed) {
    erase_iter(it);
    ++stats_.expirations;
  }
  return doomed.size();
}

void MapCache::clear() {
  lru_.clear();
  index_.clear();
  positive_count_ = 0;
}

void MapCache::walk(
    const std::function<void(const net::VnEid&, const MapCacheEntry&)>& visit) const {
  for (const auto& [eid, entry] : lru_) visit(eid, entry);
}

void MapCache::erase_iter(LruList::iterator it) {
  if (!it->second.negative()) --positive_count_;
  index_.erase(it->first);
  lru_.erase(it);
}

void MapCache::evict_if_needed() {
  while (capacity_ != 0 && lru_.size() > capacity_) {
    erase_iter(std::prev(lru_.end()));
    ++stats_.evictions;
  }
}

void MapCache::register_metrics(telemetry::MetricsRegistry& registry,
                                const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "hits"), [this] { return stats_.hits; });
  registry.register_counter(telemetry::join(prefix, "misses"), [this] { return stats_.misses; });
  registry.register_counter(telemetry::join(prefix, "expirations"),
                            [this] { return stats_.expirations; });
  registry.register_counter(telemetry::join(prefix, "evictions"),
                            [this] { return stats_.evictions; });
  registry.register_counter(telemetry::join(prefix, "installs"),
                            [this] { return stats_.installs; });
  registry.register_gauge(telemetry::join(prefix, "size"),
                          [this] { return static_cast<double>(size()); });
  registry.register_gauge(telemetry::join(prefix, "positive_size"),
                          [this] { return static_cast<double>(positive_size()); });
}

}  // namespace sda::lisp
