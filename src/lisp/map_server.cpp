#include "lisp/map_server.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/metrics.hpp"

namespace sda::lisp {

bool equivalent(const MappingRecord& a, const MappingRecord& b) {
  return a.rlocs == b.rlocs && a.ttl_seconds == b.ttl_seconds && a.group == b.group;
}

RegisterOutcome MapServer::register_mapping(const net::VnEid& eid, const MappingRecord& record) {
  assert(!record.rlocs.empty());
  ++stats_.registers;
  tombstones_.erase(eid);
  auto& db = databases_[eid.vn].family(eid.eid.family());
  const trie::BitKey key = trie::BitKey::from_eid(eid.eid);

  RegisterOutcome outcome;
  if (MappingRecord* existing = db.find_exact(key)) {
    if (existing->rlocs != record.rlocs) {
      outcome.moved = true;
      outcome.previous_rloc = existing->primary_rloc();
      ++stats_.moves;
    }
    *existing = record;
    log_append(eid, &record, record.refreshed_at);
    if (outcome.moved) {
      if (on_move_) on_move_(eid, outcome.previous_rloc, record);
      publish(eid, &record);
    }
    return outcome;
  }

  db.insert(key, record);
  outcome.created = true;
  log_append(eid, &record, record.refreshed_at);
  publish(eid, &record);
  return outcome;
}

void MapServer::log_append(const net::VnEid& eid, const MappingRecord* record,
                           sim::SimTime stamped) {
  if (log_capacity_ == 0) return;
  LogEntry& slot = log_[(log_next_seq_ - 1) % log_capacity_];
  slot.seq = log_next_seq_++;
  slot.eid = eid;
  slot.tombstone = record == nullptr;
  slot.record = record ? *record : MappingRecord{};
  slot.stamped = stamped;
  log_size_ = std::min(log_size_ + 1, log_capacity_);
}

void MapServer::set_log_capacity(std::size_t capacity) {
  log_capacity_ = capacity;
  log_.assign(capacity, LogEntry{});
  log_size_ = 0;
}

std::uint64_t MapServer::log_horizon_seq() const { return log_next_seq_ - log_size_; }

bool MapServer::log_covers(std::uint64_t from_seq) const {
  if (log_capacity_ == 0) return from_seq >= log_next_seq_;
  return from_seq >= log_horizon_seq();
}

std::size_t MapServer::replay_log(std::uint64_t from_seq,
                                  const std::function<void(const LogEntry&)>& visit) const {
  if (log_capacity_ == 0 || !log_covers(from_seq)) return 0;
  std::size_t visited = 0;
  for (std::uint64_t s = std::max(from_seq, log_horizon_seq()); s < log_next_seq_; ++s) {
    visit(log_[(s - 1) % log_capacity_]);
    ++visited;
  }
  return visited;
}

void MapServer::apply_log_entry(const LogEntry& entry) {
  const MappingRecord* existing = find_host(entry.eid);
  if (entry.tombstone) {
    if (existing) {
      // The leader deleted it; a newer local refresh wins (same rule as
      // reconcile_with).
      if (entry.stamped >= existing->refreshed_at) {
        deregister(entry.eid, existing->primary_rloc(), entry.stamped);
      }
    } else {
      // Nothing to delete, but remember the deletion so a later reconcile
      // doesn't resurrect the EID from a third replica.
      tombstones_[entry.eid] = entry.stamped;
    }
    return;
  }
  if (existing && existing->refreshed_at > entry.record.refreshed_at) return;
  if (const auto death = tombstone(entry.eid); death && *death >= entry.record.refreshed_at) {
    return;  // locally deleted after the leader's copy was refreshed
  }
  register_mapping(entry.eid, entry.record);
}

void MapServer::register_prefix(net::VnId vn, const net::Ipv4Prefix& prefix,
                                const MappingRecord& record) {
  databases_[vn].v4.insert(trie::BitKey::from_ipv4_prefix(prefix), record);
}

void MapServer::register_prefix(net::VnId vn, const net::Ipv6Prefix& prefix,
                                const MappingRecord& record) {
  databases_[vn].v6.insert(trie::BitKey::from_ipv6_prefix(prefix), record);
}

bool MapServer::deregister(const net::VnEid& eid, net::Ipv4Address owner, sim::SimTime now) {
  const auto it = databases_.find(eid.vn);
  if (it == databases_.end()) return false;
  auto& db = it->second.family(eid.eid.family());
  const trie::BitKey key = trie::BitKey::from_eid(eid.eid);
  const MappingRecord* existing = db.find_exact(key);
  if (!existing || existing->primary_rloc() != owner) return false;
  db.erase(key);
  tombstones_[eid] = now;
  ++stats_.deregisters;
  log_append(eid, nullptr, now);
  publish(eid, nullptr);
  return true;
}

std::size_t MapServer::expire_registrations(sim::SimTime now) {
  std::vector<net::VnEid> doomed;
  walk([&](const net::VnEid& eid, const MappingRecord& record) {
    if (now - record.refreshed_at >= std::chrono::seconds{record.ttl_seconds}) {
      doomed.push_back(eid);
    }
  });
  for (const auto& eid : doomed) {
    auto& db = databases_[eid.vn].family(eid.eid.family());
    db.erase(trie::BitKey::from_eid(eid.eid));
    tombstones_[eid] = now;
    ++stats_.expirations;
    log_append(eid, nullptr, now);
    publish(eid, nullptr);
  }
  return doomed.size();
}

void MapServer::clear() {
  databases_.clear();
  l2_bindings_.clear();
  tombstones_.clear();  // a crashed server forgets its deletions too
  log_.assign(log_capacity_, LogEntry{});
  log_size_ = 0;  // the retained window is gone; log_next_seq_ stays monotonic
  ++generation_;  // a peer's replay bookkeeping for us is now meaningless
}

std::optional<MappingRecord> MapServer::resolve(const net::VnEid& eid) const {
  const auto it = databases_.find(eid.vn);
  if (it == databases_.end()) return std::nullopt;
  const auto& db = it->second.family(eid.eid.family());
  const auto match = db.longest_match(trie::BitKey::from_eid(eid.eid));
  if (!match) return std::nullopt;
  return *match->second;
}

const MappingRecord* MapServer::find_host(const net::VnEid& eid) const {
  const auto it = databases_.find(eid.vn);
  if (it == databases_.end()) return nullptr;
  return it->second.family(eid.eid.family()).find_exact(trie::BitKey::from_eid(eid.eid));
}

MapReply MapServer::answer(const MapRequest& request) const {
  ++stats_.requests;
  MapReply reply;
  reply.nonce = request.nonce;
  reply.eid = request.eid;
  if (const auto record = resolve(request.eid)) {
    reply.rlocs = record->rlocs;
    reply.ttl_seconds = record->ttl_seconds;
    reply.group = record->group.value();
    reply.action = MapReplyAction::NoAction;
  } else {
    ++stats_.negative_replies;
    reply.action = MapReplyAction::NativelyForward;
    reply.ttl_seconds = negative_ttl_seconds_;
  }
  return reply;
}

namespace {

// splitmix64 finalizer: scrambles per-entry hashes before the XOR fold so
// near-identical entries (adjacent EIDs, same RLOC) don't cancel out.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t entry_hash(const net::VnEid& eid, const MappingRecord& record) {
  std::uint64_t h = std::hash<net::VnEid>{}(eid);
  const auto fold = [&h](std::uint64_t v) { h = (h ^ v) * 0x100000001B3ull; };
  for (const auto& rloc : record.rlocs) {
    fold(rloc.address.value());
    fold((std::uint64_t{rloc.priority} << 8) | std::uint64_t{rloc.weight});
  }
  fold(record.ttl_seconds);
  fold(record.group.value());
  return mix64(h);
}

}  // namespace

std::uint64_t MapServer::digest() const {
  std::uint64_t d = 0;
  walk([&d](const net::VnEid& eid, const MappingRecord& record) {
    d ^= entry_hash(eid, record);
  });
  return d;
}

MapServer::ReconcileStats MapServer::reconcile_with(MapServer& peer, sim::SimTime now,
                                                    sim::Duration tombstone_horizon) {
  ReconcileStats stats;
  std::unordered_map<net::VnEid, MappingRecord> mine, theirs;
  walk([&mine](const net::VnEid& eid, const MappingRecord& r) { mine.emplace(eid, r); });
  peer.walk([&theirs](const net::VnEid& eid, const MappingRecord& r) { theirs.emplace(eid, r); });

  for (const auto& [eid, record] : mine) {
    const auto it = theirs.find(eid);
    if (it != theirs.end()) {
      if (equivalent(record, it->second)) continue;
      // Both sides hold the EID with different contents: newest wins.
      if (record.refreshed_at >= it->second.refreshed_at) {
        peer.register_mapping(eid, record);
        ++stats.pushed;
      } else {
        register_mapping(eid, it->second);
        ++stats.pulled;
      }
      continue;
    }
    // Only we hold it. If the peer deleted it after our copy was last
    // refreshed, the deletion wins; otherwise the peer simply missed it.
    const auto peer_death = peer.tombstone(eid);
    if (peer_death && *peer_death >= record.refreshed_at) {
      deregister(eid, record.primary_rloc(), now);
      ++stats.removed_here;
    } else {
      peer.register_mapping(eid, record);
      ++stats.pushed;
    }
  }
  for (const auto& [eid, record] : theirs) {
    if (mine.contains(eid)) continue;  // handled above
    const auto my_death = tombstone(eid);
    if (my_death && *my_death >= record.refreshed_at) {
      peer.deregister(eid, record.primary_rloc(), now);
      ++stats.removed_peer;
    } else {
      register_mapping(eid, record);
      ++stats.pulled;
    }
  }

  const auto prune = [&](std::unordered_map<net::VnEid, sim::SimTime>& tombs) {
    std::erase_if(tombs, [&](const auto& kv) { return now - kv.second > tombstone_horizon; });
  };
  prune(tombstones_);
  prune(peer.tombstones_);
  return stats;
}

std::optional<sim::SimTime> MapServer::tombstone(const net::VnEid& eid) const {
  const auto it = tombstones_.find(eid);
  if (it == tombstones_.end()) return std::nullopt;
  return it->second;
}

void MapServer::bind_l2(const net::VnEid& ip_eid, const net::MacAddress& mac) {
  l2_bindings_[ip_eid] = mac;
}

bool MapServer::unbind_l2(const net::VnEid& ip_eid) { return l2_bindings_.erase(ip_eid) > 0; }

std::optional<net::MacAddress> MapServer::lookup_mac(const net::VnEid& ip_eid) const {
  const auto it = l2_bindings_.find(ip_eid);
  if (it == l2_bindings_.end()) return std::nullopt;
  return it->second;
}

namespace {

std::size_t host_entries(const trie::PatriciaTrie<MappingRecord>& trie) {
  std::size_t n = 0;
  trie.walk([&n](const trie::BitKey& key, const MappingRecord&) {
    if (key.is_host()) ++n;
  });
  return n;
}

}  // namespace

std::size_t MapServer::mapping_count() const {
  std::size_t total = 0;
  for (const auto& [vn, db] : databases_) {
    total += host_entries(db.v4) + host_entries(db.v6) + db.mac.size();
  }
  return total;
}

std::size_t MapServer::mapping_count(net::VnId vn) const {
  const auto it = databases_.find(vn);
  if (it == databases_.end()) return 0;
  return host_entries(it->second.v4) + host_entries(it->second.v6) + it->second.mac.size();
}

std::size_t MapServer::total_entries() const {
  std::size_t total = 0;
  for (const auto& [vn, db] : databases_) {
    total += db.v4.size() + db.v6.size() + db.mac.size();
  }
  return total;
}

void MapServer::walk(
    const std::function<void(const net::VnEid&, const MappingRecord&)>& visit) const {
  for (const auto& [vn, db] : databases_) {
    const net::VnId vn_id = vn;
    db.v4.walk([&](const trie::BitKey& key, const MappingRecord& record) {
      if (!key.is_host()) return;  // prefixes are infrastructure, not endpoints
      net::Ipv4Address a{(std::uint32_t{key.bytes()[0]} << 24) |
                         (std::uint32_t{key.bytes()[1]} << 16) |
                         (std::uint32_t{key.bytes()[2]} << 8) | key.bytes()[3]};
      visit(net::VnEid{vn_id, net::Eid{a}}, record);
    });
    db.v6.walk([&](const trie::BitKey& key, const MappingRecord& record) {
      if (!key.is_host()) return;
      net::Ipv6Address::Bytes b{};
      std::copy_n(key.bytes().begin(), 16, b.begin());
      visit(net::VnEid{vn_id, net::Eid{net::Ipv6Address{b}}}, record);
    });
    db.mac.walk([&](const trie::BitKey& key, const MappingRecord& record) {
      net::MacAddress::Bytes b{};
      std::copy_n(key.bytes().begin(), 6, b.begin());
      visit(net::VnEid{vn_id, net::Eid{net::MacAddress{b}}}, record);
    });
  }
}

void MapServer::register_metrics(telemetry::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "registers"),
                            [this] { return stats_.registers; });
  registry.register_counter(telemetry::join(prefix, "moves"), [this] { return stats_.moves; });
  registry.register_counter(telemetry::join(prefix, "deregisters"),
                            [this] { return stats_.deregisters; });
  registry.register_counter(telemetry::join(prefix, "requests"),
                            [this] { return stats_.requests; });
  registry.register_counter(telemetry::join(prefix, "negative_replies"),
                            [this] { return stats_.negative_replies; });
  registry.register_counter(telemetry::join(prefix, "expirations"),
                            [this] { return stats_.expirations; });
  registry.register_gauge(telemetry::join(prefix, "mappings"),
                          [this] { return static_cast<double>(mapping_count()); });
  registry.register_gauge(telemetry::join(prefix, "total_entries"),
                          [this] { return static_cast<double>(total_entries()); });
}

}  // namespace sda::lisp
