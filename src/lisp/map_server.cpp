#include "lisp/map_server.hpp"

#include <algorithm>
#include <cassert>

#include "telemetry/metrics.hpp"

namespace sda::lisp {

RegisterOutcome MapServer::register_mapping(const net::VnEid& eid, const MappingRecord& record) {
  assert(!record.rlocs.empty());
  ++stats_.registers;
  auto& db = databases_[eid.vn].family(eid.eid.family());
  const trie::BitKey key = trie::BitKey::from_eid(eid.eid);

  RegisterOutcome outcome;
  if (MappingRecord* existing = db.find_exact(key)) {
    if (existing->rlocs != record.rlocs) {
      outcome.moved = true;
      outcome.previous_rloc = existing->primary_rloc();
      ++stats_.moves;
    }
    *existing = record;
    if (outcome.moved) {
      if (on_move_) on_move_(eid, outcome.previous_rloc, record);
      publish(eid, &record);
    }
    return outcome;
  }

  db.insert(key, record);
  outcome.created = true;
  publish(eid, &record);
  return outcome;
}

void MapServer::register_prefix(net::VnId vn, const net::Ipv4Prefix& prefix,
                                const MappingRecord& record) {
  databases_[vn].v4.insert(trie::BitKey::from_ipv4_prefix(prefix), record);
}

void MapServer::register_prefix(net::VnId vn, const net::Ipv6Prefix& prefix,
                                const MappingRecord& record) {
  databases_[vn].v6.insert(trie::BitKey::from_ipv6_prefix(prefix), record);
}

bool MapServer::deregister(const net::VnEid& eid, net::Ipv4Address owner) {
  const auto it = databases_.find(eid.vn);
  if (it == databases_.end()) return false;
  auto& db = it->second.family(eid.eid.family());
  const trie::BitKey key = trie::BitKey::from_eid(eid.eid);
  const MappingRecord* existing = db.find_exact(key);
  if (!existing || existing->primary_rloc() != owner) return false;
  db.erase(key);
  ++stats_.deregisters;
  publish(eid, nullptr);
  return true;
}

std::size_t MapServer::expire_registrations(sim::SimTime now) {
  std::vector<net::VnEid> doomed;
  walk([&](const net::VnEid& eid, const MappingRecord& record) {
    if (now - record.refreshed_at >= std::chrono::seconds{record.ttl_seconds}) {
      doomed.push_back(eid);
    }
  });
  for (const auto& eid : doomed) {
    auto& db = databases_[eid.vn].family(eid.eid.family());
    db.erase(trie::BitKey::from_eid(eid.eid));
    ++stats_.expirations;
    publish(eid, nullptr);
  }
  return doomed.size();
}

void MapServer::clear() {
  databases_.clear();
  l2_bindings_.clear();
}

std::optional<MappingRecord> MapServer::resolve(const net::VnEid& eid) const {
  const auto it = databases_.find(eid.vn);
  if (it == databases_.end()) return std::nullopt;
  const auto& db = it->second.family(eid.eid.family());
  const auto match = db.longest_match(trie::BitKey::from_eid(eid.eid));
  if (!match) return std::nullopt;
  return *match->second;
}

const MappingRecord* MapServer::find_host(const net::VnEid& eid) const {
  const auto it = databases_.find(eid.vn);
  if (it == databases_.end()) return nullptr;
  return it->second.family(eid.eid.family()).find_exact(trie::BitKey::from_eid(eid.eid));
}

MapReply MapServer::answer(const MapRequest& request) const {
  ++stats_.requests;
  MapReply reply;
  reply.nonce = request.nonce;
  reply.eid = request.eid;
  if (const auto record = resolve(request.eid)) {
    reply.rlocs = record->rlocs;
    reply.ttl_seconds = record->ttl_seconds;
    reply.group = record->group.value();
    reply.action = MapReplyAction::NoAction;
  } else {
    ++stats_.negative_replies;
    reply.action = MapReplyAction::NativelyForward;
    reply.ttl_seconds = 60;  // short negative-cache TTL
  }
  return reply;
}

void MapServer::bind_l2(const net::VnEid& ip_eid, const net::MacAddress& mac) {
  l2_bindings_[ip_eid] = mac;
}

bool MapServer::unbind_l2(const net::VnEid& ip_eid) { return l2_bindings_.erase(ip_eid) > 0; }

std::optional<net::MacAddress> MapServer::lookup_mac(const net::VnEid& ip_eid) const {
  const auto it = l2_bindings_.find(ip_eid);
  if (it == l2_bindings_.end()) return std::nullopt;
  return it->second;
}

namespace {

std::size_t host_entries(const trie::PatriciaTrie<MappingRecord>& trie) {
  std::size_t n = 0;
  trie.walk([&n](const trie::BitKey& key, const MappingRecord&) {
    if (key.is_host()) ++n;
  });
  return n;
}

}  // namespace

std::size_t MapServer::mapping_count() const {
  std::size_t total = 0;
  for (const auto& [vn, db] : databases_) {
    total += host_entries(db.v4) + host_entries(db.v6) + db.mac.size();
  }
  return total;
}

std::size_t MapServer::mapping_count(net::VnId vn) const {
  const auto it = databases_.find(vn);
  if (it == databases_.end()) return 0;
  return host_entries(it->second.v4) + host_entries(it->second.v6) + it->second.mac.size();
}

std::size_t MapServer::total_entries() const {
  std::size_t total = 0;
  for (const auto& [vn, db] : databases_) {
    total += db.v4.size() + db.v6.size() + db.mac.size();
  }
  return total;
}

void MapServer::walk(
    const std::function<void(const net::VnEid&, const MappingRecord&)>& visit) const {
  for (const auto& [vn, db] : databases_) {
    const net::VnId vn_id = vn;
    db.v4.walk([&](const trie::BitKey& key, const MappingRecord& record) {
      if (!key.is_host()) return;  // prefixes are infrastructure, not endpoints
      net::Ipv4Address a{(std::uint32_t{key.bytes()[0]} << 24) |
                         (std::uint32_t{key.bytes()[1]} << 16) |
                         (std::uint32_t{key.bytes()[2]} << 8) | key.bytes()[3]};
      visit(net::VnEid{vn_id, net::Eid{a}}, record);
    });
    db.v6.walk([&](const trie::BitKey& key, const MappingRecord& record) {
      if (!key.is_host()) return;
      net::Ipv6Address::Bytes b{};
      std::copy_n(key.bytes().begin(), 16, b.begin());
      visit(net::VnEid{vn_id, net::Eid{net::Ipv6Address{b}}}, record);
    });
    db.mac.walk([&](const trie::BitKey& key, const MappingRecord& record) {
      net::MacAddress::Bytes b{};
      std::copy_n(key.bytes().begin(), 6, b.begin());
      visit(net::VnEid{vn_id, net::Eid{net::MacAddress{b}}}, record);
    });
  }
}

void MapServer::register_metrics(telemetry::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "registers"),
                            [this] { return stats_.registers; });
  registry.register_counter(telemetry::join(prefix, "moves"), [this] { return stats_.moves; });
  registry.register_counter(telemetry::join(prefix, "deregisters"),
                            [this] { return stats_.deregisters; });
  registry.register_counter(telemetry::join(prefix, "requests"),
                            [this] { return stats_.requests; });
  registry.register_counter(telemetry::join(prefix, "negative_replies"),
                            [this] { return stats_.negative_replies; });
  registry.register_counter(telemetry::join(prefix, "expirations"),
                            [this] { return stats_.expirations; });
  registry.register_gauge(telemetry::join(prefix, "mappings"),
                          [this] { return static_cast<double>(mapping_count()); });
  registry.register_gauge(telemetry::join(prefix, "total_entries"),
                          [this] { return static_cast<double>(total_entries()); });
}

}  // namespace sda::lisp
