// Bounded single-producer/single-consumer ring.
//
// The sharded simulator exchanges cross-shard events through one of these
// per ordered worker pair, so every ring has exactly one producing thread
// (the sending shard's worker) and one consuming thread (whoever drains the
// receiving shard at a window barrier). That restriction buys a lock-free
// design with two monotonically increasing indices: the producer owns
// tail_, the consumer owns head_, and each side caches the other's index so
// the common push/pop touches one shared cache line only when its cached
// view says the ring might be full/empty. Slots are preallocated at
// construction — steady-state push/pop performs no heap allocation.
//
// Modeled on the per-lcore RX/worker/TX rings of the daqswitch exemplar
// (SNIPPETS.md): pin a pipeline stage per core, exchange packets through
// SPSC rings, never lock on the packet path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sda::sim {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2) so index
  /// wrapping is a mask, not a modulo.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full (the value is left
  /// untouched so the caller can spill it elsewhere).
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness check (exact once the producer is quiescent,
  /// e.g. at a window barrier; otherwise a lower bound).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_relaxed) == tail_.load(std::memory_order_acquire);
  }

  /// Elements currently queued, observed from the consumer side.
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_relaxed));
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Producer line: the producer writes tail_ and keeps its stale view of
  // head_ alongside it; padding keeps the consumer's line out of the way.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
  // Consumer line.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
};

}  // namespace sda::sim
