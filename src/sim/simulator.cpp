#include "sim/simulator.hpp"

namespace sda::sim {

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t n = 0;
  while (true) {
    skip_cancelled();
    if (heap_.empty() || heap_.front().when > until) break;
    step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace sda::sim
