#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace sda::sim {

EventHandle Simulator::schedule_at(SimTime when, Action action) {
  assert(action);
  if (when < now_) when = now_;  // no scheduling into the past
  const std::uint64_t sequence = next_sequence_++;
  queue_.push(Event{when, sequence, std::move(action)});
  live_sequences_.insert(sequence);
  return EventHandle{sequence};
}

bool Simulator::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  // Only a still-pending event can be cancelled: a handle whose event
  // already executed (or was already cancelled) is no longer live, and
  // cancelling it must be a counted-for no-op.
  if (live_sequences_.erase(handle.sequence_) == 0) return false;
  cancelled_sequences_.insert(handle.sequence_);
  return true;
}

void Simulator::skip_cancelled() {
  while (!queue_.empty()) {
    const auto it = cancelled_sequences_.find(queue_.top().sequence);
    if (it == cancelled_sequences_.end()) return;
    cancelled_sequences_.erase(it);
    queue_.pop();
  }
}

bool Simulator::step() {
  skip_cancelled();
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the Event must be moved out via a
  // const_cast-free copy of the action. Extract by re-popping.
  Event event{queue_.top().when, queue_.top().sequence,
              std::move(const_cast<Event&>(queue_.top()).action)};
  queue_.pop();
  live_sequences_.erase(event.sequence);
  assert(event.when >= now_);
  now_ = event.when;
  ++executed_;
  event.action();
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t n = 0;
  while (true) {
    skip_cancelled();
    if (queue_.empty() || queue_.top().when > until) break;
    step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace sda::sim
