// Deterministic random number generation for simulations.
//
// A thin wrapper over a 64-bit SplitMix/xoshiro generator with the
// distributions the workload models need. Every experiment seeds its own
// Rng, so runs are reproducible bit-for-bit.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace sda::sim {

/// xoshiro256** PRNG, seeded via SplitMix64. Fast, high quality, and fully
/// deterministic across platforms (unlike std:: distributions).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's bounded rejection method (no modulo bias).
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
    return -mean * std::log(u);
  }

  /// Exponential inter-arrival duration for a Poisson process at `rate_hz`.
  Duration exp_interarrival(double rate_hz) {
    return Duration{static_cast<std::int64_t>(exponential(1e9 / rate_hz))};
  }

  /// Normally distributed value (Box-Muller; one value per call).
  double normal(double mean, double stddev) {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(6.28318530717958647692 * u2);
  }

  /// Lognormal with the given *underlying* normal parameters.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Samples an index in [0, n) from a Zipf distribution with exponent s.
  /// Uses a precomputed CDF supplied by ZipfSampler for efficiency; this
  /// convenience overload is O(n) and intended for small n.
  std::size_t zipf(std::size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[next_below(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

/// Decorrelated-jitter backoff (the "decorrelated jitter" scheme from the
/// AWS architecture blog): the next delay is uniform in [initial,
/// 3 * current], capped. Grows on average, never drops below the initial
/// value, and desynchronizes timers that fired at the same instant — used
/// for control-plane retransmits and for election timeouts, where replicas
/// that lose the leader simultaneously must not perpetually tie.
inline Duration decorrelated_backoff(Rng& rng, Duration current, Duration initial,
                                     Duration cap) {
  double next_ns = rng.uniform(static_cast<double>(initial.count()),
                               3.0 * static_cast<double>(current.count()));
  next_ns = std::min(next_ns, static_cast<double>(cap.count()));
  return Duration{static_cast<std::int64_t>(next_ns)};
}

/// Precomputed-CDF Zipf sampler: O(n) setup, O(log n) per sample.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Samples a rank in [0, n); rank 0 is the most popular item.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace sda::sim
