#include "sim/sharded.hpp"

#include <algorithm>
#include <cassert>

namespace sda::sim {

ShardedSimulator::ShardedSimulator(ShardedConfig config) {
  const std::size_t shards = config.shards == 0 ? 1 : config.shards;
  sims_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  workers_ = std::clamp<std::size_t>(config.workers, 1, shards);
  lookahead_ = config.lookahead;
  if (shards > 1) {
    assert(lookahead_.count() > 0 && "multi-shard cores need a positive lookahead");
    mail_.resize(shards * shards);
    for (std::size_t from = 0; from < shards; ++from) {
      for (std::size_t to = 0; to < shards; ++to) {
        if (from == to) continue;
        mailbox(from, to).ring =
            std::make_unique<SpscRing<CrossEvent>>(config.ring_capacity);
      }
    }
    merge_scratch_.resize(shards);
  }
  if (shards > 1 && workers_ > 1) {
    threads_.reserve(workers_ - 1);
    for (std::size_t w = 1; w < workers_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }
}

void ShardedSimulator::post(std::size_t from, std::size_t to, SimTime when,
                            InlineAction action) {
  assert(to < sims_.size());
  if (to == from || mail_.empty()) {
    // Local (or single-shard) post: straight onto the target heap. This is
    // the `shards = 1` hot path — no ring, no ordering metadata.
    sims_[to]->schedule_at(when, std::move(action));
    return;
  }
  assert(from < sims_.size());
  Mailbox& m = mailbox(from, to);
  CrossEvent ev{when, ++m.seq, std::move(action)};
  if (!m.ring->try_push(std::move(ev))) {
    // Ring full: spill to the producer-owned overflow, drained at the same
    // barrier. Ordering is preserved because the merge replays ring first,
    // overflow second, and seq numbers are monotone across both.
    m.overflow.push_back(std::move(ev));
    ++m.spilled;
  }
}

void ShardedSimulator::merge_all() {
  const std::size_t shards = sims_.size();
  for (std::size_t to = 0; to < shards; ++to) {
    std::vector<MergeItem>& scratch = merge_scratch_[to];
    scratch.clear();
    for (std::size_t from = 0; from < shards; ++from) {
      if (from == to) continue;
      Mailbox& m = mailbox(from, to);
      CrossEvent ev;
      while (m.ring->try_pop(ev)) {
        scratch.push_back(
            MergeItem{ev.when, static_cast<std::uint32_t>(from), ev.seq,
                      std::move(ev.action)});
      }
      for (CrossEvent& spilled : m.overflow) {
        scratch.push_back(
            MergeItem{spilled.when, static_cast<std::uint32_t>(from),
                      spilled.seq, std::move(spilled.action)});
      }
      m.overflow.clear();
    }
    if (scratch.empty()) continue;
    // Deterministic injection order: timestamp, then producing shard, then
    // the producer's own sequence. The tuple is unique per event and
    // independent of worker count, so the target heap's insertion-sequence
    // tie-break comes out identical for every schedule of the same run.
    std::sort(scratch.begin(), scratch.end(),
              [](const MergeItem& a, const MergeItem& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.from != b.from) return a.from < b.from;
                return a.seq < b.seq;
              });
    Simulator& target = *sims_[to];
    for (MergeItem& item : scratch) {
      if (item.when < target.now()) ++late_posts_;  // clamped by schedule_at
      target.schedule_at(item.when, std::move(item.action));
    }
    scratch.clear();
  }
}

std::optional<SimTime> ShardedSimulator::next_event_time_all() {
  std::optional<SimTime> earliest;
  for (auto& sim : sims_) {
    const std::optional<SimTime> t = sim->next_event_time();
    if (t && (!earliest || *t < *earliest)) earliest = t;
  }
  return earliest;
}

void ShardedSimulator::advance_range(std::size_t worker, SimTime horizon) {
  const std::size_t shards = sims_.size();
  for (std::size_t s = worker; s < shards; s += workers_) {
    sims_[s]->run_until(horizon);
  }
}

void ShardedSimulator::advance_parallel(SimTime horizon) {
  if (threads_.empty()) {
    advance_range(0, horizon);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    horizon_ = horizon;
    running_workers_ = threads_.size();
    ++epoch_;
  }
  start_cv_.notify_all();
  advance_range(0, horizon);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return running_workers_ == 0; });
}

void ShardedSimulator::worker_loop(std::size_t worker) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    SimTime horizon{};
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      horizon = horizon_;
    }
    advance_range(worker, horizon);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = --running_workers_ == 0;
    }
    if (last) done_cv_.notify_one();
  }
}

std::uint64_t ShardedSimulator::run_windows(std::optional<SimTime> until) {
  const std::uint64_t before = executed_events();
  while (true) {
    // Barrier point: all workers quiescent, so draining the rings here is
    // race-free and sees everything the previous window produced.
    merge_all();
    const std::optional<SimTime> next = next_event_time_all();
    if (!next) break;                 // drained (merge above ran first)
    if (until && *next > *until) break;
    SimTime horizon = *next + lookahead_;
    if (until && *until < horizon) horizon = *until;
    if (horizon < fence_) horizon = fence_;  // clamped late post
    advance_parallel(horizon);
    fence_ = horizon;
    ++windows_;
  }
  if (until) {
    // Advance every shard clock to `until` even if its queue drained early
    // (mirrors Simulator::run_until semantics).
    for (auto& sim : sims_) sim->run_until(*until);
    if (fence_ < *until) fence_ = *until;
  }
  return executed_events() - before;
}

std::uint64_t ShardedSimulator::run() {
  if (mail_.empty()) {  // single shard: the existing hot path, verbatim
    const std::uint64_t n = sims_[0]->run();
    fence_ = sims_[0]->now();
    return n;
  }
  return run_windows(std::nullopt);
}

std::uint64_t ShardedSimulator::run_until(SimTime until) {
  if (mail_.empty()) {
    const std::uint64_t n = sims_[0]->run_until(until);
    fence_ = sims_[0]->now();
    return n;
  }
  return run_windows(until);
}

std::uint64_t ShardedSimulator::executed_events() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->executed_events();
  return total;
}

std::uint64_t ShardedSimulator::cross_posts() const {
  std::uint64_t total = 0;
  for (const Mailbox& m : mail_) total += m.seq;
  return total;
}

std::uint64_t ShardedSimulator::overflow_posts() const {
  std::uint64_t total = 0;
  for (const Mailbox& m : mail_) total += m.spilled;
  return total;
}

}  // namespace sda::sim
