#include "sim/random.hpp"

#include <algorithm>

namespace sda::sim {

std::size_t Rng::zipf(std::size_t n, double s) {
  ZipfSampler sampler{n, s};
  return sampler.sample(*this);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

}  // namespace sda::sim
