// Single-threaded discrete-event simulator.
//
// Events are closures scheduled at absolute sim-times. Execution order is
// fully deterministic: ties on time break by insertion sequence number.
// Events can be cancelled through the handle returned by schedule().
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace sda::sim {

/// Identifies a scheduled event so it can be cancelled. Default-constructed
/// handles are inert.
class EventHandle {
 public:
  constexpr EventHandle() = default;

  [[nodiscard]] constexpr bool valid() const { return sequence_ != 0; }

 private:
  friend class Simulator;
  constexpr explicit EventHandle(std::uint64_t sequence) : sequence_(sequence) {}
  std::uint64_t sequence_ = 0;
};

/// The event loop. All fabric components hold a reference to one Simulator
/// and schedule their work through it.
class Simulator {
 public:
  using Action = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Monotonically non-decreasing.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute time `when` (clamped to now()).
  EventHandle schedule_at(SimTime when, Action action);

  /// Schedules `action` to run `delay` after now().
  EventHandle schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  /// Returns true if the event was still pending.
  bool cancel(EventHandle handle);

  /// Runs events until the queue drains. Returns the number executed.
  std::size_t run();

  /// Runs events with time <= `until` (inclusive). Remaining events stay
  /// queued; now() advances to `until` even if the queue drained earlier.
  std::size_t run_until(SimTime until);

  /// Runs at most one event. Returns false if the queue was empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return live_sequences_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t sequence;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  /// Pops cancelled events off the head of the queue.
  void skip_cancelled();

  SimTime now_{};
  std::uint64_t next_sequence_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  /// Sequences scheduled but not yet executed or cancelled. Membership is
  /// the ground truth for cancel(): a handle whose event already ran (or
  /// was already cancelled) is absent, so a late cancel() can never corrupt
  /// the pending-event accounting.
  std::unordered_set<std::uint64_t> live_sequences_;
  /// Cancelled events still physically sitting in the queue; lazily popped.
  std::unordered_set<std::uint64_t> cancelled_sequences_;
};

}  // namespace sda::sim
