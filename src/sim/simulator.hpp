// Single-threaded discrete-event simulator.
//
// Events are closures scheduled at absolute sim-times. Execution order is
// fully deterministic: ties on time break by insertion sequence number.
// Events can be cancelled through the handle returned by schedule().
//
// Hot-path layout: the priority queue is a 4-ary implicit min-heap of
// 24-byte PODs (shallower than a binary heap and the four children share a
// cache line, so pops touch fewer lines); the closures live in
// generation-stamped slots recycled through a free list, so the
// steady-state schedule/dispatch cycle performs no heap allocation (the
// heap vector, slot vector, and free list all plateau at their high-water
// marks). cancel() is an O(1) generation check — tombstoned queue entries
// are popped lazily, and because the generation advances on every execute
// *and* cancel, a stale entry or handle can never touch a recycled slot.
// schedule/step are defined inline here: one closure move in, one out, no
// out-of-line calls on the per-event path.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/inline_action.hpp"
#include "sim/time.hpp"

namespace sda::sim {

/// Identifies a scheduled event so it can be cancelled. Default-constructed
/// handles are inert. A handle refers to {slot, generation}: once the event
/// runs or is cancelled the slot's generation advances, so a stale handle
/// (even one whose slot has been recycled for a new event) is a no-op.
class EventHandle {
 public:
  constexpr EventHandle() = default;

  [[nodiscard]] constexpr bool valid() const { return slot_ != kInvalidSlot; }

 private:
  friend class Simulator;
  static constexpr std::uint32_t kInvalidSlot = 0xFFFFFFFFu;
  constexpr EventHandle(std::uint32_t slot, std::uint32_t generation)
      : slot_(slot), generation_(generation) {}
  std::uint32_t slot_ = kInvalidSlot;
  std::uint32_t generation_ = 0;
};

/// The event loop. All fabric components hold a reference to one Simulator
/// and schedule their work through it.
class Simulator {
 public:
  using Action = InlineAction;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Monotonically non-decreasing.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute time `when` (clamped to now()).
  EventHandle schedule_at(SimTime when, Action action) {
    assert(action);
    if (when < now_) when = now_;  // no scheduling into the past
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
    Slot& s = slots_[slot];
    s.action = std::move(action);
    heap_push(QueuedEvent{when, next_sequence_++, slot, s.generation});
    ++live_;
    return EventHandle{slot, s.generation};
  }

  /// Schedules `action` to run `delay` after now().
  EventHandle schedule_after(Duration delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  /// Returns true if the event was still pending. O(1).
  bool cancel(EventHandle handle) {
    if (!handle.valid() || handle.slot_ >= slots_.size()) return false;
    // Only a still-pending event can be cancelled: execution and
    // cancellation both advance the slot generation, so a handle whose
    // event already ran (or whose slot was recycled for a newer event)
    // mismatches here and the cancel is a counted-for no-op.
    if (slots_[handle.slot_].generation != handle.generation_) return false;
    recycle(handle.slot_);
    return true;
  }

  /// Runs events until the queue drains. Returns the number executed.
  std::size_t run();

  /// Runs events with time <= `until` (inclusive). Remaining events stay
  /// queued; now() advances to `until` even if the queue drained earlier.
  std::size_t run_until(SimTime until);

  /// Runs at most one event. Returns false if the queue was empty.
  bool step() {
    skip_cancelled();
    if (heap_.empty()) return false;
    const QueuedEvent event = heap_.front();
    heap_pop();
    assert(event.when >= now_);
    now_ = event.when;
    // Move the closure out before running it: the action may reschedule
    // into (and thus overwrite or reallocate) its own slot.
    Action action = std::move(slots_[event.slot].action);
    recycle(event.slot);
    ++executed_;
    action();
    return true;
  }

  /// Time of the earliest pending (non-cancelled) event, or nullopt when
  /// the queue is empty. Pops cancelled tombstones as a side effect, the
  /// same work step() would do first anyway.
  [[nodiscard]] std::optional<SimTime> next_event_time() {
    skip_cancelled();
    if (heap_.empty()) return std::nullopt;
    return heap_.front().when;
  }

  [[nodiscard]] std::size_t pending_events() const { return live_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  /// What sits in the heap: a trivially-copyable stub. The action itself
  /// stays in its slot so reheaps move 24 bytes.
  struct QueuedEvent {
    SimTime when;
    std::uint64_t sequence;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Slot {
    Action action;
    std::uint32_t generation = 1;
  };

  static bool earlier(const QueuedEvent& a, const QueuedEvent& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.sequence < b.sequence;
  }

  void heap_push(const QueuedEvent& event) {
    std::size_t i = heap_.size();
    heap_.push_back(event);
    while (i != 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(event, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = event;
  }

  void heap_pop() {
    const QueuedEvent last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t i = 0;
    while (true) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end_child = first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < end_child; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }

  /// Pops cancelled (generation-mismatched) events off the queue head.
  void skip_cancelled() {
    while (!heap_.empty() &&
           slots_[heap_.front().slot].generation != heap_.front().generation) {
      heap_pop();  // tombstone left behind by an O(1) cancel
    }
  }

  /// Retires `slot` after its event ran or was cancelled: the generation
  /// bump invalidates every outstanding handle and queue entry for it.
  void recycle(std::uint32_t slot) {
    slots_[slot].action.reset();
    ++slots_[slot].generation;
    free_slots_.push_back(slot);
    --live_;
  }

  SimTime now_{};
  std::uint64_t next_sequence_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::vector<QueuedEvent> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace sda::sim
