// Small-buffer-optimized event closure.
//
// The event loop used to store each scheduled action in a
// std::function<void()>, which heap-allocates for any capture beyond two
// pointers — one allocation per packet hop at experiment scale. InlineAction
// embeds captures up to kInlineSize bytes directly in the object (enough for
// the `[this, eid, nonce]`-shaped timers the hot paths schedule) and only
// falls back to the heap for oversized or throwing-move captures, so the
// steady-state dispatch loop allocates nothing.
//
// Call sites that must never spill (audited per-packet paths) guard
// themselves with `static_assert(sda::sim::InlineAction::fits_inline<F>)`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace sda::sim {

class InlineAction {
 public:
  /// Inline capture budget. Sized to hold the dominant schedulers: a vtable
  /// pointer plus a (this, VnEid, nonce) capture, or a moved-in
  /// std::function<void()> (32 bytes on libstdc++).
  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True when callable F runs from the inline buffer (no allocation).
  template <typename F>
  static constexpr bool fits_inline =
      sizeof(std::decay_t<F>) <= kInlineSize && alignof(std::decay_t<F>) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<std::decay_t<F>>;

  constexpr InlineAction() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineAction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineAction(F&& f) {  // NOLINT: implicit, mirrors std::function
    if constexpr (fits_inline<F>) {
      ::new (static_cast<void*>(storage_.inline_bytes)) D(std::forward<F>(f));
      manager_ = &manage_inline<D>;
    } else {
      storage_.heap = new D(std::forward<F>(f));
      manager_ = &manage_heap<D>;
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(other); }

  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;

  ~InlineAction() { reset(); }

  void operator()() { manager_(Op::Invoke, this, nullptr); }

  [[nodiscard]] explicit operator bool() const noexcept { return manager_ != nullptr; }

  /// True when the callable spilled to the heap (diagnostics / tests).
  [[nodiscard]] bool heap_allocated() const noexcept {
    return manager_ != nullptr && manager_(Op::IsHeap, nullptr, nullptr);
  }

  /// Destroys the held callable; the action becomes empty.
  void reset() noexcept {
    if (manager_ != nullptr) {
      manager_(Op::Destroy, this, nullptr);
      manager_ = nullptr;
    }
  }

 private:
  enum class Op : std::uint8_t { Invoke, MoveTo, Destroy, IsHeap };

  /// One manager per callable type handles all lifetime operations, so the
  /// object carries a single function pointer of overhead.
  using Manager = bool (*)(Op, InlineAction* self, InlineAction* target);

  template <typename D>
  static bool manage_inline(Op op, InlineAction* self, InlineAction* target) {
    switch (op) {
      case Op::Invoke:
        (*std::launder(reinterpret_cast<D*>(self->storage_.inline_bytes)))();
        return true;
      case Op::MoveTo: {
        // Relinquishes ownership: the source callable is destroyed here and
        // the caller clears the source's manager.
        D* from = std::launder(reinterpret_cast<D*>(self->storage_.inline_bytes));
        ::new (static_cast<void*>(target->storage_.inline_bytes)) D(std::move(*from));
        from->~D();
        return true;
      }
      case Op::Destroy:
        std::launder(reinterpret_cast<D*>(self->storage_.inline_bytes))->~D();
        return true;
      case Op::IsHeap:
        return false;
    }
    return false;
  }

  template <typename D>
  static bool manage_heap(Op op, InlineAction* self, InlineAction* target) {
    switch (op) {
      case Op::Invoke:
        (*static_cast<D*>(self->storage_.heap))();
        return true;
      case Op::MoveTo:
        target->storage_.heap = self->storage_.heap;  // steal, no reallocation
        self->storage_.heap = nullptr;
        return true;
      case Op::Destroy:
        delete static_cast<D*>(self->storage_.heap);
        return true;
      case Op::IsHeap:
        return true;
    }
    return false;
  }

  void move_from(InlineAction& other) noexcept {
    if (other.manager_ != nullptr) {
      other.manager_(Op::MoveTo, &other, this);  // destroys/steals other's callable
      manager_ = other.manager_;
      other.manager_ = nullptr;
    }
  }

  union Storage {
    constexpr Storage() noexcept : heap(nullptr) {}
    alignas(kInlineAlign) unsigned char inline_bytes[kInlineSize];
    void* heap;
  };

  Storage storage_;
  Manager manager_ = nullptr;
};

}  // namespace sda::sim
