// Simulated time.
//
// SimTime is a nanosecond tick count since simulation start. It is a strong
// type (not interchangeable with durations) so that "when" and "how long"
// cannot be mixed up at call sites.
#pragma once

#include <chrono>
#include <compare>
#include <cstdint>
#include <string>

namespace sda::sim {

using Duration = std::chrono::nanoseconds;

using namespace std::chrono_literals;  // NOLINT: intended for sim-time literals

/// An absolute instant on the simulation clock.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(Duration since_start) : since_start_(since_start) {}

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{}; }

  [[nodiscard]] constexpr Duration since_start() const { return since_start_; }
  [[nodiscard]] constexpr std::int64_t nanoseconds() const { return since_start_.count(); }

  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(since_start_.count()) / 1e9;
  }

  /// Hours since simulation start (useful for diurnal workload models).
  [[nodiscard]] constexpr double hours() const { return seconds() / 3600.0; }

  [[nodiscard]] std::string to_string() const;

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.since_start_ + d};
  }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime{t.since_start_ - d};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return a.since_start_ - b.since_start_;
  }
  constexpr SimTime& operator+=(Duration d) {
    since_start_ += d;
    return *this;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  Duration since_start_{0};
};

}  // namespace sda::sim
