#include "sim/time.hpp"

#include <cstdio>

namespace sda::sim {

std::string SimTime::to_string() const {
  const std::int64_t ns = nanoseconds();
  const std::int64_t total_seconds = ns / 1'000'000'000;
  const std::int64_t sub_ms = (ns % 1'000'000'000) / 1'000'000;
  const std::int64_t hours = total_seconds / 3600;
  const std::int64_t minutes = (total_seconds % 3600) / 60;
  const std::int64_t seconds = total_seconds % 60;
  char buf[48];
  const int n = std::snprintf(buf, sizeof(buf), "%lld:%02lld:%02lld.%03lld",
                              static_cast<long long>(hours), static_cast<long long>(minutes),
                              static_cast<long long>(seconds), static_cast<long long>(sub_ms));
  return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace sda::sim
