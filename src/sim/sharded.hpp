// Sharded parallel event loop: per-shard Simulators advanced by a fixed
// worker pool under conservative lookahead synchronization.
//
// The fabric is partitioned into shards (per-edge-group event lanes); each
// shard owns a plain sim::Simulator and all the state homed to it, so
// intra-window execution needs no locks. Workers advance their shards to a
// shared window horizon
//
//   horizon = (earliest pending event anywhere) + lookahead
//
// where `lookahead` is the minimum latency of any cross-shard link in the
// underlay: an event executing inside the window can only produce remote
// work at or beyond the horizon, so shards never need to peek at each
// other mid-window. Cross-shard events travel through bounded SPSC rings
// (one per ordered shard pair) and are drained at the window barrier in a
// deterministic merge order — (timestamp, producing shard, per-pair
// sequence) — so a seeded run produces byte-identical timelines regardless
// of how many workers execute it. Worker count changes wall-clock time,
// never results.
//
// Single-shard configurations skip the windowing entirely: run()/run_until()
// delegate straight to the inner Simulator and post() is a plain
// schedule_at, so `shards = 1` is the existing single-threaded hot path
// (no rings, no barriers, no threads, zero new steady-state allocations).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "sim/inline_action.hpp"
#include "sim/simulator.hpp"
#include "sim/spsc_ring.hpp"
#include "sim/time.hpp"

namespace sda::sim {

struct ShardedConfig {
  /// Event lanes. 1 = the plain single-threaded Simulator.
  std::size_t shards = 1;
  /// Worker threads driving the lanes (clamped to [1, shards]). Shard i is
  /// pinned to worker i % workers for the lifetime of the run.
  std::size_t workers = 1;
  /// Conservative window: must be at most the minimum cross-shard delivery
  /// latency (derive it with fabric::compute_shard_plan / the min
  /// cross-shard link latency). Required > 0 when shards > 1.
  Duration lookahead{0};
  /// Per ordered shard pair; rounded up to a power of two. A full ring
  /// spills to a producer-local overflow vector (still deterministic, may
  /// allocate), so this bounds steady-state memory, not correctness.
  std::size_t ring_capacity = 4096;
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardedConfig config);
  ~ShardedSimulator();
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return sims_.size(); }
  [[nodiscard]] std::size_t worker_count() const { return workers_; }
  [[nodiscard]] Duration lookahead() const { return lookahead_; }

  /// Shard-local event loop. Outside run()/run_until() any shard may be
  /// touched; during a run, only events executing on shard i (i.e. on its
  /// worker) may use shard(i).
  [[nodiscard]] Simulator& shard(std::size_t i) { return *sims_[i]; }

  /// The global fence: every shard has fully executed all events strictly
  /// necessary up to this time.
  [[nodiscard]] SimTime now() const { return fence_; }

  /// Schedules `action` on shard `to` at absolute time `when`. `from` must
  /// be the shard of the calling context (the shard whose event is
  /// executing, or any value outside a run). Local posts (from == to, or a
  /// single-shard core) schedule directly; remote posts ride the SPSC ring
  /// and are merged into the target at the next window barrier. For
  /// conservative correctness `when` must be >= the sending event's time +
  /// lookahead; a message that arrives below the target clock is clamped
  /// by the target (counted in late_posts(), which a correctly derived
  /// lookahead keeps at zero).
  void post(std::size_t from, std::size_t to, SimTime when, InlineAction action);

  /// Runs every shard until all queues and rings drain. Returns events
  /// executed by this call across all shards.
  std::uint64_t run();

  /// Runs every shard through all events with time <= `until` (inclusive);
  /// later events stay queued and every shard clock advances to `until`.
  std::uint64_t run_until(SimTime until);

  [[nodiscard]] std::uint64_t executed_events() const;
  /// Cross-shard events ever posted (ring + overflow).
  [[nodiscard]] std::uint64_t cross_posts() const;
  /// Merged events that arrived below their target shard's clock (clamped
  /// forward). Nonzero means the configured lookahead overshot the real
  /// minimum cross-shard latency.
  [[nodiscard]] std::uint64_t late_posts() const { return late_posts_; }
  /// Ring-full spills into the overflow vectors (allocation pressure, not
  /// an error).
  [[nodiscard]] std::uint64_t overflow_posts() const;
  /// Lookahead windows executed so far.
  [[nodiscard]] std::uint64_t windows() const { return windows_; }

 private:
  /// What crosses a shard boundary: the action plus enough ordering state
  /// to merge deterministically.
  struct CrossEvent {
    SimTime when;
    std::uint64_t seq = 0;  // per-(from,to) pair, assigned by the producer
    InlineAction action;
  };
  /// One per ordered (from, to) shard pair. Everything here is touched by
  /// the producing worker during a window and by the merging thread only
  /// at barriers (the join synchronizes).
  struct Mailbox {
    std::unique_ptr<SpscRing<CrossEvent>> ring;
    std::vector<CrossEvent> overflow;
    std::uint64_t seq = 0;
    std::uint64_t spilled = 0;
  };
  struct MergeItem {
    SimTime when;
    std::uint32_t from = 0;
    std::uint64_t seq = 0;
    InlineAction action;
  };

  [[nodiscard]] Mailbox& mailbox(std::size_t from, std::size_t to) {
    return mail_[from * sims_.size() + to];
  }
  [[nodiscard]] const Mailbox& mailbox(std::size_t from, std::size_t to) const {
    return mail_[from * sims_.size() + to];
  }

  std::uint64_t run_windows(std::optional<SimTime> until);
  /// Drains every mailbox into its target shard in deterministic
  /// (when, from, seq) order. Caller must hold all workers quiescent.
  void merge_all();
  [[nodiscard]] std::optional<SimTime> next_event_time_all();
  /// Runs one window on all shards: worker w advances shards w, w+W, ...
  void advance_parallel(SimTime horizon);
  void advance_range(std::size_t worker, SimTime horizon);
  void worker_loop(std::size_t worker);

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::size_t workers_ = 1;
  Duration lookahead_{0};
  std::vector<Mailbox> mail_;                      // shards x shards, row = from
  std::vector<std::vector<MergeItem>> merge_scratch_;  // per target shard
  SimTime fence_{};
  std::uint64_t windows_ = 0;
  std::uint64_t late_posts_ = 0;

  // Worker pool (spawned only when shards > 1 and workers > 1). The caller
  // of run() acts as worker 0; threads_ hold workers 1..W-1. One
  // condition-variable round trip per window: blocked waits, not spins, so
  // oversubscribed machines degrade gracefully.
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  std::size_t running_workers_ = 0;
  SimTime horizon_{};
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace sda::sim
