#include "bgp/route_reflector.hpp"

#include <algorithm>
#include <cassert>
#include "telemetry/metrics.hpp"


namespace sda::bgp {

RouteReflector::RouteReflector(sim::Simulator& simulator, ReflectorConfig config,
                               std::uint64_t seed)
    : simulator_(simulator), config_(config), rng_(seed) {}

void RouteReflector::add_client(BgpPeer& peer) {
  assert(std::none_of(peers_.begin(), peers_.end(),
                      [&](const BgpPeer* p) { return p->rloc() == peer.rloc(); }));
  peers_.push_back(&peer);
}

void RouteReflector::announce(net::Ipv4Address from_rloc, const net::VnEid& eid,
                              net::Ipv4Address next_hop) {
  ++stats_.announcements;
  pending_.push_back(PendingUpdate{eid, next_hop, from_rloc, next_version_++});
  if (!batch_scheduled_) {
    batch_scheduled_ = true;
    simulator_.schedule_after(config_.batch_interval, [this] {
      batch_scheduled_ = false;
      flush_batch();
    });
  }
}

void RouteReflector::flush_batch() {
  if (pending_.empty()) return;
  ++stats_.batches;
  std::vector<PendingUpdate> batch;
  batch.swap(pending_);

  // Shuffled peer order per batch: replication serves peers without regard
  // to who actually needs the routes.
  std::vector<BgpPeer*> order = peers_;
  rng_.shuffle(order);

  for (BgpPeer* peer : order) {
    // Routes originated by this peer are not reflected back to it.
    std::vector<const PendingUpdate*> relevant;
    relevant.reserve(batch.size());
    for (const auto& u : batch) {
      if (u.origin != peer->rloc()) relevant.push_back(&u);
    }
    if (relevant.empty()) continue;

    // Reflector output queue: serialize this peer's UPDATE after the
    // previous peers' transmissions complete.
    const sim::SimTime start = std::max(output_free_at_, simulator_.now());
    const sim::Duration send_cost =
        config_.per_peer_send + config_.per_route_marginal * relevant.size();
    const sim::SimTime sent_at = start + send_cost;
    output_free_at_ = sent_at;
    ++stats_.peer_updates_sent;

    const sim::SimTime arrival = sent_at + config_.network_delay;
    std::vector<PendingUpdate> routes;
    routes.reserve(relevant.size());
    for (const auto* u : relevant) routes.push_back(*u);
    stats_.routes_replicated += routes.size();

    simulator_.schedule_at(arrival, [this, peer, routes = std::move(routes)] {
      // Peer CPU: installs routes one after another.
      sim::SimTime free_at = std::max(peer->free_at_, simulator_.now());
      for (const auto& u : routes) {
        free_at = free_at + config_.peer_install;
        simulator_.schedule_at(free_at, [this, peer, u] {
          if (peer->rib_.install(u.eid, u.next_hop, simulator_.now(), u.version) &&
              peer->on_install_) {
            peer->on_install_(u.eid, u.next_hop);
          }
        });
      }
      peer->free_at_ = free_at;
    });
  }
}

void RouteReflector::register_metrics(telemetry::MetricsRegistry& registry,
                                      const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "announcements"),
                            [this] { return stats_.announcements; });
  registry.register_counter(telemetry::join(prefix, "batches"),
                            [this] { return stats_.batches; });
  registry.register_counter(telemetry::join(prefix, "peer_updates_sent"),
                            [this] { return stats_.peer_updates_sent; });
  registry.register_counter(telemetry::join(prefix, "routes_replicated"),
                            [this] { return stats_.routes_replicated; });
  registry.register_gauge(telemetry::join(prefix, "clients"),
                          [this] { return static_cast<double>(client_count()); });
}

}  // namespace sda::bgp
