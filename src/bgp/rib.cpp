#include "bgp/rib.hpp"

namespace sda::bgp {

bool Rib::install(const net::VnEid& eid, net::Ipv4Address next_hop, sim::SimTime now,
                  std::uint64_t version) {
  auto [it, inserted] = routes_.try_emplace(eid, RibEntry{next_hop, now, version});
  if (inserted) return true;
  if (it->second.version >= version) return false;  // stale update, ignore
  const bool changed = it->second.next_hop != next_hop;
  it->second = RibEntry{next_hop, now, version};
  return changed;
}

bool Rib::withdraw(const net::VnEid& eid) { return routes_.erase(eid) > 0; }

const RibEntry* Rib::lookup(const net::VnEid& eid) const {
  const auto it = routes_.find(eid);
  return it == routes_.end() ? nullptr : &it->second;
}

void Rib::walk(const std::function<void(const net::VnEid&, const RibEntry&)>& visit) const {
  for (const auto& [eid, entry] : routes_) visit(eid, entry);
}

}  // namespace sda::bgp
