// Routing information base for the proactive (BGP) baseline.
//
// Every peer carries the full overlay routing table — this is precisely the
// state the paper's reactive design avoids (Fig. 9 compares these FIB
// footprints), and the full-mesh update fan-out is what Fig. 11 measures.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "net/eid.hpp"
#include "sim/time.hpp"

namespace sda::bgp {

struct RibEntry {
  net::Ipv4Address next_hop;  // the edge router currently serving the EID
  sim::SimTime installed_at;
  std::uint64_t version = 0;  // monotonically increasing per-EID update counter
};

/// A per-router overlay RIB: host route per EID, proactively populated.
class Rib {
 public:
  /// Installs or replaces a host route. Returns true if this changed state.
  bool install(const net::VnEid& eid, net::Ipv4Address next_hop, sim::SimTime now,
               std::uint64_t version);

  /// Removes a route. Returns true if present.
  bool withdraw(const net::VnEid& eid);

  [[nodiscard]] const RibEntry* lookup(const net::VnEid& eid) const;

  [[nodiscard]] std::size_t size() const { return routes_.size(); }

  void walk(const std::function<void(const net::VnEid&, const RibEntry&)>& visit) const;

 private:
  std::unordered_map<net::VnEid, RibEntry> routes_;
};

}  // namespace sda::bgp
