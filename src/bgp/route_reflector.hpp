// BGP route reflector: the proactive control plane of the Fig. 11 baseline.
//
// Clients (edge routers) announce host-route changes; the reflector batches
// pending updates (MRAI-style) and replicates each batch to *every* other
// client. Replication is modeled as a single-server output queue: the
// reflector CPU serializes one UPDATE per peer per batch, so a peer's
// position in the (shuffled) fan-out order directly adds to its convergence
// delay. This is the mechanism behind the paper's observation that the
// proactive approach is ~10x slower and far more variable under massive
// mobility: updates reach edge routers "randomly, i.e. not by their need".
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "bgp/rib.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::bgp {

struct ReflectorConfig {
  /// Batch window: announcements arriving within it coalesce into one
  /// UPDATE per peer (BGP MRAI / send-delay analogue).
  sim::Duration batch_interval = std::chrono::milliseconds{10};
  /// Reflector CPU time to build+send one batched UPDATE to one peer.
  sim::Duration per_peer_send = std::chrono::microseconds{20};
  /// Marginal reflector CPU per route inside a batched UPDATE.
  sim::Duration per_route_marginal = std::chrono::microseconds{2};
  /// Control-plane network latency reflector -> peer.
  sim::Duration network_delay = std::chrono::microseconds{150};
  /// Peer CPU time to parse an UPDATE and install one route in the FIB.
  sim::Duration peer_install = std::chrono::microseconds{30};
};

/// A route-reflector client: owns a RIB and learns every update.
class BgpPeer {
 public:
  /// Fired when a route is installed into this peer's RIB.
  using InstallCallback = std::function<void(const net::VnEid&, net::Ipv4Address next_hop)>;

  explicit BgpPeer(net::Ipv4Address rloc) : rloc_(rloc) {}

  [[nodiscard]] net::Ipv4Address rloc() const { return rloc_; }
  [[nodiscard]] Rib& rib() { return rib_; }
  [[nodiscard]] const Rib& rib() const { return rib_; }

  void set_install_callback(InstallCallback cb) { on_install_ = std::move(cb); }

 private:
  friend class RouteReflector;
  net::Ipv4Address rloc_;
  Rib rib_;
  InstallCallback on_install_;
  sim::SimTime free_at_{};  // peer CPU availability for UPDATE processing
};

class RouteReflector {
 public:
  RouteReflector(sim::Simulator& simulator, ReflectorConfig config, std::uint64_t seed = 7);

  /// Registers a client. The peer must outlive the reflector.
  void add_client(BgpPeer& peer);

  /// A client announces that `eid` is now reachable via `next_hop` (its own
  /// RLOC). Queued into the current batch and reflected to all other peers.
  void announce(net::Ipv4Address from_rloc, const net::VnEid& eid, net::Ipv4Address next_hop);

  struct Stats {
    std::uint64_t announcements = 0;
    std::uint64_t batches = 0;
    std::uint64_t peer_updates_sent = 0;  // batch-to-peer transmissions
    std::uint64_t routes_replicated = 0;  // route * peer installs scheduled
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t client_count() const { return peers_.size(); }

  /// Registers pull probes for the stats fields and a client-count gauge
  /// under `prefix` (e.g. "bgp"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  struct PendingUpdate {
    net::VnEid eid;
    net::Ipv4Address next_hop;
    net::Ipv4Address origin;
    std::uint64_t version;
  };

  void flush_batch();

  sim::Simulator& simulator_;
  ReflectorConfig config_;
  sim::Rng rng_;
  std::vector<BgpPeer*> peers_;
  std::vector<PendingUpdate> pending_;
  bool batch_scheduled_ = false;
  sim::SimTime output_free_at_{};  // reflector CPU (single-server queue)
  std::uint64_t next_version_ = 1;
  Stats stats_;
};

}  // namespace sda::bgp
