// Declarative fabric configuration: the operator-facing northbound of Fig. 1.
//
// Operators declare VNs, groups, the connectivity matrix, and endpoint
// identities; everything else (addressing, route state, rule placement) is
// derived by the fabric.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dataplane/sgacl.hpp"
#include "lisp/map_server_node.hpp"
#include "net/prefix.hpp"
#include "net/types.hpp"
#include "policy/matrix.hpp"
#include "sim/time.hpp"
#include "underlay/network.hpp"

namespace sda::fabric {

/// Onboarding / control-plane timing model (paper Fig. 3 flow).
struct FabricTimings {
  /// Edge detects a newly connected endpoint on a port.
  sim::Duration detection = std::chrono::milliseconds{2};
  /// Policy-server CPU per authentication round.
  sim::Duration auth_processing = std::chrono::milliseconds{2};
  /// RADIUS/EAP round trips for a fresh authentication.
  unsigned auth_round_trips = 2;
  /// Round trips for a fast re-authentication while roaming (cached keys).
  unsigned roam_auth_round_trips = 1;
  /// Policy-server CPU to assemble a destination-group rule download.
  sim::Duration rule_download_processing = std::chrono::microseconds{500};
  /// DHCP server processing (fresh lease; renewals are half this).
  sim::Duration dhcp_processing = std::chrono::milliseconds{1};
  /// Lognormal sigma applied to the onboarding delays (radio detection and
  /// server processing are never deterministic in the field).
  double jitter_sigma = 0.15;
  /// Policy-server CPU capacity: authentication work queues on this many
  /// workers, so onboarding storms (mass arrivals, §Conclusion's "large
  /// gatherings") exhibit realistic queueing delay.
  unsigned policy_workers = 8;
};

/// Control-plane high-availability knobs (PR 4). All mechanisms default
/// off so single-server fabrics and existing experiments are unchanged.
struct HaConfig {
  /// Enable heartbeat-driven server health tracking and failover: each
  /// server group's lead edge probes its assigned routing server, and when
  /// the server is declared down the group's Map-Requests and reliable-
  /// register acks ride a live replica until fail-back. The heartbeat
  /// timer keeps the event queue non-empty — drive such simulations with
  /// run_until(), not run().
  bool failover = false;
  sim::Duration heartbeat_interval = std::chrono::milliseconds{200};
  /// A heartbeat unanswered for this long counts as a miss (must exceed
  /// the control-plane round trip to the server).
  sim::Duration heartbeat_timeout = std::chrono::milliseconds{100};
  /// Consecutive misses before the server is declared down.
  unsigned down_after_misses = 3;
  /// Consecutive answered heartbeats before a down server is trusted again
  /// (fail-back hysteresis: one lucky ack must not flap traffic back).
  unsigned up_after_acks = 4;
  /// Periodic digest exchange between the primary and each replica
  /// database, reconciling registrations a replica missed during an
  /// outage window. 0 = disabled. Runs forever once armed: run_until().
  sim::Duration anti_entropy_interval{0};
  /// How long deletion tombstones are retained for anti-entropy.
  sim::Duration tombstone_horizon = std::chrono::minutes{5};

  /// Leader election (PR 6): a bully-style election over the control legs
  /// with monotonically increasing epochs, so any live replica — not just
  /// server 0 — can assume the primary role: the anti-entropy driver, the
  /// Map-Notify acking authority, and the sequenced pub/sub feed. Epoch
  /// stamps on notifies, publishes, and digests fence out a deposed leader
  /// (split-brain). Requires >= 2 routing servers; the election timers run
  /// forever — drive such simulations with run_until().
  bool election = false;
  /// The leader asserts its term to every peer at this cadence.
  sim::Duration election_heartbeat_interval = std::chrono::milliseconds{100};
  /// Base follower watchdog: a replica that hears no leader assert for its
  /// (decorrelated-jittered, per-node) timeout opens a new term. Must be a
  /// few multiples of election_heartbeat_interval.
  sim::Duration election_timeout = std::chrono::milliseconds{400};
  /// How long a candidate waits for a lower-index live peer to object to
  /// its claim before declaring itself leader.
  sim::Duration election_claim_timeout = std::chrono::milliseconds{60};
  /// Quorum-aware elections (partition safety): a candidate must collect
  /// acks from a strict majority of the *configured* replicas before it
  /// may assert leadership. A minority partition therefore stalls
  /// leaderless (edges ride the existing retransmit/parking valves)
  /// instead of electing a split-brain leader. Requires >= 3 replicas to
  /// survive a single failure (majority of 2 is 2).
  bool election_quorum = false;
  /// Log-style catch-up: every replica database keeps a bounded sequenced
  /// ring of its recent mutations (registers, moves, tombstones). A
  /// rejoining replica whose digest lags replays just the delta from the
  /// leader's log; only when the log horizon has passed does it fall back
  /// to the full snapshot reconcile. 0 = disabled (always snapshot).
  std::size_t catchup_log_capacity = 0;
  /// Election-aware admission shedding: a just-elected leader ramps its
  /// admission limit from a quarter of the configured value back to full
  /// over this window, shedding the post-election re-registration
  /// stampede with retry-after instead of queueing it. 0 = no ramp.
  /// Only meaningful with a bounded `map_server.admission_limit`.
  sim::Duration post_election_ramp{0};

  /// BGP-style hold-down flap dampening: each up/down transition adds
  /// `dampening_penalty` to the server's penalty, which decays
  /// exponentially with `dampening_half_life`. At or above
  /// `dampening_suppress` the server is suppressed — excluded from
  /// active_server_for() and from election — until the penalty decays
  /// below `dampening_reuse`. Kills failover/failback churn from a server
  /// oscillating at the miss/ack boundary.
  bool dampening = false;
  double dampening_penalty = 1000.0;
  double dampening_suppress = 1500.0;
  double dampening_reuse = 500.0;
  sim::Duration dampening_half_life = std::chrono::seconds{4};
};

/// Per-edge-group event lanes over a worker pool (the sharded simulator
/// core). The fabric computes a ShardPlan at finalize() — edge groups
/// distributed over lanes, control nodes (borders, servers) homed to lane
/// 0, lookahead = the minimum cross-lane link latency — and exports it via
/// SdaFabric::shard_plan() and `sharding.*` gauges. LaneFabric is the
/// harness that executes a plan on a multi-worker ShardedSimulator.
struct ShardingConfig {
  /// Worker threads for lane execution (1 = single-threaded).
  std::size_t workers = 1;
  /// Event lanes; 0 = one lane per worker.
  std::size_t lanes = 0;
};

struct FabricConfig {
  FabricTimings timings;
  /// Edge map-cache capacity (0 = unbounded; small values model small FIBs).
  std::size_t edge_map_cache_capacity = 0;
  /// Enable LISP RLOC probing on edges (§5.1's explicit-probing alternative
  /// to IGP watching). The probe timer keeps the event queue non-empty
  /// while positive cache entries exist — drive such simulations with
  /// run_until(), not run().
  bool rloc_probing = false;
  sim::Duration probe_interval = std::chrono::seconds{10};
  /// §3.2.2 ablation: disable the border default route so cache misses
  /// drop packets until resolution completes (classic LISP behaviour).
  bool default_route_fallback = true;
  /// TTL requested in Map-Registers (the paper's default is 1440 minutes).
  std::uint32_t register_ttl_seconds = 1440 * 60;
  /// Control-plane hardening: retransmission with decorrelated-jitter
  /// backoff for Map-Requests, and reliable Map-Register (retransmit until
  /// the Map-Notify ack) so registrations survive lossy control paths and
  /// map-server outage windows.
  sim::Duration map_request_timeout = std::chrono::seconds{1};
  unsigned map_request_retries = 3;
  unsigned map_register_retries = 8;
  sim::Duration map_register_timeout = std::chrono::seconds{1};
  /// Periodic soft-state re-registration of attached endpoints (keeps
  /// registrations alive across MapServer::expire_registrations sweeps).
  /// 0 = disabled; real xTRs refresh well inside the TTL.
  sim::Duration register_refresh_interval{0};
  /// §5.3 ablation: enforce group policy on ingress instead of egress.
  bool enforce_on_ingress = false;
  /// Enable per-edge L2 gateways (ARP unicast conversion, §3.5).
  bool l2_gateway = true;
  /// Routing-server front-end sizing (workers, service times).
  lisp::MapServerNodeConfig map_server;
  /// Horizontal scale-out (§4.1): edges are grouped and each group sends
  /// Map-Requests to its own routing server; Map-Registers fan out to all
  /// servers so every replica stays complete.
  unsigned routing_servers = 1;
  /// Shard planning for the parallel simulator core: how edge groups are
  /// homed onto event lanes. Defaults to single-lane (no plan computed).
  ShardingConfig sharding;
  /// Control-plane high availability: heartbeat failover and replica
  /// anti-entropy (PR 4). Defaults entirely off.
  HaConfig ha;
  /// Without the border default route, park up to this many frames per
  /// unresolved EID on the edge instead of dropping them (Map-Request
  /// coalescing: one in-flight resolution, a bounded pending queue).
  /// 0 = classic drop-until-resolved.
  std::size_t pending_packet_limit = 0;
  /// TTL of negative Map-Replies (the edge's negative map-cache horizon);
  /// short TTLs re-probe unresolvable EIDs sooner after an outage heals.
  std::uint32_t negative_ttl_seconds = 60;
  /// What traffic gets while a destination group's SGACL rules have not
  /// downloaded (policy-server outage): Open = fall through to the VN
  /// default (availability), Closed = deny until rules arrive (security).
  dataplane::PolicyFailMode policy_fail_mode = dataplane::PolicyFailMode::Open;
  /// Retry cadence for rule downloads the policy server refused. 0 = never.
  sim::Duration rule_retry_interval = std::chrono::seconds{1};
  /// Underlay timing model (per-hop processing, IGP convergence, §5.1).
  underlay::UnderlayConfig underlay;
  /// Per-VN default action for micro-segmentation.
  policy::Action default_action = policy::Action::Allow;
  /// Deterministic seed for all fabric-internal randomness.
  std::uint64_t seed = 42;
  /// Debug validation: serialize every data-plane frame to real wire bytes
  /// and decode it back, asserting equality — keeps the structured packet
  /// model honest with the VXLAN-GPO wire format. Costly; tests only.
  bool validate_wire_format = false;
  /// Observability: own a telemetry::Telemetry (metrics registry + flight
  /// recorder + path tracer) and register every subsystem's counters into
  /// it at finalize(). The registry uses pull probes, so leaving this on
  /// costs nothing on the hot path — snapshots sample on demand.
  bool telemetry = true;
  /// Flight-recorder ring capacity (control-plane events kept).
  std::size_t flight_recorder_capacity = 2048;
  /// Opt-in per-packet path tracing: arm a trace for the first packet of
  /// every new (source, destination) flow sent via endpoint_send_udp, so
  /// first-packet latency decomposes hop by hop. Off by default — tracing
  /// touches the data path for armed flows only, but arming every flow has
  /// bookkeeping cost.
  bool trace_first_packets = false;
  /// Completed path traces retained (FIFO).
  std::size_t path_trace_keep = 256;
  /// Assurance plane (PR 8): thread causal trace ids through the LISP
  /// control messages and build a span tree per control-plane operation
  /// (registration, move, SMR fan-out, failover re-home), feeding the
  /// assurance.* convergence histograms. Off by default: disabled tracing
  /// costs one predictable branch per control hook and leaves the wire
  /// format byte-identical (the trace id is a trailing optional field).
  bool causal_tracing = false;
  /// Completed causal operations retained for export (FIFO).
  std::size_t causal_trace_keep = 256;
  /// Debug/chaos knob: artificial delay inserted before each SMR leaves
  /// the old edge. Used by the assurance gate to inject a demonstrable
  /// smr_fanout SLO breach; leave at 0 for faithful behaviour.
  sim::Duration smr_debug_delay{0};
};

/// Declarative VN definition.
struct VnDefinition {
  net::VnId id;
  std::string name;
  net::Ipv4Prefix dhcp_pool;
  /// When set, endpoints also get a SLAAC IPv6 identity from this /64 and
  /// register it as a third route (paper §4.1).
  std::optional<net::Ipv6Prefix> slaac_prefix;
};

struct GroupDefinition {
  net::GroupId id;
  std::string name;
};

struct RuleDefinition {
  net::VnId vn;
  net::GroupId source;
  net::GroupId destination;
  policy::Action action = policy::Action::Deny;
};

struct EndpointDefinition {
  std::string credential;
  std::string secret;
  net::MacAddress mac;
  net::VnId vn;
  net::GroupId group;
  bool l2_services = false;  // also register the MAC EID (§3.5)
  /// Access VLAN assigned to the endpoint's port (validated/stripped at
  /// ingress, re-applied at egress; never stretched across the fabric).
  std::optional<std::uint16_t> access_vlan;
};

}  // namespace sda::fabric
