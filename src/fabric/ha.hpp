// Control-plane high availability: server health tracking, failover,
// replica anti-entropy (PR 4), and the elected-primary machinery (PR 6):
// leader election, epoch fencing, and flap dampening.
//
// The paper's deployments run the routing server as a VM that can crash or
// be partitioned away (§4.1 scale-out, §5 war stories). This monitor gives
// each edge group a heartbeat on its assigned routing server: the group's
// lead edge probes the server over the real (lossy, partitionable) control
// plane, N consecutive misses declare it down, and Map-Requests plus
// reliable-register acks fail over to the next live replica. Fail-back is
// hysteretic — a recovering server must answer several consecutive
// heartbeats before traffic returns, so a flapping VM cannot thrash the
// edges.
//
// Replicas that were down (or partitioned) miss the registrations fanned
// out during the outage window. The anti-entropy loop periodically
// exchanges order-independent database digests between the leader and each
// replica and reconciles divergent pairs (newest-registration-wins,
// tombstones propagate deletions), so a healed replica converges without
// replaying the feed.
//
// Leader election (bully-with-epochs): every replica runs a follower
// watchdog with a decorrelated-jittered timeout; a replica that hears no
// leader assert opens a new term (monotonic epoch) and claims it. A live,
// unsuppressed lower-index peer objects by opening a yet-newer term, so
// the lowest eligible index wins; an unchallenged candidate becomes
// leader and takes over the Notify-acking authority, the pub/sub feed,
// and the anti-entropy driver. Leadership is sticky: a recovered
// ex-leader hears the newer term and stays a follower, so there is no
// failback churn at the leadership layer. Epoch stamps on Map-Notifies,
// publishes, and anti-entropy digests fence a deposed leader's messages
// out (split-brain).
//
// Flap dampening (BGP-style hold-down): each up/down transition charges a
// penalty that decays exponentially; above the suppress threshold the
// server is excluded from active_server_for() and from election until the
// penalty decays below reuse — a server oscillating at the miss/ack
// boundary causes at most one failover.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fabric/config.hpp"
#include "lisp/map_server.hpp"
#include "lisp/map_server_node.hpp"
#include "net/ip_address.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight_recorder.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::fabric {

class HaMonitor {
 public:
  /// Control-plane delivery (edge RLOC <-> server RLOC); heartbeats,
  /// election messages, and digest exchanges ride the same lossy underlay
  /// as every other control message, so partitions and loss fail them
  /// realistically.
  using ControlSend = std::function<void(net::Ipv4Address from, net::Ipv4Address to,
                                         std::size_t bytes, std::function<void()> action)>;
  /// Flight-recorder hook (Failover / Failback / AntiEntropy / election
  /// and dampening events).
  using EventHook = std::function<void(telemetry::EventKind kind, const std::string& node,
                                       std::string detail)>;
  /// Fired when a node wins an election: (leader index, new epoch). The
  /// fabric re-homes the pub/sub feed and advertises the epoch to edges.
  using LeaderChangedHook = std::function<void(std::size_t leader, std::uint64_t epoch)>;
  /// Catch-up trace hooks (PR 9): `begin` fires when a replica's digest is
  /// first seen lagging, `end` when its digests agree again — the fabric
  /// wires these to a CausalTracer Catchup operation feeding the
  /// assurance.catchup_convergence_us histogram.
  using CatchupBeginHook = std::function<void(std::size_t replica)>;
  using CatchupEndHook = std::function<void(std::size_t replica, bool via_snapshot)>;

  /// Sentinel for "no leader": returned by leader() while the cluster is
  /// genuinely leaderless (mid-election, or quorum-stalled).
  static constexpr std::size_t kNoLeader = static_cast<std::size_t>(-1);

  /// `servers[i]` is routing server i's queueing front end and
  /// `databases[i]` the MapServer behind it (index 0 = the initial
  /// leader). `seed` derives the per-node election-timeout jitter.
  HaMonitor(sim::Simulator& simulator, HaConfig config,
            std::vector<lisp::MapServerNode*> servers,
            std::vector<lisp::MapServer*> databases, ControlSend control_send,
            EventHook event_hook, std::uint64_t seed = 0x5DA);

  /// Sets where server `i`'s heartbeats originate (normally the lead edge
  /// of the group assigned to it). Defaults to the server's own RLOC.
  void set_probe_source(std::size_t server, net::Ipv4Address edge_rloc);

  void set_leader_changed(LeaderChangedHook hook) { leader_changed_ = std::move(hook); }
  void set_catchup_hooks(CatchupBeginHook begin, CatchupEndHook end) {
    catchup_begin_ = std::move(begin);
    catchup_end_ = std::move(end);
  }

  /// Arms the heartbeat, anti-entropy, and election timers. All are
  /// perpetual — drive the simulation with run_until(), not run().
  void start();

  [[nodiscard]] bool failover_enabled() const { return config_.failover; }
  [[nodiscard]] bool election_enabled() const {
    return config_.election && servers_.size() > 1;
  }
  [[nodiscard]] bool dampening_enabled() const { return config_.dampening; }
  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  [[nodiscard]] bool server_up(std::size_t i) const { return state_[i].up; }

  /// The server index a group homed on `home` should currently use: the
  /// home server while it is believed up and unsuppressed, otherwise the
  /// next live unsuppressed replica (wrapping). With every server down —
  /// or failover disabled — the home server is returned (keep trying;
  /// retransmission covers the gap).
  [[nodiscard]] std::size_t active_server_for(std::size_t home) const;

  // --- Election introspection ---------------------------------------------

  /// Cluster-consensus view: the leader believed by the highest-epoch
  /// *online* node that believes any leader exists (initially 0), or
  /// kNoLeader while the cluster is leaderless — a deposed/crashed
  /// leader's stale belief does not fill the gap, and a quorum-stalled
  /// minority candidate's (leaderless) higher term does not mask a
  /// still-working majority leader. Meaningful only with election enabled.
  [[nodiscard]] std::size_t leader() const;
  /// False while leaderless (the ha.election.leader gauge reports -1).
  [[nodiscard]] bool has_leader() const { return leader() != kNoLeader; }
  /// Whether elections require a strict majority of configured replicas.
  [[nodiscard]] bool quorum_enabled() const {
    return election_enabled() && config_.election_quorum;
  }
  /// True while some candidacy has stalled on a failed quorum and no
  /// quorate leader has been elected since (the ha.election.quorum gauge).
  [[nodiscard]] bool quorum_lost() const { return quorum_lost_; }
  /// The highest election epoch any node has opened (1 before the first
  /// election; 0 when election is disabled).
  [[nodiscard]] std::uint64_t epoch() const;
  /// The highest epoch at which some node actually holds a leader belief —
  /// unlike epoch(), a quorum-stalled candidacy's inflated term does not
  /// count. This is the fence for "stale leadership": an ack or publish
  /// stamped below it came from a deposed leader, whereas one merely below
  /// a failed candidacy's term is still the standing leader's word.
  [[nodiscard]] std::uint64_t leadership_epoch() const;
  /// Node i's local term — stamped on its acks, publishes, and digests.
  [[nodiscard]] std::uint64_t node_epoch(std::size_t i) const {
    return election_enabled() ? election_[i].epoch : 0;
  }
  /// Whether node i currently believes it is the leader (split-brain
  /// faithful: a partitioned ex-leader keeps believing until it observes
  /// the newer term).
  [[nodiscard]] bool node_believes_leader(std::size_t i) const {
    return election_enabled() ? election_[i].leader == i : i == 0;
  }

  // --- Dampening introspection --------------------------------------------

  /// Whether server i is currently held down by flap dampening.
  [[nodiscard]] bool suppressed(std::size_t i) const { return state_[i].suppressed; }
  /// Server i's current (decayed) dampening penalty.
  [[nodiscard]] double penalty(std::size_t i) const;

  struct Counters {
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t heartbeat_misses = 0;
    std::uint64_t failovers = 0;   // servers declared down
    std::uint64_t failbacks = 0;   // servers restored after hysteresis
    std::uint64_t anti_entropy_rounds = 0;
    std::uint64_t digest_mismatches = 0;
    std::uint64_t anti_entropy_repairs = 0;  // entries pushed/pulled/removed
    std::uint64_t elections_started = 0;     // terms opened by a watchdog
    std::uint64_t leaders_elected = 0;       // unchallenged claims won
    std::uint64_t epoch_rejections = 0;      // stale-epoch messages fenced
    std::uint64_t suppressions = 0;          // dampening hold-downs entered
    // Quorum elections (PR 9).
    std::uint64_t quorum_stalls = 0;     // candidacies that failed majority
    std::uint64_t minority_leaders = 0;  // breach audit: wins without quorum (must stay 0)
    // Log-style catch-up (PR 9).
    std::uint64_t catchup_replays = 0;            // delta replays from the leader log
    std::uint64_t catchup_entries_replayed = 0;   // log entries shipped by replays
    std::uint64_t catchup_snapshot_fallbacks = 0; // log enabled but horizon passed
    std::uint64_t catchup_replay_bytes = 0;       // control bytes of replay legs
    std::uint64_t snapshot_bytes = 0;             // control bytes of table-exchange legs
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Entries repaired by the most recent anti-entropy round — the
  /// replica-divergence convergence metric (0 once replicas agree).
  [[nodiscard]] std::uint64_t last_divergence() const { return last_divergence_; }

  /// Pull probes under `prefix` (e.g. "ha"): counters above plus
  /// servers_up / replica_divergence gauges and the election/dampening
  /// gauges (ha.election.term, ha.election.leader, ha.dampening.suppressed).
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  struct ServerState {
    net::Ipv4Address probe_source;
    bool up = true;
    unsigned misses = 0;      // consecutive unanswered heartbeats while up
    unsigned ack_streak = 0;  // consecutive answered heartbeats while down
    // Flap dampening (lazily decayed exponential penalty).
    double penalty = 0.0;
    sim::SimTime penalty_at{};
    bool suppressed = false;
  };

  struct ElectionState {
    std::uint64_t epoch = 1;   // highest term this node has seen
    std::size_t leader = 0;    // who this node believes leads (kNoLeader = none)
    bool candidate = false;    // claim outstanding
    std::uint64_t votes = 0;   // quorum acks collected for the open claim
    sim::SimTime last_assert{};       // when a leader assert was last heard
    sim::Duration watchdog_timeout{}; // current jittered timeout
  };

  /// Per-replica catch-up bookkeeping held by the anti-entropy driver.
  struct SyncState {
    std::size_t driver = kNoLeader;  // whose log applied_seq refers to
    std::uint64_t applied_seq = 0;   // driver-log seq the replica has applied
    std::uint64_t generation = 0;    // replica DB generation when last noted
    bool open = false;               // a catch-up operation is in progress
    bool via_snapshot = false;       // last repair path taken
  };

  void heartbeat(std::size_t server);
  void heartbeat_verdict(std::size_t server, bool answered);
  void anti_entropy_round();
  void anti_entropy_with(std::size_t driver, std::size_t replica);

  // Election machinery (all node-local state; messages ride control_send_).
  void arm_watchdog(std::size_t node);
  void assert_tick();
  void start_election(std::size_t node);
  void receive_claim(std::size_t node, std::size_t from, std::uint64_t claim_epoch);
  void receive_vote(std::size_t candidate, std::size_t from, std::uint64_t claim_epoch);
  void receive_assert(std::size_t node, std::size_t from, std::uint64_t assert_epoch,
                      std::size_t leader_hint);
  void become_leader(std::size_t node);
  void send_assert(std::size_t from, std::size_t to);
  /// Strict majority of *configured* replicas, counting the candidate.
  [[nodiscard]] bool quorum_reached(const ElectionState& el) const {
    return el.votes + 1 > servers_.size() / 2;
  }

  // Catch-up repair legs and trace-op bookkeeping.
  void note_synced(std::size_t driver, std::size_t replica);
  void open_catchup(std::size_t replica);
  void close_catchup(std::size_t replica);

  // Dampening: charge a transition / decay and release.
  void charge_flap(std::size_t server);
  void refresh_dampening(std::size_t server);
  [[nodiscard]] double decayed_penalty(const ServerState& st) const;

  void emit(telemetry::EventKind kind, std::size_t server, std::string detail);

  sim::Simulator& simulator_;
  HaConfig config_;
  std::vector<lisp::MapServerNode*> servers_;
  std::vector<lisp::MapServer*> databases_;
  ControlSend control_send_;
  EventHook event_hook_;
  LeaderChangedHook leader_changed_;
  CatchupBeginHook catchup_begin_;
  CatchupEndHook catchup_end_;
  std::vector<ServerState> state_;
  std::vector<ElectionState> election_;
  std::vector<SyncState> sync_;
  std::vector<sim::Rng> node_rng_;  // per-node timeout decorrelation
  Counters counters_;
  std::uint64_t last_divergence_ = 0;
  bool quorum_lost_ = false;
};

}  // namespace sda::fabric
