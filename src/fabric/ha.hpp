// Control-plane high availability: server health tracking, failover, and
// replica anti-entropy (PR 4).
//
// The paper's deployments run the routing server as a VM that can crash or
// be partitioned away (§4.1 scale-out, §5 war stories). This monitor gives
// each edge group a heartbeat on its assigned routing server: the group's
// lead edge probes the server over the real (lossy, partitionable) control
// plane, N consecutive misses declare it down, and Map-Requests plus
// reliable-register acks fail over to the next live replica. Fail-back is
// hysteretic — a recovering server must answer several consecutive
// heartbeats before traffic returns, so a flapping VM cannot thrash the
// edges.
//
// Replicas that were down (or partitioned) miss the registrations fanned
// out during the outage window. The anti-entropy loop periodically
// exchanges order-independent database digests between the primary and
// each replica and reconciles divergent pairs (newest-registration-wins,
// tombstones propagate deletions), so a healed replica converges without
// replaying the feed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fabric/config.hpp"
#include "lisp/map_server.hpp"
#include "lisp/map_server_node.hpp"
#include "net/ip_address.hpp"
#include "sim/simulator.hpp"
#include "telemetry/flight_recorder.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::fabric {

class HaMonitor {
 public:
  /// Control-plane delivery (edge RLOC <-> server RLOC); heartbeats and
  /// digest exchanges ride the same lossy underlay as every other control
  /// message, so partitions and loss fail them realistically.
  using ControlSend = std::function<void(net::Ipv4Address from, net::Ipv4Address to,
                                         std::size_t bytes, std::function<void()> action)>;
  /// Flight-recorder hook (Failover / Failback / AntiEntropy events).
  using EventHook = std::function<void(telemetry::EventKind kind, const std::string& node,
                                       std::string detail)>;

  /// `servers[i]` is routing server i's queueing front end and
  /// `databases[i]` the MapServer behind it (index 0 = the primary).
  HaMonitor(sim::Simulator& simulator, HaConfig config,
            std::vector<lisp::MapServerNode*> servers,
            std::vector<lisp::MapServer*> databases, ControlSend control_send,
            EventHook event_hook);

  /// Sets where server `i`'s heartbeats originate (normally the lead edge
  /// of the group assigned to it). Defaults to the server's own RLOC.
  void set_probe_source(std::size_t server, net::Ipv4Address edge_rloc);

  /// Arms the heartbeat and anti-entropy timers. Both are perpetual —
  /// drive the simulation with run_until(), not run().
  void start();

  [[nodiscard]] bool failover_enabled() const { return config_.failover; }
  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  [[nodiscard]] bool server_up(std::size_t i) const { return state_[i].up; }

  /// The server index a group homed on `home` should currently use: the
  /// home server while it is believed up, otherwise the next live replica
  /// (wrapping). With every server down — or failover disabled — the home
  /// server is returned (keep trying; retransmission covers the gap).
  [[nodiscard]] std::size_t active_server_for(std::size_t home) const;

  struct Counters {
    std::uint64_t heartbeats_sent = 0;
    std::uint64_t heartbeat_misses = 0;
    std::uint64_t failovers = 0;   // servers declared down
    std::uint64_t failbacks = 0;   // servers restored after hysteresis
    std::uint64_t anti_entropy_rounds = 0;
    std::uint64_t digest_mismatches = 0;
    std::uint64_t anti_entropy_repairs = 0;  // entries pushed/pulled/removed
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Entries repaired by the most recent anti-entropy round — the
  /// replica-divergence convergence metric (0 once replicas agree).
  [[nodiscard]] std::uint64_t last_divergence() const { return last_divergence_; }

  /// Pull probes under `prefix` (e.g. "ha"): counters above plus a
  /// servers_up gauge and the last-round divergence gauge.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  struct ServerState {
    net::Ipv4Address probe_source;
    bool up = true;
    unsigned misses = 0;      // consecutive unanswered heartbeats while up
    unsigned ack_streak = 0;  // consecutive answered heartbeats while down
  };

  void heartbeat(std::size_t server);
  void heartbeat_verdict(std::size_t server, bool answered);
  void anti_entropy_round();
  void emit(telemetry::EventKind kind, std::size_t server, std::string detail);

  sim::Simulator& simulator_;
  HaConfig config_;
  std::vector<lisp::MapServerNode*> servers_;
  std::vector<lisp::MapServer*> databases_;
  ControlSend control_send_;
  EventHook event_hook_;
  std::vector<ServerState> state_;
  Counters counters_;
  std::uint64_t last_divergence_ = 0;
};

}  // namespace sda::fabric
