// Operational introspection: renders a human-readable state report of a
// fabric (what `show fabric` would print on a real controller).
#pragma once

#include <string>

#include "fabric/fabric.hpp"

namespace sda::fabric {

struct InspectOptions {
  bool include_routers = true;    // per-router FIB/VRF/counter lines
  bool include_mappings = false;  // full routing-server dump (can be large)
  bool include_policy = true;     // per-VN rule counts
  bool include_telemetry = false;  // metrics-registry snapshot + flight-recorder tail
  std::size_t telemetry_events = 20;  // recorder tail length when included
  bool include_assurance = false;  // invariant + SLO verdicts (assurance plane)
};

/// A multi-line text report of the fabric's current state: routers with
/// endpoint/FIB/drop counters, routing-server occupancy, policy-server
/// statistics, and (optionally) the full mapping table.
[[nodiscard]] std::string inspect(SdaFabric& fabric, const InspectOptions& options = {});

}  // namespace sda::fabric
