#include "fabric/inspect.hpp"

#include "stats/table.hpp"

namespace sda::fabric {

std::string inspect(SdaFabric& fabric, const InspectOptions& options) {
  std::string out;
  out += "=== SDA fabric @ " + fabric.simulator().now().to_string() + " ===\n";

  if (options.include_routers) {
    stats::Table borders{{"border", "synced FIB", "hairpinned", "ext out", "ext in",
                          "policy drops", "no-route drops"}};
    for (const auto& name : fabric.border_names()) {
      auto& border = fabric.border(name);
      const auto& c = border.counters();
      borders.add_row({name, stats::Table::num(border.fib_size()),
                       stats::Table::num(std::size_t{c.hairpinned}),
                       stats::Table::num(std::size_t{c.external_out}),
                       stats::Table::num(std::size_t{c.external_in}),
                       stats::Table::num(std::size_t{c.policy_drops}),
                       stats::Table::num(std::size_t{c.no_route_drops})});
    }
    out += borders.render();
    out += "\n";

    stats::Table edges{{"edge", "endpoints", "map-cache", "VRF", "SGACL rules",
                        "encap", "default-routed", "policy drops", "SMR tx/rx"}};
    for (const auto& name : fabric.edge_names()) {
      auto& edge = fabric.edge(name);
      const auto& c = edge.counters();
      edges.add_row({name, stats::Table::num(edge.endpoint_count()),
                     stats::Table::num(edge.map_cache().size()),
                     stats::Table::num(edge.vrf().size()),
                     stats::Table::num(edge.sgacl().rule_count()),
                     stats::Table::num(std::size_t{c.encapsulated}),
                     stats::Table::num(std::size_t{c.default_routed}),
                     stats::Table::num(std::size_t{c.policy_drops}),
                     stats::Table::num(std::size_t{c.smr_sent}) + "/" +
                         stats::Table::num(std::size_t{c.smr_received})});
    }
    out += edges.render();
    out += "\n";
  }

  const auto& ms = fabric.map_server();
  out += "routing server: " + std::to_string(ms.mapping_count()) + " endpoint mappings (" +
         std::to_string(ms.total_entries()) + " entries incl. prefixes), " +
         std::to_string(ms.stats().requests) + " requests (" +
         std::to_string(ms.stats().negative_replies) + " negative), " +
         std::to_string(ms.stats().registers) + " registers, " +
         std::to_string(ms.stats().moves) + " moves";
  if (fabric.routing_server_count() > 1) {
    out += " [+" + std::to_string(fabric.routing_server_count() - 1) + " replicas]";
  }
  out += "\n";

  if (const HaMonitor* ha = fabric.ha_monitor(); ha != nullptr && ha->election_enabled()) {
    const std::size_t leader = ha->leader();
    out += "control plane: leader ";
    out += leader == HaMonitor::kNoLeader ? std::string{"none"} : std::to_string(leader);
    out += ", term " + std::to_string(ha->epoch());
    if (ha->quorum_enabled()) {
      out += ha->quorum_lost() ? ", quorum LOST" : ", quorum held";
      out += " (" + std::to_string(ha->counters().quorum_stalls) + " stalls)";
    }
    out += ", " + std::to_string(ha->counters().leaders_elected) + " elections won, " +
           std::to_string(ha->counters().epoch_rejections) + " stale terms fenced\n";
  }

  if (const ShardPlan& plan = fabric.shard_plan(); plan.shards > 1) {
    out += "sharding: " + std::to_string(plan.shards) + " lanes over " +
           std::to_string(fabric.config().sharding.workers) + " workers, " +
           std::to_string(plan.cross_links) + " cross-lane links, lookahead " +
           std::to_string(plan.lookahead.count() / 1000) + " us";
    out += " (lane sizes:";
    for (const auto& members : plan.members) {
      out += " " + std::to_string(members.size());
    }
    out += ")\n";
  }

  if (options.include_policy) {
    const auto& ps = fabric.policy_server().stats();
    out += "policy server: " + std::to_string(fabric.policy_server().endpoint_count()) +
           " endpoints, " + std::to_string(ps.auth_accepts) + " accepts / " +
           std::to_string(ps.auth_rejects) + " rejects, " +
           std::to_string(ps.rule_downloads) + " rule downloads, " +
           std::to_string(ps.rule_push_messages) + " rule pushes, " +
           std::to_string(ps.endpoint_change_signals) + " group-change signals\n";
  }

  if (options.include_mappings) {
    out += "mappings:\n";
    fabric.map_server().walk([&out](const net::VnEid& eid, const lisp::MappingRecord& record) {
      out += "  " + eid.to_string() + " -> " + record.primary_rloc().to_string();
      if (!record.group.is_unknown()) {
        out += ' ';
        out += record.group.to_string();
      }
      out += "\n";
    });
  }

  if (options.include_telemetry) {
    const telemetry::Snapshot snap = fabric.telemetry().metrics.snapshot();
    out += "telemetry: ";
    out += std::to_string(snap.counters.size());
    out += " counters, ";
    out += std::to_string(snap.gauges.size());
    out += " gauges, ";
    out += std::to_string(snap.histograms.size());
    out += " histograms\n";
    for (const auto& [name, value] : snap.counters) {
      if (value == 0) continue;  // idle counters are noise in a text report
      out += "  ";
      out += name;
      out += " = ";
      out += std::to_string(value);
      out += "\n";
    }
    for (const auto& [name, hist] : snap.histograms) {
      if (hist.total == 0) continue;
      out += "  ";
      out += name;
      out += ": n=";
      out += std::to_string(hist.total);
      out += " mean=";
      out += std::to_string(hist.mean());
      out += " p95=";
      out += std::to_string(hist.quantile(0.95));
      out += "\n";
    }
    const auto& recorder = fabric.telemetry().recorder;
    out += "flight recorder: ";
    out += std::to_string(recorder.recorded());
    out += " events (";
    out += std::to_string(recorder.overwritten());
    out += " overwritten), tail:\n";
    for (const auto& event : recorder.tail(options.telemetry_events)) {
      out += "  ";
      out += event.to_string();
      out += "\n";
    }
  }

  if (options.include_assurance) {
    telemetry::AssuranceEngine& assurance = fabric.telemetry().assurance;
    const auto verdicts = assurance.evaluate(fabric.telemetry().metrics.snapshot());
    out += "assurance: ";
    out += std::to_string(assurance.invariant_count());
    out += " invariants, ";
    out += std::to_string(assurance.slo_count());
    out += " SLOs, ";
    out += telemetry::AssuranceEngine::all_pass(verdicts) ? "all PASS" : "FAILURES";
    out += "\n";
    for (const auto& v : verdicts) {
      out += "  [";
      out += v.pass ? "PASS" : "FAIL";
      out += "] ";
      out += v.name;
      if (!v.detail.empty()) {
        out += ": ";
        out += v.detail;
      }
      out += "\n";
    }
    out += "causal traces: ";
    out += std::to_string(fabric.telemetry().causal.completed_count());
    out += " completed, ";
    out += std::to_string(fabric.telemetry().causal.open_count());
    out += " open, ";
    out += std::to_string(fabric.telemetry().causal.abandoned_count());
    out += " abandoned\n";
  }
  return out;
}

}  // namespace sda::fabric
