// SdaFabric: the public facade tying every subsystem together.
//
// Owns the underlay, the routing server (LISP map server + queueing node),
// the policy server, the DHCP server, the edge/border routers, and the L2
// gateways, and wires the hooks between them:
//
//   endpoint --(detect/auth/dhcp/register: Fig. 3)--> edge --(VXLAN-GPO)-->
//   underlay --> egress edge --(VRF + SGACL: Fig. 4)--> endpoint
//
//   mobility: re-register -> Map-Notify old edge (Fig. 5) + pub/sub to the
//   border; stale senders refreshed by data-triggered SMR (Fig. 6).
//
// All interactions run on the shared discrete-event simulator with modeled
// underlay latencies, so every experiment in the paper's evaluation can be
// replayed against this one object.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dataplane/border_router.hpp"
#include "dataplane/edge_router.hpp"
#include "fabric/config.hpp"
#include "fabric/ha.hpp"
#include "fabric/sharding.hpp"
#include "l2/dhcp.hpp"
#include "l2/l2_gateway.hpp"
#include "l2/service_discovery.hpp"
#include "lisp/map_server.hpp"
#include "lisp/map_server_node.hpp"
#include "policy/policy_server.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "underlay/network.hpp"
#include "underlay/topology.hpp"

namespace sda::fabric {

/// Result handed to the onboarding-complete callback.
struct OnboardResult {
  bool success = false;
  std::string credential;
  net::MacAddress mac;
  net::Ipv4Address ip;                   // assigned overlay address
  std::optional<net::Ipv6Address> ipv6;  // SLAAC identity, if the VN has one
  net::VnId vn;
  net::GroupId group;
  std::string edge;        // edge router name
  sim::Duration elapsed{};  // detection -> location registered
};

class SdaFabric {
 public:
  using OnboardCallback = std::function<void(const OnboardResult&)>;
  /// (endpoint, frame, time) — every successful local delivery fabric-wide.
  using DeliveryListener = std::function<void(const dataplane::AttachedEndpoint&,
                                              const net::OverlayFrame&, sim::SimTime)>;
  /// (eid, record) — border installed a mapping via pub/sub (nullptr =
  /// withdrawal). Used by the mobility experiment to timestamp convergence.
  using BorderSyncListener =
      std::function<void(const std::string& border, const net::VnEid&,
                         const lisp::MappingRecord*)>;

  explicit SdaFabric(sim::Simulator& simulator, FabricConfig config = {});
  ~SdaFabric();
  SdaFabric(const SdaFabric&) = delete;
  SdaFabric& operator=(const SdaFabric&) = delete;

  // --- Topology construction (call before finalize()) ---------------------

  /// Adds a border router; the first border hosts the routing server and
  /// receives the fabric default route.
  void add_border(const std::string& name);
  void add_edge(const std::string& name);
  /// Adds a pure underlay router (no fabric function).
  void add_underlay_node(const std::string& name);
  /// Connects two named nodes with a link.
  void link(const std::string& a, const std::string& b,
            sim::Duration latency = std::chrono::microseconds{50}, std::uint32_t cost = 1);

  /// Wires every hook; must be called once after topology construction and
  /// before any endpoint activity.
  void finalize();

  // --- Declarative configuration ------------------------------------------

  void define_vn(const VnDefinition& vn);
  void define_group(const GroupDefinition& group);
  void set_rule(const RuleDefinition& rule);
  void provision_endpoint(const EndpointDefinition& endpoint);

  /// Declares an external prefix reachable via the borders (Internet/DC).
  /// `ttl_seconds` bounds how long edges cache resolutions under it —
  /// external mappings typically use shorter TTLs than endpoint routes.
  void add_external_prefix(net::VnId vn, const net::Ipv4Prefix& prefix,
                           net::GroupId group = net::GroupId::unknown(),
                           std::uint32_t ttl_seconds = 4 * 3600);
  void add_external_prefix(net::VnId vn, const net::Ipv6Prefix& prefix,
                           net::GroupId group = net::GroupId::unknown(),
                           std::uint32_t ttl_seconds = 4 * 3600);

  // --- Endpoint runtime -----------------------------------------------------

  /// Plugs a provisioned endpoint into an edge port and runs the Fig. 3
  /// onboarding flow. The callback fires when the location is registered.
  void connect_endpoint(const std::string& credential, const std::string& edge,
                        dataplane::PortId port, OnboardCallback callback = {});

  /// Roams a connected endpoint to another edge (Fig. 5): detach, fast
  /// re-auth, re-register; Map-Notify flows to the previous edge.
  void roam_endpoint(const net::MacAddress& mac, const std::string& new_edge,
                     dataplane::PortId port, OnboardCallback callback = {});

  /// Cleanly disconnects an endpoint (deregisters its mapping).
  void disconnect_endpoint(const net::MacAddress& mac);

  /// Sends a UDP datagram from a connected endpoint. Returns false if the
  /// endpoint is not attached anywhere.
  bool endpoint_send_udp(const net::MacAddress& mac, net::Ipv4Address destination,
                         std::uint16_t dport, std::uint16_t payload_bytes);

  /// Sends an IPv6 UDP datagram from a connected endpoint (requires the
  /// VN to have a SLAAC prefix).
  bool endpoint_send_udp6(const net::MacAddress& mac, const net::Ipv6Address& destination,
                          std::uint16_t dport, std::uint16_t payload_bytes);

  /// Sends a broadcast ARP request from a connected endpoint.
  bool endpoint_send_arp(const net::MacAddress& mac, net::Ipv4Address target);

  // --- Service discovery (§3.5: broadcast-free Bonjour) --------------------

  /// Advertises a service from a connected endpoint; the registry entry is
  /// withdrawn automatically when the endpoint disconnects. Returns false
  /// if the endpoint is not attached.
  bool advertise_service(const net::MacAddress& mac, const std::string& type,
                         const std::string& name, std::uint16_t port);

  /// A connected endpoint "broadcasts" an mDNS-style query; the edge
  /// absorbs it and the central registry answers as unicast after the
  /// control-plane round trip. Returns false if the endpoint is detached.
  using ServiceQueryCallback = std::function<void(std::vector<l2::ServiceInstance>)>;
  bool endpoint_query_service(const net::MacAddress& mac, const std::string& type,
                              ServiceQueryCallback callback);

  [[nodiscard]] l2::ServiceRegistry& service_registry() { return services_; }

  /// Injects a packet from an external network toward an overlay endpoint
  /// through a named border.
  void external_send_udp(const std::string& border, net::VnId vn, net::Ipv4Address source,
                         net::Ipv4Address destination, std::uint16_t payload_bytes,
                         net::GroupId source_group = net::GroupId::unknown());

  // --- Operational events ---------------------------------------------------

  /// Takes a link down / up; IGP reconvergence and §5.1 fallback follow.
  void set_link_state(const std::string& a, const std::string& b, bool up);

  /// Reboots an edge (§5.2): state lost, node down for `downtime`, then its
  /// endpoints re-onboard automatically.
  void reboot_edge(const std::string& name, sim::Duration downtime);

  /// Moves an endpoint to a new group at the policy server; the hosting
  /// edge re-tags and re-registers it (§5.3 freshness, §5.4 strategy A).
  bool reassign_endpoint_group(const std::string& credential, net::GroupId new_group);

  /// Pub/sub session control for a border's feed (fault injection or
  /// maintenance). While disconnected, published updates are silently
  /// dropped; reconnecting triggers the snapshot-resync protocol so the
  /// border converges back to the exact server state.
  void set_border_feed_connected(const std::string& border, bool connected);
  [[nodiscard]] bool border_feed_connected(const std::string& border) const;
  /// Feed updates lost while the border's feed was disconnected.
  [[nodiscard]] std::uint64_t border_publishes_dropped(const std::string& border) const;
  /// Current feed position (sequence number of the last publish).
  [[nodiscard]] std::uint64_t publish_seq() const { return publish_seq_; }
  /// Audit counter for the split-brain fence: Map-Notify acks an edge
  /// accepted although a newer election term was already established
  /// cluster-wide. Must stay 0 — a nonzero value means a deposed leader's
  /// ack slipped past the epoch fence. Used by the failover drill.
  [[nodiscard]] std::uint64_t stale_epoch_acks_accepted() const {
    return stale_acks_accepted_;
  }
  /// Runs the snapshot pull for a border (normally triggered by the border
  /// itself on gap detection or by a feed reconnect).
  void resync_border(const std::string& border);

  /// Updates a matrix rule; pushes to hosting edges (§5.4 strategy B).
  void update_rule(const RuleDefinition& rule);

  // --- Introspection ---------------------------------------------------------

  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] underlay::Topology& topology() { return topology_; }
  [[nodiscard]] underlay::UnderlayNetwork& underlay() { return *underlay_; }
  [[nodiscard]] lisp::MapServer& map_server() { return map_server_; }
  [[nodiscard]] lisp::MapServerNode& map_server_node() { return *server_nodes_.front(); }

  /// Horizontal scale-out introspection (§4.1).
  [[nodiscard]] std::size_t routing_server_count() const { return server_nodes_.size(); }
  [[nodiscard]] lisp::MapServerNode& map_server_node(std::size_t i) { return *server_nodes_[i]; }
  /// The replica database behind server `i` (0 = the primary map_server()).
  [[nodiscard]] const lisp::MapServer& map_server_replica(std::size_t i) const {
    return i == 0 ? map_server_ : *replica_dbs_[i - 1];
  }
  /// The HA monitor (nullptr unless config().ha enables failover or
  /// anti-entropy): server health, failover target selection, replica
  /// reconciliation counters.
  [[nodiscard]] HaMonitor* ha_monitor() { return ha_.get(); }
  [[nodiscard]] const HaMonitor* ha_monitor() const { return ha_.get(); }
  [[nodiscard]] policy::PolicyServer& policy_server() { return policy_server_; }
  [[nodiscard]] l2::DhcpServer& dhcp_server() { return dhcp_; }

  [[nodiscard]] dataplane::EdgeRouter& edge(const std::string& name);
  [[nodiscard]] dataplane::BorderRouter& border(const std::string& name);
  [[nodiscard]] std::vector<std::string> edge_names() const;
  [[nodiscard]] std::vector<std::string> border_names() const;

  /// Where an endpoint is currently attached (edge name), if anywhere.
  [[nodiscard]] std::optional<std::string> location_of(const net::MacAddress& mac) const;

  void set_delivery_listener(DeliveryListener listener) {
    delivery_listener_ = std::move(listener);
  }
  void set_border_sync_listener(BorderSyncListener listener) {
    border_sync_listener_ = std::move(listener);
  }

  [[nodiscard]] const FabricConfig& config() const { return config_; }

  /// The shard plan computed at finalize() from `config().sharding`: edge
  /// groups distributed over event lanes, control nodes (borders hosting
  /// the routing/policy servers) homed to lane 0, and the conservative
  /// lookahead bound (minimum cross-lane link latency). A default
  /// single-lane config yields a trivial one-shard plan. The plan is the
  /// contract between this fabric's layout and the sharded simulator core
  /// (sim::ShardedSimulator / fabric::LaneFabric execute such plans).
  [[nodiscard]] const ShardPlan& shard_plan() const { return shard_plan_; }

  // --- Telemetry (PR 3 observability) --------------------------------------

  /// The fabric-wide telemetry bundle. The metrics registry is populated at
  /// finalize() with every subsystem's counters under hierarchical names
  /// ("edge[i].map_cache.miss", "map_server.requests", ...); the flight
  /// recorder collects control-plane events; the path tracer holds armed /
  /// completed per-packet traces.
  [[nodiscard]] telemetry::Telemetry& telemetry() { return telemetry_; }
  [[nodiscard]] const telemetry::Telemetry& telemetry() const { return telemetry_; }
  [[nodiscard]] telemetry::MetricsRegistry& metrics() { return telemetry_.metrics; }
  [[nodiscard]] telemetry::FlightRecorder& flight_recorder() { return telemetry_.recorder; }
  [[nodiscard]] telemetry::PathTracer& path_tracer() { return telemetry_.tracer; }

  /// Arms a one-shot path trace for the next packet of (source ->
  /// destination EID) in `vn`; completed traces land in path_tracer().
  /// Returns the trace id.
  std::uint64_t trace_flow(const net::VnEid& source, const net::VnEid& destination);

 private:
  struct EndpointState {
    EndpointDefinition definition;
    std::string edge;  // empty = not attached
    dataplane::PortId port = 0;
    bool onboarding = false;
  };

  void wire_edge(dataplane::EdgeRouter& edge);
  void wire_border(dataplane::BorderRouter& border);

  /// Registers every subsystem's counters into the metrics registry and
  /// attaches tracers; called once from finalize() when config_.telemetry.
  void register_telemetry();

  /// Registers the default fabric invariants with the assurance engine
  /// (stale-epoch audit, divergence, parked/pending leaks, pub/sub gaps).
  void register_invariants();

  /// Records a flight-recorder event iff the recorder is enabled (callers
  /// should build detail strings only on the enabled path).
  void record_event(telemetry::EventKind kind, const std::string& node,
                    std::string detail = {});

  /// Underlay control-plane delivery: edge/border RLOC -> action at dest.
  void control_send(net::Ipv4Address from, net::Ipv4Address to, std::size_t bytes,
                    std::function<void()> action);

  [[nodiscard]] underlay::NodeId node_of_rloc(net::Ipv4Address rloc) const;
  [[nodiscard]] net::Ipv4Address next_rloc();

  /// The routing server `edge_rloc`'s group should use right now: its home
  /// server, or — with HA failover on and the home declared down — the
  /// next live replica.
  [[nodiscard]] std::size_t active_server_index(net::Ipv4Address edge_rloc) const;

  /// Whether server `i` currently drives the pub/sub feed and acks
  /// reliable registrations: server 0 without election; with election on,
  /// any node that *believes* it leads (split-brain faithful — a deposed
  /// leader keeps publishing until it observes the newer term, and the
  /// epoch fence rejects its messages at the receivers).
  [[nodiscard]] bool is_feed_authority(std::size_t i) const;
  /// The election epoch server `i` stamps on its publishes, notifies, and
  /// snapshots (0 = unfenced, i.e. election disabled).
  [[nodiscard]] std::uint64_t control_epoch_of(std::size_t i) const;
  /// The cluster-consensus control-plane leader (0 without election).
  [[nodiscard]] std::size_t control_leader() const;
  /// HaMonitor leader-change hook: re-homes every border feed onto the new
  /// leader (snapshot resync) and advertises the new epoch to every edge.
  void on_leader_changed(std::size_t leader, std::uint64_t epoch);

  /// The shared Fig. 3 onboarding flow. `fast_reauth` selects the roaming
  /// round-trip count. A nonzero `move_trace` is the causal move operation
  /// opened by roam_endpoint(); once the address is known it is indexed by
  /// EID so the mobility Map-Notify can close it.
  void onboard(EndpointState& state, const std::string& edge_name, dataplane::PortId port,
               bool fast_reauth, OnboardCallback callback, std::uint64_t move_trace = 0);

  /// Reserves policy-server CPU; returns when the work completes.
  sim::SimTime reserve_policy_cpu(sim::Duration service);

  void dispatch_fabric_frame(const net::FabricFrame& frame);

  sim::Simulator& simulator_;
  FabricConfig config_;
  sim::Rng rng_;

  underlay::Topology topology_;
  std::unique_ptr<underlay::UnderlayNetwork> underlay_;

  lisp::MapServer map_server_;
  /// Additional replica databases (index i backs server node i+1).
  std::vector<std::unique_ptr<lisp::MapServer>> replica_dbs_;
  /// Queueing front ends; node 0 serves the primary database.
  std::vector<std::unique_ptr<lisp::MapServerNode>> server_nodes_;
  /// Which server node an edge's Map-Requests go to (by edge RLOC).
  std::unordered_map<net::Ipv4Address, std::size_t> request_server_of_;
  /// Health tracking / failover / anti-entropy (nullptr when disabled).
  std::unique_ptr<HaMonitor> ha_;
  /// Edge-group → event-lane homing, computed at finalize().
  ShardPlan shard_plan_;
  net::Ipv4Address map_server_rloc_;  // where the primary routing server lives
  policy::PolicyServer policy_server_;
  net::Ipv4Address policy_server_rloc_;
  std::vector<sim::SimTime> policy_cpu_free_;  // auth worker availability
  l2::DhcpServer dhcp_;
  l2::ServiceRegistry services_;  // co-located with the routing server
  std::unordered_map<std::uint32_t, net::Ipv6Prefix> slaac_prefixes_;  // by VN

  std::unordered_map<std::string, underlay::NodeId> nodes_by_name_;
  std::unordered_map<std::string, std::unique_ptr<dataplane::EdgeRouter>> edges_;
  std::unordered_map<std::string, std::unique_ptr<dataplane::BorderRouter>> borders_;
  std::vector<std::string> edge_order_;
  std::vector<std::string> border_order_;
  std::unordered_map<net::Ipv4Address, std::string> edge_by_rloc_;
  std::unordered_map<net::Ipv4Address, std::string> border_by_rloc_;
  /// Pub/sub feed session state per border (Fig. 1 "sync" hardening).
  struct BorderFeedState {
    bool connected = true;
    std::uint64_t dropped_publishes = 0;
  };
  std::unordered_map<std::string, BorderFeedState> border_feeds_;
  std::uint64_t publish_seq_ = 0;  // sequence stamped on the last publish
  std::uint64_t stale_acks_accepted_ = 0;  // epoch-fence audit (must stay 0)
  std::unique_ptr<l2::L2Gateway> l2_gateway_;

  std::unordered_map<std::string, EndpointState> endpoints_by_credential_;
  std::unordered_map<net::MacAddress, std::string> credential_by_mac_;
  /// Onboard callbacks waiting for an EID's Map-Register to complete.
  std::unordered_map<net::VnEid, std::vector<std::function<void()>>> pending_onboards_;

  std::uint32_t next_rloc_suffix_ = 1;
  bool finalized_ = false;

  telemetry::Telemetry telemetry_;
  /// Flows already traced by the first-packet tracer ("vn|src|dst" keys).
  std::unordered_set<std::string> traced_flows_;
  /// First-packet latency decomposition (microseconds), fed by completed
  /// path traces when config_.trace_first_packets is on.
  telemetry::LatencyHistogram* first_packet_us_ = nullptr;
  /// Onboarding / roaming latency (milliseconds), fed by the Map-Register
  /// completion waiters.
  telemetry::LatencyHistogram* onboard_ms_ = nullptr;
  telemetry::LatencyHistogram* roam_ms_ = nullptr;
  /// Assurance plane (PR 8): operation-level convergence histograms fed by
  /// the causal tracer's completion callback (all in microseconds).
  telemetry::LatencyHistogram* register_rtt_us_ = nullptr;
  telemetry::LatencyHistogram* move_convergence_us_ = nullptr;
  telemetry::LatencyHistogram* failover_rehome_us_ = nullptr;
  telemetry::LatencyHistogram* smr_fanout_us_ = nullptr;
  telemetry::LatencyHistogram* catchup_convergence_us_ = nullptr;
  /// Open replica catch-up operations (PR 9), keyed by replica index:
  /// opened when a digest lag is first seen, finished when digests agree.
  std::unordered_map<std::size_t, std::uint64_t> catchup_trace_by_replica_;
  /// Open move operations keyed by the roaming endpoint's IP EID: indexed
  /// when the roam attaches, consumed (finished) when the *old* edge
  /// applies the mobility Map-Notify.
  std::unordered_map<net::VnEid, std::uint64_t> move_trace_by_eid_;
  /// The failover re-home operation in flight (0 = none) and the borders
  /// whose snapshot is still outstanding under it.
  std::uint64_t rehome_trace_ = 0;
  std::unordered_set<std::string> rehome_pending_;

  DeliveryListener delivery_listener_;
  BorderSyncListener border_sync_listener_;
};

}  // namespace sda::fabric
