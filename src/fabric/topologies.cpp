#include "fabric/topologies.hpp"

#include <stdexcept>

namespace sda::fabric {

TieredCampus build_tiered_campus(SdaFabric& fabric, const TieredCampusSpec& spec) {
  if (spec.borders == 0 || spec.edges == 0) {
    throw std::invalid_argument("tiered campus needs at least one border and one edge");
  }
  TieredCampus out;

  for (unsigned b = 0; b < spec.borders; ++b) {
    out.borders.push_back(spec.prefix + "border-" + std::to_string(b));
    fabric.add_border(out.borders.back());
  }
  for (unsigned d = 0; d < spec.distribution; ++d) {
    out.distribution.push_back(spec.prefix + "dist-" + std::to_string(d));
    fabric.add_underlay_node(out.distribution.back());
  }
  for (unsigned e = 0; e < spec.edges; ++e) {
    out.edges.push_back(spec.prefix + "edge-" + std::to_string(e));
    fabric.add_edge(out.edges.back());
  }

  // Borders interconnect (redundant exit tier).
  for (unsigned a = 0; a < spec.borders; ++a) {
    for (unsigned b = a + 1; b < spec.borders; ++b) {
      fabric.link(out.borders[a], out.borders[b], spec.border_to_border);
    }
  }

  if (spec.distribution == 0) {
    // Collapsed core: edges connect straight to every border.
    for (const auto& edge : out.edges) {
      for (const auto& border : out.borders) {
        fabric.link(edge, border, spec.distribution_to_border);
      }
    }
    return out;
  }

  // Distribution full-meshes to the borders.
  for (const auto& dist : out.distribution) {
    for (const auto& border : out.borders) {
      fabric.link(dist, border, spec.distribution_to_border);
    }
  }
  // Edges dual-home to two distribution switches (or one, if only one).
  for (unsigned e = 0; e < spec.edges; ++e) {
    const unsigned d0 = e % spec.distribution;
    fabric.link(out.edges[e], out.distribution[d0], spec.edge_to_distribution);
    if (spec.distribution > 1) {
      const unsigned d1 = (e + 1) % spec.distribution;
      fabric.link(out.edges[e], out.distribution[d1], spec.edge_to_distribution);
    }
  }
  return out;
}

}  // namespace sda::fabric
