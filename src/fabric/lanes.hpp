// LaneFabric: a synthetic per-edge-group sharded fabric for scaling and
// determinism work.
//
// Builds a hub-and-spoke topology per lane (one hub router, N edge routers
// at local link latency) with the hubs fully meshed at a higher cross-lane
// latency, then homes each lane onto one shard of a ShardedSimulator. Every
// lane owns the full per-shard state the real fabric would: its own
// UnderlayNetwork view (lazy per-lane SPF tables over the shared topology),
// its own MapCache (pre-populated EID->RLOC for every edge, so the hot
// lookup path runs for real), its own Rng, metrics registry, and flight
// log. Packets bounce edge-to-edge for a configured hop budget; a
// configurable fraction of hops crosses lanes, exercising the SPSC rings
// and the lookahead barrier. Because the only cross-lane links are the
// hub-hub mesh, the plan's lookahead equals the cross-link latency.
//
// This is the workload behind the bench_micro multi-shard scaling probe,
// the workers=1-vs-4 determinism test, and the TSan chaos drill.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fabric/sharding.hpp"
#include "lisp/map_cache.hpp"
#include "sim/random.hpp"
#include "sim/sharded.hpp"
#include "telemetry/metrics.hpp"
#include "underlay/network.hpp"
#include "underlay/topology.hpp"

namespace sda::fabric {

struct LaneFabricConfig {
  std::size_t lanes = 4;
  std::size_t workers = 1;
  std::size_t edges_per_lane = 16;
  /// Remaining forward hops per packet when it enters the fabric; each
  /// arrival burns one.
  std::uint32_t hops_per_packet = 32;
  std::size_t packets_per_edge = 1;
  /// Probability (per hop) that the next destination lives on another lane.
  double cross_lane_fraction = 0.25;
  std::uint64_t seed = 42;
  sim::Duration local_link_latency = std::chrono::microseconds{20};
  sim::Duration cross_link_latency = std::chrono::microseconds{200};
  /// Per-lane random in-transit drops, per million deliveries (chaos mode).
  std::uint32_t fault_drop_per_million = 0;
  /// Record a per-arrival flight log (the byte-identical determinism
  /// oracle). Off for throughput runs.
  bool record_log = false;
  std::size_t ring_capacity = 8192;
};

class LaneFabric {
 public:
  explicit LaneFabric(LaneFabricConfig config);

  /// Injects packets_per_edge packets at every edge (deterministic stagger)
  /// and runs to completion. Returns events executed by this call.
  std::uint64_t run();

  [[nodiscard]] const ShardPlan& plan() const { return plan_; }
  [[nodiscard]] sim::ShardedSimulator& core() { return *core_; }
  [[nodiscard]] std::size_t edge_count() const { return edge_nodes_.size(); }

  [[nodiscard]] std::uint64_t events_executed() const { return core_->executed_events(); }
  [[nodiscard]] std::uint64_t hops_delivered() const;
  [[nodiscard]] std::uint64_t cross_lane_posts() const { return core_->cross_posts(); }
  [[nodiscard]] std::uint64_t late_posts() const { return core_->late_posts(); }
  [[nodiscard]] std::uint64_t fault_drops() const;

  /// Order-insensitive-across-lanes, order-sensitive-within-lane digest of
  /// every arrival: equal digests mean equal per-lane timelines. Cheap
  /// enough to leave on for throughput runs.
  [[nodiscard]] std::uint64_t log_digest() const;

  /// The full merged flight log (requires record_log): one line per
  /// arrival, globally sorted by (time, lane, per-lane position). Byte
  /// identical across worker counts for a fixed seed and lane count.
  [[nodiscard]] std::string flight_log() const;

  /// Per-lane registries folded into one fabric-wide snapshot via
  /// telemetry::Snapshot::merge.
  [[nodiscard]] telemetry::Snapshot merged_metrics() const;

 private:
  struct Lane {
    std::unique_ptr<underlay::UnderlayNetwork> underlay;
    telemetry::MetricsRegistry metrics;
    sim::Rng rng{0};
    lisp::MapCache cache{0};
    std::vector<std::uint64_t> log;  // packed arrival records (record_log)
    std::uint64_t delivered = 0;
    std::uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
  };

  void arrive(std::uint32_t edge, std::uint32_t from_edge, std::uint32_t hop);
  [[nodiscard]] std::uint32_t lane_of_edge(std::uint32_t edge) const {
    return static_cast<std::uint32_t>(edge / config_.edges_per_lane);
  }

  LaneFabricConfig config_;
  std::uint64_t cross_ppm_ = 0;  // cross_lane_fraction, in parts-per-million
  underlay::Topology topology_;
  ShardPlan plan_;
  std::unique_ptr<sim::ShardedSimulator> core_;
  std::vector<underlay::NodeId> hub_nodes_;    // per lane
  std::vector<underlay::NodeId> edge_nodes_;   // global edge index -> node
  std::vector<net::Ipv4Address> edge_rlocs_;   // global edge index -> RLOC
  std::vector<Lane> lanes_;
};

}  // namespace sda::fabric
