// Canned fabric topologies.
//
// The paper's campus deployments (Fig. 8) are classic three-tier networks:
// access (edge) switches dual-homed to distribution switches, distribution
// meshed to the borders, borders interconnected — with ECMP everywhere.
// This builder stamps that shape onto a fabric; the warehouse's flat star
// (Fig. 10) is trivial enough to build inline.
#pragma once

#include <string>
#include <vector>

#include "fabric/fabric.hpp"

namespace sda::fabric {

struct TieredCampusSpec {
  unsigned borders = 2;
  unsigned distribution = 2;  // distribution switches (pure underlay)
  unsigned edges = 6;
  sim::Duration edge_to_distribution = std::chrono::microseconds{30};
  sim::Duration distribution_to_border = std::chrono::microseconds{50};
  sim::Duration border_to_border = std::chrono::microseconds{20};
  std::string prefix;  // optional name prefix, e.g. "bldgA-"
};

struct TieredCampus {
  std::vector<std::string> borders;
  std::vector<std::string> distribution;
  std::vector<std::string> edges;
};

/// Adds the three-tier campus to `fabric` (before finalize()): every edge
/// dual-homes to two distribution switches, every distribution switch
/// connects to every border, and borders interconnect. With ≥2
/// distribution switches every edge-to-border path has an equal-cost
/// alternate (ECMP, §3.3).
[[nodiscard]] TieredCampus build_tiered_campus(SdaFabric& fabric, const TieredCampusSpec& spec);

}  // namespace sda::fabric
