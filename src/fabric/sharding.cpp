#include "fabric/sharding.hpp"

#include <algorithm>

namespace sda::fabric {

ShardPlan compute_shard_plan(const underlay::Topology& topology,
                             const std::vector<std::vector<underlay::NodeId>>& groups) {
  ShardPlan plan;
  plan.shards = std::max<std::size_t>(1, groups.size());
  plan.node_shard.assign(topology.node_count(), 0);
  plan.members.resize(plan.shards);
  for (std::size_t s = 0; s < groups.size(); ++s) {
    for (const underlay::NodeId n : groups[s]) {
      plan.node_shard[n] = static_cast<std::uint32_t>(s);
    }
  }
  for (underlay::NodeId n = 0; n < topology.node_count(); ++n) {
    plan.members[plan.node_shard[n]].push_back(n);
  }
  bool first = true;
  for (underlay::LinkId l = 0; l < topology.link_count(); ++l) {
    const underlay::Link& link = topology.link(l);
    if (plan.node_shard[link.a] == plan.node_shard[link.b]) continue;
    ++plan.cross_links;
    if (first || link.latency < plan.lookahead) plan.lookahead = link.latency;
    first = false;
  }
  return plan;
}

ShardPlan compute_edge_group_plan(const underlay::Topology& topology, std::size_t lanes,
                                  const std::vector<underlay::NodeId>& edges,
                                  const std::vector<underlay::NodeId>& control_nodes) {
  lanes = std::max<std::size_t>(1, std::min(lanes, std::max<std::size_t>(1, edges.size())));
  std::vector<std::vector<underlay::NodeId>> groups(lanes);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    groups[i * lanes / edges.size()].push_back(edges[i]);
  }
  // Control legs are chatty and all-to-all; homing the servers/borders with
  // the first edge group keeps the single-server case entirely lane-local.
  for (const underlay::NodeId n : control_nodes) groups[0].push_back(n);
  return compute_shard_plan(topology, groups);
}

}  // namespace sda::fabric
