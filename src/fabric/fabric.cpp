#include "fabric/fabric.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "l2/slaac.hpp"

namespace sda::fabric {

namespace {

/// Virtual gateway MAC endpoints address their off-link traffic to.
const net::MacAddress kGatewayMac = net::MacAddress::from_u64(0x02'00'00'00'00'01ull);

std::uint64_t frame_flow_hash(const net::FabricFrame& frame) {
  std::size_t h = std::hash<net::MacAddress>{}(frame.inner.source_mac);
  h ^= std::hash<net::MacAddress>{}(frame.inner.destination_mac) << 1;
  h ^= std::hash<net::VnId>{}(frame.vn) << 2;
  return h;
}

}  // namespace

SdaFabric::SdaFabric(sim::Simulator& simulator, FabricConfig config)
    : simulator_(simulator),
      config_(std::move(config)),
      rng_(config_.seed),
      telemetry_(config_.flight_recorder_capacity, config_.path_trace_keep,
                 config_.causal_trace_keep) {
  underlay_ = std::make_unique<underlay::UnderlayNetwork>(simulator_, topology_,
                                                          config_.underlay);
  policy_cpu_free_.assign(std::max(1u, config_.timings.policy_workers), sim::SimTime::zero());
  telemetry_.recorder.set_enabled(config_.telemetry);
  telemetry_.causal.set_enabled(config_.causal_tracing);
}

sim::SimTime SdaFabric::reserve_policy_cpu(sim::Duration service) {
  auto it = std::min_element(policy_cpu_free_.begin(), policy_cpu_free_.end());
  const sim::SimTime start = std::max(*it, simulator_.now());
  const sim::SimTime finish = start + service;
  *it = finish;
  return finish;
}

SdaFabric::~SdaFabric() = default;

// ---------------------------------------------------------------------------
// Topology construction
// ---------------------------------------------------------------------------

net::Ipv4Address SdaFabric::next_rloc() {
  const std::uint32_t suffix = next_rloc_suffix_++;
  return net::Ipv4Address{(10u << 24) | (suffix & 0xFFFF)};
}

void SdaFabric::add_border(const std::string& name) {
  assert(!finalized_);
  const net::Ipv4Address rloc = next_rloc();
  const underlay::NodeId node = topology_.add_node(name, rloc);
  nodes_by_name_[name] = node;

  dataplane::BorderRouterConfig cfg;
  cfg.name = name;
  cfg.rloc = rloc;
  cfg.node = node;
  cfg.default_action = config_.default_action;
  borders_[name] = std::make_unique<dataplane::BorderRouter>(simulator_, cfg);
  border_order_.push_back(name);
  border_by_rloc_[rloc] = name;
}

void SdaFabric::add_edge(const std::string& name) {
  assert(!finalized_);
  const net::Ipv4Address rloc = next_rloc();
  const underlay::NodeId node = topology_.add_node(name, rloc);
  nodes_by_name_[name] = node;

  dataplane::EdgeRouterConfig cfg;
  cfg.name = name;
  cfg.rloc = rloc;
  cfg.node = node;
  cfg.map_cache_capacity = config_.edge_map_cache_capacity;
  cfg.register_ttl_seconds = config_.register_ttl_seconds;
  cfg.register_refresh_interval = config_.register_refresh_interval;
  cfg.enforce_on_ingress = config_.enforce_on_ingress;
  cfg.default_action = config_.default_action;
  cfg.rloc_probing = config_.rloc_probing;
  cfg.probe_interval = config_.probe_interval;
  cfg.default_route_fallback = config_.default_route_fallback;
  cfg.map_request_timeout = config_.map_request_timeout;
  cfg.map_request_retries = config_.map_request_retries;
  cfg.map_register_retries = config_.map_register_retries;
  cfg.map_register_timeout = config_.map_register_timeout;
  cfg.pending_packet_limit = config_.pending_packet_limit;
  cfg.policy_fail_mode = config_.policy_fail_mode;
  cfg.rule_retry_interval = config_.rule_retry_interval;
  cfg.seed = config_.seed;  // mixed with the RLOC inside the router
  // border_rloc is filled in finalize() once the borders exist.
  edges_[name] = std::make_unique<dataplane::EdgeRouter>(simulator_, cfg);
  edge_order_.push_back(name);
  edge_by_rloc_[rloc] = name;
}

void SdaFabric::add_underlay_node(const std::string& name) {
  assert(!finalized_);
  nodes_by_name_[name] = topology_.add_node(name, next_rloc());
}

void SdaFabric::link(const std::string& a, const std::string& b, sim::Duration latency,
                     std::uint32_t cost) {
  topology_.add_link(nodes_by_name_.at(a), nodes_by_name_.at(b), latency, cost);
}

void SdaFabric::finalize() {
  assert(!finalized_);
  if (border_order_.empty()) throw std::runtime_error("fabric needs at least one border");
  finalized_ = true;

  // The first border embeds the primary routing server and the policy
  // server (as in the paper's warehouse deployment). Additional routing
  // servers (§4.1 horizontal scale-out) are placed round-robin on borders.
  dataplane::BorderRouter& primary = *borders_.at(border_order_.front());
  map_server_rloc_ = primary.rloc();
  policy_server_rloc_ = primary.rloc();

  const unsigned server_count = std::max(1u, config_.routing_servers);
  map_server_.set_negative_ttl_seconds(config_.negative_ttl_seconds);
  for (unsigned i = 0; i < server_count; ++i) {
    lisp::MapServerNodeConfig ms_cfg = config_.map_server;
    ms_cfg.rloc = borders_.at(border_order_[i % border_order_.size()])->rloc();
    lisp::MapServer* database = &map_server_;
    if (i > 0) {
      replica_dbs_.push_back(std::make_unique<lisp::MapServer>());
      database = replica_dbs_.back().get();
      database->set_negative_ttl_seconds(config_.negative_ttl_seconds);
    }
    server_nodes_.push_back(std::make_unique<lisp::MapServerNode>(
        simulator_, *database, ms_cfg, config_.seed ^ (0x5D + i)));
  }
  // Edge groups: round-robin assignment of Map-Request traffic.
  for (std::size_t e = 0; e < edge_order_.size(); ++e) {
    request_server_of_[edges_.at(edge_order_[e])->rloc()] = e % server_nodes_.size();
  }

  // Shard plan: home edge groups onto event lanes, control legs (the
  // borders carrying the routing/policy servers) onto lane 0, and derive
  // the conservative lookahead from the underlay. The plan is exported via
  // shard_plan() / sharding.* gauges; LaneFabric executes such plans on a
  // multi-worker ShardedSimulator.
  {
    const std::size_t lanes = config_.sharding.lanes != 0 ? config_.sharding.lanes
                                                          : config_.sharding.workers;
    std::vector<underlay::NodeId> edge_nodes;
    std::vector<underlay::NodeId> control_nodes;
    for (const auto& name : edge_order_) edge_nodes.push_back(nodes_by_name_.at(name));
    for (const auto& name : border_order_) control_nodes.push_back(nodes_by_name_.at(name));
    shard_plan_ = compute_edge_group_plan(topology_, lanes, edge_nodes, control_nodes);
  }

  // Control-plane HA (PR 4): heartbeat failover and/or replica
  // anti-entropy; plus leader election with epoch fencing and flap
  // dampening (PR 6). Each server is probed from the lead edge of the
  // group assigned to it, so health is judged from where the traffic
  // originates (a partitioned-but-alive server is correctly treated as
  // down).
  if (config_.ha.failover || (config_.ha.election && server_nodes_.size() > 1) ||
      (config_.ha.anti_entropy_interval.count() > 0 && server_nodes_.size() > 1)) {
    std::vector<lisp::MapServerNode*> nodes;
    std::vector<lisp::MapServer*> databases;
    nodes.push_back(server_nodes_.front().get());
    databases.push_back(&map_server_);
    for (std::size_t i = 1; i < server_nodes_.size(); ++i) {
      nodes.push_back(server_nodes_[i].get());
      databases.push_back(replica_dbs_[i - 1].get());
    }
    ha_ = std::make_unique<HaMonitor>(
        simulator_, config_.ha, std::move(nodes), std::move(databases),
        [this](net::Ipv4Address from, net::Ipv4Address to, std::size_t bytes,
               std::function<void()> action) {
          control_send(from, to, bytes, std::move(action));
        },
        [this](telemetry::EventKind kind, const std::string& node, std::string detail) {
          record_event(kind, node, std::move(detail));
        },
        config_.seed);
    ha_->set_leader_changed([this](std::size_t leader, std::uint64_t epoch) {
      on_leader_changed(leader, epoch);
    });
    // Catch-up convergence tracing (PR 9): a replica's lag window — from
    // the first mismatched digest to digests agreeing again — is one
    // Catchup operation feeding assurance.catchup_convergence_us.
    ha_->set_catchup_hooks(
        [this](std::size_t replica) {
          if (!telemetry_.causal.enabled()) return;
          catchup_trace_by_replica_[replica] = telemetry_.causal.begin(
              telemetry::OpKind::Catchup,
              "routing_server[" + std::to_string(replica) + "]", simulator_.now());
        },
        [this](std::size_t replica, bool /*via_snapshot*/) {
          const auto it = catchup_trace_by_replica_.find(replica);
          if (it == catchup_trace_by_replica_.end()) return;
          telemetry_.causal.finish(it->second, simulator_.now());
          catchup_trace_by_replica_.erase(it);
        });
    for (std::size_t e = 0; e < edge_order_.size(); ++e) {
      const std::size_t server = e % server_nodes_.size();
      if (e < server_nodes_.size()) {
        ha_->set_probe_source(server, edges_.at(edge_order_[e])->rloc());
      }
    }
  }

  // Pub/sub: every border subscribes to the full feed (Fig. 1 "sync").
  // Publishes carry a feed sequence number so subscribers detect losses
  // and pull a snapshot instead of silently diverging from the server.
  // Every replica carries the publish hook, but only the current feed
  // authority (server 0, or the elected leader) actually pushes — its term
  // rides on each publish so a deposed leader's pushes are fenced at the
  // borders instead of hardcoding index 0 as the forever-primary.
  for (const auto& name : border_order_) border_feeds_[name] = BorderFeedState{};
  for (std::size_t srv = 0; srv < server_nodes_.size(); ++srv) {
    lisp::MapServer& db = srv == 0 ? map_server_ : *replica_dbs_[srv - 1];
    db.set_publish_callback([this, srv](const net::VnEid& eid,
                                        const lisp::MappingRecord* record) {
      if (!is_feed_authority(srv)) return;
      lisp::Publish publish;
      publish.eid = eid;
      if (record) {
        publish.rlocs = record->rlocs;
        publish.ttl_seconds = record->ttl_seconds;
      }
      publish.seq = ++publish_seq_;
      publish.epoch = control_epoch_of(srv);
      // A publish caused by a move rides the move's causal trace, so the
      // border fan-out shows up as spans on the same tree.
      if (telemetry_.causal.enabled()) {
        if (const auto mt = move_trace_by_eid_.find(eid); mt != move_trace_by_eid_.end()) {
          publish.trace = mt->second;
        }
      }
      const net::Ipv4Address feed_rloc = server_nodes_[srv]->rloc();
      if (telemetry_.recorder.enabled()) {
        std::string detail = publish.withdrawal() ? "withdraw " : "publish ";
        detail += eid.to_string();
        detail += " seq ";
        detail += std::to_string(publish.seq);
        record_event(telemetry::EventKind::Publish,
                     srv == 0 ? "map_server" : "routing_server[" + std::to_string(srv) + "]",
                     std::move(detail));
      }
      for (const auto& name : border_order_) {
        BorderFeedState& feed = border_feeds_.at(name);
        if (!feed.connected) {
          ++feed.dropped_publishes;  // surfaces as a gap after reconnect
          continue;
        }
        dataplane::BorderRouter& border = *borders_.at(name);
        const std::uint64_t pub_span = telemetry_.causal.span_begin(
            publish.trace, 0, "publish", name, simulator_.now());
        control_send(feed_rloc, border.rloc(),
                     lisp::message_wire_size(lisp::Message{publish}),
                     [this, name, publish, pub_span, &border] {
                       if (!border_feeds_.at(name).connected) {
                         ++border_feeds_.at(name).dropped_publishes;
                         return;  // feed went down while the update was in flight
                       }
                       // A stale-epoch push (deposed leader) is fenced —
                       // do not report it as an applied sync.
                       if (!border.receive_publish(publish)) return;
                       telemetry_.causal.span_end(publish.trace, pub_span, simulator_.now());
                       if (border_sync_listener_) {
                         const lisp::MappingRecord* rec = nullptr;
                         lisp::MappingRecord tmp;
                         if (!publish.withdrawal()) {
                           tmp.rlocs = publish.rlocs;
                           tmp.ttl_seconds = publish.ttl_seconds;
                           rec = &tmp;
                         }
                         border_sync_listener_(name, publish.eid, rec);
                       }
                     });
      }
    });

    // Mobility: Map-Notify the previous edge so it forwards in-flight
    // traffic to the new location (Fig. 5 steps 2-3). Same authority
    // filter and epoch stamp as the feed.
    db.set_move_callback([this, srv](const net::VnEid& eid, net::Ipv4Address previous,
                                     const lisp::MappingRecord& record) {
      if (!is_feed_authority(srv)) return;
      const auto it = edge_by_rloc_.find(previous);
      if (it == edge_by_rloc_.end()) return;
      lisp::MapNotify notify{0, eid, record.rlocs, control_epoch_of(srv)};
      if (telemetry_.causal.enabled()) {
        if (const auto mt = move_trace_by_eid_.find(eid); mt != move_trace_by_eid_.end()) {
          notify.trace = mt->second;
        }
      }
      const std::string edge_name = it->second;
      if (telemetry_.recorder.enabled()) {
        std::string detail = "move of ";
        detail += eid.to_string();
        detail += ", notify old edge ";
        detail += edge_name;
        record_event(telemetry::EventKind::MapNotify,
                     srv == 0 ? "map_server" : "routing_server[" + std::to_string(srv) + "]",
                     std::move(detail));
      }
      const std::uint64_t mv_span = telemetry_.causal.span_begin(
          notify.trace, 0, "mobility-notify", edge_name, simulator_.now());
      control_send(server_nodes_[srv]->rloc(), previous,
                   lisp::message_wire_size(lisp::Message{notify}),
                   [this, edge_name, notify, mv_span] {
                     const bool applied = edges_.at(edge_name)->receive_map_notify(notify);
                     // The old edge applying the mobility notify is the
                     // paper's move-convergence endpoint (Fig. 5 step 2).
                     if (applied && notify.trace != 0) {
                       telemetry_.causal.span_end(notify.trace, mv_span, simulator_.now());
                       telemetry_.causal.finish(notify.trace, simulator_.now());
                       move_trace_by_eid_.erase(notify.eid);
                     }
                   });
    });
  }

  // Policy-server callbacks: group reassignment re-authenticates at the
  // hosting edge (§5.3); rule updates push to hosting edges (§5.4).
  policy_server_.set_endpoint_changed_callback(
      [this](const std::string& credential, const policy::EndpointPolicy& policy) {
        const auto it = endpoints_by_credential_.find(credential);
        if (it == endpoints_by_credential_.end() || it->second.edge.empty()) return;
        EndpointState& state = it->second;
        state.definition.group = policy.group;
        dataplane::EdgeRouter& hosting = *edges_.at(state.edge);
        const net::MacAddress mac = state.definition.mac;
        // CoA-style signal: one control message to the hosting edge.
        policy_server_.record_group_host(hosting.rloc(), policy.vn, policy.group);
        if (telemetry_.recorder.enabled()) {
          std::string detail = credential;
          detail += " -> ";
          detail += policy.group.to_string();
          detail += " at ";
          detail += state.edge;
          record_event(telemetry::EventKind::GroupChange, "policy_server", std::move(detail));
        }
        control_send(policy_server_rloc_, hosting.rloc(), 64,
                     [&hosting, mac, group = policy.group] {
                       hosting.retag_endpoint(mac, group);
                     });
      });
  policy_server_.set_rules_push_callback([this](net::Ipv4Address edge_rloc, net::VnId vn,
                                                const std::vector<policy::Rule>& rules) {
    const auto it = edge_by_rloc_.find(edge_rloc);
    if (it == edge_by_rloc_.end()) return;
    if (rules.empty()) return;
    const net::GroupId destination = rules.front().pair.destination;
    const std::string edge_name = it->second;
    if (telemetry_.recorder.enabled()) {
      std::string detail = std::to_string(rules.size());
      detail += " rules for ";
      detail += destination.to_string();
      detail += " -> ";
      detail += edge_name;
      record_event(telemetry::EventKind::PolicyPush, "policy_server", std::move(detail));
    }
    control_send(policy_server_rloc_, edge_rloc, 64 + 8 * rules.size(),
                 [this, edge_name, vn, destination, rules] {
                   edges_.at(edge_name)->install_rules(vn, destination, rules);
                 });
  });

  // L2 gateway shared by all edges (stateless apart from counters). Both
  // lookups route through the *requesting edge's* assigned routing server
  // — and, with HA failover on, its current live replacement — instead of
  // hardcoding the primary; each leg rides the control plane.
  if (config_.l2_gateway) {
    l2_gateway_ = std::make_unique<l2::L2Gateway>(
        // IP -> MAC lookup at the routing server (§3.5).
        [this](net::Ipv4Address edge_rloc, const net::VnEid& ip_eid,
               std::function<void(std::optional<net::MacAddress>)> done) {
          lisp::MapServerNode& node = *server_nodes_[active_server_index(edge_rloc)];
          const net::Ipv4Address server_rloc = node.rloc();
          control_send(edge_rloc, server_rloc, 64,
                       [this, &node, edge_rloc, server_rloc, ip_eid, done = std::move(done)] {
                         if (!node.online()) return;  // edge re-ARPs later
                         auto result = node.server().lookup_mac(ip_eid);
                         control_send(server_rloc, edge_rloc, 64,
                                      [done = std::move(done), result] { done(result); });
                       });
        },
        // MAC EID -> RLOC lookup.
        [this](net::Ipv4Address edge_rloc, const net::VnEid& mac_eid,
               std::function<void(std::optional<net::Ipv4Address>)> done) {
          lisp::MapServerNode& node = *server_nodes_[active_server_index(edge_rloc)];
          const net::Ipv4Address server_rloc = node.rloc();
          lisp::MapRequest request;
          request.nonce = 0;
          request.eid = mac_eid;
          request.itr_rloc = edge_rloc;
          control_send(
              edge_rloc, server_rloc, lisp::message_wire_size(lisp::Message{request}),
              [this, &node, edge_rloc, server_rloc, request, done = std::move(done)] {
                node.submit_request(
                    request, [this, edge_rloc, server_rloc, done](const lisp::MapReply& reply,
                                                                  sim::Duration) {
                      control_send(server_rloc, edge_rloc,
                                   lisp::message_wire_size(lisp::Message{reply}),
                                   [done, reply] {
                                     if (reply.negative()) {
                                       done(std::nullopt);
                                     } else {
                                       done(reply.rlocs.front().address);
                                     }
                                   });
                    });
              });
        });
  }

  for (auto& [name, edge] : edges_) wire_edge(*edge);
  for (auto& [name, border] : borders_) wire_border(*border);

  // Underlay reachability watchers (§5.1) for every edge.
  for (const auto& name : edge_order_) {
    dataplane::EdgeRouter& edge = *edges_.at(name);
    underlay_->watch(edge.config().node, [&edge](net::Ipv4Address rloc, bool reachable) {
      edge.on_rloc_reachability(rloc, reachable);
    });
  }

  if (config_.telemetry) register_telemetry();
  if (ha_) ha_->start();
}

void SdaFabric::register_telemetry() {
  telemetry::MetricsRegistry& reg = telemetry_.metrics;

  map_server_.register_metrics(reg, "map_server");
  for (std::size_t i = 0; i < replica_dbs_.size(); ++i) {
    replica_dbs_[i]->register_metrics(reg, "map_server_replica[" + std::to_string(i + 1) + "]");
  }
  for (std::size_t i = 0; i < server_nodes_.size(); ++i) {
    server_nodes_[i]->register_metrics(reg, "routing_server[" + std::to_string(i) + "]");
  }
  if (ha_) ha_->register_metrics(reg, "ha");
  reg.register_gauge("sharding.lanes",
                     [this] { return static_cast<double>(shard_plan_.shards); });
  reg.register_gauge("sharding.workers", [this] {
    return static_cast<double>(config_.sharding.workers);
  });
  reg.register_gauge("sharding.cross_links",
                     [this] { return static_cast<double>(shard_plan_.cross_links); });
  reg.register_gauge("sharding.lookahead_us", [this] {
    return static_cast<double>(shard_plan_.lookahead.count()) / 1000.0;
  });
  policy_server_.register_metrics(reg, "policy_server");
  services_.register_metrics(reg, "services");
  underlay_->register_metrics(reg, "underlay");
  if (l2_gateway_) l2_gateway_->register_metrics(reg, "l2_gateway");

  for (std::size_t i = 0; i < edge_order_.size(); ++i) {
    dataplane::EdgeRouter& edge = *edges_.at(edge_order_[i]);
    edge.register_metrics(reg, "edge[" + std::to_string(i) + "]");
    edge.set_tracer(&telemetry_.tracer);
  }
  for (std::size_t i = 0; i < border_order_.size(); ++i) {
    dataplane::BorderRouter& border = *borders_.at(border_order_[i]);
    border.register_metrics(reg, "border[" + std::to_string(i) + "]");
    border.set_tracer(&telemetry_.tracer);
  }

  // Fabric-level latency decomposition. Onboarding runs tens to hundreds of
  // milliseconds (Fig. 3); first packets tens of microseconds to a few
  // milliseconds depending on whether they hit the map-cache or ride the
  // border default route.
  reg.register_counter("fabric.stale_epoch_acks_accepted",
                       [this] { return stale_acks_accepted_; });
  onboard_ms_ = &reg.histogram("fabric.onboard_ms", {0.0, 500.0, 50});
  roam_ms_ = &reg.histogram("fabric.roam_ms", {0.0, 500.0, 50});
  first_packet_us_ = &reg.histogram("fabric.first_packet_us", {0.0, 20'000.0, 50});
  telemetry_.tracer.set_completion_callback([this](const telemetry::PacketTrace& trace) {
    if (!trace.delivered || first_packet_us_ == nullptr) return;
    first_packet_us_->observe(
        std::chrono::duration<double, std::micro>(trace.latency()).count());
  });

  // Assurance plane (PR 8): every completed causal operation lands in the
  // convergence histogram for its kind. The histograms exist even with
  // tracing off (empty), so dashboards and SLO specs never dangle.
  register_rtt_us_ = &reg.histogram("assurance.register_rtt_us", {0.0, 100'000.0, 50});
  move_convergence_us_ = &reg.histogram("assurance.move_convergence_us", {0.0, 500'000.0, 50});
  failover_rehome_us_ = &reg.histogram("assurance.failover_rehome_us", {0.0, 500'000.0, 50});
  smr_fanout_us_ = &reg.histogram("assurance.smr_fanout_us", {0.0, 500'000.0, 50});
  // Catch-up windows span replica outages, so the range is seconds.
  catchup_convergence_us_ =
      &reg.histogram("assurance.catchup_convergence_us", {0.0, 5'000'000.0, 50});
  telemetry_.causal.set_completion_callback([this](const telemetry::Operation& op) {
    telemetry::LatencyHistogram* hist = nullptr;
    switch (op.kind) {
      case telemetry::OpKind::Register: hist = register_rtt_us_; break;
      case telemetry::OpKind::Move: hist = move_convergence_us_; break;
      case telemetry::OpKind::SmrFanout: hist = smr_fanout_us_; break;
      case telemetry::OpKind::FailoverRehome: hist = failover_rehome_us_; break;
      case telemetry::OpKind::Catchup: hist = catchup_convergence_us_; break;
    }
    if (hist) {
      hist->observe(std::chrono::duration<double, std::micro>(op.duration()).count());
    }
  });

  register_invariants();
}

void SdaFabric::register_invariants() {
  // Continuous invariants: properties the fabric must satisfy whenever the
  // event queue has quiesced, independent of workload. Each check is a
  // closure over live fabric state, evaluated on demand by the engine.
  telemetry::AssuranceEngine& eng = telemetry_.assurance;

  // Epoch fencing is absolute: no edge or border may ever act on a deposed
  // leader's ack or publish (split-brain audit, PR 6).
  eng.add_invariant("zero-stale-epoch-accepts", [this] {
    const std::uint64_t n = stale_acks_accepted_;
    return std::make_pair(n == 0, "stale_epoch_acks_accepted=" + std::to_string(n));
  });

  // Quorum elections are absolute: no node may ever win a term without
  // confirming a strict majority of the configured replicas — a minority
  // partition must stall leaderless instead (PR 9 partition-safety audit).
  eng.add_invariant("no-minority-leader", [this] {
    const std::uint64_t n = ha_ ? ha_->counters().minority_leaders : 0;
    return std::make_pair(n == 0, "minority_leaders=" + std::to_string(n));
  });

  // Anti-entropy must drive replica divergence back to zero once faults
  // clear (PR 4); non-zero at quiesce means a repair never converged.
  eng.add_invariant("replica-divergence-converged", [this] {
    const std::uint64_t d = ha_ ? ha_->last_divergence() : 0;
    return std::make_pair(d == 0, "replica_divergence=" + std::to_string(d));
  });

  // Frames parked for an unresolved EID must drain (forwarded or dropped
  // by the resolution outcome) — a parked frame at quiesce is a leak.
  eng.add_invariant("no-parked-packet-leak", [this] {
    std::size_t parked = 0;
    for (const auto& [name, edge] : edges_) parked += edge->parked_frame_count();
    return std::make_pair(parked == 0, "parked_frames=" + std::to_string(parked));
  });

  // Every causal operation and armed packet trace must resolve: an open
  // trace at quiesce means a control-plane flow started but never
  // converged (or an instrumentation hook leaked its operation).
  eng.add_invariant("no-pending-trace-leak", [this] {
    const std::size_t open =
        telemetry_.causal.open_count() + telemetry_.tracer.open_count();
    std::string detail = "open_ops=" + std::to_string(telemetry_.causal.open_count());
    detail += " open_packet_traces=" + std::to_string(telemetry_.tracer.open_count());
    if (telemetry_.causal.open_count() > 0) {
      detail += " [";
      bool first = true;
      for (const auto& label : telemetry_.causal.open_labels()) {
        if (!first) detail += ", ";
        detail += label;
        first = false;
      }
      detail += "]";
    }
    return std::make_pair(open == 0, std::move(detail));
  });

  // A border that detected a pub/sub gap must have resolved it via resync
  // within one round: at quiesce no resync may be in flight, and any
  // sequence gap must be matched by at least one applied snapshot.
  eng.add_invariant("pubsub-gap-resolved", [this] {
    for (const auto& name : border_order_) {
      const dataplane::BorderRouter& border = *borders_.at(name);
      if (border.resync_in_flight()) {
        return std::make_pair(false, name + " resync still in flight");
      }
      if (border.counters().out_of_sequence > 0 && border.counters().snapshots_applied == 0) {
        return std::make_pair(false, name + " saw a feed gap but never resynced");
      }
    }
    return std::make_pair(true, std::string{"all border feeds sequenced"});
  });
}

void SdaFabric::record_event(telemetry::EventKind kind, const std::string& node,
                             std::string detail) {
  if (!telemetry_.recorder.enabled()) return;
  telemetry_.recorder.record(simulator_.now(), kind, node, std::move(detail));
}

std::uint64_t SdaFabric::trace_flow(const net::VnEid& source, const net::VnEid& destination) {
  return telemetry_.tracer.arm(source, destination);
}

std::size_t SdaFabric::active_server_index(net::Ipv4Address edge_rloc) const {
  const auto it = request_server_of_.find(edge_rloc);
  const std::size_t home = it == request_server_of_.end() ? 0 : it->second;
  return ha_ ? ha_->active_server_for(home) : home;
}

void SdaFabric::wire_edge(dataplane::EdgeRouter& edge) {
  // Default route: every border is a candidate, primary first. The edge's
  // underlay reachability watcher repoints the route when the primary
  // border becomes unreachable (and back when it returns).
  std::vector<net::Ipv4Address> border_rlocs;
  border_rlocs.reserve(border_order_.size());
  for (const auto& name : border_order_) border_rlocs.push_back(borders_.at(name)->rloc());
  edge.set_border_rlocs(std::move(border_rlocs));

  edge.set_send_data([this](const net::FabricFrame& frame) { dispatch_fabric_frame(frame); });

  edge.set_send_map_request([this, &edge](const lisp::MapRequest& request) {
    // Each edge group queries its assigned routing server (§4.1) — or,
    // with HA failover on and that server declared down, the next live
    // replica. The choice is re-evaluated on every (re)transmit, so a
    // retransmission after a failover rides the new server.
    lisp::MapServerNode& node = *server_nodes_[active_server_index(edge.rloc())];
    const net::Ipv4Address server_rloc = node.rloc();
    if (telemetry_.recorder.enabled()) {
      std::string detail = "for ";
      detail += request.eid.to_string();
      detail += " -> ";
      detail += server_rloc.to_string();
      record_event(telemetry::EventKind::MapRequest, edge.name(), std::move(detail));
    }
    const std::uint64_t rq_span = telemetry_.causal.span_begin(
        request.trace, 0, "map-request", edge.name(), simulator_.now());
    control_send(edge.rloc(), server_rloc, lisp::message_wire_size(lisp::Message{request}),
                 [this, &edge, &node, server_rloc, request, rq_span] {
                   node.submit_request(
                       request,
                       [this, &edge, server_rloc, rq_span](const lisp::MapReply& reply,
                                                           sim::Duration) {
                         if (telemetry_.recorder.enabled()) {
                           std::string detail = reply.negative() ? "negative for " : "for ";
                           detail += reply.eid.to_string();
                           record_event(telemetry::EventKind::MapReply, edge.name(),
                                        std::move(detail));
                         }
                         telemetry_.causal.span_end(reply.trace, rq_span, simulator_.now());
                         const std::uint64_t rp_span = telemetry_.causal.span_begin(
                             reply.trace, rq_span, "map-reply", edge.name(), simulator_.now());
                         control_send(server_rloc, edge.rloc(),
                                      lisp::message_wire_size(lisp::Message{reply}),
                                      [this, &edge, reply, rp_span] {
                                        edge.receive_map_reply(reply);
                                        // An SMR-invoked resolution landing
                                        // at the stale sender closes the
                                        // SMR fan-out operation.
                                        if (reply.trace != 0) {
                                          telemetry_.causal.span_end(reply.trace, rp_span,
                                                                     simulator_.now());
                                          telemetry_.causal.finish(reply.trace,
                                                                   simulator_.now());
                                        }
                                      });
                       },
                       // Bounded admission shed the request: an explicit
                       // busy + retry-after rides back to the edge, which
                       // backs off for the server's hint instead of its
                       // local RTO.
                       [this, &edge, server_rloc, eid = request.eid](sim::Duration retry_after) {
                         if (telemetry_.recorder.enabled()) {
                           std::string detail = "map-request for ";
                           detail += eid.to_string();
                           record_event(telemetry::EventKind::Shed, edge.name(),
                                        std::move(detail));
                         }
                         control_send(server_rloc, edge.rloc(), 32,
                                      [&edge, eid, retry_after] {
                                        edge.receive_map_request_busy(eid, retry_after);
                                      });
                       });
                 });
  });

  edge.set_send_map_register([this, &edge](const lisp::MapRegister& reg_in) {
    lisp::MapRegister registration = reg_in;
    if (telemetry_.causal.enabled()) {
      // One Register operation per EID; a retransmit re-enters the open op
      // so retries accumulate on the same span tree.
      registration.trace = telemetry_.causal.begin(
          telemetry::OpKind::Register, registration.eid.to_string(), simulator_.now());
    }
    if (telemetry_.recorder.enabled()) {
      std::string detail = "for ";
      detail += registration.eid.to_string();
      record_event(telemetry::EventKind::MapRegister, edge.name(), std::move(detail));
    }
    // Route updates go to *all* routing servers so replicas stay complete
    // (§4.1). Onboarding completion is tied to the acking server's
    // Map-Notify, which also cancels the edge's reliable-registration
    // retransmit. Without HA the primary always acks; with failover on,
    // the edge's currently-active server does — so a registration issued
    // while the primary is down still completes (and a retransmit after a
    // failover re-picks the acker). With election on, the acking
    // authority is re-evaluated when the registration *completes*: every
    // node that believes it leads acks, with its term stamped on the
    // Map-Notify — during split-brain both sides ack, and the edge fences
    // out the deposed leader's stale epoch.
    const std::size_t acker =
        ha_ && ha_->election_enabled()
            ? control_leader()
            : (ha_ && ha_->failover_enabled()
                   ? ha_->active_server_for(request_server_of_.at(edge.rloc()))
                   : 0);
    for (std::size_t i = 0; i < server_nodes_.size(); ++i) {
      lisp::MapServerNode& node = *server_nodes_[i];
      const bool is_acker = i == acker;
      const std::uint64_t reg_span =
          registration.trace == 0
              ? 0
              : telemetry_.causal.span_begin(
                    registration.trace, 0, "map-register",
                    "routing_server[" + std::to_string(i) + "]", simulator_.now());
      control_send(edge.rloc(), node.rloc(),
                   lisp::message_wire_size(lisp::Message{registration}),
                   [this, &edge, &node, registration, i, is_acker, reg_span] {
                     node.submit_register(
                         registration,
                         [this, &edge, &node, i, is_acker, reg_span,
                          eid = registration.eid](
                             const lisp::RegisterOutcome&, const lisp::MapNotify& notify,
                             sim::Duration) {
                           telemetry_.causal.span_end(notify.trace, reg_span,
                                                      simulator_.now());
                           const bool acks_now =
                               ha_ && ha_->election_enabled()
                                   ? ha_->node_believes_leader(i)
                                   : is_acker;
                           if (!acks_now) return;
                           // Ack the registering edge (cancels its
                           // retransmit). The epoch stamp lets the edge
                           // reject a deposed leader's ack.
                           lisp::MapNotify ack = notify;
                           ack.epoch = control_epoch_of(i);
                           const std::uint64_t ack_span =
                               ack.trace == 0 ? 0
                                              : telemetry_.causal.span_begin(
                                                    ack.trace, reg_span, "notify-ack",
                                                    edge.name(), simulator_.now());
                           control_send(node.rloc(), edge.rloc(),
                                        lisp::message_wire_size(lisp::Message{ack}),
                                        [this, &edge, ack, ack_span] {
                                          const bool accepted = edge.receive_map_notify(ack);
                                          if (accepted && ack.epoch != 0 && ha_ &&
                                              ack.epoch < ha_->leadership_epoch()) {
                                            ++stale_acks_accepted_;  // fence breach audit
                                          }
                                          // An accepted ack completes the
                                          // registration operation
                                          // (register_rtt_us endpoint).
                                          if (accepted && ack.trace != 0) {
                                            telemetry_.causal.span_end(ack.trace, ack_span,
                                                                       simulator_.now());
                                            telemetry_.causal.finish(ack.trace,
                                                                     simulator_.now());
                                          }
                                        });
                           // Complete any onboarding waiting on this EID —
                           // but never on a deposed leader's stale-term
                           // completion (the live leader's ack fires them).
                           // Fenced on leadership_epoch, not epoch: a
                           // quorum-stalled candidacy's inflated term must
                           // not gag the standing majority leader.
                           if (ack.epoch != 0 && ha_ &&
                               ack.epoch < ha_->leadership_epoch()) {
                             return;
                           }
                           const auto it = pending_onboards_.find(eid);
                           if (it == pending_onboards_.end()) return;
                           auto waiters = std::move(it->second);
                           pending_onboards_.erase(it);
                           for (auto& fire : waiters) fire();
                         },
                         // Shed by bounded admission: only the acker
                         // signals busy (the edge would otherwise hear N
                         // conflicting hints for one fan-out).
                         !is_acker ? lisp::MapServerNode::ShedCallback{}
                                   : lisp::MapServerNode::ShedCallback{
                                     [this, &edge, &node, eid = registration.eid](
                                         sim::Duration retry_after) {
                                       if (telemetry_.recorder.enabled()) {
                                         std::string detail = "map-register for ";
                                         detail += eid.to_string();
                                         record_event(telemetry::EventKind::Shed, edge.name(),
                                                      std::move(detail));
                                       }
                                       control_send(node.rloc(), edge.rloc(), 32,
                                                    [&edge, eid, retry_after] {
                                                      edge.receive_map_register_busy(
                                                          eid, retry_after);
                                                    });
                                     }});
                   });
    }
  });

  edge.set_send_smr([this, &edge](net::Ipv4Address to, const lisp::SolicitMapRequest& smr_in) {
    const auto it = edge_by_rloc_.find(to);
    if (it == edge_by_rloc_.end()) return;  // borders are pub/sub-fresh: no SMR needed
    const std::string target = it->second;
    lisp::SolicitMapRequest smr = smr_in;
    if (telemetry_.causal.enabled()) {
      // One SmrFanout operation per (EID, stale edge): the op closes when
      // the SMR-invoked Map-Request's reply lands back on the target edge.
      smr.trace = telemetry_.causal.begin(telemetry::OpKind::SmrFanout,
                                          smr.eid.to_string() + "->" + target,
                                          simulator_.now());
    }
    if (telemetry_.recorder.enabled()) {
      std::string detail = "for ";
      detail += smr.eid.to_string();
      detail += " -> ";
      detail += target;
      record_event(telemetry::EventKind::Smr, edge.name(), std::move(detail));
    }
    const std::uint64_t smr_span =
        smr.trace == 0 ? 0
                       : telemetry_.causal.span_begin(smr.trace, 0, "smr", target,
                                                      simulator_.now());
    auto deliver = [this, to, target, smr, smr_span] {
      control_send(smr.source_rloc, to, lisp::message_wire_size(lisp::Message{smr}),
                   [this, target, smr, smr_span] {
                     telemetry_.causal.span_end(smr.trace, smr_span, simulator_.now());
                     dataplane::EdgeRouter& stale = *edges_.at(target);
                     stale.receive_smr(smr);
                     // If the target did not adopt the trace (it already had a
                     // resolution in flight for this EID, or ignored the SMR),
                     // the op would never finish — drop it now.
                     if (smr.trace != 0 &&
                         stale.pending_request_trace(smr.eid) != smr.trace) {
                       telemetry_.causal.abandon(smr.trace);
                     }
                   });
    };
    // Chaos knob: artificially delay the SMR leaving the old edge so the
    // assurance gate can demonstrate a caught smr_fanout SLO breach.
    if (config_.smr_debug_delay.count() > 0) {
      simulator_.schedule_after(config_.smr_debug_delay, std::move(deliver));
    } else {
      deliver();
    }
  });

  edge.set_deliver_local([this](const dataplane::AttachedEndpoint& endpoint,
                                const net::OverlayFrame& frame) {
    if (delivery_listener_) delivery_listener_(endpoint, frame, simulator_.now());
  });

  edge.set_download_rules([this](net::VnId vn, net::GroupId destination)
                              -> std::optional<std::vector<policy::Rule>> {
    // A policy server in an outage window refuses downloads: the edge
    // books a retry and its SGACL fail mode governs traffic meanwhile.
    if (!policy_server_.online()) return std::nullopt;
    return policy_server_.download_rules(vn, destination);
  });
  edge.set_release_group([this, &edge](net::VnId vn, net::GroupId group) {
    policy_server_.release_group(edge.rloc(), vn, group);
  });

  if (l2_gateway_) {
    edge.set_broadcast_handler([this](dataplane::EdgeRouter& router,
                                      const dataplane::AttachedEndpoint& source,
                                      const net::OverlayFrame& frame) {
      l2_gateway_->handle_broadcast(router, source, frame);
    });
  }

  // RLOC probing (§5.1 "explicit probing"): a probe round-trips through the
  // underlay; if the target is unreachable at send time the reply never
  // comes and the timeout reports the RLOC dead.
  edge.set_send_probe([this, &edge](net::Ipv4Address rloc, std::function<void(bool)> done) {
    const underlay::NodeId from = edge.config().node;
    const auto rtt_half = underlay_->transit_delay(from, rloc, rloc.value(), 64);
    if (!rtt_half) {
      // No path: report failure after a probe timeout.
      simulator_.schedule_after(std::chrono::milliseconds{500},
                                [done = std::move(done)] { done(false); });
      return;
    }
    simulator_.schedule_after(*rtt_half * 2, [done = std::move(done)] { done(true); });
  });
}

void SdaFabric::wire_border(dataplane::BorderRouter& border) {
  border.set_send_data([this](const net::FabricFrame& frame) { dispatch_fabric_frame(frame); });
  border.set_request_resync([this, name = border.name()] { resync_border(name); });
}

// ---------------------------------------------------------------------------
// Declarative configuration
// ---------------------------------------------------------------------------

void SdaFabric::define_vn(const VnDefinition& vn) {
  dhcp_.add_pool(vn.id, vn.dhcp_pool);
  if (vn.slaac_prefix) slaac_prefixes_.emplace(vn.id.value(), *vn.slaac_prefix);
  (void)policy_server_.matrix(vn.id);  // create the VN's matrix eagerly
}

void SdaFabric::define_group(const GroupDefinition& group) {
  (void)group;  // groups are implicit in rules/endpoints; names are cosmetic
}

void SdaFabric::set_rule(const RuleDefinition& rule) {
  policy_server_.matrix(rule.vn).set_rule(rule.source, rule.destination, rule.action);
}

void SdaFabric::update_rule(const RuleDefinition& rule) {
  if (telemetry_.recorder.enabled()) {
    std::string detail = rule.source.to_string();
    detail += " -> ";
    detail += rule.destination.to_string();
    detail += rule.action == policy::Action::Allow ? " allow" : " deny";
    record_event(telemetry::EventKind::RuleUpdate, "policy_server", std::move(detail));
  }
  policy_server_.update_rule(rule.vn, rule.source, rule.destination, rule.action);
}

void SdaFabric::provision_endpoint(const EndpointDefinition& endpoint) {
  policy_server_.provision_endpoint(endpoint.credential, endpoint.secret,
                                    policy::EndpointPolicy{endpoint.vn, endpoint.group});
  EndpointState state;
  state.definition = endpoint;
  endpoints_by_credential_[endpoint.credential] = std::move(state);
  credential_by_mac_[endpoint.mac] = endpoint.credential;
}

void SdaFabric::add_external_prefix(net::VnId vn, const net::Ipv4Prefix& prefix,
                                    net::GroupId group, std::uint32_t ttl_seconds) {
  for (const auto& name : border_order_) {
    borders_.at(name)->add_external_prefix(vn, prefix, group);
  }
  // The routing server answers external prefixes with the border RLOC so
  // edges cache a positive mapping instead of default-routing forever.
  lisp::MappingRecord record;
  record.rlocs = {net::Rloc{borders_.at(border_order_.front())->rloc()}};
  record.group = group;
  record.ttl_seconds = ttl_seconds;
  map_server_.register_prefix(vn, prefix, record);
  // Replicas must answer external prefixes too, or a failover turns every
  // Internet destination into a negative mapping.
  for (auto& replica : replica_dbs_) replica->register_prefix(vn, prefix, record);
}

// ---------------------------------------------------------------------------
// Onboarding (Fig. 3) and mobility (Fig. 5)
// ---------------------------------------------------------------------------

void SdaFabric::connect_endpoint(const std::string& credential, const std::string& edge,
                                 dataplane::PortId port, OnboardCallback callback) {
  const auto it = endpoints_by_credential_.find(credential);
  if (it == endpoints_by_credential_.end())
    throw std::invalid_argument("unknown credential: " + credential);
  onboard(it->second, edge, port, /*fast_reauth=*/false, std::move(callback));
}

void SdaFabric::roam_endpoint(const net::MacAddress& mac, const std::string& new_edge,
                              dataplane::PortId port, OnboardCallback callback) {
  const auto cred = credential_by_mac_.find(mac);
  if (cred == credential_by_mac_.end()) throw std::invalid_argument("unknown endpoint MAC");
  EndpointState& state = endpoints_by_credential_.at(cred->second);
  std::uint64_t move_trace = 0;
  if (telemetry_.causal.enabled() && !state.edge.empty() && state.edge != new_edge) {
    // A cross-edge roam is a Move operation: it spans re-auth, the fresh
    // Map-Register, and the mobility Map-Notify converging the old edge.
    move_trace =
        telemetry_.causal.begin(telemetry::OpKind::Move, mac.to_string(), simulator_.now());
  }
  if (!state.edge.empty() && state.edge != new_edge) {
    // Detach from the previous edge; its registration stays until the new
    // edge overwrites it (the old edge keeps forwarding via Map-Notify).
    edges_.at(state.edge)->detach_endpoint(mac, /*deregister=*/false);
    state.edge.clear();
  }
  onboard(state, new_edge, port, /*fast_reauth=*/true, std::move(callback), move_trace);
}

void SdaFabric::disconnect_endpoint(const net::MacAddress& mac) {
  const auto cred = credential_by_mac_.find(mac);
  if (cred == credential_by_mac_.end()) return;
  EndpointState& state = endpoints_by_credential_.at(cred->second);
  if (state.edge.empty()) return;
  services_.withdraw_provider(state.definition.vn, mac);  // mDNS goodbye
  edges_.at(state.edge)->detach_endpoint(mac, /*deregister=*/true);
  state.edge.clear();
}

void SdaFabric::onboard(EndpointState& state, const std::string& edge_name,
                        dataplane::PortId port, bool fast_reauth, OnboardCallback callback,
                        std::uint64_t move_trace) {
  assert(finalized_);
  // An endpoint can only be attached in one place: a fresh connect while
  // attached elsewhere behaves like an unplug + replug.
  if (!state.edge.empty() && state.edge != edge_name) {
    edges_.at(state.edge)->detach_endpoint(state.definition.mac, /*deregister=*/false);
    state.edge.clear();
  }
  dataplane::EdgeRouter& edge = *edges_.at(edge_name);
  const sim::SimTime started = simulator_.now();
  const EndpointDefinition def = state.definition;
  state.onboarding = true;

  auto fail = [this, &state, def, edge_name, started, callback, move_trace](const char*) {
    state.onboarding = false;
    if (move_trace != 0) telemetry_.causal.abandon(move_trace);
    if (!callback) return;
    OnboardResult result;
    result.success = false;
    result.credential = def.credential;
    result.mac = def.mac;
    result.edge = edge_name;
    result.elapsed = simulator_.now() - started;
    callback(result);
  };

  // Control-plane RTT between the edge and the (co-located) policy/DHCP
  // servers. If the underlay is partitioned, onboarding fails outright.
  const auto one_way = underlay_->transit_delay(edge.config().node, policy_server_rloc_, 0, 256);
  if (!one_way) {
    fail("underlay unreachable");
    return;
  }
  const sim::Duration rtt = *one_way * 2;
  const FabricTimings& t = config_.timings;

  const unsigned rounds = fast_reauth ? t.roam_auth_round_trips : t.auth_round_trips;
  // Radio detection and server processing jitter (lognormal multiplier).
  const double jitter = t.jitter_sigma > 0 ? rng_.lognormal(0.0, t.jitter_sigma) : 1.0;
  const auto jittered = [jitter](sim::Duration d) {
    return sim::Duration{static_cast<std::int64_t>(static_cast<double>(d.count()) * jitter)};
  };
  // Client-side path cost (detection + EAP round trips). The policy
  // server's CPU work is reserved separately so onboarding storms queue.
  const sim::Duration auth_client_delay = jittered(t.detection + rtt * rounds);
  const sim::Duration auth_cpu = jittered(t.auth_processing * rounds);
  // Roaming endpoints keep their sticky lease: no DHCP round trip (802.11r
  // style fast transition; the address must survive the move for L3
  // mobility to be seamless).
  const sim::Duration dhcp_delay =
      fast_reauth ? sim::Duration{0} : jittered(rtt + t.dhcp_processing);
  const sim::Duration rules_delay = jittered(rtt + t.rule_download_processing);

  // Reserve the auth CPU up front: requests hit the RADIUS queue in
  // arrival order regardless of their radio-side latency.
  const sim::SimTime cpu_done = reserve_policy_cpu(auth_cpu);
  const sim::SimTime auth_done = std::max(cpu_done, simulator_.now() + auth_client_delay);

  simulator_.schedule_at(auth_done, [this, &state, &edge, def, edge_name, port, started,
                                     dhcp_delay, rules_delay, fail, callback, fast_reauth,
                                     move_trace] {
    // Step 1-2: authenticate and fetch (VN, GroupId).
    policy::AccessRequest request;
    request.credential = def.credential;
    request.secret = def.secret;
    request.calling_mac = def.mac;
    request.nas_port = port;
    const auto policy = policy_server_.authenticate(request, edge.rloc());
    if (!policy) {
      fail("authentication rejected");
      return;
    }

    simulator_.schedule_after(rules_delay + dhcp_delay, [this, &state, &edge, def, edge_name,
                                                         port, started, policy, callback,
                                                         fail, fast_reauth, move_trace] {
      // Step 3: DHCP address (sticky lease).
      const auto ip = dhcp_.acquire(policy->vn, def.mac);
      if (!ip) {
        fail("address pool exhausted");
        return;
      }

      // Step 4: attach + register location (IPv4 + optional IPv6 + MAC).
      dataplane::AttachedEndpoint attached;
      attached.mac = def.mac;
      attached.ip = *ip;
      attached.vn = policy->vn;
      attached.group = policy->group;
      attached.port = port;
      attached.credential = def.credential;
      attached.register_mac = def.l2_services;
      attached.vlan = def.access_vlan;
      if (const auto slaac = slaac_prefixes_.find(policy->vn.value());
          slaac != slaac_prefixes_.end()) {
        attached.ipv6 = l2::slaac_address(slaac->second, def.mac);
      }

      state.edge = edge_name;
      state.port = port;
      state.onboarding = false;
      state.definition.group = policy->group;

      if (def.l2_services) {
        const net::VnEid l2_eid{policy->vn, net::Eid{*ip}};
        map_server_.bind_l2(l2_eid, def.mac);
        // Replicas answer L2 lookups after a failover, so the IP->MAC
        // binding fans out like every registration.
        for (auto& replica : replica_dbs_) replica->bind_l2(l2_eid, def.mac);
      }

      // Fire once the Map-Register completes at the routing server. The
      // waiter is always registered (not just when a callback was supplied):
      // it also feeds the onboarding/roam latency histograms and the flight
      // recorder, so passive observers see every arrival.
      const net::VnEid ip_eid{policy->vn, net::Eid{*ip}};
      if (move_trace != 0) {
        // The mobility Map-Notify / Publish for this EID carries the Move
        // trace; the op closes when the old edge applies the notify.
        move_trace_by_eid_[ip_eid] = move_trace;
      }
      pending_onboards_[ip_eid].push_back(
          [this, def, edge_name, started, policy, ip = *ip, ipv6 = attached.ipv6, callback,
           fast_reauth] {
            const sim::Duration elapsed = simulator_.now() - started;
            telemetry::LatencyHistogram* hist = fast_reauth ? roam_ms_ : onboard_ms_;
            if (hist) {
              hist->observe(std::chrono::duration<double, std::milli>(elapsed).count());
            }
            if (telemetry_.recorder.enabled()) {
              std::string detail = def.credential;
              detail += fast_reauth ? " roamed to " : " onboarded at ";
              detail += edge_name;
              record_event(
                  fast_reauth ? telemetry::EventKind::Roam : telemetry::EventKind::Onboard,
                  edge_name, std::move(detail));
            }
            if (!callback) return;
            OnboardResult result;
            result.success = true;
            result.credential = def.credential;
            result.mac = def.mac;
            result.ip = ip;
            result.ipv6 = ipv6;
            result.vn = policy->vn;
            result.group = policy->group;
            result.edge = edge_name;
            result.elapsed = simulator_.now() - started;
            callback(result);
          });
      edge.attach_endpoint(attached);
    });
  });
}

// ---------------------------------------------------------------------------
// Traffic injection
// ---------------------------------------------------------------------------

bool SdaFabric::endpoint_send_udp(const net::MacAddress& mac, net::Ipv4Address destination,
                                  std::uint16_t dport, std::uint16_t payload_bytes) {
  const auto cred = credential_by_mac_.find(mac);
  if (cred == credential_by_mac_.end()) return false;
  const EndpointState& state = endpoints_by_credential_.at(cred->second);
  if (state.edge.empty()) return false;
  dataplane::EdgeRouter& edge = *edges_.at(state.edge);
  const dataplane::AttachedEndpoint* attached = edge.find_endpoint(mac);
  if (!attached) return false;

  net::OverlayFrame frame;
  frame.source_mac = mac;
  frame.destination_mac = kGatewayMac;
  frame.vlan_id = attached->vlan;  // hosts on tagged ports send tagged frames
  net::Ipv4Datagram dgram;
  dgram.source = attached->ip;
  dgram.destination = destination;
  dgram.protocol = net::IpProtocol::Udp;
  dgram.source_port = static_cast<std::uint16_t>(0x8000 | (mac.to_u64() & 0x7FFF));
  dgram.destination_port = dport;
  dgram.payload_size = payload_bytes;
  frame.l3 = dgram;
  if (config_.trace_first_packets) {
    // Arm a path trace for the first packet of every new flow so the
    // first-packet latency histogram decomposes hop by hop.
    std::string key = attached->vn.to_string();
    key += '|';
    key += attached->ip.to_string();
    key += '|';
    key += destination.to_string();
    if (traced_flows_.insert(std::move(key)).second) {
      telemetry_.tracer.arm(net::VnEid{attached->vn, net::Eid{attached->ip}},
                            net::VnEid{attached->vn, net::Eid{destination}});
    }
  }
  edge.endpoint_transmit(mac, frame);
  return true;
}

bool SdaFabric::endpoint_send_udp6(const net::MacAddress& mac,
                                   const net::Ipv6Address& destination, std::uint16_t dport,
                                   std::uint16_t payload_bytes) {
  const auto cred = credential_by_mac_.find(mac);
  if (cred == credential_by_mac_.end()) return false;
  const EndpointState& state = endpoints_by_credential_.at(cred->second);
  if (state.edge.empty()) return false;
  dataplane::EdgeRouter& edge = *edges_.at(state.edge);
  const dataplane::AttachedEndpoint* attached = edge.find_endpoint(mac);
  if (!attached || !attached->ipv6) return false;

  net::OverlayFrame frame;
  frame.source_mac = mac;
  frame.destination_mac = kGatewayMac;
  frame.vlan_id = attached->vlan;  // hosts on tagged ports send tagged frames
  net::Ipv6Datagram dgram;
  dgram.source = *attached->ipv6;
  dgram.destination = destination;
  dgram.protocol = net::IpProtocol::Udp;
  dgram.source_port = static_cast<std::uint16_t>(0x8000 | (mac.to_u64() & 0x7FFF));
  dgram.destination_port = dport;
  dgram.payload_size = payload_bytes;
  frame.l3 = dgram;
  edge.endpoint_transmit(mac, frame);
  return true;
}

void SdaFabric::add_external_prefix(net::VnId vn, const net::Ipv6Prefix& prefix,
                                    net::GroupId group, std::uint32_t ttl_seconds) {
  for (const auto& name : border_order_) {
    borders_.at(name)->add_external_prefix(vn, prefix, group);
  }
  lisp::MappingRecord record;
  record.rlocs = {net::Rloc{borders_.at(border_order_.front())->rloc()}};
  record.group = group;
  record.ttl_seconds = ttl_seconds;
  map_server_.register_prefix(vn, prefix, record);
  for (auto& replica : replica_dbs_) replica->register_prefix(vn, prefix, record);
}

bool SdaFabric::endpoint_send_arp(const net::MacAddress& mac, net::Ipv4Address target) {
  const auto cred = credential_by_mac_.find(mac);
  if (cred == credential_by_mac_.end()) return false;
  const EndpointState& state = endpoints_by_credential_.at(cred->second);
  if (state.edge.empty()) return false;
  dataplane::EdgeRouter& edge = *edges_.at(state.edge);
  const dataplane::AttachedEndpoint* attached = edge.find_endpoint(mac);
  if (!attached) return false;

  net::OverlayFrame frame;
  frame.source_mac = mac;
  frame.destination_mac = net::MacAddress::broadcast();
  frame.vlan_id = attached->vlan;  // hosts on tagged ports send tagged frames
  net::ArpPacket arp;
  arp.op = net::ArpPacket::Op::Request;
  arp.sender_mac = mac;
  arp.sender_ip = attached->ip;
  arp.target_mac = net::MacAddress{};
  arp.target_ip = target;
  frame.l3 = arp;
  edge.endpoint_transmit(mac, frame);
  return true;
}

bool SdaFabric::advertise_service(const net::MacAddress& mac, const std::string& type,
                                  const std::string& name, std::uint16_t port) {
  const auto cred = credential_by_mac_.find(mac);
  if (cred == credential_by_mac_.end()) return false;
  const EndpointState& state = endpoints_by_credential_.at(cred->second);
  if (state.edge.empty()) return false;
  const dataplane::AttachedEndpoint* attached = edges_.at(state.edge)->find_endpoint(mac);
  if (!attached) return false;

  l2::ServiceInstance instance{type, name, attached->ip, port, mac};
  const net::VnId vn = attached->vn;
  // The advertisement rides the control plane to the registry.
  control_send(edges_.at(state.edge)->rloc(), map_server_rloc_, 96,
               [this, vn, instance = std::move(instance)] {
                 services_.advertise(vn, instance);
               });
  return true;
}

bool SdaFabric::endpoint_query_service(const net::MacAddress& mac, const std::string& type,
                                       ServiceQueryCallback callback) {
  const auto cred = credential_by_mac_.find(mac);
  if (cred == credential_by_mac_.end()) return false;
  const EndpointState& state = endpoints_by_credential_.at(cred->second);
  if (state.edge.empty()) return false;
  dataplane::EdgeRouter& edge = *edges_.at(state.edge);
  const dataplane::AttachedEndpoint* attached = edge.find_endpoint(mac);
  if (!attached) return false;

  // The "broadcast" query is absorbed at the edge and proxied: one control
  // round trip to the registry, then a unicast answer back to the querier.
  const net::VnId vn = attached->vn;
  const net::Ipv4Address edge_rloc = edge.rloc();
  control_send(edge_rloc, map_server_rloc_, 64,
               [this, vn, type, edge_rloc, callback = std::move(callback)] {
                 auto instances = services_.query(vn, type);
                 control_send(map_server_rloc_, edge_rloc, 64 + 32 * instances.size(),
                              [callback, instances = std::move(instances)] {
                                if (callback) callback(instances);
                              });
               });
  return true;
}

void SdaFabric::external_send_udp(const std::string& border, net::VnId vn,
                                  net::Ipv4Address source, net::Ipv4Address destination,
                                  std::uint16_t payload_bytes, net::GroupId source_group) {
  net::OverlayFrame frame;
  frame.source_mac = kGatewayMac;
  frame.destination_mac = kGatewayMac;
  net::Ipv4Datagram dgram;
  dgram.source = source;
  dgram.destination = destination;
  dgram.protocol = net::IpProtocol::Udp;
  dgram.payload_size = payload_bytes;
  frame.l3 = dgram;
  borders_.at(border)->external_receive(vn, source_group, frame);
}

// ---------------------------------------------------------------------------
// Operational events
// ---------------------------------------------------------------------------

void SdaFabric::set_link_state(const std::string& a, const std::string& b, bool up) {
  const underlay::NodeId na = nodes_by_name_.at(a);
  const underlay::NodeId nb = nodes_by_name_.at(b);
  for (const underlay::LinkId id : topology_.links_of(na)) {
    const underlay::Link& l = topology_.link(id);
    if (l.other(na) == nb) {
      topology_.set_link_state(id, up);
      underlay_->topology_changed();
      if (telemetry_.recorder.enabled()) {
        std::string detail = a;
        detail += " <-> ";
        detail += b;
        detail += up ? " up" : " down";
        record_event(telemetry::EventKind::LinkState, "fabric", std::move(detail));
      }
      return;
    }
  }
  throw std::invalid_argument("no link between " + a + " and " + b);
}

void SdaFabric::reboot_edge(const std::string& name, sim::Duration downtime) {
  dataplane::EdgeRouter& edge = *edges_.at(name);
  record_event(telemetry::EventKind::Reboot, name, "down");
  edge.reboot();
  topology_.set_node_state(edge.config().node, false);
  underlay_->topology_changed();

  // Collect the endpoints that were attached here; they re-onboard when the
  // router returns.
  std::vector<std::string> stranded;
  for (auto& [credential, state] : endpoints_by_credential_) {
    if (state.edge == name) {
      state.edge.clear();
      stranded.push_back(credential);
    }
  }

  simulator_.schedule_after(downtime, [this, name, stranded] {
    dataplane::EdgeRouter& rebooted = *edges_.at(name);
    record_event(telemetry::EventKind::Reboot, name, "up");
    topology_.set_node_state(rebooted.config().node, true);
    underlay_->topology_changed();
    for (const auto& credential : stranded) {
      EndpointState& state = endpoints_by_credential_.at(credential);
      onboard(state, name, state.port, /*fast_reauth=*/false, {});
    }
  });
}

bool SdaFabric::reassign_endpoint_group(const std::string& credential, net::GroupId new_group) {
  return policy_server_.reassign_group(credential, new_group);
}

void SdaFabric::set_border_feed_connected(const std::string& border, bool connected) {
  BorderFeedState& feed = border_feeds_.at(border);
  if (feed.connected == connected) return;
  feed.connected = connected;
  record_event(telemetry::EventKind::FeedState, border,
               connected ? "connected" : "disconnected");
  // Reconnect: the border cannot know how many updates it missed, so it
  // always pulls a snapshot (gap detection would only catch the loss once
  // the *next* publish arrives — possibly much later).
  if (connected) borders_.at(border)->request_resync();
}

bool SdaFabric::border_feed_connected(const std::string& border) const {
  return border_feeds_.at(border).connected;
}

std::uint64_t SdaFabric::border_publishes_dropped(const std::string& border) const {
  return border_feeds_.at(border).dropped_publishes;
}

void SdaFabric::resync_border(const std::string& name) {
  dataplane::BorderRouter& border = *borders_.at(name);
  // Leaderless window (open election, or a quorum-stalled minority): there
  // is no authority to snapshot from. The border's resync retry timer
  // re-requests until a quorate leader exists.
  if (control_leader() == HaMonitor::kNoLeader) return;
  record_event(telemetry::EventKind::Resync, name, "snapshot requested");
  // While a leader-change re-home is open, each border's resync round trip
  // is a span of the FailoverRehome op (retries open additional spans).
  const std::uint64_t rh_span =
      (rehome_trace_ != 0 && rehome_pending_.count(name) > 0)
          ? telemetry_.causal.span_begin(rehome_trace_, 0, "resync", name, simulator_.now())
          : 0;
  // Re-subscribe rides the control plane to the current feed authority —
  // server 0, or the elected leader — not a hardcoded primary; the
  // snapshot is captured when the request *arrives* and is paired with the
  // feed position the next publish will occupy, so replaying the sequenced
  // feed from `next_seq` onward is gap-free by construction. The leader's
  // term rides on the snapshot so the border's epoch fence advances.
  const std::size_t leader = control_leader();
  const net::Ipv4Address authority_rloc = server_nodes_[leader]->rloc();
  const lisp::Subscribe subscribe{border.rloc(), 0};
  control_send(border.rloc(), authority_rloc,
               lisp::message_wire_size(lisp::Message{subscribe}),
               [this, name, leader, authority_rloc, rh_span] {
    auto entries =
        std::make_shared<std::vector<std::pair<net::VnEid, lisp::MappingRecord>>>();
    const lisp::MapServer& db = leader == 0 ? map_server_ : *replica_dbs_[leader - 1];
    db.walk([&entries](const net::VnEid& eid, const lisp::MappingRecord& record) {
      entries->emplace_back(eid, record);
    });
    const std::uint64_t next_seq = publish_seq_ + 1;
    const std::uint64_t epoch = control_epoch_of(leader);
    dataplane::BorderRouter& target = *borders_.at(name);
    control_send(authority_rloc, target.rloc(), 64 + 48 * entries->size(),
                 [this, name, entries, next_seq, epoch, rh_span] {
                   // A snapshot for a disconnected feed is lost like any
                   // other update; the border's retry timer re-requests.
                   if (!border_feeds_.at(name).connected) return;
                   if (telemetry_.recorder.enabled()) {
                     std::string detail = std::to_string(entries->size());
                     detail += " entries, next seq ";
                     detail += std::to_string(next_seq);
                     record_event(telemetry::EventKind::SnapshotApplied, name,
                                  std::move(detail));
                   }
                   borders_.at(name)->apply_snapshot(*entries, next_seq, epoch);
                   // Applying the snapshot re-homes this border; the op
                   // completes when the last pending border has re-homed.
                   if (rehome_trace_ != 0 && rehome_pending_.erase(name) > 0) {
                     telemetry_.causal.span_end(rehome_trace_, rh_span, simulator_.now());
                     if (rehome_pending_.empty()) {
                       telemetry_.causal.finish(rehome_trace_, simulator_.now());
                       rehome_trace_ = 0;
                     }
                   }
                 });
  });
}

bool SdaFabric::is_feed_authority(std::size_t i) const {
  return ha_ && ha_->election_enabled() ? ha_->node_believes_leader(i) : i == 0;
}

std::uint64_t SdaFabric::control_epoch_of(std::size_t i) const {
  return ha_ && ha_->election_enabled() ? ha_->node_epoch(i) : 0;
}

std::size_t SdaFabric::control_leader() const {
  return ha_ && ha_->election_enabled() ? ha_->leader() : 0;
}

void SdaFabric::on_leader_changed(std::size_t leader, std::uint64_t epoch) {
  // Election-aware shedding (PR 9): the fresh leader absorbs the fabric's
  // re-registration stampede behind a ramped admission limit instead of
  // queueing it unboundedly.
  server_nodes_[leader]->begin_admission_ramp(config_.ha.post_election_ramp);
  // A freshly elected leader re-homes the control plane: every border
  // pulls a snapshot from the new authority (gap-free feed restart under
  // the new term), and every edge learns the new epoch so a resurrected
  // ex-leader's in-flight acks are fenced on arrival.
  if (telemetry_.causal.enabled()) {
    // A re-election mid-re-home supersedes the previous FailoverRehome op.
    if (rehome_trace_ != 0) telemetry_.causal.abandon(rehome_trace_);
    rehome_trace_ = telemetry_.causal.begin(telemetry::OpKind::FailoverRehome,
                                            "epoch " + std::to_string(epoch),
                                            simulator_.now());
    rehome_pending_.clear();
    for (const auto& name : border_order_) rehome_pending_.insert(name);
  }
  const net::Ipv4Address leader_rloc = server_nodes_[leader]->rloc();
  for (const auto& name : border_order_) borders_.at(name)->request_resync();
  for (const auto& name : edge_order_) {
    dataplane::EdgeRouter& edge = *edges_.at(name);
    control_send(leader_rloc, edge.rloc(), 32,
                 [&edge, epoch] { edge.observe_control_epoch(epoch); });
  }
}

// ---------------------------------------------------------------------------
// Plumbing
// ---------------------------------------------------------------------------

void SdaFabric::dispatch_fabric_frame(const net::FabricFrame& frame) {
  if (config_.validate_wire_format) {
    // Round-trip through the real VXLAN-GPO wire format; any asymmetry
    // between the structured model and the codecs is a bug.
    const auto decoded = net::FabricFrame::decode(frame.encode());
    if (!decoded || *decoded != frame) {
      throw std::logic_error("fabric frame failed wire-format round-trip");
    }
  }
  const underlay::NodeId from = node_of_rloc(frame.outer_source);
  // Audited by-value capture: the frame must outlive dispatch (the caller's
  // copy dies before arrival), so this callable exceeds the InlineAction SBO
  // buffer and deliberately takes the heap-fallback path. Everything the
  // per-event dispatch loop itself allocates stays at zero; this is the one
  // per-frame allocation, equivalent to the old std::function behavior.
  const bool delivered = underlay_->deliver(
      from, frame.outer_destination, frame_flow_hash(frame), frame.wire_size(),
      [this, frame] {
        if (telemetry_.tracer.open_count() > 0) {
          std::string via = frame.outer_source.to_string();
          via += " -> ";
          via += frame.outer_destination.to_string();
          telemetry_.tracer.note(frame.vn, frame.inner, telemetry::HopKind::Transit, "underlay",
                                 simulator_.now(), via);
        }
        if (const auto e = edge_by_rloc_.find(frame.outer_destination);
            e != edge_by_rloc_.end()) {
          edges_.at(e->second)->receive_fabric_frame(frame);
          return;
        }
        if (const auto b = border_by_rloc_.find(frame.outer_destination);
            b != border_by_rloc_.end()) {
          borders_.at(b->second)->receive_fabric_frame(frame);
        }
      });
  if (!delivered && telemetry_.tracer.open_count() > 0) {
    telemetry_.tracer.note(frame.vn, frame.inner, telemetry::HopKind::Drop, "underlay",
                           simulator_.now(), "unreachable-or-fault");
  }
}

void SdaFabric::control_send(net::Ipv4Address from, net::Ipv4Address to, std::size_t bytes,
                             std::function<void()> action) {
  if (from == to) {
    simulator_.schedule_after(sim::Duration{0}, std::move(action));
    return;
  }
  underlay_->deliver(node_of_rloc(from), to, std::hash<std::uint32_t>{}(from.value()), bytes,
                     std::move(action), underlay::TrafficClass::Control);
}

underlay::NodeId SdaFabric::node_of_rloc(net::Ipv4Address rloc) const {
  const auto node = topology_.node_by_loopback(rloc);
  assert(node.has_value());
  return *node;
}

dataplane::EdgeRouter& SdaFabric::edge(const std::string& name) { return *edges_.at(name); }

dataplane::BorderRouter& SdaFabric::border(const std::string& name) {
  return *borders_.at(name);
}

std::vector<std::string> SdaFabric::edge_names() const { return edge_order_; }
std::vector<std::string> SdaFabric::border_names() const { return border_order_; }

std::optional<std::string> SdaFabric::location_of(const net::MacAddress& mac) const {
  const auto cred = credential_by_mac_.find(mac);
  if (cred == credential_by_mac_.end()) return std::nullopt;
  const EndpointState& state = endpoints_by_credential_.at(cred->second);
  if (state.edge.empty()) return std::nullopt;
  return state.edge;
}

}  // namespace sda::fabric
