// Shard planning: partitioning a fabric's underlay nodes into per-edge-group
// event lanes and deriving the conservative lookahead the sharded simulator
// needs (the minimum latency of any link whose endpoints land in different
// lanes).
//
// The plan is pure data — which shard each node is homed to, plus the
// lookahead bound — so it can drive both the full LaneFabric harness (each
// lane owns a Simulator, an UnderlayNetwork view, and a MapCache) and the
// SdaFabric integration (edge groups and control legs annotated with their
// home lane for telemetry / future lane execution).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "underlay/topology.hpp"

namespace sda::fabric {

struct ShardPlan {
  std::size_t shards = 1;
  /// Home shard per NodeId (indexed by node id; sized to the topology).
  std::vector<std::uint32_t> node_shard;
  /// Member nodes per shard, in node-id order.
  std::vector<std::vector<underlay::NodeId>> members;
  /// Minimum latency over links that cross a shard boundary — the largest
  /// window the sharded core may conservatively advance without merging.
  /// Zero when no link crosses (one shard, or disconnected lanes).
  sim::Duration lookahead{0};
  /// Links whose endpoints live in different shards.
  std::size_t cross_links = 0;

  [[nodiscard]] std::uint32_t shard_of(underlay::NodeId node) const {
    return node < node_shard.size() ? node_shard[node] : 0;
  }
};

/// Builds a plan from explicit shard membership: `groups[s]` lists the nodes
/// homed to shard `s`; nodes missing from every group land on shard 0 (the
/// control lane). Lookahead is the minimum latency over links that end up
/// crossing shards — any cross-shard delivery path traverses at least one
/// such link, so its delay is >= this bound.
[[nodiscard]] ShardPlan compute_shard_plan(
    const underlay::Topology& topology,
    const std::vector<std::vector<underlay::NodeId>>& groups);

/// Convenience for the SdaFabric layout: distributes `edges` over `lanes`
/// shards contiguously in construction order (edge group i -> lane
/// i*lanes/n_edges), homing `control_nodes` (borders, routing/policy
/// servers, WLCs) to lane 0 alongside the first edge group so control legs
/// never cross for the common single-server case.
[[nodiscard]] ShardPlan compute_edge_group_plan(
    const underlay::Topology& topology, std::size_t lanes,
    const std::vector<underlay::NodeId>& edges,
    const std::vector<underlay::NodeId>& control_nodes);

}  // namespace sda::fabric
