#include "fabric/ha.hpp"

#include <cmath>
#include <memory>
#include <utility>

#include "telemetry/metrics.hpp"

namespace sda::fabric {

HaMonitor::HaMonitor(sim::Simulator& simulator, HaConfig config,
                     std::vector<lisp::MapServerNode*> servers,
                     std::vector<lisp::MapServer*> databases, ControlSend control_send,
                     EventHook event_hook, std::uint64_t seed)
    : simulator_(simulator),
      config_(config),
      servers_(std::move(servers)),
      databases_(std::move(databases)),
      control_send_(std::move(control_send)),
      event_hook_(std::move(event_hook)) {
  state_.resize(servers_.size());
  election_.resize(servers_.size());
  sync_.resize(servers_.size());
  node_rng_.reserve(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    state_[i].probe_source = servers_[i]->rloc();
    node_rng_.emplace_back(seed ^ (0xE1EC7ull * (i + 1)));
  }
  if (config_.catchup_log_capacity > 0) {
    // Every replica keeps the bounded mutation log so any node can serve
    // delta replay when it drives anti-entropy (leadership moves).
    for (lisp::MapServer* db : databases_) db->set_log_capacity(config_.catchup_log_capacity);
  }
}

void HaMonitor::set_probe_source(std::size_t server, net::Ipv4Address edge_rloc) {
  state_[server].probe_source = edge_rloc;
}

void HaMonitor::start() {
  if (config_.failover) {
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      simulator_.schedule_after(config_.heartbeat_interval, [this, i] { heartbeat(i); });
    }
  }
  if (config_.anti_entropy_interval.count() > 0 && databases_.size() > 1) {
    simulator_.schedule_after(config_.anti_entropy_interval, [this] { anti_entropy_round(); });
  }
  if (election_enabled()) {
    const sim::SimTime now = simulator_.now();
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      election_[i].last_assert = now;
      election_[i].watchdog_timeout = config_.election_timeout;
      arm_watchdog(i);
    }
    simulator_.schedule_after(config_.election_heartbeat_interval, [this] { assert_tick(); });
  }
}

std::size_t HaMonitor::active_server_for(std::size_t home) const {
  if (!config_.failover) return home;
  const auto usable = [this](std::size_t i) {
    return state_[i].up && !(config_.dampening && state_[i].suppressed);
  };
  if (usable(home)) return home;
  const std::size_t n = state_.size();
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t candidate = (home + k) % n;
    if (usable(candidate)) return candidate;
  }
  // Everything usable is gone; a merely-suppressed live server beats a
  // dead one (traffic must go somewhere), and with all servers down the
  // home is returned (keep trying; retransmission covers the gap).
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t candidate = (home + k) % n;
    if (state_[candidate].up) return candidate;
  }
  return home;
}

// ---------------------------------------------------------------------------
// Heartbeats and flap dampening
// ---------------------------------------------------------------------------

void HaMonitor::heartbeat(std::size_t server) {
  ServerState& st = state_[server];
  ++counters_.heartbeats_sent;
  // Decay the dampening penalty on the heartbeat cadence so a suppressed
  // server is released as soon as it drops below the reuse threshold —
  // not only on its next transition.
  refresh_dampening(server);
  // The probe and its ack each ride the control plane, so loss, extra
  // delay, and partitions fail heartbeats exactly like Map-Requests. The
  // verdict is decided once per heartbeat: whichever of {ack arrival,
  // timeout} fires first wins (a late ack after the timeout is ignored,
  // as the miss was already charged).
  auto resolved = std::make_shared<bool>(false);
  const net::Ipv4Address source = st.probe_source;
  const net::Ipv4Address target = servers_[server]->rloc();
  control_send_(source, target, 64, [this, server, source, target, resolved] {
    if (!servers_[server]->online()) return;  // a down server never answers
    control_send_(target, source, 64, [this, server, resolved] {
      if (*resolved) return;
      *resolved = true;
      heartbeat_verdict(server, /*answered=*/true);
    });
  });
  simulator_.schedule_after(config_.heartbeat_timeout, [this, server, resolved] {
    if (*resolved) return;
    *resolved = true;
    heartbeat_verdict(server, /*answered=*/false);
  });
  simulator_.schedule_after(config_.heartbeat_interval, [this, server] { heartbeat(server); });
}

void HaMonitor::heartbeat_verdict(std::size_t server, bool answered) {
  ServerState& st = state_[server];
  if (answered) {
    st.misses = 0;
    if (!st.up && ++st.ack_streak >= config_.up_after_acks) {
      st.up = true;
      st.ack_streak = 0;
      if (config_.dampening) charge_flap(server);
      if (st.suppressed) {
        // Hold-down: the recovery is recorded, but traffic does not
        // return until the penalty decays below reuse.
        return;
      }
      ++counters_.failbacks;
      emit(telemetry::EventKind::Failback, server,
           "restored after " + std::to_string(config_.up_after_acks) + " acks");
    }
    return;
  }
  ++counters_.heartbeat_misses;
  st.ack_streak = 0;
  if (st.up && ++st.misses >= config_.down_after_misses) {
    st.up = false;
    st.misses = 0;
    const bool already_suppressed = st.suppressed;
    if (config_.dampening) charge_flap(server);
    if (already_suppressed) return;  // held down: nobody was routed here
    ++counters_.failovers;
    emit(telemetry::EventKind::Failover, server,
         "declared down after " + std::to_string(config_.down_after_misses) + " misses");
  }
}

double HaMonitor::decayed_penalty(const ServerState& st) const {
  if (st.penalty <= 0.0) return 0.0;
  const sim::Duration dt = simulator_.now() - st.penalty_at;
  const double half_lives = static_cast<double>(dt.count()) /
                            static_cast<double>(config_.dampening_half_life.count());
  return st.penalty * std::exp2(-half_lives);
}

double HaMonitor::penalty(std::size_t i) const { return decayed_penalty(state_[i]); }

void HaMonitor::charge_flap(std::size_t server) {
  ServerState& st = state_[server];
  st.penalty = decayed_penalty(st) + config_.dampening_penalty;
  st.penalty_at = simulator_.now();
  if (!st.suppressed && st.penalty >= config_.dampening_suppress) {
    st.suppressed = true;
    ++counters_.suppressions;
    emit(telemetry::EventKind::ServerSuppressed, server,
         "suppressed, penalty " + std::to_string(static_cast<long long>(st.penalty)));
  }
}

void HaMonitor::refresh_dampening(std::size_t server) {
  if (!config_.dampening) return;
  ServerState& st = state_[server];
  st.penalty = decayed_penalty(st);
  st.penalty_at = simulator_.now();
  if (st.suppressed && st.penalty < config_.dampening_reuse) {
    st.suppressed = false;
    emit(telemetry::EventKind::ServerSuppressed, server,
         "released, penalty " + std::to_string(static_cast<long long>(st.penalty)));
    if (st.up) {
      // The deferred fail-back: the server recovered during the hold-down
      // and only now rejoins the rotation.
      ++counters_.failbacks;
      emit(telemetry::EventKind::Failback, server, "dampening hold-down released");
    }
  }
}

// ---------------------------------------------------------------------------
// Leader election (bully-with-epochs over the control legs)
// ---------------------------------------------------------------------------

std::size_t HaMonitor::leader() const {
  if (!election_enabled()) return 0;
  // Consensus view: the belief of the highest-epoch *online* node that
  // believes any leader exists. Offline nodes are skipped so a crashed
  // ex-leader's stale belief cannot fill the gap before the next win, and
  // leaderless beliefs (candidates mid-claim, quorum-stalled minorities)
  // never mask a still-working majority leader at a lower term.
  std::size_t best = kNoLeader;
  for (std::size_t i = 0; i < election_.size(); ++i) {
    if (!servers_[i]->online() || election_[i].leader == kNoLeader) continue;
    if (best == kNoLeader || election_[i].epoch > election_[best].epoch) best = i;
  }
  return best == kNoLeader ? kNoLeader : election_[best].leader;
}

std::uint64_t HaMonitor::epoch() const {
  if (!election_enabled()) return 0;
  std::uint64_t best = 0;
  for (const ElectionState& el : election_) best = std::max(best, el.epoch);
  return best;
}

std::uint64_t HaMonitor::leadership_epoch() const {
  if (!election_enabled()) return 0;
  std::uint64_t best = 0;
  for (const ElectionState& el : election_) {
    if (el.leader == kNoLeader) continue;  // a stalled candidacy is not leadership
    best = std::max(best, el.epoch);
  }
  return best;
}

void HaMonitor::arm_watchdog(std::size_t node) {
  ElectionState& el = election_[node];
  // Decorrelated jitter de-synchronizes replicas that lose the leader at
  // the same instant — without it, same-priority claims would tie on
  // every round. Hearing an assert resets the base (receive_assert).
  el.watchdog_timeout =
      sim::decorrelated_backoff(node_rng_[node], el.watchdog_timeout,
                                config_.election_timeout, config_.election_timeout * 3);
  simulator_.schedule_after(el.watchdog_timeout, [this, node] {
    const ElectionState& el = election_[node];
    if (servers_[node]->online() && el.leader != node && !el.candidate &&
        simulator_.now() - el.last_assert >= el.watchdog_timeout &&
        !(config_.dampening && state_[node].suppressed)) {
      start_election(node);
    }
    arm_watchdog(node);
  });
}

void HaMonitor::assert_tick() {
  // Every node that currently believes it leads asserts its term to every
  // peer (normally exactly one node; during split-brain both sides do,
  // and the epoch fence resolves the loser).
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (election_[i].leader != i) continue;
    if (!servers_[i]->online()) continue;  // a dead leader asserts nothing
    for (std::size_t j = 0; j < servers_.size(); ++j) {
      if (j != i) send_assert(i, j);
    }
  }
  simulator_.schedule_after(config_.election_heartbeat_interval, [this] { assert_tick(); });
}

void HaMonitor::send_assert(std::size_t from, std::size_t to) {
  const std::uint64_t e = election_[from].epoch;
  const std::size_t leader_hint = election_[from].leader;
  control_send_(servers_[from]->rloc(), servers_[to]->rloc(), 48,
                [this, from, to, e, leader_hint] {
                  receive_assert(to, from, e, leader_hint);
                });
}

void HaMonitor::start_election(std::size_t node) {
  ElectionState& el = election_[node];
  el.epoch += 1;
  el.candidate = true;
  el.votes = 0;
  // A candidacy is leaderless: the node that opens a term has given up on
  // the old leader. A sitting leader restating its own claim (objection
  // path) keeps its authority until actually deposed.
  if (el.leader != node) el.leader = kNoLeader;
  ++counters_.elections_started;
  emit(telemetry::EventKind::ElectionStarted, node,
       "opened term " + std::to_string(el.epoch));
  const std::uint64_t claim = el.epoch;
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    if (j == node) continue;
    control_send_(servers_[node]->rloc(), servers_[j]->rloc(), 48,
                  [this, node, j, claim] { receive_claim(j, node, claim); });
  }
  simulator_.schedule_after(config_.election_claim_timeout, [this, node, claim] {
    ElectionState& el = election_[node];
    // Unchallenged (no live lower-index peer objected with a newer term).
    if (!el.candidate || el.epoch != claim) return;
    if (config_.election_quorum && !quorum_reached(el)) {
      // Quorum elections: a candidate that cannot confirm a strict
      // majority of the configured replicas (a minority partition) stalls
      // leaderless instead of asserting — the watchdog retries with a
      // fresh term until the partition heals.
      el.candidate = false;
      el.leader = kNoLeader;
      quorum_lost_ = true;
      ++counters_.quorum_stalls;
      emit(telemetry::EventKind::QuorumLost, node,
           "term " + std::to_string(claim) + " stalled with " +
               std::to_string(el.votes + 1) + "/" + std::to_string(servers_.size()) +
               " replicas");
      return;
    }
    become_leader(node);
  });
}

void HaMonitor::receive_claim(std::size_t node, std::size_t from, std::uint64_t claim) {
  if (!servers_[node]->online()) return;
  ElectionState& el = election_[node];
  if (claim < el.epoch) {
    // Stale candidate (e.g. a healed partition replaying an old term):
    // answer with the current term so it stands down.
    ++counters_.epoch_rejections;
    emit(telemetry::EventKind::EpochRejected, node,
         "claim of term " + std::to_string(claim) + " from routing_server[" +
             std::to_string(from) + "], current " + std::to_string(el.epoch));
    send_assert(node, from);
    return;
  }
  if (config_.dampening && state_[from].suppressed) return;  // dampened: not electable
  // Bully objection: a live, unsuppressed lower-index node takes the
  // leadership by opening a newer term; everyone else defers.
  if (node < from && !(config_.dampening && state_[node].suppressed)) {
    el.epoch = claim;  // the counter-claim must supersede
    el.candidate = false;
    start_election(node);
    return;
  }
  el.epoch = claim;
  el.candidate = false;  // a concurrent same-term claim from a better index
  el.leader = kNoLeader;  // the old leader timed out somewhere; await the assert
  el.last_assert = simulator_.now();  // grant the candidate its claim window
  if (config_.election_quorum) {
    // Quorum vote: ack the deferral so the candidate can count a majority.
    control_send_(servers_[node]->rloc(), servers_[from]->rloc(), 24,
                  [this, node, from, claim] { receive_vote(from, node, claim); });
  }
}

void HaMonitor::receive_vote(std::size_t candidate, std::size_t /*from*/,
                             std::uint64_t claim) {
  if (!servers_[candidate]->online()) return;
  ElectionState& el = election_[candidate];
  // Stale ballots (a newer term opened, or the claim already resolved)
  // must not count toward the live candidacy.
  if (!el.candidate || el.epoch != claim) return;
  ++el.votes;
}

void HaMonitor::receive_assert(std::size_t node, std::size_t from, std::uint64_t e,
                               std::size_t leader_hint) {
  if (!servers_[node]->online()) return;
  ElectionState& el = election_[node];
  if (e < el.epoch) {
    // Split-brain fence: a resurrected stale leader asserts its old term;
    // reject it and notify it of the current term so it steps down.
    ++counters_.epoch_rejections;
    emit(telemetry::EventKind::EpochRejected, node,
         "assert of term " + std::to_string(e) + " from routing_server[" +
             std::to_string(from) + "], current " + std::to_string(el.epoch));
    if (leader_hint == from) send_assert(node, from);
    return;
  }
  if (leader_hint != kNoLeader && config_.dampening && state_[leader_hint].suppressed &&
      leader_hint != node) {
    // A dampened server's leadership is not honored: by ignoring the
    // assert the watchdog expires and elects an unsuppressed replica.
    return;
  }
  if (e > el.epoch) {
    el.epoch = e;
    el.candidate = false;
    el.leader = leader_hint;  // also deposes this node if it believed it led
  } else if (leader_hint < el.leader) {
    el.leader = leader_hint;  // same-term tie-break: lowest index wins
  } else if (leader_hint != el.leader) {
    return;  // same-term higher-index pretender: ignore
  }
  el.last_assert = simulator_.now();
  el.watchdog_timeout = config_.election_timeout;  // re-jitter from the base
}

void HaMonitor::become_leader(std::size_t node) {
  if (!servers_[node]->online()) return;
  ElectionState& el = election_[node];
  // Breach audit for the no-minority-leader invariant: with quorum
  // elections on, every win must have confirmed a strict majority.
  if (config_.election_quorum && !quorum_reached(el)) ++counters_.minority_leaders;
  el.candidate = false;
  el.leader = node;
  ++counters_.leaders_elected;
  emit(telemetry::EventKind::LeaderElected, node, "term " + std::to_string(el.epoch));
  if (quorum_lost_) {
    quorum_lost_ = false;
    emit(telemetry::EventKind::QuorumRegained, node, "term " + std::to_string(el.epoch));
  }
  for (std::size_t j = 0; j < servers_.size(); ++j) {
    if (j != node) send_assert(node, j);
  }
  // The fabric re-homes the pub/sub feed and the acking authority, and
  // advertises the new epoch to the edges (stale-ack fence).
  if (leader_changed_) leader_changed_(node, el.epoch);
}

// ---------------------------------------------------------------------------
// Anti-entropy (driven by whoever currently believes it leads)
// ---------------------------------------------------------------------------

void HaMonitor::anti_entropy_round() {
  ++counters_.anti_entropy_rounds;
  last_divergence_ = 0;
  for (std::size_t d = 0; d < servers_.size(); ++d) {
    if (!node_believes_leader(d) || !servers_[d]->online()) continue;
    for (std::size_t i = 0; i < databases_.size(); ++i) {
      if (i != d) anti_entropy_with(d, i);
    }
  }
  simulator_.schedule_after(config_.anti_entropy_interval, [this] { anti_entropy_round(); });
}

void HaMonitor::anti_entropy_with(std::size_t driver, std::size_t replica) {
  const net::Ipv4Address driver_rloc = servers_[driver]->rloc();
  const std::uint64_t digest_epoch = node_epoch(driver);
  // Digest query out to the replica; only a live replica answers. The
  // repair exchange is one more round trip carrying the differing
  // entries (modeled as a single reconcile at arrival — both sides
  // converge to the newest-registration-wins merge).
  control_send_(driver_rloc, servers_[replica]->rloc(),
                72, [this, driver, replica, driver_rloc, digest_epoch] {
    if (!servers_[replica]->online() || !servers_[driver]->online()) return;
    if (digest_epoch != 0 && digest_epoch < election_[replica].epoch) {
      // Split-brain fence: this replica has seen a newer term; the
      // driver is deposed and must not reconcile state into us.
      ++counters_.epoch_rejections;
      emit(telemetry::EventKind::EpochRejected, replica,
           "anti-entropy digest of term " + std::to_string(digest_epoch) +
               " from routing_server[" + std::to_string(driver) + "], current " +
               std::to_string(election_[replica].epoch));
      return;
    }
    if (databases_[driver]->digest() == databases_[replica]->digest()) {
      // In sync: note how far this replica tracks the driver's log so a
      // later lag can be repaired by delta replay, and close any catch-up
      // operation that was converging.
      note_synced(driver, replica);
      close_catchup(replica);
      return;
    }
    ++counters_.digest_mismatches;
    open_catchup(replica);
    lisp::MapServer& db = *databases_[driver];
    const SyncState& sync = sync_[replica];
    const std::uint64_t resume = sync.applied_seq + 1;
    // Delta replay is possible when the replica was last synced against
    // this driver's log, has not cold-restarted since (generation), and
    // the bounded log still covers the suffix it missed.
    const bool replayable = config_.catchup_log_capacity > 0 && sync.driver == driver &&
                            sync.generation == databases_[replica]->generation() &&
                            db.log_covers(resume) && resume < db.log_next_seq();
    if (replayable) {
      // Ship only the log suffix the replica missed instead of exchanging
      // full tables (the catchup_vs_snapshot drill measures the saving).
      auto entries = std::make_shared<std::vector<lisp::MapServer::LogEntry>>();
      db.replay_log(resume, [&entries](const lisp::MapServer::LogEntry& e) {
        entries->push_back(e);
      });
      const std::uint64_t tail = db.log_next_seq() - 1;
      const std::size_t bytes = 64 + 40 * entries->size();
      counters_.catchup_replay_bytes += bytes;
      control_send_(driver_rloc, servers_[replica]->rloc(), bytes,
                    [this, driver, replica, entries, tail] {
        if (!servers_[replica]->online() || !servers_[driver]->online()) return;
        for (const lisp::MapServer::LogEntry& e : *entries) {
          databases_[replica]->apply_log_entry(e);
        }
        sync_[replica].applied_seq = tail;
        sync_[replica].via_snapshot = false;
        ++counters_.catchup_replays;
        counters_.catchup_entries_replayed += entries->size();
        counters_.anti_entropy_repairs += entries->size();
        last_divergence_ += entries->size();
        emit(telemetry::EventKind::AntiEntropy, replica,
             "replayed " + std::to_string(entries->size()) + " log entries from leader " +
                 std::to_string(driver));
        // If the digests still disagree (the replica holds state this log
        // never saw), the next round falls back to the snapshot exchange.
        if (databases_[driver]->digest() == databases_[replica]->digest()) {
          close_catchup(replica);
        }
      });
      return;
    }
    if (config_.catchup_log_capacity > 0) ++counters_.catchup_snapshot_fallbacks;
    // Snapshot exchange: the replica ships its full table for diffing and
    // the repairs come back — billed as both tables in flight, which is
    // what makes delta replay measurably cheaper.
    const std::size_t bytes =
        64 + 48 * (databases_[driver]->mapping_count() + databases_[replica]->mapping_count());
    counters_.snapshot_bytes += bytes;
    control_send_(servers_[replica]->rloc(), driver_rloc, bytes, [this, driver, replica] {
      if (!servers_[replica]->online() || !servers_[driver]->online()) return;
      const lisp::MapServer::ReconcileStats stats = databases_[driver]->reconcile_with(
          *databases_[replica], simulator_.now(), config_.tombstone_horizon);
      const std::uint64_t repaired = stats.total();
      counters_.anti_entropy_repairs += repaired;
      last_divergence_ += repaired;
      if (repaired > 0) {
        emit(telemetry::EventKind::AntiEntropy, replica,
             "reconciled " + std::to_string(repaired) + " entries with leader " +
                 std::to_string(driver));
      }
      note_synced(driver, replica);
      sync_[replica].via_snapshot = true;
      if (databases_[driver]->digest() == databases_[replica]->digest()) {
        close_catchup(replica);
      }
    });
  });
}

void HaMonitor::note_synced(std::size_t driver, std::size_t replica) {
  SyncState& sync = sync_[replica];
  sync.driver = driver;
  sync.applied_seq = databases_[driver]->log_next_seq() - 1;
  sync.generation = databases_[replica]->generation();
}

void HaMonitor::open_catchup(std::size_t replica) {
  SyncState& sync = sync_[replica];
  if (sync.open) return;
  sync.open = true;
  sync.via_snapshot = false;
  if (catchup_begin_) catchup_begin_(replica);
}

void HaMonitor::close_catchup(std::size_t replica) {
  SyncState& sync = sync_[replica];
  if (!sync.open) return;
  sync.open = false;
  if (catchup_end_) catchup_end_(replica, sync.via_snapshot);
}

void HaMonitor::emit(telemetry::EventKind kind, std::size_t server, std::string detail) {
  if (!event_hook_) return;
  event_hook_(kind, "routing_server[" + std::to_string(server) + "]", std::move(detail));
}

void HaMonitor::register_metrics(telemetry::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "heartbeats_sent"),
                            [this] { return counters_.heartbeats_sent; });
  registry.register_counter(telemetry::join(prefix, "heartbeat_misses"),
                            [this] { return counters_.heartbeat_misses; });
  registry.register_counter(telemetry::join(prefix, "failovers"),
                            [this] { return counters_.failovers; });
  registry.register_counter(telemetry::join(prefix, "failbacks"),
                            [this] { return counters_.failbacks; });
  registry.register_counter(telemetry::join(prefix, "anti_entropy_rounds"),
                            [this] { return counters_.anti_entropy_rounds; });
  registry.register_counter(telemetry::join(prefix, "digest_mismatches"),
                            [this] { return counters_.digest_mismatches; });
  registry.register_counter(telemetry::join(prefix, "anti_entropy_repairs"),
                            [this] { return counters_.anti_entropy_repairs; });
  registry.register_counter(telemetry::join(prefix, "elections_started"),
                            [this] { return counters_.elections_started; });
  registry.register_counter(telemetry::join(prefix, "leaders_elected"),
                            [this] { return counters_.leaders_elected; });
  registry.register_counter(telemetry::join(prefix, "epoch_rejections"),
                            [this] { return counters_.epoch_rejections; });
  registry.register_counter(telemetry::join(prefix, "suppressions"),
                            [this] { return counters_.suppressions; });
  registry.register_counter(telemetry::join(prefix, "quorum_stalls"),
                            [this] { return counters_.quorum_stalls; });
  registry.register_counter(telemetry::join(prefix, "minority_leaders"),
                            [this] { return counters_.minority_leaders; });
  registry.register_counter(telemetry::join(prefix, "catchup.replays"),
                            [this] { return counters_.catchup_replays; });
  registry.register_counter(telemetry::join(prefix, "catchup.entries_replayed"),
                            [this] { return counters_.catchup_entries_replayed; });
  registry.register_counter(telemetry::join(prefix, "catchup.snapshot_fallbacks"),
                            [this] { return counters_.catchup_snapshot_fallbacks; });
  registry.register_counter(telemetry::join(prefix, "catchup.replay_bytes"),
                            [this] { return counters_.catchup_replay_bytes; });
  registry.register_counter(telemetry::join(prefix, "catchup.snapshot_bytes"),
                            [this] { return counters_.snapshot_bytes; });
  registry.register_gauge(telemetry::join(prefix, "servers_up"), [this] {
    std::size_t up = 0;
    for (const ServerState& st : state_) up += st.up ? 1 : 0;
    return static_cast<double>(up);
  });
  registry.register_gauge(telemetry::join(prefix, "replica_divergence"),
                          [this] { return static_cast<double>(last_divergence_); });
  registry.register_gauge(telemetry::join(prefix, "election.term"),
                          [this] { return static_cast<double>(epoch()); });
  registry.register_gauge(telemetry::join(prefix, "election.leader"), [this] {
    if (!election_enabled()) return -1.0;
    const std::size_t l = leader();
    return l == kNoLeader ? -1.0 : static_cast<double>(l);  // -1: leaderless
  });
  registry.register_gauge(telemetry::join(prefix, "election.quorum"), [this] {
    if (!election_enabled()) return -1.0;
    return quorum_lost_ ? 0.0 : 1.0;
  });
  registry.register_gauge(telemetry::join(prefix, "dampening.suppressed"), [this] {
    std::size_t suppressed = 0;
    for (const ServerState& st : state_) suppressed += st.suppressed ? 1 : 0;
    return static_cast<double>(suppressed);
  });
}

}  // namespace sda::fabric
