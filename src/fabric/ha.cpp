#include "fabric/ha.hpp"

#include <memory>
#include <utility>

#include "telemetry/metrics.hpp"

namespace sda::fabric {

HaMonitor::HaMonitor(sim::Simulator& simulator, HaConfig config,
                     std::vector<lisp::MapServerNode*> servers,
                     std::vector<lisp::MapServer*> databases, ControlSend control_send,
                     EventHook event_hook)
    : simulator_(simulator),
      config_(config),
      servers_(std::move(servers)),
      databases_(std::move(databases)),
      control_send_(std::move(control_send)),
      event_hook_(std::move(event_hook)) {
  state_.resize(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    state_[i].probe_source = servers_[i]->rloc();
  }
}

void HaMonitor::set_probe_source(std::size_t server, net::Ipv4Address edge_rloc) {
  state_[server].probe_source = edge_rloc;
}

void HaMonitor::start() {
  if (config_.failover) {
    for (std::size_t i = 0; i < servers_.size(); ++i) {
      simulator_.schedule_after(config_.heartbeat_interval, [this, i] { heartbeat(i); });
    }
  }
  if (config_.anti_entropy_interval.count() > 0 && databases_.size() > 1) {
    simulator_.schedule_after(config_.anti_entropy_interval, [this] { anti_entropy_round(); });
  }
}

std::size_t HaMonitor::active_server_for(std::size_t home) const {
  if (!config_.failover || state_[home].up) return home;
  const std::size_t n = state_.size();
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t candidate = (home + k) % n;
    if (state_[candidate].up) return candidate;
  }
  return home;
}

void HaMonitor::heartbeat(std::size_t server) {
  ServerState& st = state_[server];
  ++counters_.heartbeats_sent;
  // The probe and its ack each ride the control plane, so loss, extra
  // delay, and partitions fail heartbeats exactly like Map-Requests. The
  // verdict is decided once per heartbeat: whichever of {ack arrival,
  // timeout} fires first wins (a late ack after the timeout is ignored,
  // as the miss was already charged).
  auto resolved = std::make_shared<bool>(false);
  const net::Ipv4Address source = st.probe_source;
  const net::Ipv4Address target = servers_[server]->rloc();
  control_send_(source, target, 64, [this, server, source, target, resolved] {
    if (!servers_[server]->online()) return;  // a down server never answers
    control_send_(target, source, 64, [this, server, resolved] {
      if (*resolved) return;
      *resolved = true;
      heartbeat_verdict(server, /*answered=*/true);
    });
  });
  simulator_.schedule_after(config_.heartbeat_timeout, [this, server, resolved] {
    if (*resolved) return;
    *resolved = true;
    heartbeat_verdict(server, /*answered=*/false);
  });
  simulator_.schedule_after(config_.heartbeat_interval, [this, server] { heartbeat(server); });
}

void HaMonitor::heartbeat_verdict(std::size_t server, bool answered) {
  ServerState& st = state_[server];
  if (answered) {
    st.misses = 0;
    if (!st.up && ++st.ack_streak >= config_.up_after_acks) {
      st.up = true;
      st.ack_streak = 0;
      ++counters_.failbacks;
      emit(telemetry::EventKind::Failback, server,
           "restored after " + std::to_string(config_.up_after_acks) + " acks");
    }
    return;
  }
  ++counters_.heartbeat_misses;
  st.ack_streak = 0;
  if (st.up && ++st.misses >= config_.down_after_misses) {
    st.up = false;
    st.misses = 0;
    ++counters_.failovers;
    emit(telemetry::EventKind::Failover, server,
         "declared down after " + std::to_string(config_.down_after_misses) + " misses");
  }
}

void HaMonitor::anti_entropy_round() {
  ++counters_.anti_entropy_rounds;
  last_divergence_ = 0;
  const net::Ipv4Address primary_rloc = servers_[0]->rloc();
  if (servers_[0]->online()) {
    for (std::size_t i = 1; i < databases_.size(); ++i) {
      // Digest query out to the replica; only a live replica answers. The
      // repair exchange is one more round trip carrying the differing
      // entries (modeled as a single reconcile at arrival — both sides
      // converge to the newest-registration-wins merge).
      control_send_(primary_rloc, servers_[i]->rloc(), 72, [this, i, primary_rloc] {
        if (!servers_[i]->online() || !servers_[0]->online()) return;
        if (databases_[0]->digest() == databases_[i]->digest()) return;
        ++counters_.digest_mismatches;
        control_send_(servers_[i]->rloc(), primary_rloc, 256, [this, i] {
          if (!servers_[i]->online() || !servers_[0]->online()) return;
          const lisp::MapServer::ReconcileStats stats = databases_[0]->reconcile_with(
              *databases_[i], simulator_.now(), config_.tombstone_horizon);
          const std::uint64_t repaired = stats.total();
          counters_.anti_entropy_repairs += repaired;
          last_divergence_ += repaired;
          if (repaired > 0) {
            emit(telemetry::EventKind::AntiEntropy, i,
                 "reconciled " + std::to_string(repaired) + " entries with primary");
          }
        });
      });
    }
  }
  simulator_.schedule_after(config_.anti_entropy_interval, [this] { anti_entropy_round(); });
}

void HaMonitor::emit(telemetry::EventKind kind, std::size_t server, std::string detail) {
  if (!event_hook_) return;
  event_hook_(kind, "routing_server[" + std::to_string(server) + "]", std::move(detail));
}

void HaMonitor::register_metrics(telemetry::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "heartbeats_sent"),
                            [this] { return counters_.heartbeats_sent; });
  registry.register_counter(telemetry::join(prefix, "heartbeat_misses"),
                            [this] { return counters_.heartbeat_misses; });
  registry.register_counter(telemetry::join(prefix, "failovers"),
                            [this] { return counters_.failovers; });
  registry.register_counter(telemetry::join(prefix, "failbacks"),
                            [this] { return counters_.failbacks; });
  registry.register_counter(telemetry::join(prefix, "anti_entropy_rounds"),
                            [this] { return counters_.anti_entropy_rounds; });
  registry.register_counter(telemetry::join(prefix, "digest_mismatches"),
                            [this] { return counters_.digest_mismatches; });
  registry.register_counter(telemetry::join(prefix, "anti_entropy_repairs"),
                            [this] { return counters_.anti_entropy_repairs; });
  registry.register_gauge(telemetry::join(prefix, "servers_up"), [this] {
    std::size_t up = 0;
    for (const ServerState& st : state_) up += st.up ? 1 : 0;
    return static_cast<double>(up);
  });
  registry.register_gauge(telemetry::join(prefix, "replica_divergence"),
                          [this] { return static_cast<double>(last_divergence_); });
}

}  // namespace sda::fabric
