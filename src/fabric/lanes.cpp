#include "fabric/lanes.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <sstream>

namespace sda::fabric {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

/// The synthetic overlay address of global edge index `e`.
net::VnEid eid_of(std::uint32_t e) {
  return net::VnEid{net::VnId{1}, net::Eid{net::Ipv4Address{0xC0000000u + e}}};
}

}  // namespace

LaneFabric::LaneFabric(LaneFabricConfig config) : config_(config) {
  if (config_.lanes == 0) config_.lanes = 1;
  if (config_.edges_per_lane == 0) config_.edges_per_lane = 1;
  cross_ppm_ = static_cast<std::uint64_t>(
      std::clamp(config_.cross_lane_fraction, 0.0, 1.0) * 1'000'000.0);

  const std::size_t lanes = config_.lanes;
  std::vector<std::vector<underlay::NodeId>> groups(lanes);
  std::uint32_t next_ip = 0x0A000001u;
  for (std::size_t l = 0; l < lanes; ++l) {
    const underlay::NodeId hub =
        topology_.add_node("hub" + std::to_string(l), net::Ipv4Address{next_ip++});
    hub_nodes_.push_back(hub);
    groups[l].push_back(hub);
    for (std::size_t i = 0; i < config_.edges_per_lane; ++i) {
      const underlay::NodeId e = topology_.add_node(
          "edge" + std::to_string(l) + "." + std::to_string(i),
          net::Ipv4Address{next_ip++});
      topology_.add_link(hub, e, config_.local_link_latency);
      edge_nodes_.push_back(e);
      edge_rlocs_.push_back(topology_.node(e).loopback);
      groups[l].push_back(e);
    }
  }
  // The hub mesh is the only place lanes touch, so the plan's lookahead is
  // exactly the cross-link latency.
  for (std::size_t a = 0; a < lanes; ++a) {
    for (std::size_t b = a + 1; b < lanes; ++b) {
      topology_.add_link(hub_nodes_[a], hub_nodes_[b], config_.cross_link_latency);
    }
  }
  plan_ = compute_shard_plan(topology_, groups);
  core_ = std::make_unique<sim::ShardedSimulator>(sim::ShardedConfig{
      lanes, config_.workers, plan_.lookahead, config_.ring_capacity});

  lanes_.resize(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    Lane& lane = lanes_[l];
    lane.underlay = std::make_unique<underlay::UnderlayNetwork>(core_->shard(l), topology_);
    lane.underlay->bind_shard(*core_, static_cast<std::uint32_t>(l), plan_.node_shard);
    lane.rng = sim::Rng{config_.seed * 0x9E3779B97F4A7C15ull + l};
    // Pre-resolved overlay state: every lane can reach every edge without a
    // control-plane exchange, so the steady-state hop is lookup + deliver.
    for (std::uint32_t e = 0; e < edge_nodes_.size(); ++e) {
      lane.cache.install(eid_of(e), {net::Rloc{edge_rlocs_[e]}},
                         0x7FFFFFFFu, sim::SimTime{});
    }
    lane.underlay->register_metrics(lane.metrics, "underlay");
    lane.cache.register_metrics(lane.metrics, "map_cache");
    Lane* lp = &lane;  // lanes_ is sized once; element addresses are stable
    lane.metrics.register_counter("lane.delivered", [lp] { return lp->delivered; });
    if (config_.fault_drop_per_million > 0) {
      const std::uint64_t ppm = config_.fault_drop_per_million;
      lane.underlay->set_fault_injector(
          [lp, ppm](underlay::NodeId, net::Ipv4Address, std::size_t, std::uint32_t,
                    underlay::TrafficClass) {
            underlay::FaultDecision d;
            d.drop = lp->rng.next_below(1'000'000) < ppm;
            return d;
          });
    }
  }
}

void LaneFabric::arrive(std::uint32_t edge, std::uint32_t from_edge, std::uint32_t hop) {
  const std::uint32_t l = lane_of_edge(edge);
  Lane& lane = lanes_[l];
  const sim::SimTime now = core_->shard(l).now();
  const std::uint64_t word0 = static_cast<std::uint64_t>(now.nanoseconds());
  const std::uint64_t word1 = (std::uint64_t{edge} << 32) | from_edge;
  lane.digest = (lane.digest ^ word0) * kFnvPrime;
  lane.digest = (lane.digest ^ word1) * kFnvPrime;
  lane.digest = (lane.digest ^ hop) * kFnvPrime;
  if (config_.record_log) {
    lane.log.push_back(word0);
    lane.log.push_back(word1);
    lane.log.push_back(hop);
  }
  ++lane.delivered;
  if (hop == 0) return;

  const std::size_t per_lane = config_.edges_per_lane;
  const std::size_t lane_start = l * per_lane;
  std::uint32_t dest;
  if (config_.lanes > 1 && lane.rng.next_below(1'000'000) < cross_ppm_) {
    std::uint64_t idx = lane.rng.next_below(edge_nodes_.size() - per_lane);
    if (idx >= lane_start) idx += per_lane;  // skip over the home lane
    dest = static_cast<std::uint32_t>(idx);
  } else {
    dest = static_cast<std::uint32_t>(lane_start + lane.rng.next_below(per_lane));
  }
  const lisp::MapCacheEntry* entry = lane.cache.lookup(eid_of(dest), now);
  assert(entry != nullptr && !entry->negative());
  const std::uint64_t flow = (std::uint64_t{edge} << 32) ^ dest;
  // Sourced from the lane hub (not the edge node) so a lane resolves one
  // SPF table total instead of one per edge — on the 10k-edge scaling
  // fabric that is the difference between 4 Dijkstras and 10,000.
  auto on_arrival = [this, dest, e = edge, h = hop - 1] { arrive(dest, e, h); };
  static_assert(sim::InlineAction::fits_inline<decltype(on_arrival)>);
  lane.underlay->deliver(hub_nodes_[l], entry->primary_rloc(), flow, 200,
                         std::move(on_arrival));
}

std::uint64_t LaneFabric::run() {
  for (std::uint32_t e = 0; e < edge_nodes_.size(); ++e) {
    const std::uint32_t l = lane_of_edge(e);
    for (std::size_t p = 0; p < config_.packets_per_edge; ++p) {
      // Deterministic stagger spreads injections across the first ~1ms so
      // the opening window isn't one giant synchronized burst.
      const auto stagger = std::chrono::microseconds{(e * 7 + p * 131) % 997};
      core_->shard(l).schedule_at(
          sim::SimTime{} + stagger,
          [this, e, h = config_.hops_per_packet] { arrive(e, e, h); });
    }
  }
  return core_->run();
}

std::uint64_t LaneFabric::hops_delivered() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.delivered;
  return total;
}

std::uint64_t LaneFabric::fault_drops() const {
  std::uint64_t total = 0;
  for (const Lane& lane : lanes_) total += lane.underlay->fault_drops();
  return total;
}

std::uint64_t LaneFabric::log_digest() const {
  std::uint64_t digest = kFnvOffset;
  for (const Lane& lane : lanes_) digest = (digest ^ lane.digest) * kFnvPrime;
  return digest;
}

std::string LaneFabric::flight_log() const {
  struct Row {
    std::uint64_t at;
    std::uint32_t lane;
    std::uint64_t pos;
    std::uint64_t packed;
    std::uint64_t hop;
  };
  std::vector<Row> rows;
  for (std::uint32_t l = 0; l < lanes_.size(); ++l) {
    const std::vector<std::uint64_t>& log = lanes_[l].log;
    for (std::size_t i = 0; i + 3 <= log.size(); i += 3) {
      rows.push_back(Row{log[i], l, i / 3, log[i + 1], log[i + 2]});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.pos < b.pos;
  });
  std::ostringstream out;
  for (const Row& row : rows) {
    out << "t=" << row.at << " lane=" << row.lane << " edge=" << (row.packed >> 32)
        << " from=" << (row.packed & 0xFFFFFFFFu) << " hop=" << row.hop << "\n";
  }
  return out.str();
}

telemetry::Snapshot LaneFabric::merged_metrics() const {
  telemetry::Snapshot merged;
  for (const Lane& lane : lanes_) merged.merge(lane.metrics.snapshot());
  return merged;
}

}  // namespace sda::fabric
