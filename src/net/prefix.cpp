#include "net/prefix.hpp"

#include <charconv>

namespace sda::net {

namespace {

// Parses the "/len" suffix if present; returns the length or `max_len` for a
// bare address, nullopt on malformed input.
std::optional<std::uint8_t> split_length(std::string_view& text, std::uint8_t max_len) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return max_len;
  const std::string_view len_text = text.substr(slash + 1);
  text = text.substr(0, slash);
  unsigned len = 0;
  const auto* begin = len_text.data();
  const auto* end = len_text.data() + len_text.size();
  auto [ptr, ec] = std::from_chars(begin, end, len, 10);
  if (ec != std::errc{} || ptr != end || ptr == begin || len > max_len) return std::nullopt;
  return static_cast<std::uint8_t>(len);
}

}  // namespace

std::optional<Ipv4Prefix> Ipv4Prefix::parse(std::string_view text) {
  const auto length = split_length(text, 32);
  if (!length) return std::nullopt;
  const auto address = Ipv4Address::parse(text);
  if (!address) return std::nullopt;
  return Ipv4Prefix{*address, *length};
}

std::string Ipv4Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

Ipv6Prefix::Ipv6Prefix(const Ipv6Address& address, std::uint8_t length)
    : length_(length > 128 ? 128 : length) {
  Ipv6Address::Bytes bytes = address.bytes();
  const std::size_t full = length_ / 8;
  const std::uint8_t rem = length_ % 8;
  if (full < bytes.size()) {
    if (rem != 0) {
      bytes[full] &= static_cast<std::uint8_t>(0xFF << (8 - rem));
      for (std::size_t i = full + 1; i < bytes.size(); ++i) bytes[i] = 0;
    } else {
      for (std::size_t i = full; i < bytes.size(); ++i) bytes[i] = 0;
    }
  }
  address_ = Ipv6Address{bytes};
}

std::optional<Ipv6Prefix> Ipv6Prefix::parse(std::string_view text) {
  const auto length = split_length(text, 128);
  if (!length) return std::nullopt;
  const auto address = Ipv6Address::parse(text);
  if (!address) return std::nullopt;
  return Ipv6Prefix{*address, *length};
}

bool Ipv6Prefix::contains(const Ipv6Address& a) const {
  const auto& pb = address_.bytes();
  const auto& ab = a.bytes();
  const std::size_t full = length_ / 8;
  for (std::size_t i = 0; i < full; ++i) {
    if (pb[i] != ab[i]) return false;
  }
  const std::uint8_t rem = length_ % 8;
  if (rem == 0) return true;
  const auto mask = static_cast<std::uint8_t>(0xFF << (8 - rem));
  return (pb[full] & mask) == (ab[full] & mask);
}

std::string Ipv6Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace sda::net
