// Endpoint identifiers (EIDs) and routing locators (RLOCs).
//
// The routing server indexes endpoints by (VN, EID) where the EID is an
// IPv4 address, an IPv6 address, or — for L2 service support — a MAC
// address. The value side of a mapping is an RLOC: the underlay IPv4
// address of the edge router currently serving the endpoint.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>

#include "net/buffer.hpp"
#include "net/ip_address.hpp"
#include "net/mac_address.hpp"
#include "net/types.hpp"

namespace sda::net {

/// Address family of an EID, matching LISP AFI semantics.
enum class EidFamily : std::uint8_t { Ipv4 = 1, Ipv6 = 2, Mac = 6 };

/// An overlay endpoint identifier: IPv4, IPv6, or MAC address.
class Eid {
 public:
  constexpr Eid() : value_(Ipv4Address{}) {}
  constexpr explicit Eid(Ipv4Address a) : value_(a) {}
  constexpr explicit Eid(Ipv6Address a) : value_(a) {}
  constexpr explicit Eid(MacAddress a) : value_(a) {}

  [[nodiscard]] constexpr EidFamily family() const {
    if (std::holds_alternative<Ipv4Address>(value_)) return EidFamily::Ipv4;
    if (std::holds_alternative<Ipv6Address>(value_)) return EidFamily::Ipv6;
    return EidFamily::Mac;
  }

  [[nodiscard]] constexpr bool is_ipv4() const { return family() == EidFamily::Ipv4; }
  [[nodiscard]] constexpr bool is_ipv6() const { return family() == EidFamily::Ipv6; }
  [[nodiscard]] constexpr bool is_mac() const { return family() == EidFamily::Mac; }

  [[nodiscard]] constexpr Ipv4Address ipv4() const { return std::get<Ipv4Address>(value_); }
  [[nodiscard]] constexpr const Ipv6Address& ipv6() const { return std::get<Ipv6Address>(value_); }
  [[nodiscard]] constexpr const MacAddress& mac() const { return std::get<MacAddress>(value_); }

  /// Bit width of this EID family's key (32 / 128 / 48).
  [[nodiscard]] constexpr std::uint16_t bit_width() const {
    switch (family()) {
      case EidFamily::Ipv4: return 32;
      case EidFamily::Ipv6: return 128;
      case EidFamily::Mac: return 48;
    }
    return 0;
  }

  [[nodiscard]] std::string to_string() const;

  /// Wire form: family byte followed by the address bytes.
  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<Eid> decode(ByteReader& r);

  friend constexpr auto operator<=>(const Eid&, const Eid&) = default;

 private:
  std::variant<Ipv4Address, Ipv6Address, MacAddress> value_;
};

/// A routing locator: the underlay address of an edge/border router, with
/// LISP-style priority/weight for multihoming.
struct Rloc {
  Ipv4Address address;
  std::uint8_t priority = 1;  // lower preferred
  std::uint8_t weight = 100;  // load-balance share among equal priority

  [[nodiscard]] std::string to_string() const { return address.to_string(); }

  void encode(ByteWriter& w) const {
    w.write_array(address.bytes());
    w.write_u8(priority);
    w.write_u8(weight);
  }
  [[nodiscard]] static std::optional<Rloc> decode(ByteReader& r) {
    const auto bytes = r.read_array<4>();
    const auto priority = r.read_u8();
    const auto weight = r.read_u8();
    if (!bytes || !priority || !weight) return std::nullopt;
    return Rloc{Ipv4Address::from_bytes(*bytes), *priority, *weight};
  }

  friend constexpr auto operator<=>(const Rloc&, const Rloc&) = default;
};

/// A fully-qualified EID: the (VN, EID) pair the routing server keys on.
struct VnEid {
  VnId vn;
  Eid eid;

  [[nodiscard]] std::string to_string() const { return vn.to_string() + "/" + eid.to_string(); }

  void encode(ByteWriter& w) const {
    w.write_u24(vn.value());
    eid.encode(w);
  }
  [[nodiscard]] static std::optional<VnEid> decode(ByteReader& r) {
    const auto vn = r.read_u24();
    if (!vn) return std::nullopt;
    auto eid = Eid::decode(r);
    if (!eid) return std::nullopt;
    return VnEid{VnId{*vn}, *eid};
  }

  friend constexpr auto operator<=>(const VnEid&, const VnEid&) = default;
};

/// 64-bit avalanche (splitmix64 finalizer): every input bit flips each
/// output bit with ~1/2 probability, so nearby keys land in distant buckets.
constexpr std::size_t hash_mix(std::size_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Order-sensitive combiner (boost-style, 64-bit constants). The previous
/// `hash(vn) ^ (hash(eid) << 1)` collided systematically: both operands were
/// structured multiplies, so related (VN, EID) pairs cancelled each other.
constexpr std::size_t hash_combine(std::size_t seed, std::size_t value) noexcept {
  return seed ^ (hash_mix(value) + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2));
}

}  // namespace sda::net

template <>
struct std::hash<sda::net::Eid> {
  std::size_t operator()(const sda::net::Eid& e) const noexcept {
    const std::size_t family = static_cast<std::size_t>(e.family());
    switch (e.family()) {
      case sda::net::EidFamily::Ipv4:
        return sda::net::hash_combine(family, std::hash<sda::net::Ipv4Address>{}(e.ipv4()));
      case sda::net::EidFamily::Ipv6:
        return sda::net::hash_combine(family, std::hash<sda::net::Ipv6Address>{}(e.ipv6()));
      case sda::net::EidFamily::Mac:
        return sda::net::hash_combine(family, std::hash<sda::net::MacAddress>{}(e.mac()));
    }
    return sda::net::hash_mix(family);
  }
};

template <>
struct std::hash<sda::net::VnEid> {
  std::size_t operator()(const sda::net::VnEid& v) const noexcept {
    return sda::net::hash_combine(std::size_t{v.vn.value()},
                                  std::hash<sda::net::Eid>{}(v.eid));
  }
};
