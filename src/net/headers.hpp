// Wire headers used by the SDA data plane.
//
// The fabric encapsulation is VXLAN with the Group Policy Option
// (draft-smith-vxlan-group-policy): the outer stack is
// Ethernet / IPv4 / UDP(dport 4789) / VXLAN-GPO / inner frame.
// Each header encodes/decodes itself through ByteWriter/ByteReader; decode
// returns nullopt on truncated or malformed input.
#pragma once

#include <cstdint>
#include <optional>

#include "net/buffer.hpp"
#include "net/ip_address.hpp"
#include "net/mac_address.hpp"

namespace sda::net {

/// Well-known EtherTypes used by the fabric.
enum class EtherType : std::uint16_t {
  Ipv4 = 0x0800,
  Arp = 0x0806,
  Dot1Q = 0x8100,
  Ipv6 = 0x86DD,
};

/// Standard VXLAN UDP port (RFC 7348).
inline constexpr std::uint16_t kVxlanUdpPort = 4789;

struct EthernetHeader {
  MacAddress destination;
  MacAddress source;
  std::uint16_t ether_type = 0;

  static constexpr std::size_t kWireSize = 14;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<EthernetHeader> decode(ByteReader& r);

  friend bool operator==(const EthernetHeader&, const EthernetHeader&) = default;
};

/// IEEE 802.1Q VLAN tag (follows the Ethernet source MAC when present).
struct VlanTag {
  std::uint16_t vlan_id = 0;  // 12 bits
  std::uint8_t pcp = 0;       // 3 bits priority
  std::uint16_t ether_type = 0;

  static constexpr std::size_t kWireSize = 4;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<VlanTag> decode(ByteReader& r);

  friend bool operator==(const VlanTag&, const VlanTag&) = default;
};

/// IP protocol numbers used by the fabric.
enum class IpProtocol : std::uint8_t {
  Icmp = 1,
  Tcp = 6,
  Udp = 17,
};

struct Ipv4Header {
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  Ipv4Address source;
  Ipv4Address destination;

  static constexpr std::size_t kWireSize = 20;  // no options

  /// Encodes with a freshly computed header checksum.
  void encode(ByteWriter& w) const;

  /// Decodes and verifies the header checksum; nullopt on mismatch,
  /// truncation, version != 4, or IHL != 5 (options are not supported).
  [[nodiscard]] static std::optional<Ipv4Header> decode(ByteReader& r);

  friend bool operator==(const Ipv4Header&, const Ipv4Header&) = default;
};

struct Ipv6Header {
  std::uint8_t traffic_class = 0;
  std::uint32_t flow_label = 0;  // 20 bits
  std::uint16_t payload_length = 0;
  std::uint8_t next_header = 0;
  std::uint8_t hop_limit = 64;
  Ipv6Address source;
  Ipv6Address destination;

  static constexpr std::size_t kWireSize = 40;

  void encode(ByteWriter& w) const;
  /// nullopt on truncation or version != 6.
  [[nodiscard]] static std::optional<Ipv6Header> decode(ByteReader& r);

  friend bool operator==(const Ipv6Header&, const Ipv6Header&) = default;
};

struct UdpHeader {
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint16_t length = 0;  // header + payload

  static constexpr std::size_t kWireSize = 8;

  void encode(ByteWriter& w) const;  // checksum 0 (legal for IPv4)
  [[nodiscard]] static std::optional<UdpHeader> decode(ByteReader& r);

  friend bool operator==(const UdpHeader&, const UdpHeader&) = default;
};

/// VXLAN header with the Group Policy Option extension.
///
///  0                   1                   2                   3
///  |G|R|R|R|I|R|R|R|R|D|R|R|A|R|R|R|        Group Policy ID        |
///  |                VXLAN Network Identifier (VNI) |   Reserved    |
///
/// G=1 means the Group Policy ID carries the source GroupId (SGT);
/// I=1 means the VNI is valid. We always set I and set G when a group
/// tag is carried.
struct VxlanGpoHeader {
  bool group_policy_applied = false;  // A bit: policy already enforced upstream
  bool dont_learn = false;            // D bit
  std::uint16_t group_policy_id = 0;  // source GroupId (SGT), 0 = none
  std::uint32_t vni = 0;              // 24-bit VN identifier

  static constexpr std::size_t kWireSize = 8;

  void encode(ByteWriter& w) const;
  /// nullopt on truncation or if the I (valid-VNI) flag is clear.
  [[nodiscard]] static std::optional<VxlanGpoHeader> decode(ByteReader& r);

  friend bool operator==(const VxlanGpoHeader&, const VxlanGpoHeader&) = default;
};

/// ARP packet (IPv4-over-Ethernet flavour only).
struct ArpPacket {
  enum class Op : std::uint16_t { Request = 1, Reply = 2 };

  Op op = Op::Request;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;
  Ipv4Address target_ip;

  static constexpr std::size_t kWireSize = 28;

  void encode(ByteWriter& w) const;
  [[nodiscard]] static std::optional<ArpPacket> decode(ByteReader& r);

  friend bool operator==(const ArpPacket&, const ArpPacket&) = default;
};

}  // namespace sda::net
