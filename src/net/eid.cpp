#include "net/eid.hpp"

namespace sda::net {

std::string Eid::to_string() const {
  switch (family()) {
    case EidFamily::Ipv4: return ipv4().to_string();
    case EidFamily::Ipv6: return ipv6().to_string();
    case EidFamily::Mac: return mac().to_string();
  }
  return {};
}

void Eid::encode(ByteWriter& w) const {
  w.write_u8(static_cast<std::uint8_t>(family()));
  switch (family()) {
    case EidFamily::Ipv4: w.write_array(ipv4().bytes()); break;
    case EidFamily::Ipv6: w.write_array(ipv6().bytes()); break;
    case EidFamily::Mac: w.write_array(mac().bytes()); break;
  }
}

std::optional<Eid> Eid::decode(ByteReader& r) {
  const auto family = r.read_u8();
  if (!family) return std::nullopt;
  switch (static_cast<EidFamily>(*family)) {
    case EidFamily::Ipv4: {
      const auto b = r.read_array<4>();
      if (!b) return std::nullopt;
      return Eid{Ipv4Address::from_bytes(*b)};
    }
    case EidFamily::Ipv6: {
      const auto b = r.read_array<16>();
      if (!b) return std::nullopt;
      return Eid{Ipv6Address{*b}};
    }
    case EidFamily::Mac: {
      const auto b = r.read_array<6>();
      if (!b) return std::nullopt;
      return Eid{MacAddress{*b}};
    }
  }
  return std::nullopt;
}

}  // namespace sda::net
