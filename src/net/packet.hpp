// Structured packet model used by the simulated data plane.
//
// The simulator moves packets as structured values (cheap to copy, no
// per-hop reserialization); the same types can be rendered to and parsed
// from real wire bytes, which tests and micro-benchmarks exercise to keep
// the structured model honest with the on-the-wire format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/buffer.hpp"
#include "net/eid.hpp"
#include "net/headers.hpp"
#include "net/ip_address.hpp"
#include "net/mac_address.hpp"
#include "net/types.hpp"

namespace sda::net {

/// An overlay IPv4 datagram (the common case for endpoint traffic). The
/// payload is represented by its size only; contents never matter to the
/// fabric.
struct Ipv4Datagram {
  Ipv4Address source;
  Ipv4Address destination;
  IpProtocol protocol = IpProtocol::Udp;
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint16_t payload_size = 0;
  std::uint8_t ttl = 64;

  friend bool operator==(const Ipv4Datagram&, const Ipv4Datagram&) = default;
};

/// An overlay IPv6 datagram (each endpoint also carries an IPv6 identity —
/// the paper's "3 routes per endpoint" sizing in §4.1).
struct Ipv6Datagram {
  Ipv6Address source;
  Ipv6Address destination;
  IpProtocol protocol = IpProtocol::Udp;
  std::uint16_t source_port = 0;
  std::uint16_t destination_port = 0;
  std::uint16_t payload_size = 0;
  std::uint8_t hop_limit = 64;

  friend bool operator==(const Ipv6Datagram&, const Ipv6Datagram&) = default;
};

/// An L2 frame as emitted by an endpoint: Ethernet addressing plus an IPv4
/// or IPv6 datagram or an ARP packet, optionally 802.1Q tagged at the edge
/// port.
struct OverlayFrame {
  MacAddress source_mac;
  MacAddress destination_mac;
  std::optional<std::uint16_t> vlan_id;
  std::variant<Ipv4Datagram, Ipv6Datagram, ArpPacket> l3;

  [[nodiscard]] bool is_arp() const { return std::holds_alternative<ArpPacket>(l3); }
  [[nodiscard]] bool is_ipv4() const { return std::holds_alternative<Ipv4Datagram>(l3); }
  [[nodiscard]] bool is_ipv6() const { return std::holds_alternative<Ipv6Datagram>(l3); }
  [[nodiscard]] const Ipv4Datagram& ip() const { return std::get<Ipv4Datagram>(l3); }
  [[nodiscard]] Ipv4Datagram& ip() { return std::get<Ipv4Datagram>(l3); }
  [[nodiscard]] const Ipv6Datagram& ip6() const { return std::get<Ipv6Datagram>(l3); }
  [[nodiscard]] Ipv6Datagram& ip6() { return std::get<Ipv6Datagram>(l3); }
  [[nodiscard]] const ArpPacket& arp() const { return std::get<ArpPacket>(l3); }

  /// The L3 destination as an EID (IPv4 or IPv6); must not be ARP.
  [[nodiscard]] Eid destination_eid() const {
    return is_ipv6() ? Eid{ip6().destination} : Eid{ip().destination};
  }
  [[nodiscard]] Eid source_eid() const {
    return is_ipv6() ? Eid{ip6().source} : Eid{ip().source};
  }

  /// TTL / hop-limit access across families (loop protection in the fabric).
  [[nodiscard]] std::uint8_t hop_limit() const {
    return is_ipv6() ? ip6().hop_limit : ip().ttl;
  }
  void set_hop_limit(std::uint8_t v) {
    if (is_ipv6()) {
      ip6().hop_limit = v;
    } else {
      ip().ttl = v;
    }
  }

  /// Total frame size on the wire in bytes (without FCS).
  [[nodiscard]] std::size_t wire_size() const;

  /// Serializes the frame as real wire bytes.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<OverlayFrame> decode(std::span<const std::uint8_t> bytes);

  friend bool operator==(const OverlayFrame&, const OverlayFrame&) = default;
};

/// A fabric-encapsulated frame: outer IPv4/UDP/VXLAN-GPO around an overlay
/// frame, traveling between edge/border RLOCs across the underlay.
struct FabricFrame {
  Ipv4Address outer_source;       // ingress router RLOC
  Ipv4Address outer_destination;  // egress router RLOC
  VnId vn;
  GroupId source_group;
  bool policy_applied = false;  // GPO A-bit: set once an SGACL allowed it
  OverlayFrame inner;

  /// Total encapsulated size on the wire (outer Ethernet not counted; the
  /// underlay model accounts for per-hop L2 framing separately).
  [[nodiscard]] std::size_t wire_size() const {
    return Ipv4Header::kWireSize + UdpHeader::kWireSize + VxlanGpoHeader::kWireSize +
           inner.wire_size();
  }

  /// Serializes outer IPv4 + UDP + VXLAN-GPO + inner frame to wire bytes.
  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static std::optional<FabricFrame> decode(std::span<const std::uint8_t> bytes);

  friend bool operator==(const FabricFrame&, const FabricFrame&) = default;
};

}  // namespace sda::net
