// IPv4 / IPv6 address value types.
//
// Addresses are small, trivially copyable value types with total ordering,
// hashing, text parsing/formatting, and access to their raw big-endian bytes
// for wire serialization and for Patricia-trie keying.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sda::net {

/// An IPv4 address. Stored in host byte order; `bytes()` yields network order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("10.1.2.3"). Returns nullopt on any
  /// malformed input (empty octets, values > 255, trailing junk...).
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);

  /// The address as a host-byte-order integer.
  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// The address as 4 bytes in network (big-endian) order.
  [[nodiscard]] constexpr std::array<std::uint8_t, 4> bytes() const {
    return {static_cast<std::uint8_t>(value_ >> 24),
            static_cast<std::uint8_t>(value_ >> 16),
            static_cast<std::uint8_t>(value_ >> 8),
            static_cast<std::uint8_t>(value_)};
  }

  [[nodiscard]] static constexpr Ipv4Address from_bytes(const std::array<std::uint8_t, 4>& b) {
    return Ipv4Address{b[0], b[1], b[2], b[3]};
  }

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr bool is_unspecified() const { return value_ == 0; }
  [[nodiscard]] constexpr bool is_loopback() const { return (value_ >> 24) == 127; }
  [[nodiscard]] constexpr bool is_multicast() const { return (value_ >> 28) == 0xE; }
  [[nodiscard]] constexpr bool is_broadcast() const { return value_ == 0xFFFFFFFFu; }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// An IPv6 address, stored as 16 bytes in network order.
class Ipv6Address {
 public:
  using Bytes = std::array<std::uint8_t, 16>;

  constexpr Ipv6Address() = default;
  constexpr explicit Ipv6Address(const Bytes& bytes) : bytes_(bytes) {}

  /// Builds an address from 8 host-order 16-bit groups (RFC 4291 notation).
  [[nodiscard]] static constexpr Ipv6Address from_groups(const std::array<std::uint16_t, 8>& g) {
    Bytes b{};
    for (std::size_t i = 0; i < 8; ++i) {
      b[2 * i] = static_cast<std::uint8_t>(g[i] >> 8);
      b[2 * i + 1] = static_cast<std::uint8_t>(g[i] & 0xFF);
    }
    return Ipv6Address{b};
  }

  /// Parses RFC 4291 text (full or `::`-compressed; no embedded IPv4 form).
  [[nodiscard]] static std::optional<Ipv6Address> parse(std::string_view text);

  [[nodiscard]] constexpr const Bytes& bytes() const { return bytes_; }

  [[nodiscard]] constexpr std::uint16_t group(std::size_t i) const {
    return static_cast<std::uint16_t>((std::uint16_t{bytes_[2 * i]} << 8) | bytes_[2 * i + 1]);
  }

  /// Formats with `::` compression of the longest zero run (RFC 5952).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr bool is_unspecified() const {
    for (auto b : bytes_) {
      if (b != 0) return false;
    }
    return true;
  }
  [[nodiscard]] constexpr bool is_multicast() const { return bytes_[0] == 0xFF; }
  [[nodiscard]] constexpr bool is_link_local() const {
    return bytes_[0] == 0xFE && (bytes_[1] & 0xC0) == 0x80;
  }

  friend constexpr auto operator<=>(const Ipv6Address&, const Ipv6Address&) = default;

 private:
  Bytes bytes_{};
};

}  // namespace sda::net

template <>
struct std::hash<sda::net::Ipv4Address> {
  std::size_t operator()(sda::net::Ipv4Address a) const noexcept {
    // Fibonacci scrambling; the raw value is often sequential in tests.
    return static_cast<std::size_t>(a.value()) * 0x9E3779B97F4A7C15ull;
  }
};

template <>
struct std::hash<sda::net::Ipv6Address> {
  std::size_t operator()(const sda::net::Ipv6Address& a) const noexcept {
    std::size_t h = 0xcbf29ce484222325ull;
    for (auto b : a.bytes()) h = (h ^ b) * 0x100000001b3ull;
    return h;
  }
};
