// CIDR prefixes over IPv4 / IPv6 addresses.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/ip_address.hpp"

namespace sda::net {

/// An IPv4 CIDR prefix. The stored address is always canonicalized (host
/// bits zeroed), so two prefixes compare equal iff they denote the same set.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  /// Builds a prefix, masking host bits away. `length` is clamped to 32.
  constexpr Ipv4Prefix(Ipv4Address address, std::uint8_t length)
      : length_(length > 32 ? 32 : length),
        address_(Ipv4Address{address.value() & mask(length_)}) {}

  /// Parses "a.b.c.d/len". A bare address parses as a /32.
  [[nodiscard]] static std::optional<Ipv4Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr Ipv4Address address() const { return address_; }
  [[nodiscard]] constexpr std::uint8_t length() const { return length_; }

  [[nodiscard]] constexpr bool contains(Ipv4Address a) const {
    return (a.value() & mask(length_)) == address_.value();
  }
  [[nodiscard]] constexpr bool contains(const Ipv4Prefix& other) const {
    return other.length_ >= length_ && contains(other.address_);
  }

  /// The network mask for a given prefix length as a host-order integer.
  [[nodiscard]] static constexpr std::uint32_t mask(std::uint8_t length) {
    return length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
  }

  /// The i-th host address inside the prefix (no broadcast-awareness; the
  /// caller is responsible for staying inside the host range).
  [[nodiscard]] constexpr Ipv4Address host(std::uint32_t i) const {
    return Ipv4Address{address_.value() + i};
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&, const Ipv4Prefix&) = default;

 private:
  std::uint8_t length_ = 0;
  Ipv4Address address_{};
};

/// An IPv6 CIDR prefix, canonicalized like Ipv4Prefix.
class Ipv6Prefix {
 public:
  constexpr Ipv6Prefix() = default;
  Ipv6Prefix(const Ipv6Address& address, std::uint8_t length);

  /// Parses "hhhh::/len". A bare address parses as a /128.
  [[nodiscard]] static std::optional<Ipv6Prefix> parse(std::string_view text);

  [[nodiscard]] const Ipv6Address& address() const { return address_; }
  [[nodiscard]] std::uint8_t length() const { return length_; }

  [[nodiscard]] bool contains(const Ipv6Address& a) const;
  [[nodiscard]] bool contains(const Ipv6Prefix& other) const {
    return other.length_ >= length_ && contains(other.address_);
  }

  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Ipv6Prefix&, const Ipv6Prefix&) = default;

 private:
  std::uint8_t length_ = 0;
  Ipv6Address address_{};
};

}  // namespace sda::net
