// RFC 1071 Internet checksum.
#pragma once

#include <cstdint>
#include <span>

namespace sda::net {

/// Computes the 16-bit one's-complement Internet checksum over `data`.
/// Odd-length input is padded with a virtual zero byte, per RFC 1071.
[[nodiscard]] std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Folds an intermediate 32-bit sum and returns the complemented checksum.
[[nodiscard]] std::uint16_t fold_checksum(std::uint32_t sum);

}  // namespace sda::net
