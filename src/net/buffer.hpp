// Bounds-checked binary readers/writers for wire serialization.
//
// All multi-byte integers are written in network (big-endian) order, as on
// the wire. Readers never read past the end: every accessor returns an
// optional, and codecs propagate failure instead of throwing.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace sda::net {

/// Appends big-endian fields to a growable byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  void write_u8(std::uint8_t v) { buffer_.push_back(v); }

  void write_u16(std::uint16_t v) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
    buffer_.push_back(static_cast<std::uint8_t>(v));
  }

  void write_u24(std::uint32_t v) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> 16));
    buffer_.push_back(static_cast<std::uint8_t>(v >> 8));
    buffer_.push_back(static_cast<std::uint8_t>(v));
  }

  void write_u32(std::uint32_t v) {
    write_u16(static_cast<std::uint16_t>(v >> 16));
    write_u16(static_cast<std::uint16_t>(v));
  }

  void write_u64(std::uint64_t v) {
    write_u32(static_cast<std::uint32_t>(v >> 32));
    write_u32(static_cast<std::uint32_t>(v));
  }

  void write_bytes(std::span<const std::uint8_t> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  template <std::size_t N>
  void write_array(const std::array<std::uint8_t, N>& bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  /// Writes a length-prefixed (u16) UTF-8 string.
  void write_string(std::string_view s) {
    write_u16(static_cast<std::uint16_t>(s.size()));
    const auto* data = reinterpret_cast<const std::uint8_t*>(s.data());
    write_bytes({data, s.size()});
  }

  /// Overwrites a previously written u16 at `offset` (e.g. a length field
  /// backfilled once the payload size is known).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buffer_.at(offset) = static_cast<std::uint8_t>(v >> 8);
    buffer_.at(offset + 1) = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const { return buffer_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Reads big-endian fields from a byte span; never reads out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::optional<std::uint8_t> read_u8() {
    if (remaining() < 1) return std::nullopt;
    return data_[pos_++];
  }

  [[nodiscard]] std::optional<std::uint16_t> read_u16() {
    if (remaining() < 2) return std::nullopt;
    const auto v = static_cast<std::uint16_t>((std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  [[nodiscard]] std::optional<std::uint32_t> read_u24() {
    if (remaining() < 3) return std::nullopt;
    const std::uint32_t v = (std::uint32_t{data_[pos_]} << 16) |
                            (std::uint32_t{data_[pos_ + 1]} << 8) | data_[pos_ + 2];
    pos_ += 3;
    return v;
  }

  [[nodiscard]] std::optional<std::uint32_t> read_u32() {
    const auto hi = read_u16();
    const auto lo = read_u16();
    if (!hi || !lo) return std::nullopt;
    return (std::uint32_t{*hi} << 16) | *lo;
  }

  [[nodiscard]] std::optional<std::uint64_t> read_u64() {
    const auto hi = read_u32();
    const auto lo = read_u32();
    if (!hi || !lo) return std::nullopt;
    return (std::uint64_t{*hi} << 32) | *lo;
  }

  template <std::size_t N>
  [[nodiscard]] std::optional<std::array<std::uint8_t, N>> read_array() {
    if (remaining() < N) return std::nullopt;
    std::array<std::uint8_t, N> out{};
    std::memcpy(out.data(), data_.data() + pos_, N);
    pos_ += N;
    return out;
  }

  [[nodiscard]] std::optional<std::span<const std::uint8_t>> read_bytes(std::size_t n) {
    if (remaining() < n) return std::nullopt;
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Reads a u16-length-prefixed string written by ByteWriter::write_string.
  [[nodiscard]] std::optional<std::string> read_string() {
    const auto len = read_u16();
    if (!len) return std::nullopt;
    const auto bytes = read_bytes(*len);
    if (!bytes) return std::nullopt;
    return std::string(reinterpret_cast<const char*>(bytes->data()), bytes->size());
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace sda::net
