#include "net/mac_address.hpp"

#include <cctype>
#include <cstdio>

namespace sda::net {

namespace {

std::optional<std::uint8_t> hex_nibble(char c) {
  if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
  if (c >= 'A' && c <= 'F') return static_cast<std::uint8_t>(c - 'A' + 10);
  return std::nullopt;
}

}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view text) {
  if (text.size() != 17) return std::nullopt;
  Bytes bytes{};
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t pos = i * 3;
    if (i > 0 && text[pos - 1] != ':' && text[pos - 1] != '-') return std::nullopt;
    const auto hi = hex_nibble(text[pos]);
    const auto lo = hex_nibble(text[pos + 1]);
    if (!hi || !lo) return std::nullopt;
    bytes[i] = static_cast<std::uint8_t>((*hi << 4) | *lo);
  }
  return MacAddress{bytes};
}

std::string MacAddress::to_string() const {
  char buf[18];
  const int n = std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                              bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return std::string(buf, static_cast<std::size_t>(n));
}

}  // namespace sda::net
