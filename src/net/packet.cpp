#include "net/packet.hpp"

namespace sda::net {

std::size_t OverlayFrame::wire_size() const {
  std::size_t size = EthernetHeader::kWireSize;
  if (vlan_id) size += VlanTag::kWireSize;
  if (is_arp()) {
    size += ArpPacket::kWireSize;
  } else if (is_ipv6()) {
    const auto& dgram = ip6();
    size += Ipv6Header::kWireSize + dgram.payload_size;
    if (dgram.protocol == IpProtocol::Udp) size += UdpHeader::kWireSize;
  } else {
    const auto& dgram = ip();
    size += Ipv4Header::kWireSize + dgram.payload_size;
    if (dgram.protocol == IpProtocol::Udp) size += UdpHeader::kWireSize;
  }
  return size;
}

std::vector<std::uint8_t> OverlayFrame::encode() const {
  ByteWriter w{wire_size()};
  EthernetHeader eth;
  eth.destination = destination_mac;
  eth.source = source_mac;
  const std::uint16_t inner_type = static_cast<std::uint16_t>(
      is_arp() ? EtherType::Arp : (is_ipv6() ? EtherType::Ipv6 : EtherType::Ipv4));
  if (vlan_id) {
    eth.ether_type = static_cast<std::uint16_t>(EtherType::Dot1Q);
    eth.encode(w);
    VlanTag tag;
    tag.vlan_id = *vlan_id;
    tag.ether_type = inner_type;
    tag.encode(w);
  } else {
    eth.ether_type = inner_type;
    eth.encode(w);
  }

  if (is_arp()) {
    arp().encode(w);
  } else if (is_ipv6()) {
    const auto& dgram = ip6();
    const bool udp = dgram.protocol == IpProtocol::Udp;
    Ipv6Header ip6h;
    ip6h.payload_length =
        static_cast<std::uint16_t>((udp ? UdpHeader::kWireSize : 0) + dgram.payload_size);
    ip6h.next_header = static_cast<std::uint8_t>(dgram.protocol);
    ip6h.hop_limit = dgram.hop_limit;
    ip6h.source = dgram.source;
    ip6h.destination = dgram.destination;
    ip6h.encode(w);
    if (udp) {
      UdpHeader udph;
      udph.source_port = dgram.source_port;
      udph.destination_port = dgram.destination_port;
      udph.length = static_cast<std::uint16_t>(UdpHeader::kWireSize + dgram.payload_size);
      udph.encode(w);
    }
    for (std::uint16_t i = 0; i < dgram.payload_size; ++i) w.write_u8(0);
  } else {
    const auto& dgram = ip();
    const bool udp = dgram.protocol == IpProtocol::Udp;
    Ipv4Header iph;
    iph.total_length = static_cast<std::uint16_t>(
        Ipv4Header::kWireSize + (udp ? UdpHeader::kWireSize : 0) + dgram.payload_size);
    iph.ttl = dgram.ttl;
    iph.protocol = static_cast<std::uint8_t>(dgram.protocol);
    iph.source = dgram.source;
    iph.destination = dgram.destination;
    iph.encode(w);
    if (udp) {
      UdpHeader udph;
      udph.source_port = dgram.source_port;
      udph.destination_port = dgram.destination_port;
      udph.length = static_cast<std::uint16_t>(UdpHeader::kWireSize + dgram.payload_size);
      udph.encode(w);
    }
    // Payload bytes are zero-filled; only their size is semantically relevant.
    for (std::uint16_t i = 0; i < dgram.payload_size; ++i) w.write_u8(0);
  }
  return std::move(w).take();
}

std::optional<OverlayFrame> OverlayFrame::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  const auto eth = EthernetHeader::decode(r);
  if (!eth) return std::nullopt;

  OverlayFrame frame;
  frame.source_mac = eth->source;
  frame.destination_mac = eth->destination;

  std::uint16_t ether_type = eth->ether_type;
  if (ether_type == static_cast<std::uint16_t>(EtherType::Dot1Q)) {
    const auto tag = VlanTag::decode(r);
    if (!tag) return std::nullopt;
    frame.vlan_id = tag->vlan_id;
    ether_type = tag->ether_type;
  }

  if (ether_type == static_cast<std::uint16_t>(EtherType::Arp)) {
    const auto arp = ArpPacket::decode(r);
    if (!arp) return std::nullopt;
    frame.l3 = *arp;
    return frame;
  }
  if (ether_type == static_cast<std::uint16_t>(EtherType::Ipv6)) {
    const auto ip6h = Ipv6Header::decode(r);
    if (!ip6h) return std::nullopt;
    Ipv6Datagram dgram;
    dgram.source = ip6h->source;
    dgram.destination = ip6h->destination;
    dgram.protocol = static_cast<IpProtocol>(ip6h->next_header);
    dgram.hop_limit = ip6h->hop_limit;
    std::uint16_t header_bytes = 0;
    if (dgram.protocol == IpProtocol::Udp) {
      const auto udph = UdpHeader::decode(r);
      if (!udph) return std::nullopt;
      dgram.source_port = udph->source_port;
      dgram.destination_port = udph->destination_port;
      header_bytes = UdpHeader::kWireSize;
    }
    if (ip6h->payload_length < header_bytes) return std::nullopt;
    dgram.payload_size = static_cast<std::uint16_t>(ip6h->payload_length - header_bytes);
    if (r.remaining() < dgram.payload_size) return std::nullopt;
    frame.l3 = dgram;
    return frame;
  }
  if (ether_type != static_cast<std::uint16_t>(EtherType::Ipv4)) return std::nullopt;

  const auto iph = Ipv4Header::decode(r);
  if (!iph) return std::nullopt;
  Ipv4Datagram dgram;
  dgram.source = iph->source;
  dgram.destination = iph->destination;
  dgram.protocol = static_cast<IpProtocol>(iph->protocol);
  dgram.ttl = iph->ttl;
  std::uint16_t header_bytes = Ipv4Header::kWireSize;
  if (dgram.protocol == IpProtocol::Udp) {
    const auto udph = UdpHeader::decode(r);
    if (!udph) return std::nullopt;
    dgram.source_port = udph->source_port;
    dgram.destination_port = udph->destination_port;
    header_bytes += UdpHeader::kWireSize;
  }
  if (iph->total_length < header_bytes) return std::nullopt;
  dgram.payload_size = static_cast<std::uint16_t>(iph->total_length - header_bytes);
  if (r.remaining() < dgram.payload_size) return std::nullopt;
  frame.l3 = dgram;
  return frame;
}

std::vector<std::uint8_t> FabricFrame::encode() const {
  const auto inner_bytes = inner.encode();
  ByteWriter w{wire_size()};

  Ipv4Header outer;
  outer.total_length = static_cast<std::uint16_t>(Ipv4Header::kWireSize + UdpHeader::kWireSize +
                                                  VxlanGpoHeader::kWireSize + inner_bytes.size());
  outer.ttl = 64;
  outer.protocol = static_cast<std::uint8_t>(IpProtocol::Udp);
  outer.source = outer_source;
  outer.destination = outer_destination;
  outer.encode(w);

  UdpHeader udph;
  // Source port derived from an inner-flow hash for underlay ECMP entropy.
  std::size_t entropy = std::hash<MacAddress>{}(inner.source_mac) ^
                        (std::hash<MacAddress>{}(inner.destination_mac) << 1);
  udph.source_port = static_cast<std::uint16_t>(0xC000 | (entropy & 0x3FFF));
  udph.destination_port = kVxlanUdpPort;
  udph.length = static_cast<std::uint16_t>(UdpHeader::kWireSize + VxlanGpoHeader::kWireSize +
                                           inner_bytes.size());
  udph.encode(w);

  VxlanGpoHeader vxlan;
  vxlan.vni = vn.value();
  vxlan.group_policy_id = source_group.value();
  vxlan.group_policy_applied = policy_applied;
  vxlan.encode(w);

  w.write_bytes(inner_bytes);
  return std::move(w).take();
}

std::optional<FabricFrame> FabricFrame::decode(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  const auto outer = Ipv4Header::decode(r);
  if (!outer || outer->protocol != static_cast<std::uint8_t>(IpProtocol::Udp)) return std::nullopt;
  const auto udph = UdpHeader::decode(r);
  if (!udph || udph->destination_port != kVxlanUdpPort) return std::nullopt;
  const auto vxlan = VxlanGpoHeader::decode(r);
  if (!vxlan) return std::nullopt;
  const auto inner_bytes = r.read_bytes(r.remaining());
  if (!inner_bytes) return std::nullopt;
  auto inner = OverlayFrame::decode(*inner_bytes);
  if (!inner) return std::nullopt;

  FabricFrame frame;
  frame.outer_source = outer->source;
  frame.outer_destination = outer->destination;
  frame.vn = VnId{vxlan->vni};
  frame.source_group = GroupId{vxlan->group_policy_id};
  frame.policy_applied = vxlan->group_policy_applied;
  frame.inner = std::move(*inner);
  return frame;
}

}  // namespace sda::net
