// Ethernet MAC address value type.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sda::net {

/// A 48-bit IEEE 802 MAC address.
class MacAddress {
 public:
  using Bytes = std::array<std::uint8_t, 6>;

  constexpr MacAddress() = default;
  constexpr explicit MacAddress(const Bytes& bytes) : bytes_(bytes) {}

  /// Builds a MAC from its 48-bit integer value (lower 48 bits used).
  [[nodiscard]] static constexpr MacAddress from_u64(std::uint64_t v) {
    return MacAddress{Bytes{
        static_cast<std::uint8_t>(v >> 40), static_cast<std::uint8_t>(v >> 32),
        static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
        static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)}};
  }

  /// Parses "aa:bb:cc:dd:ee:ff" (also accepts '-' separators, upper case).
  [[nodiscard]] static std::optional<MacAddress> parse(std::string_view text);

  [[nodiscard]] static constexpr MacAddress broadcast() {
    return MacAddress{Bytes{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}};
  }

  [[nodiscard]] constexpr const Bytes& bytes() const { return bytes_; }

  [[nodiscard]] constexpr std::uint64_t to_u64() const {
    std::uint64_t v = 0;
    for (auto b : bytes_) v = (v << 8) | b;
    return v;
  }

  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] constexpr bool is_broadcast() const { return to_u64() == 0xFFFFFFFFFFFFull; }
  [[nodiscard]] constexpr bool is_multicast() const { return (bytes_[0] & 0x01) != 0; }
  [[nodiscard]] constexpr bool is_unicast() const { return !is_multicast(); }

  friend constexpr auto operator<=>(const MacAddress&, const MacAddress&) = default;

 private:
  Bytes bytes_{};
};

}  // namespace sda::net

template <>
struct std::hash<sda::net::MacAddress> {
  std::size_t operator()(const sda::net::MacAddress& m) const noexcept {
    return static_cast<std::size_t>(m.to_u64()) * 0x9E3779B97F4A7C15ull;
  }
};
