#include "net/ip_address.hpp"

#include <charconv>
#include <cstdio>
#include <vector>

namespace sda::net {

namespace {

// Parses a decimal octet in [0, 255]; advances `text` past it.
std::optional<std::uint8_t> parse_octet(std::string_view& text) {
  unsigned value = 0;
  const auto* begin = text.data();
  const auto* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
  // Reject leading zeros like "01" (ambiguous octal in many tools).
  if (ptr - begin > 1 && *begin == '0') return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return static_cast<std::uint8_t>(value);
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::array<std::uint8_t, 4> octets{};
  for (std::size_t i = 0; i < 4; ++i) {
    if (i > 0) {
      if (text.empty() || text.front() != '.') return std::nullopt;
      text.remove_prefix(1);
    }
    auto octet = parse_octet(text);
    if (!octet) return std::nullopt;
    octets[i] = *octet;
  }
  if (!text.empty()) return std::nullopt;
  return from_bytes(octets);
}

std::string Ipv4Address::to_string() const {
  const auto b = bytes();
  char buf[16];
  const int n = std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", b[0], b[1], b[2], b[3]);
  return std::string(buf, static_cast<std::size_t>(n));
}

std::optional<Ipv6Address> Ipv6Address::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;

  std::vector<std::uint16_t> head;
  std::vector<std::uint16_t> tail;
  bool seen_gap = false;

  auto parse_group = [](std::string_view& t) -> std::optional<std::uint16_t> {
    unsigned value = 0;
    const auto* begin = t.data();
    const auto* end = t.data() + t.size();
    auto [ptr, ec] = std::from_chars(begin, end, value, 16);
    if (ec != std::errc{} || ptr == begin || ptr - begin > 4) return std::nullopt;
    t.remove_prefix(static_cast<std::size_t>(ptr - begin));
    return static_cast<std::uint16_t>(value);
  };

  // Leading "::".
  if (text.starts_with("::")) {
    seen_gap = true;
    text.remove_prefix(2);
  }

  while (!text.empty()) {
    auto group = parse_group(text);
    if (!group) return std::nullopt;
    (seen_gap ? tail : head).push_back(*group);
    if (text.empty()) break;
    if (text.starts_with("::")) {
      if (seen_gap) return std::nullopt;  // only one gap allowed
      seen_gap = true;
      text.remove_prefix(2);
    } else if (text.front() == ':') {
      text.remove_prefix(1);
      if (text.empty()) return std::nullopt;  // trailing single colon
    } else {
      return std::nullopt;
    }
  }

  const std::size_t total = head.size() + tail.size();
  if (seen_gap ? total > 7 : total != 8) return std::nullopt;

  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i) groups[8 - tail.size() + i] = tail[i];
  return from_groups(groups);
}

std::string Ipv6Address::to_string() const {
  // Find the longest run of zero groups (length >= 2) for "::" compression.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (group(static_cast<std::size_t>(i)) != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && group(static_cast<std::size_t>(j)) == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  out.reserve(40);
  char buf[8];
  int i = 0;
  while (i < 8) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out += ':';
    const int n = std::snprintf(buf, sizeof(buf), "%x", group(static_cast<std::size_t>(i)));
    out.append(buf, static_cast<std::size_t>(n));
    ++i;
  }
  return out;
}

}  // namespace sda::net
