#include "net/headers.hpp"

#include "net/checksum.hpp"

namespace sda::net {

void EthernetHeader::encode(ByteWriter& w) const {
  w.write_array(destination.bytes());
  w.write_array(source.bytes());
  w.write_u16(ether_type);
}

std::optional<EthernetHeader> EthernetHeader::decode(ByteReader& r) {
  const auto dst = r.read_array<6>();
  const auto src = r.read_array<6>();
  const auto type = r.read_u16();
  if (!dst || !src || !type) return std::nullopt;
  return EthernetHeader{MacAddress{*dst}, MacAddress{*src}, *type};
}

void VlanTag::encode(ByteWriter& w) const {
  w.write_u16(static_cast<std::uint16_t>((std::uint16_t{pcp} << 13) | (vlan_id & 0x0FFF)));
  w.write_u16(ether_type);
}

std::optional<VlanTag> VlanTag::decode(ByteReader& r) {
  const auto tci = r.read_u16();
  const auto type = r.read_u16();
  if (!tci || !type) return std::nullopt;
  VlanTag tag;
  tag.vlan_id = *tci & 0x0FFF;
  tag.pcp = static_cast<std::uint8_t>(*tci >> 13);
  tag.ether_type = *type;
  return tag;
}

void Ipv4Header::encode(ByteWriter& w) const {
  ByteWriter h{kWireSize};
  h.write_u8(0x45);  // version 4, IHL 5
  h.write_u8(static_cast<std::uint8_t>(dscp << 2));
  h.write_u16(total_length);
  h.write_u16(identification);
  h.write_u16(0);  // flags + fragment offset: never fragmented in the fabric
  h.write_u8(ttl);
  h.write_u8(protocol);
  h.write_u16(0);  // checksum placeholder
  h.write_array(source.bytes());
  h.write_array(destination.bytes());
  auto bytes = std::move(h).take();
  const std::uint16_t sum = internet_checksum(bytes);
  bytes[10] = static_cast<std::uint8_t>(sum >> 8);
  bytes[11] = static_cast<std::uint8_t>(sum);
  w.write_bytes(bytes);
}

std::optional<Ipv4Header> Ipv4Header::decode(ByteReader& r) {
  const auto raw = r.read_bytes(kWireSize);
  if (!raw) return std::nullopt;
  const auto& b = *raw;
  if (b[0] != 0x45) return std::nullopt;  // require version 4, no options
  if (internet_checksum(b) != 0) return std::nullopt;
  Ipv4Header h;
  h.dscp = static_cast<std::uint8_t>(b[1] >> 2);
  h.total_length = static_cast<std::uint16_t>((std::uint16_t{b[2]} << 8) | b[3]);
  h.identification = static_cast<std::uint16_t>((std::uint16_t{b[4]} << 8) | b[5]);
  h.ttl = b[8];
  h.protocol = b[9];
  h.source = Ipv4Address{b[12], b[13], b[14], b[15]};
  h.destination = Ipv4Address{b[16], b[17], b[18], b[19]};
  return h;
}

void Ipv6Header::encode(ByteWriter& w) const {
  w.write_u32((6u << 28) | (std::uint32_t{traffic_class} << 20) | (flow_label & 0xFFFFF));
  w.write_u16(payload_length);
  w.write_u8(next_header);
  w.write_u8(hop_limit);
  w.write_array(source.bytes());
  w.write_array(destination.bytes());
}

std::optional<Ipv6Header> Ipv6Header::decode(ByteReader& r) {
  const auto word = r.read_u32();
  if (!word || (*word >> 28) != 6) return std::nullopt;
  const auto payload_length = r.read_u16();
  const auto next_header = r.read_u8();
  const auto hop_limit = r.read_u8();
  const auto source = r.read_array<16>();
  const auto destination = r.read_array<16>();
  if (!payload_length || !next_header || !hop_limit || !source || !destination) {
    return std::nullopt;
  }
  Ipv6Header h;
  h.traffic_class = static_cast<std::uint8_t>(*word >> 20);
  h.flow_label = *word & 0xFFFFF;
  h.payload_length = *payload_length;
  h.next_header = *next_header;
  h.hop_limit = *hop_limit;
  h.source = Ipv6Address{*source};
  h.destination = Ipv6Address{*destination};
  return h;
}

void UdpHeader::encode(ByteWriter& w) const {
  w.write_u16(source_port);
  w.write_u16(destination_port);
  w.write_u16(length);
  w.write_u16(0);  // checksum optional over IPv4
}

std::optional<UdpHeader> UdpHeader::decode(ByteReader& r) {
  const auto sport = r.read_u16();
  const auto dport = r.read_u16();
  const auto length = r.read_u16();
  const auto checksum = r.read_u16();
  if (!sport || !dport || !length || !checksum) return std::nullopt;
  return UdpHeader{*sport, *dport, *length};
}

void VxlanGpoHeader::encode(ByteWriter& w) const {
  std::uint8_t flags = 0x08;  // I bit
  if (group_policy_id != 0 || group_policy_applied) flags |= 0x80;  // G bit
  std::uint8_t policy_flags = 0;
  if (dont_learn) policy_flags |= 0x40;            // D bit
  if (group_policy_applied) policy_flags |= 0x08;  // A bit
  w.write_u8(flags);
  w.write_u8(policy_flags);
  w.write_u16(group_policy_id);
  w.write_u24(vni & 0xFFFFFF);
  w.write_u8(0);  // reserved
}

std::optional<VxlanGpoHeader> VxlanGpoHeader::decode(ByteReader& r) {
  const auto flags = r.read_u8();
  const auto policy_flags = r.read_u8();
  const auto group = r.read_u16();
  const auto vni = r.read_u24();
  const auto reserved = r.read_u8();
  if (!flags || !policy_flags || !group || !vni || !reserved) return std::nullopt;
  if ((*flags & 0x08) == 0) return std::nullopt;  // I bit must be set
  VxlanGpoHeader h;
  h.dont_learn = (*policy_flags & 0x40) != 0;
  h.group_policy_applied = (*policy_flags & 0x08) != 0;
  h.group_policy_id = (*flags & 0x80) != 0 ? *group : std::uint16_t{0};
  h.vni = *vni;
  return h;
}

void ArpPacket::encode(ByteWriter& w) const {
  w.write_u16(1);       // hardware type: Ethernet
  w.write_u16(0x0800);  // protocol type: IPv4
  w.write_u8(6);        // hardware size
  w.write_u8(4);        // protocol size
  w.write_u16(static_cast<std::uint16_t>(op));
  w.write_array(sender_mac.bytes());
  w.write_array(sender_ip.bytes());
  w.write_array(target_mac.bytes());
  w.write_array(target_ip.bytes());
}

std::optional<ArpPacket> ArpPacket::decode(ByteReader& r) {
  const auto htype = r.read_u16();
  const auto ptype = r.read_u16();
  const auto hsize = r.read_u8();
  const auto psize = r.read_u8();
  const auto op = r.read_u16();
  if (!htype || !ptype || !hsize || !psize || !op) return std::nullopt;
  if (*htype != 1 || *ptype != 0x0800 || *hsize != 6 || *psize != 4) return std::nullopt;
  if (*op != 1 && *op != 2) return std::nullopt;
  const auto smac = r.read_array<6>();
  const auto sip = r.read_array<4>();
  const auto tmac = r.read_array<6>();
  const auto tip = r.read_array<4>();
  if (!smac || !sip || !tmac || !tip) return std::nullopt;
  ArpPacket p;
  p.op = static_cast<Op>(*op);
  p.sender_mac = MacAddress{*smac};
  p.sender_ip = Ipv4Address::from_bytes(*sip);
  p.target_mac = MacAddress{*tmac};
  p.target_ip = Ipv4Address::from_bytes(*tip);
  return p;
}

}  // namespace sda::net
