// Fundamental fabric identifier types shared across planes.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace sda::net {

/// A Virtual Network identifier (24 bits on the wire, carried in the VXLAN
/// VNI field). VNs provide "macro" segmentation: traffic never crosses VNs.
class VnId {
 public:
  constexpr VnId() = default;
  constexpr explicit VnId(std::uint32_t value) : value_(value & 0xFFFFFF) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const { return "vn:" + std::to_string(value_); }

  friend constexpr auto operator<=>(VnId, VnId) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A scalable group tag (16 bits on the wire, carried in the VXLAN-GPO group
/// field). Groups provide "micro" segmentation inside a VN.
class GroupId {
 public:
  constexpr GroupId() = default;
  constexpr explicit GroupId(std::uint16_t value) : value_(value) {}

  /// Group 0 means "unknown / untagged"; SGACLs treat it permissively so
  /// infrastructure traffic is never dropped by micro-segmentation.
  [[nodiscard]] static constexpr GroupId unknown() { return GroupId{0}; }

  [[nodiscard]] constexpr std::uint16_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_unknown() const { return value_ == 0; }
  [[nodiscard]] std::string to_string() const { return "sgt:" + std::to_string(value_); }

  friend constexpr auto operator<=>(GroupId, GroupId) = default;

 private:
  std::uint16_t value_ = 0;
};

}  // namespace sda::net

template <>
struct std::hash<sda::net::VnId> {
  std::size_t operator()(sda::net::VnId v) const noexcept {
    return std::size_t{v.value()} * 0x9E3779B97F4A7C15ull;
  }
};

template <>
struct std::hash<sda::net::GroupId> {
  std::size_t operator()(sda::net::GroupId g) const noexcept {
    return std::size_t{g.value()} * 0x9E3779B97F4A7C15ull;
  }
};
