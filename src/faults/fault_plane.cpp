#include "faults/fault_plane.hpp"

#include <cmath>

namespace sda::faults {

FaultPlane::FaultPlane(sim::Simulator& simulator, underlay::UnderlayNetwork& network,
                       std::uint64_t seed)
    : simulator_(simulator), network_(network), rng_(seed) {
  network_.set_fault_injector(
      [this](underlay::NodeId, net::Ipv4Address, std::size_t, std::uint32_t hops,
             underlay::TrafficClass cls) { return decide(hops, cls); });
}

void FaultPlane::disarm() { network_.set_fault_injector(nullptr); }

underlay::FaultDecision FaultPlane::decide(std::uint32_t hops, underlay::TrafficClass cls) {
  const LossModel& model = cls == underlay::TrafficClass::Control ? control_ : data_;
  underlay::FaultDecision decision;

  double drop_p = model.loss;
  if (model.per_hop_loss > 0.0 && hops > 0) {
    const double survive = std::pow(1.0 - model.per_hop_loss, static_cast<double>(hops));
    drop_p = 1.0 - (1.0 - drop_p) * survive;
  }
  if (drop_p > 0.0 && rng_.chance(drop_p)) {
    decision.drop = true;
    if (cls == underlay::TrafficClass::Control) {
      ++counters_.control_drops;
    } else {
      ++counters_.data_drops;
    }
    return decision;
  }

  if (model.extra_jitter_max.count() > 0 && rng_.chance(model.extra_jitter_chance)) {
    decision.extra_delay = sim::Duration{rng_.uniform_int(0, model.extra_jitter_max.count())};
    ++counters_.delays_injected;
  }
  return decision;
}

void FaultPlane::flap_link(underlay::LinkId link, const FlapSchedule& schedule) {
  const sim::Duration period =
      schedule.period.count() > 0 ? schedule.period : schedule.down_for * 2;
  sim::Duration down_at = schedule.first_down;
  for (unsigned cycle = 0; cycle < schedule.cycles; ++cycle) {
    simulator_.schedule_after(down_at, [this, link] {
      network_.topology().set_link_state(link, false);
      network_.topology_changed();
      ++counters_.link_transitions;
    });
    simulator_.schedule_after(down_at + schedule.down_for, [this, link] {
      network_.topology().set_link_state(link, true);
      network_.topology_changed();
      ++counters_.link_transitions;
    });
    down_at += period;
  }
}

void FaultPlane::flap_node(underlay::NodeId node, const FlapSchedule& schedule) {
  const sim::Duration period =
      schedule.period.count() > 0 ? schedule.period : schedule.down_for * 2;
  sim::Duration down_at = schedule.first_down;
  for (unsigned cycle = 0; cycle < schedule.cycles; ++cycle) {
    simulator_.schedule_after(down_at, [this, node] {
      network_.topology().set_node_state(node, false);
      network_.topology_changed();
      ++counters_.node_transitions;
    });
    simulator_.schedule_after(down_at + schedule.down_for, [this, node] {
      network_.topology().set_node_state(node, true);
      network_.topology_changed();
      ++counters_.node_transitions;
    });
    down_at += period;
  }
}

std::vector<underlay::LinkId> FaultPlane::random_link_storm(unsigned count,
                                                            const FlapSchedule& schedule,
                                                            sim::Duration stagger) {
  const underlay::Topology& topology = network_.topology();
  std::vector<underlay::LinkId> candidates;
  candidates.reserve(topology.link_count());
  for (underlay::LinkId id = 0; id < topology.link_count(); ++id) candidates.push_back(id);
  rng_.shuffle(candidates);
  if (candidates.size() > count) candidates.resize(count);

  FlapSchedule staggered = schedule;
  std::vector<underlay::LinkId> chosen;
  for (const underlay::LinkId link : candidates) {
    flap_link(link, staggered);
    staggered.first_down += stagger;
    chosen.push_back(link);
  }
  return chosen;
}

void FaultPlane::server_outage(lisp::MapServerNode& node, sim::Duration at,
                               sim::Duration duration) {
  simulator_.schedule_after(at, [&node] { node.set_online(false); });
  simulator_.schedule_after(at + duration, [&node] { node.set_online(true); });
}

void FaultPlane::server_crash(lisp::MapServerNode& node, sim::Duration at,
                              sim::Duration downtime, bool preserve_database) {
  simulator_.schedule_after(at, [&node, preserve_database] { node.crash(preserve_database); });
  simulator_.schedule_after(at + downtime, [&node] { node.set_online(true); });
}

}  // namespace sda::faults
