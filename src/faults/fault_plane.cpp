#include "faults/fault_plane.hpp"

#include <cmath>
#include <string>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"


namespace sda::faults {

FaultPlane::FaultPlane(sim::Simulator& simulator, underlay::UnderlayNetwork& network,
                       std::uint64_t seed)
    : simulator_(simulator), network_(network), rng_(seed) {
  network_.set_fault_injector(
      [this](underlay::NodeId, net::Ipv4Address, std::size_t, std::uint32_t hops,
             underlay::TrafficClass cls) { return decide(hops, cls); });
}

void FaultPlane::disarm() { network_.set_fault_injector(nullptr); }

underlay::FaultDecision FaultPlane::decide(std::uint32_t hops, underlay::TrafficClass cls) {
  const LossModel& model = cls == underlay::TrafficClass::Control ? control_ : data_;
  underlay::FaultDecision decision;

  double drop_p = model.loss;
  if (model.per_hop_loss > 0.0 && hops > 0) {
    const double survive = std::pow(1.0 - model.per_hop_loss, static_cast<double>(hops));
    drop_p = 1.0 - (1.0 - drop_p) * survive;
  }
  if (drop_p > 0.0 && rng_.chance(drop_p)) {
    decision.drop = true;
    if (cls == underlay::TrafficClass::Control) {
      ++counters_.control_drops;
    } else {
      ++counters_.data_drops;
    }
    return decision;
  }

  if (model.extra_jitter_max.count() > 0 && rng_.chance(model.extra_jitter_chance)) {
    decision.extra_delay = sim::Duration{rng_.uniform_int(0, model.extra_jitter_max.count())};
    ++counters_.delays_injected;
  }
  return decision;
}

void FaultPlane::flap_link(underlay::LinkId link, const FlapSchedule& schedule) {
  const sim::Duration period =
      schedule.period.count() > 0 ? schedule.period : schedule.down_for * 2;
  sim::Duration down_at = schedule.first_down;
  for (unsigned cycle = 0; cycle < schedule.cycles; ++cycle) {
    simulator_.schedule_after(down_at, [this, link] {
      network_.topology().set_link_state(link, false);
      network_.topology_changed();
      ++counters_.link_transitions;
      record_fault("link down", std::to_string(link));
    });
    simulator_.schedule_after(down_at + schedule.down_for, [this, link] {
      network_.topology().set_link_state(link, true);
      network_.topology_changed();
      ++counters_.link_transitions;
      record_fault("link up", std::to_string(link));
    });
    down_at += period;
  }
}

void FaultPlane::flap_node(underlay::NodeId node, const FlapSchedule& schedule) {
  const sim::Duration period =
      schedule.period.count() > 0 ? schedule.period : schedule.down_for * 2;
  sim::Duration down_at = schedule.first_down;
  for (unsigned cycle = 0; cycle < schedule.cycles; ++cycle) {
    simulator_.schedule_after(down_at, [this, node] {
      network_.topology().set_node_state(node, false);
      network_.topology_changed();
      ++counters_.node_transitions;
      record_fault("node down", std::to_string(node));
    });
    simulator_.schedule_after(down_at + schedule.down_for, [this, node] {
      network_.topology().set_node_state(node, true);
      network_.topology_changed();
      ++counters_.node_transitions;
      record_fault("node up", std::to_string(node));
    });
    down_at += period;
  }
}

std::vector<underlay::LinkId> FaultPlane::random_link_storm(unsigned count,
                                                            const FlapSchedule& schedule,
                                                            sim::Duration stagger) {
  const underlay::Topology& topology = network_.topology();
  std::vector<underlay::LinkId> candidates;
  candidates.reserve(topology.link_count());
  for (underlay::LinkId id = 0; id < topology.link_count(); ++id) candidates.push_back(id);
  rng_.shuffle(candidates);
  if (candidates.size() > count) candidates.resize(count);

  FlapSchedule staggered = schedule;
  std::vector<underlay::LinkId> chosen;
  for (const underlay::LinkId link : candidates) {
    flap_link(link, staggered);
    staggered.first_down += stagger;
    chosen.push_back(link);
  }
  return chosen;
}

void FaultPlane::server_outage(lisp::MapServerNode& node, sim::Duration at,
                               sim::Duration duration) {
  simulator_.schedule_after(at, [this, &node] {
    node.set_online(false);
    record_fault("server outage", node.rloc().to_string());
  });
  simulator_.schedule_after(at + duration, [this, &node] {
    node.set_online(true);
    record_fault("server restored", node.rloc().to_string());
  });
}

void FaultPlane::server_crash(lisp::MapServerNode& node, sim::Duration at,
                              sim::Duration downtime, bool preserve_database) {
  simulator_.schedule_after(at, [this, &node, preserve_database] {
    node.crash(preserve_database);
    record_fault(preserve_database ? "server crash" : "server crash (db lost)", node.rloc().to_string());
  });
  simulator_.schedule_after(at + downtime, [this, &node] {
    node.set_online(true);
    record_fault("server restarted", node.rloc().to_string());
  });
}

void FaultPlane::partition_node(underlay::NodeId node, sim::Duration at,
                                sim::Duration duration) {
  simulator_.schedule_after(at, [this, node] {
    network_.topology().set_node_state(node, false);
    network_.topology_changed();
    ++counters_.node_transitions;
    record_fault("node partitioned", std::to_string(node));
  });
  simulator_.schedule_after(at + duration, [this, node] {
    network_.topology().set_node_state(node, true);
    network_.topology_changed();
    ++counters_.node_transitions;
    record_fault("node partition healed", std::to_string(node));
  });
}

void FaultPlane::server_oscillation(lisp::MapServerNode& node, sim::Duration at,
                                    sim::Duration down_for, sim::Duration up_for,
                                    unsigned cycles) {
  sim::Duration down_at = at;
  for (unsigned cycle = 0; cycle < cycles; ++cycle) {
    server_outage(node, down_at, down_for);
    down_at += down_for + up_for;
  }
}

void FaultPlane::policy_server_outage(policy::PolicyServer& server, sim::Duration at,
                                      sim::Duration duration) {
  simulator_.schedule_after(at, [this, &server] {
    server.set_online(false);
    record_fault("policy server outage", "policy");
  });
  simulator_.schedule_after(at + duration, [this, &server] {
    server.set_online(true);
    record_fault("policy server restored", "policy");
  });
}

void FaultPlane::record_fault(const char* what, const std::string& subject) {
  if (recorder_ == nullptr || !recorder_->enabled()) return;
  std::string detail = what;
  detail += ' ';
  detail += subject;
  recorder_->record(simulator_.now(), telemetry::EventKind::Fault, "faults", detail);
}

void FaultPlane::register_metrics(telemetry::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "data_drops"),
                            [this] { return counters_.data_drops; });
  registry.register_counter(telemetry::join(prefix, "control_drops"),
                            [this] { return counters_.control_drops; });
  registry.register_counter(telemetry::join(prefix, "delays_injected"),
                            [this] { return counters_.delays_injected; });
  registry.register_counter(telemetry::join(prefix, "link_transitions"),
                            [this] { return counters_.link_transitions; });
  registry.register_counter(telemetry::join(prefix, "node_transitions"),
                            [this] { return counters_.node_transitions; });
}

}  // namespace sda::faults
