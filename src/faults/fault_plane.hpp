// Deterministic fault-injection plane.
//
// Interposes on the simulation's weak points the way a chaos harness would
// on a production network: stochastic packet loss and jitter on underlay
// deliveries (split by traffic class, so control-plane loss can be studied
// independently of data loss), scheduled link/node flaps that drive real
// Topology mutations and IGP reconvergence, and control-plane server
// failures (outage windows, crash/restart with or without database loss).
//
// Everything is seeded: the same seed and schedule reproduce the same
// drops, the same flap timeline, and therefore the same convergence story
// — which is what makes chaos results comparable across code changes.
//
// The plane deliberately depends only on the underlay and LISP layers;
// fabric-level faults (pub/sub feed disconnects, edge reboots) already
// have first-class entry points on SdaFabric and compose with this class
// in tests and benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "lisp/map_server_node.hpp"
#include "policy/policy_server.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "underlay/network.hpp"
#include "underlay/topology.hpp"

namespace sda::telemetry {
class FlightRecorder;
class MetricsRegistry;
}

namespace sda::faults {

/// Stochastic impairment model for one traffic class.
struct LossModel {
  /// Path-level drop probability, applied once per delivery.
  double loss = 0.0;
  /// Per-link drop probability, compounded over the path's SPF hop count:
  /// P(survive) = (1 - per_hop_loss)^hops. Models lossy links rather than
  /// a lossy cloud.
  double per_hop_loss = 0.0;
  /// Probability that a surviving packet is delayed by extra jitter.
  double extra_jitter_chance = 0.0;
  /// Jitter magnitude: uniform in [0, extra_jitter_max].
  sim::Duration extra_jitter_max{0};
};

/// A scheduled down/up cycle for a link or node.
struct FlapSchedule {
  sim::Duration first_down{0};  // offset of the first down transition
  sim::Duration down_for = std::chrono::seconds{1};
  unsigned cycles = 1;          // number of down/up pairs
  /// Spacing between consecutive down transitions; 0 = 2 * down_for.
  sim::Duration period{0};
};

class FaultPlane {
 public:
  /// Installs itself as the network's fault injector on construction.
  FaultPlane(sim::Simulator& simulator, underlay::UnderlayNetwork& network,
             std::uint64_t seed);

  /// Detaches the injector (deliveries become lossless again).
  void disarm();

  // --- Stochastic loss / jitter ------------------------------------------

  void set_data_loss(const LossModel& model) { data_ = model; }
  void set_control_loss(const LossModel& model) { control_ = model; }

  // --- Scheduled link / node flaps ---------------------------------------

  void flap_link(underlay::LinkId link, const FlapSchedule& schedule);
  void flap_node(underlay::NodeId node, const FlapSchedule& schedule);

  /// Picks `count` distinct links (seeded) and applies the schedule to
  /// each, staggering consecutive picks by `stagger`. Returns the chosen
  /// links so callers can correlate with observed behaviour.
  std::vector<underlay::LinkId> random_link_storm(unsigned count, const FlapSchedule& schedule,
                                                  sim::Duration stagger = sim::Duration{0});

  // --- Control-plane server faults ---------------------------------------

  /// Outage window [at, at + duration): the server silently drops every
  /// submission, then comes back with its state intact.
  void server_outage(lisp::MapServerNode& node, sim::Duration at, sim::Duration duration);

  /// Crash at `at`, restart after `downtime`. preserve_database=false
  /// models losing the registration DB (cold restart); true models a
  /// process restart in front of durable state.
  void server_crash(lisp::MapServerNode& node, sim::Duration at, sim::Duration downtime,
                    bool preserve_database);

  /// Network partition of a node [at, at + duration): the node itself
  /// stays up (its process keeps running and keeps believing whatever it
  /// believed), but the underlay isolates it — the split-brain scenario
  /// for a leader: it keeps asserting into the void while the majority
  /// elects a successor, and its stale-epoch messages are fenced on heal.
  void partition_node(underlay::NodeId node, sim::Duration at, sim::Duration duration);

  /// A server oscillating at the miss/ack boundary: starting at `at`, the
  /// server goes down for `down_for`, up for `up_for`, repeated `cycles`
  /// times (ends up). The flap-dampening drill: without dampening every
  /// cycle produces a failover/failback pair; with it, at most one.
  void server_oscillation(lisp::MapServerNode& node, sim::Duration at, sim::Duration down_for,
                          sim::Duration up_for, unsigned cycles);

  /// Policy-server outage window [at, at + duration): authentications and
  /// rule downloads fail until the server returns (edges retry downloads;
  /// the SGACL fail mode governs traffic in between).
  void policy_server_outage(policy::PolicyServer& server, sim::Duration at,
                            sim::Duration duration);

  // --- Introspection ------------------------------------------------------

  struct Counters {
    std::uint64_t data_drops = 0;
    std::uint64_t control_drops = 0;
    std::uint64_t delays_injected = 0;
    std::uint64_t link_transitions = 0;
    std::uint64_t node_transitions = 0;
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Registers pull probes for the injection counters under `prefix`
  /// (e.g. "faults"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

  /// Attaches a flight recorder (nullptr detaches): link/node transitions
  /// and server outage/crash windows land in it as Fault events, so a
  /// chaos run's event timeline can be replayed next to its metrics.
  void set_recorder(telemetry::FlightRecorder* recorder) { recorder_ = recorder; }

  [[nodiscard]] sim::Rng& rng() { return rng_; }

 private:
  [[nodiscard]] underlay::FaultDecision decide(std::uint32_t hops, underlay::TrafficClass cls);

  /// Logs a Fault event on the attached recorder (no-op when detached).
  void record_fault(const char* what, const std::string& subject);

  sim::Simulator& simulator_;
  underlay::UnderlayNetwork& network_;
  sim::Rng rng_;
  LossModel data_;
  LossModel control_;
  Counters counters_;
  telemetry::FlightRecorder* recorder_ = nullptr;
};

}  // namespace sda::faults
