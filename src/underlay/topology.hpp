// Underlay topology: routers (nodes) and point-to-point links.
//
// The underlay is a plain-IP network (paper §3.3): edge/border routers plus
// optional intermediate switches, running a link-state IGP. Each fabric
// node owns a loopback address that serves as its RLOC.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip_address.hpp"
#include "sim/time.hpp"

namespace sda::underlay {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

struct Node {
  std::string name;
  net::Ipv4Address loopback;  // the node's RLOC
  bool up = true;
};

struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  sim::Duration latency{0};
  std::uint32_t cost = 1;
  double bandwidth_gbps = 10.0;
  bool up = true;

  [[nodiscard]] NodeId other(NodeId n) const { return n == a ? b : a; }
};

/// A mutable graph of nodes and links. Mutations bump a version counter so
/// routing layers know when to recompute.
class Topology {
 public:
  NodeId add_node(std::string name, net::Ipv4Address loopback);
  LinkId add_link(NodeId a, NodeId b, sim::Duration latency, std::uint32_t cost = 1,
                  double bandwidth_gbps = 10.0);

  /// Marks a link up/down (models fiber cut / restore).
  void set_link_state(LinkId link, bool up);
  /// Marks a node up/down (models router reboot); its links stay configured
  /// but are treated as unusable while the node is down.
  void set_node_state(NodeId node, bool up);

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_.at(id); }
  [[nodiscard]] const Link& link(LinkId id) const { return links_.at(id); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Link IDs incident to `node` (regardless of up/down state).
  [[nodiscard]] const std::vector<LinkId>& links_of(NodeId node) const {
    return adjacency_.at(node);
  }

  /// Resolves an RLOC (loopback) back to its node; nullopt if unknown.
  [[nodiscard]] std::optional<NodeId> node_by_loopback(net::Ipv4Address rloc) const;

  /// True when both endpoints and the link itself are up.
  [[nodiscard]] bool link_usable(LinkId id) const {
    const Link& l = links_.at(id);
    return l.up && nodes_.at(l.a).up && nodes_.at(l.b).up;
  }

  /// Bumped on every state mutation.
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
  std::unordered_map<net::Ipv4Address, NodeId> by_loopback_;
  std::uint64_t version_ = 1;
};

}  // namespace sda::underlay
