// Shortest-path-first routing over the underlay topology.
//
// Runs Dijkstra from a source node, keeping *all* equal-cost next hops
// (ECMP, RFC 2991). The fabric encapsulation spreads flows over the ECMP
// set by hashing outer-header entropy (paper §3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/time.hpp"
#include "underlay/topology.hpp"

namespace sda::underlay {

/// Routing result for one destination from a fixed source.
struct SpfRoute {
  std::uint64_t cost = 0;
  sim::Duration latency{0};              // along the lowest-latency equal-cost path
  std::uint32_t hop_count = 0;           // along that same path
  std::vector<NodeId> next_hops;         // ECMP set, sorted ascending
  [[nodiscard]] bool reachable() const { return !next_hops.empty(); }
};

/// One source's routing table: destination node -> SpfRoute.
class SpfTable {
 public:
  SpfTable() = default;
  SpfTable(NodeId source, std::vector<SpfRoute> routes)
      : source_(source), routes_(std::move(routes)) {}

  [[nodiscard]] NodeId source() const { return source_; }

  /// Route to `destination`; nullopt when unreachable (or self).
  [[nodiscard]] const SpfRoute* route(NodeId destination) const {
    if (destination >= routes_.size() || destination == source_) return nullptr;
    const SpfRoute& r = routes_[destination];
    return r.reachable() ? &r : nullptr;
  }

  [[nodiscard]] bool reachable(NodeId destination) const { return route(destination) != nullptr; }

  /// Picks one ECMP next hop for a given flow hash (consistent per flow).
  [[nodiscard]] std::optional<NodeId> next_hop(NodeId destination,
                                               std::uint64_t flow_hash) const {
    const SpfRoute* r = route(destination);
    if (!r) return std::nullopt;
    return r->next_hops[flow_hash % r->next_hops.size()];
  }

 private:
  NodeId source_ = kInvalidNode;
  std::vector<SpfRoute> routes_;
};

/// Computes the SPF table for `source` over the current topology state.
/// Links and nodes that are down are excluded.
[[nodiscard]] SpfTable compute_spf(const Topology& topology, NodeId source);

}  // namespace sda::underlay
