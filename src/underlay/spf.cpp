#include "underlay/spf.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace sda::underlay {

namespace {

struct QueueEntry {
  std::uint64_t cost;
  NodeId node;
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) { return a.cost > b.cost; }
};

}  // namespace

SpfTable compute_spf(const Topology& topology, NodeId source) {
  const std::size_t n = topology.node_count();
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();

  std::vector<std::uint64_t> dist(n, kInf);
  std::vector<SpfRoute> routes(n);
  std::vector<char> done(n, 0);

  if (source >= n || !topology.node(source).up) return SpfTable{source, std::move(routes)};

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> frontier;
  dist[source] = 0;
  routes[source].latency = sim::Duration{0};
  frontier.push({0, source});

  while (!frontier.empty()) {
    const auto [cost, u] = frontier.top();
    frontier.pop();
    if (done[u]) continue;
    done[u] = 1;

    for (const LinkId link_id : topology.links_of(u)) {
      if (!topology.link_usable(link_id)) continue;
      const Link& link = topology.link(link_id);
      const NodeId v = link.other(u);
      const std::uint64_t next_cost = cost + link.cost;
      if (next_cost > dist[v]) continue;

      // First hop inheritance: direct neighbors of the source get themselves;
      // everyone else inherits the ECMP set from the relaxing node.
      const std::vector<NodeId>& candidate_hops =
          (u == source) ? std::vector<NodeId>{v} : routes[u].next_hops;
      const sim::Duration candidate_latency = routes[u].latency + link.latency;
      const std::uint32_t candidate_hop_count = routes[u].hop_count + 1;

      if (next_cost < dist[v]) {
        dist[v] = next_cost;
        routes[v].cost = next_cost;
        routes[v].next_hops = candidate_hops;
        routes[v].latency = candidate_latency;
        routes[v].hop_count = candidate_hop_count;
        frontier.push({next_cost, v});
      } else {  // equal cost: merge ECMP sets, keep lowest-latency path metrics
        auto& hops = routes[v].next_hops;
        for (const NodeId h : candidate_hops) {
          if (std::find(hops.begin(), hops.end(), h) == hops.end()) hops.push_back(h);
        }
        if (candidate_latency < routes[v].latency) {
          routes[v].latency = candidate_latency;
          routes[v].hop_count = candidate_hop_count;
        }
      }
    }
  }

  for (auto& r : routes) std::sort(r.next_hops.begin(), r.next_hops.end());
  routes[source].next_hops.clear();  // self-route is not a route
  return SpfTable{source, std::move(routes)};
}

}  // namespace sda::underlay
