#include "underlay/linkstate.hpp"

#include <algorithm>
#include "telemetry/metrics.hpp"


namespace sda::underlay {

LinkStateProtocol::LinkStateProtocol(sim::Simulator& simulator, const Topology& topology,
                                     LinkStateConfig config)
    : simulator_(simulator),
      topology_(topology),
      config_(config),
      nodes_(topology.node_count()),
      next_sequence_(topology.node_count(), 1) {}

Lsp LinkStateProtocol::make_lsp(NodeId origin) {
  Lsp lsp;
  lsp.origin = origin;
  lsp.sequence = next_sequence_[origin]++;
  lsp.origin_up = topology_.node(origin).up;
  for (const LinkId link_id : topology_.links_of(origin)) {
    if (!topology_.link_usable(link_id)) continue;
    const Link& link = topology_.link(link_id);
    lsp.adjacencies.emplace_back(link.other(origin), link.cost);
  }
  std::sort(lsp.adjacencies.begin(), lsp.adjacencies.end());
  return lsp;
}

void LinkStateProtocol::start() {
  for (NodeId n = 0; n < topology_.node_count(); ++n) {
    if (topology_.node(n).up) originate(n);
  }
}

void LinkStateProtocol::originate(NodeId origin) {
  if (!topology_.node(origin).up) return;
  const Lsp lsp = make_lsp(origin);
  ++stats_.lsps_originated;
  nodes_[origin].lsdb[origin] = lsp;
  ++stats_.lsps_installed;
  mark_dirty(origin);
  flood_from(origin, lsp, kNoLink);
}

void LinkStateProtocol::flood_from(NodeId node, const Lsp& lsp, LinkId except) {
  for (const LinkId link_id : topology_.links_of(node)) {
    if (link_id == except || !topology_.link_usable(link_id)) continue;
    const Link& link = topology_.link(link_id);
    const NodeId peer = link.other(node);
    ++stats_.lsps_flooded;
    simulator_.schedule_after(link.latency + config_.lsp_processing,
                              [this, peer, lsp, link_id] { receive(peer, lsp, link_id); });
  }
}

void LinkStateProtocol::receive(NodeId receiver, const Lsp& lsp, LinkId from_link) {
  if (!topology_.node(receiver).up) return;  // dead routers process nothing
  auto& lsdb = nodes_[receiver].lsdb;
  const auto it = lsdb.find(lsp.origin);
  if (it != lsdb.end() && it->second.sequence >= lsp.sequence) {
    ++stats_.lsps_ignored;
    return;
  }
  lsdb[lsp.origin] = lsp;
  ++stats_.lsps_installed;
  mark_dirty(receiver);
  flood_from(receiver, lsp, from_link);
}

void LinkStateProtocol::notify_link_change(LinkId link) {
  const Link& l = topology_.link(link);
  for (const NodeId endpoint : {l.a, l.b}) {
    if (!topology_.node(endpoint).up) continue;
    simulator_.schedule_after(config_.failure_detection,
                              [this, endpoint] { originate(endpoint); });
  }
}

void LinkStateProtocol::notify_node_change(NodeId node) {
  simulator_.schedule_after(config_.failure_detection, [this, node] {
    if (topology_.node(node).up) originate(node);
    for (const LinkId link_id : topology_.links_of(node)) {
      const NodeId peer = topology_.link(link_id).other(node);
      if (topology_.node(peer).up) originate(peer);
    }
  });
}

void LinkStateProtocol::mark_dirty(NodeId node) {
  NodeState& state = nodes_[node];
  state.view_dirty = true;
  if (state.spf_scheduled) return;
  state.spf_scheduled = true;
  simulator_.schedule_after(config_.spf_delay, [this, node] {
    NodeState& s = nodes_[node];
    s.spf_scheduled = false;
    if (s.view_dirty) {
      recompute_view(node);
      if (on_view_change_) on_view_change_(node);
    }
  });
}

void LinkStateProtocol::recompute_view(NodeId node) {
  NodeState& state = nodes_[node];
  state.view_dirty = false;

  // Materialize the LSDB as a graph, honoring the two-way check: a link is
  // usable only when both endpoints' LSPs report each other.
  Topology graph;
  for (NodeId n = 0; n < topology_.node_count(); ++n) {
    graph.add_node("lsdb-" + std::to_string(n), net::Ipv4Address{0x7F000000u + n});
  }
  const auto& lsdb = state.lsdb;
  auto reports = [&lsdb](NodeId from, NodeId to) -> const std::uint32_t* {
    const auto it = lsdb.find(from);
    if (it == lsdb.end() || !it->second.origin_up) return nullptr;
    for (const auto& [neighbor, cost] : it->second.adjacencies) {
      if (neighbor == to) return &cost;
    }
    return nullptr;
  };
  for (const auto& [origin, lsp] : lsdb) {
    if (!lsp.origin_up) continue;
    for (const auto& [neighbor, cost] : lsp.adjacencies) {
      if (origin >= neighbor) continue;  // add each pair once
      const std::uint32_t* back = reports(neighbor, origin);
      if (back == nullptr) continue;  // one-way: not usable
      graph.add_link(origin, neighbor, sim::Duration{0}, std::max(cost, *back));
    }
  }
  state.view = compute_spf(graph, node);
}

const SpfTable& LinkStateProtocol::view(NodeId who) { return nodes_.at(who).view; }

bool LinkStateProtocol::view_reachable(NodeId who, NodeId target) {
  if (who == target) return topology_.node(who).up;
  return nodes_.at(who).view.reachable(target);
}

void LinkStateProtocol::register_metrics(telemetry::MetricsRegistry& registry,
                                         const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "lsps_originated"),
                            [this] { return stats_.lsps_originated; });
  registry.register_counter(telemetry::join(prefix, "lsps_flooded"),
                            [this] { return stats_.lsps_flooded; });
  registry.register_counter(telemetry::join(prefix, "lsps_installed"),
                            [this] { return stats_.lsps_installed; });
  registry.register_counter(telemetry::join(prefix, "lsps_ignored"),
                            [this] { return stats_.lsps_ignored; });
}

}  // namespace sda::underlay
