#include "underlay/network.hpp"

#include <cassert>
#include "sim/sharded.hpp"
#include "telemetry/metrics.hpp"


namespace sda::underlay {

UnderlayNetwork::UnderlayNetwork(sim::Simulator& simulator, Topology& topology,
                                 UnderlayConfig config)
    : simulator_(simulator), topology_(topology), config_(config) {}

void UnderlayNetwork::refresh(NodeId node) {
  if (tables_.size() < topology_.node_count()) {
    tables_.resize(topology_.node_count());
    table_versions_.resize(topology_.node_count(), 0);
  }
  if (!tables_[node] || table_versions_[node] != topology_.version()) {
    tables_[node] = compute_spf(topology_, node);
    table_versions_[node] = topology_.version();
  }
}

const SpfTable& UnderlayNetwork::table(NodeId node) {
  assert(node < topology_.node_count());
  refresh(node);
  return *tables_[node];
}

bool UnderlayNetwork::reachable(NodeId node, net::Ipv4Address rloc) {
  const auto dest = topology_.node_by_loopback(rloc);
  if (!dest) return false;
  if (*dest == node) return topology_.node(node).up;
  return table(node).reachable(*dest);
}

std::optional<UnderlayNetwork::ResolvedRoute> UnderlayNetwork::resolve_route(
    NodeId from, net::Ipv4Address to_rloc) {
  const auto dest = topology_.node_by_loopback(to_rloc);
  if (!dest) return std::nullopt;
  if (*dest == from) return ResolvedRoute{true, nullptr, *dest};
  const SpfRoute* route = table(from).route(*dest);
  if (!route) return std::nullopt;
  return ResolvedRoute{false, route, *dest};
}

sim::Duration UnderlayNetwork::modeled_delay(const ResolvedRoute& resolved,
                                             std::size_t bytes) const {
  if (resolved.self) return sim::Duration{0};
  const SpfRoute& route = *resolved.route;
  sim::Duration delay = route.latency;
  delay += config_.per_hop_processing * route.hop_count;
  if (config_.model_serialization && bytes > 0) {
    // Serialize once per hop at 10 Gbps nominal: bytes * 8 / 10e9 seconds.
    const auto per_hop_ns = static_cast<std::int64_t>(static_cast<double>(bytes) * 8.0 / 10.0);
    delay += sim::Duration{per_hop_ns * route.hop_count};
  }
  return delay;
}

std::optional<sim::Duration> UnderlayNetwork::transit_delay(NodeId from,
                                                            net::Ipv4Address to_rloc,
                                                            std::uint64_t flow_hash,
                                                            std::size_t bytes) {
  (void)flow_hash;  // ECMP member choice does not change modeled latency
                    // (equal-cost paths share the metric); the hash is kept
                    // in the signature for per-flow pinning extensions.
  const auto resolved = resolve_route(from, to_rloc);
  if (!resolved) return std::nullopt;
  return modeled_delay(*resolved, bytes);
}

bool UnderlayNetwork::deliver(NodeId from, net::Ipv4Address to_rloc, std::uint64_t flow_hash,
                              std::size_t bytes, sim::InlineAction on_arrival,
                              TrafficClass cls) {
  (void)flow_hash;
  // Resolve the SPF route exactly once: the delay model and the fault
  // injector's hop count used to each recompute it (up to three lookups
  // per packet).
  const auto resolved = resolve_route(from, to_rloc);
  if (!resolved) {
    ++unreachable_drops_;
    return false;
  }
  const sim::Duration delay = modeled_delay(*resolved, bytes);
  sim::Duration jitter{0};
  if (fault_injector_) {
    const std::uint32_t hops = resolved->self ? 0 : resolved->route->hop_count;
    const FaultDecision decision = fault_injector_(from, to_rloc, bytes, hops, cls);
    if (decision.drop) {
      ++fault_drops_;
      return false;
    }
    jitter = decision.extra_delay;
  }
  if (shard_core_) {
    const std::uint32_t to_shard = (*node_shard_)[resolved->dest];
    if (to_shard != shard_self_) {
      // The arrival executes on the destination's shard; the path crossed a
      // shard boundary, so delay >= the core's lookahead and the post lands
      // at or beyond the next window barrier.
      ++remote_posts_;
      shard_core_->post(shard_self_, to_shard, simulator_.now() + delay + jitter,
                        std::move(on_arrival));
      return true;
    }
  }
  simulator_.schedule_after(delay + jitter, std::move(on_arrival));
  return true;
}

void UnderlayNetwork::bind_shard(sim::ShardedSimulator& core, std::uint32_t self_shard,
                                 const std::vector<std::uint32_t>& node_shard) {
  assert(&core.shard(self_shard) == &simulator_ &&
         "an underlay view must be bound to the shard that owns its simulator");
  shard_core_ = &core;
  shard_self_ = self_shard;
  node_shard_ = &node_shard;
}

void UnderlayNetwork::watch(NodeId node, WatchCallback callback) {
  Watcher w{node, std::move(callback), {}};
  // Seed the initial view so only *transitions* are reported.
  for (NodeId other = 0; other < topology_.node_count(); ++other) {
    if (other == node) continue;
    w.last_view[topology_.node(other).loopback] = table(node).reachable(other);
  }
  watchers_.push_back(std::move(w));
}

void UnderlayNetwork::topology_changed() {
  if (notify_pending_ || watchers_.empty()) return;
  notify_pending_ = true;
  simulator_.schedule_after(config_.igp_convergence, [this] {
    notify_pending_ = false;
    notify_watchers();
  });
}

void UnderlayNetwork::notify_watchers() {
  for (auto& w : watchers_) {
    for (NodeId other = 0; other < topology_.node_count(); ++other) {
      if (other == w.node) continue;
      const net::Ipv4Address rloc = topology_.node(other).loopback;
      const bool now = table(w.node).reachable(other);
      auto [it, inserted] = w.last_view.try_emplace(rloc, now);
      if (inserted) continue;  // node added since watch(): treat as baseline
      if (it->second != now) {
        it->second = now;
        w.callback(rloc, now);
      }
    }
  }
}

void UnderlayNetwork::register_metrics(telemetry::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "unreachable_drops"),
                            [this] { return unreachable_drops_; });
  registry.register_counter(telemetry::join(prefix, "fault_drops"),
                            [this] { return fault_drops_; });
  registry.register_counter(telemetry::join(prefix, "remote_posts"),
                            [this] { return remote_posts_; });
}

}  // namespace sda::underlay
