// Underlay network facade: routing tables, packet transit, and the
// IGP-reachability monitoring that edge routers rely on (paper §5.1).
//
// Per-node SPF tables are recomputed lazily when the topology version
// changes. Packet delivery schedules a simulator event after the path's
// propagation latency plus per-hop processing and serialization delay.
//
// Reachability watching models the paper's "monitor the address
// announcements of the underlay routing protocol": after a topology
// mutation the IGP needs a convergence delay (failure detection + LSA
// flooding + SPF) before watchers hear about reachability transitions.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ip_address.hpp"
#include "sim/inline_action.hpp"
#include "sim/simulator.hpp"
#include "underlay/spf.hpp"
#include "underlay/topology.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::sim {
class ShardedSimulator;
}

namespace sda::underlay {

struct UnderlayConfig {
  /// Per-hop packet processing (lookup + queueing headroom).
  sim::Duration per_hop_processing = std::chrono::microseconds{5};
  /// IGP convergence after a topology change (detection + flood + SPF).
  sim::Duration igp_convergence = std::chrono::milliseconds{200};
  /// Per-byte serialization delay divisor: bytes / (gbps * this) — applied
  /// per hop using the slowest link's bandwidth on the path.
  bool model_serialization = true;
};

/// Coarse classification of a delivery, so fault models can treat the
/// control plane (Map-Requests, pub/sub, RADIUS) differently from
/// encapsulated endpoint traffic.
enum class TrafficClass : std::uint8_t { Data = 0, Control = 1 };

/// What a fault injector decided for one delivery.
struct FaultDecision {
  bool drop = false;
  sim::Duration extra_delay{0};
};

class UnderlayNetwork {
 public:
  using WatchCallback = std::function<void(net::Ipv4Address rloc, bool reachable)>;

  UnderlayNetwork(sim::Simulator& simulator, Topology& topology,
                  UnderlayConfig config = {});

  [[nodiscard]] Topology& topology() { return topology_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }

  /// The SPF table of `node`, recomputed if the topology changed.
  [[nodiscard]] const SpfTable& table(NodeId node);

  /// True if `node` can currently reach `rloc` (per its own SPF view).
  [[nodiscard]] bool reachable(NodeId node, net::Ipv4Address rloc);

  /// One-way transit delay from `from` to the node owning `to_rloc` for a
  /// flow with the given hash; nullopt when unreachable.
  [[nodiscard]] std::optional<sim::Duration> transit_delay(NodeId from, net::Ipv4Address to_rloc,
                                                           std::uint64_t flow_hash,
                                                           std::size_t bytes);

  /// Consulted once per deliver() after routing succeeds; may drop the
  /// packet or add jitter. `hops` is the path hop count so loss models can
  /// compound per-link probabilities.
  using FaultInjector = std::function<FaultDecision(NodeId from, net::Ipv4Address to_rloc,
                                                    std::size_t bytes, std::uint32_t hops,
                                                    TrafficClass cls)>;

  /// Delivers after the transit delay; returns false (and drops) when the
  /// destination is unreachable at send time or a fault injector drops the
  /// packet in transit. The SPF route is resolved exactly once per call and
  /// shared between the delay model and the fault injector's hop count.
  bool deliver(NodeId from, net::Ipv4Address to_rloc, std::uint64_t flow_hash, std::size_t bytes,
               sim::InlineAction on_arrival, TrafficClass cls = TrafficClass::Data);

  /// Installs (or clears, with nullptr) the fault interposer.
  void set_fault_injector(FaultInjector injector) { fault_injector_ = std::move(injector); }

  /// Homes this underlay view onto shard `self_shard` of a sharded core:
  /// deliver() arrivals whose destination node lives on another shard (per
  /// `node_shard`, indexed by NodeId — must outlive this object and cover
  /// every node) are posted through the core's cross-shard rings instead of
  /// the local simulator. Unbound instances behave exactly as before (one
  /// predictable branch on the delivery path). SPF state stays per-instance,
  /// so each shard binds its own UnderlayNetwork over the shared Topology
  /// and computes/caches its own tables — no cross-shard table sharing.
  void bind_shard(sim::ShardedSimulator& core, std::uint32_t self_shard,
                  const std::vector<std::uint32_t>& node_shard);

  /// Deliveries re-homed to a remote shard via the sharded core.
  [[nodiscard]] std::uint64_t remote_posts() const { return remote_posts_; }

  /// Registers `node` as watching underlay reachability; `callback` fires
  /// (after IGP convergence) once per RLOC whose reachability flipped.
  void watch(NodeId node, WatchCallback callback);

  /// Must be called after mutating the topology. Schedules watcher
  /// notifications after the IGP convergence delay.
  void topology_changed();

  /// Total packets dropped at send time due to unreachability.
  [[nodiscard]] std::uint64_t unreachable_drops() const { return unreachable_drops_; }

  /// Total packets dropped in transit by the fault injector.
  [[nodiscard]] std::uint64_t fault_drops() const { return fault_drops_; }

  /// Registers pull probes for the drop counters under `prefix`
  /// (e.g. "underlay"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  struct Watcher {
    NodeId node;
    WatchCallback callback;
    std::unordered_map<net::Ipv4Address, bool> last_view;
  };

  /// One-probe route resolution shared by transit_delay() and deliver():
  /// `self` means from == destination node (zero-hop delivery); otherwise
  /// `route` is the SPF route, or nullptr when unreachable.
  struct ResolvedRoute {
    bool self = false;
    const SpfRoute* route = nullptr;
    NodeId dest = 0;
  };
  [[nodiscard]] std::optional<ResolvedRoute> resolve_route(NodeId from,
                                                           net::Ipv4Address to_rloc);
  [[nodiscard]] sim::Duration modeled_delay(const ResolvedRoute& resolved,
                                            std::size_t bytes) const;

  void refresh(NodeId node);
  void notify_watchers();

  sim::Simulator& simulator_;
  Topology& topology_;
  UnderlayConfig config_;
  std::vector<std::optional<SpfTable>> tables_;
  std::vector<std::uint64_t> table_versions_;
  std::vector<Watcher> watchers_;
  FaultInjector fault_injector_;
  std::uint64_t unreachable_drops_ = 0;
  std::uint64_t fault_drops_ = 0;
  bool notify_pending_ = false;
  // Shard homing (nullptr = single-shard / unbound).
  sim::ShardedSimulator* shard_core_ = nullptr;
  std::uint32_t shard_self_ = 0;
  const std::vector<std::uint32_t>* node_shard_ = nullptr;
  std::uint64_t remote_posts_ = 0;
};

}  // namespace sda::underlay
