// Link-state routing protocol (IS-IS/OSPF mechanics, paper §3.3/§5.1).
//
// UnderlayNetwork models IGP convergence as a single configurable delay;
// this module implements the mechanism itself: every router originates a
// sequence-numbered LSP describing its live adjacencies, LSPs flood hop by
// hop (with per-hop processing delay), each router keeps its own LSDB, and
// each router's *view* of reachability is the SPF over its LSDB with the
// standard two-way connectivity check. Views therefore converge at
// different times after a change — nodes near the failure first — which is
// exactly what bounds the §5.1 fallback behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "underlay/spf.hpp"
#include "underlay/topology.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::underlay {

struct LinkStateConfig {
  /// How long an adjacent router needs to declare a link/neighbor dead
  /// (hello dead-interval) or alive again.
  sim::Duration failure_detection = std::chrono::milliseconds{300};
  /// Per-hop LSP processing + forwarding delay during flooding.
  sim::Duration lsp_processing = std::chrono::milliseconds{1};
  /// SPF schedule delay after a new LSP is installed (SPF damping).
  sim::Duration spf_delay = std::chrono::milliseconds{50};
};

/// A link-state PDU: one router's view of its own adjacencies.
struct Lsp {
  NodeId origin = kInvalidNode;
  std::uint64_t sequence = 0;
  bool origin_up = true;
  std::vector<std::pair<NodeId, std::uint32_t>> adjacencies;  // (neighbor, cost)

  friend bool operator==(const Lsp&, const Lsp&) = default;
};

class LinkStateProtocol {
 public:
  /// (node) — fired when `node`'s SPF view changes (after spf_delay).
  using ViewChangeCallback = std::function<void(NodeId)>;

  LinkStateProtocol(sim::Simulator& simulator, const Topology& topology,
                    LinkStateConfig config = {});

  /// Originates every node's initial LSP and floods. Views converge after
  /// the flood settles (run the simulator).
  void start();

  /// Reports a link state change: both (live) endpoints detect it after
  /// the failure-detection interval and re-originate their LSPs.
  void notify_link_change(LinkId link);

  /// Reports a node state change: the node itself (if now up) and all its
  /// live neighbors re-originate.
  void notify_node_change(NodeId node);

  /// `who`'s current routing view (SPF over its LSDB with two-way check).
  [[nodiscard]] const SpfTable& view(NodeId who);

  /// Whether `who` currently believes `target` is reachable.
  [[nodiscard]] bool view_reachable(NodeId who, NodeId target);

  void set_view_change_callback(ViewChangeCallback cb) { on_view_change_ = std::move(cb); }

  struct Stats {
    std::uint64_t lsps_originated = 0;
    std::uint64_t lsps_flooded = 0;    // LSP transmissions over links
    std::uint64_t lsps_installed = 0;  // new-information installs
    std::uint64_t lsps_ignored = 0;    // stale/duplicate copies dropped
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Registers pull probes for the flooding stats under `prefix`
  /// (e.g. "underlay.igp"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

  /// The LSDB of `who` (origin -> LSP), for tests/diagnostics.
  [[nodiscard]] const std::unordered_map<NodeId, Lsp>& lsdb(NodeId who) const {
    return nodes_.at(who).lsdb;
  }

 private:
  struct NodeState {
    std::unordered_map<NodeId, Lsp> lsdb;
    SpfTable view;
    bool view_dirty = true;
    bool spf_scheduled = false;
  };

  /// Builds `origin`'s LSP from the live topology.
  [[nodiscard]] Lsp make_lsp(NodeId origin);

  /// Origin installs its own LSP and floods to its live neighbors.
  void originate(NodeId origin);

  /// `receiver` processes an LSP copy arriving over `from_link`.
  void receive(NodeId receiver, const Lsp& lsp, LinkId from_link);

  /// Forwards `lsp` from `node` over every usable link except `except`.
  void flood_from(NodeId node, const Lsp& lsp, LinkId except);

  void mark_dirty(NodeId node);
  void recompute_view(NodeId node);

  sim::Simulator& simulator_;
  const Topology& topology_;
  LinkStateConfig config_;
  std::vector<NodeState> nodes_;
  std::vector<std::uint64_t> next_sequence_;
  ViewChangeCallback on_view_change_;
  Stats stats_;
  static constexpr LinkId kNoLink = static_cast<LinkId>(-1);
};

}  // namespace sda::underlay
