#include "underlay/topology.hpp"

#include <cassert>

namespace sda::underlay {

NodeId Topology::add_node(std::string name, net::Ipv4Address loopback) {
  assert(by_loopback_.find(loopback) == by_loopback_.end() && "duplicate loopback");
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{std::move(name), loopback, true});
  adjacency_.emplace_back();
  by_loopback_.emplace(loopback, id);
  ++version_;
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, sim::Duration latency, std::uint32_t cost,
                          double bandwidth_gbps) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, latency, cost, bandwidth_gbps, true});
  adjacency_[a].push_back(id);
  adjacency_[b].push_back(id);
  ++version_;
  return id;
}

void Topology::set_link_state(LinkId link, bool up) {
  Link& l = links_.at(link);
  if (l.up == up) return;
  l.up = up;
  ++version_;
}

void Topology::set_node_state(NodeId node, bool up) {
  Node& n = nodes_.at(node);
  if (n.up == up) return;
  n.up = up;
  ++version_;
}

std::optional<NodeId> Topology::node_by_loopback(net::Ipv4Address rloc) const {
  const auto it = by_loopback_.find(rloc);
  if (it == by_loopback_.end()) return std::nullopt;
  return it->second;
}

}  // namespace sda::underlay
