#include "l2/l2_gateway.hpp"
#include "telemetry/metrics.hpp"


namespace sda::l2 {

void L2Gateway::handle_broadcast(dataplane::EdgeRouter& router,
                                 const dataplane::AttachedEndpoint& source,
                                 const net::OverlayFrame& frame) {
  if (!frame.is_arp() || frame.arp().op != net::ArpPacket::Op::Request) {
    ++counters_.non_arp_broadcast;  // absorbed: broadcast never enters the fabric
    return;
  }
  ++counters_.arp_requests;

  const net::VnEid target_ip_eid{source.vn, net::Eid{frame.arp().target_ip}};

  // Fast path: target attached to the same edge — answer via local pipeline.
  if (const dataplane::AttachedEndpoint* local = router.find_endpoint(target_ip_eid)) {
    ++counters_.answered_locally;
    net::OverlayFrame unicast = frame;
    unicast.destination_mac = local->mac;
    auto& arp = std::get<net::ArpPacket>(unicast.l3);
    arp.target_mac = local->mac;
    router.endpoint_transmit(source.mac, unicast);
    return;
  }

  const net::MacAddress source_mac = source.mac;
  lookup_mac_(router.rloc(), target_ip_eid,
              [this, &router, source_mac, frame,
               vn = source.vn](std::optional<net::MacAddress> mac) {
    if (!mac) {
      ++counters_.unknown_target;  // no binding: silently absorbed
      return;
    }
    // Unicast conversion (§3.5): replace the broadcast MAC with the bound
    // one and push the frame through the L2 pipeline toward its edge.
    net::OverlayFrame unicast = frame;
    unicast.destination_mac = *mac;
    auto& arp = std::get<net::ArpPacket>(unicast.l3);
    arp.target_mac = *mac;
    ++counters_.converted_unicast;

    const net::VnEid mac_eid{vn, net::Eid{*mac}};
    lookup_rloc_(router.rloc(), mac_eid,
                 [this, &router, source_mac, unicast](std::optional<net::Ipv4Address> rloc) {
      const dataplane::AttachedEndpoint* src = router.find_endpoint(source_mac);
      if (!src) return;  // source detached while resolving
      if (rloc) {
        router.transmit_l2(*src, unicast, *rloc);
      } else {
        // RLOC unknown: let the router's resolve-and-buffer L2 path try.
        router.forward_by_mac(*src, unicast);
      }
    });
  });
}

void L2Gateway::register_metrics(telemetry::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "arp_requests"),
                            [this] { return counters_.arp_requests; });
  registry.register_counter(telemetry::join(prefix, "converted_unicast"),
                            [this] { return counters_.converted_unicast; });
  registry.register_counter(telemetry::join(prefix, "answered_locally"),
                            [this] { return counters_.answered_locally; });
  registry.register_counter(telemetry::join(prefix, "unknown_target"),
                            [this] { return counters_.unknown_target; });
  registry.register_counter(telemetry::join(prefix, "non_arp_broadcast"),
                            [this] { return counters_.non_arp_broadcast; });
}

}  // namespace sda::l2
