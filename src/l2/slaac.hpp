// SLAAC (RFC 4862 / RFC 4291 modified EUI-64) address derivation.
//
// VNs with an IPv6 prefix give every endpoint a stateless address derived
// from its MAC, so each endpoint registers an IPv6 identity alongside IPv4
// and MAC (paper §4.1: three routes per endpoint).
#pragma once

#include "net/ip_address.hpp"
#include "net/mac_address.hpp"
#include "net/prefix.hpp"

namespace sda::l2 {

/// The modified-EUI-64 interface identifier of a MAC address.
[[nodiscard]] std::array<std::uint8_t, 8> eui64_interface_id(const net::MacAddress& mac);

/// The SLAAC address of `mac` inside `prefix` (must be a /64 or shorter;
/// the interface identifier occupies the low 64 bits).
[[nodiscard]] net::Ipv6Address slaac_address(const net::Ipv6Prefix& prefix,
                                             const net::MacAddress& mac);

}  // namespace sda::l2
