// The L2 gateway (paper §3.5): absorbs broadcast at the edge and converts
// it to unicast using the routing server's IP->MAC bindings.
//
// Installed as an EdgeRouter's broadcast handler. For an ARP request it:
//   1. asks the routing server for the MAC bound to the requested IP,
//   2. rewrites the broadcast destination to that MAC (unicast conversion),
//   3. resolves the MAC EID's RLOC and injects the frame into the L2
//      pipeline toward the owning edge router.
// Non-ARP broadcast is counted and dropped (broadcast never crosses the
// fabric). The target endpoint answers with a normal unicast ARP reply.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "dataplane/edge_router.hpp"
#include "net/packet.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::l2 {

class L2Gateway {
 public:
  /// Control-plane hook: resolve the MAC bound to an overlay IP. The
  /// callback may fire asynchronously (after control-plane latency).
  /// `edge_rloc` identifies the requesting edge so the fabric can route
  /// the query through that edge's assigned routing server (and its
  /// failover path) instead of a hardcoded primary.
  using LookupMac = std::function<void(net::Ipv4Address edge_rloc, const net::VnEid& ip_eid,
                                       std::function<void(std::optional<net::MacAddress>)>)>;
  /// Control-plane hook: resolve the RLOC serving a MAC EID (same routing).
  using LookupRloc = std::function<void(net::Ipv4Address edge_rloc, const net::VnEid& mac_eid,
                                        std::function<void(std::optional<net::Ipv4Address>)>)>;

  L2Gateway(LookupMac lookup_mac, LookupRloc lookup_rloc)
      : lookup_mac_(std::move(lookup_mac)), lookup_rloc_(std::move(lookup_rloc)) {}

  /// The EdgeRouter::BroadcastHandler entry point.
  void handle_broadcast(dataplane::EdgeRouter& router,
                        const dataplane::AttachedEndpoint& source,
                        const net::OverlayFrame& frame);

  struct Counters {
    std::uint64_t arp_requests = 0;
    std::uint64_t converted_unicast = 0;
    std::uint64_t answered_locally = 0;  // target on the same edge
    std::uint64_t unknown_target = 0;    // no IP->MAC binding: dropped
    std::uint64_t non_arp_broadcast = 0; // absorbed, never forwarded
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  /// Registers pull probes for the ARP-conversion counters under `prefix`
  /// (e.g. "edge[3].l2_gateway"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  LookupMac lookup_mac_;
  LookupRloc lookup_rloc_;
  Counters counters_;
};

}  // namespace sda::l2
