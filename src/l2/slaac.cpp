#include "l2/slaac.hpp"

namespace sda::l2 {

std::array<std::uint8_t, 8> eui64_interface_id(const net::MacAddress& mac) {
  const auto& m = mac.bytes();
  // OUI | FF:FE | NIC, with the universal/local bit inverted (RFC 4291).
  return {static_cast<std::uint8_t>(m[0] ^ 0x02), m[1], m[2], 0xFF, 0xFE, m[3], m[4], m[5]};
}

net::Ipv6Address slaac_address(const net::Ipv6Prefix& prefix, const net::MacAddress& mac) {
  net::Ipv6Address::Bytes bytes = prefix.address().bytes();
  const auto iid = eui64_interface_id(mac);
  for (std::size_t i = 0; i < 8; ++i) bytes[8 + i] = iid[i];
  return net::Ipv6Address{bytes};
}

}  // namespace sda::l2
