#include "l2/service_discovery.hpp"
#include "telemetry/metrics.hpp"


namespace sda::l2 {

void ServiceInstance::encode(net::ByteWriter& w) const {
  w.write_string(type);
  w.write_string(name);
  w.write_array(address.bytes());
  w.write_u16(port);
  w.write_array(provider.bytes());
}

std::optional<ServiceInstance> ServiceInstance::decode(net::ByteReader& r) {
  auto type = r.read_string();
  auto name = r.read_string();
  const auto address = r.read_array<4>();
  const auto port = r.read_u16();
  const auto provider = r.read_array<6>();
  if (!type || !name || !address || !port || !provider) return std::nullopt;
  return ServiceInstance{std::move(*type), std::move(*name),
                         net::Ipv4Address::from_bytes(*address), *port,
                         net::MacAddress{*provider}};
}

void ServiceQuery::encode(net::ByteWriter& w) const {
  w.write_u24(vn.value());
  w.write_string(type);
}

std::optional<ServiceQuery> ServiceQuery::decode(net::ByteReader& r) {
  const auto vn = r.read_u24();
  auto type = r.read_string();
  if (!vn || !type) return std::nullopt;
  return ServiceQuery{net::VnId{*vn}, std::move(*type)};
}

void ServiceResponse::encode(net::ByteWriter& w) const {
  w.write_u16(static_cast<std::uint16_t>(instances.size()));
  for (const auto& instance : instances) instance.encode(w);
}

std::optional<ServiceResponse> ServiceResponse::decode(net::ByteReader& r) {
  const auto count = r.read_u16();
  if (!count) return std::nullopt;
  ServiceResponse response;
  response.instances.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    auto instance = ServiceInstance::decode(r);
    if (!instance) return std::nullopt;
    response.instances.push_back(std::move(*instance));
  }
  return response;
}

void ServiceRegistry::advertise(net::VnId vn, const ServiceInstance& instance) {
  ++stats_.advertisements;
  registry_[vn.value()][instance.type][instance.name] = instance;
}

bool ServiceRegistry::withdraw(net::VnId vn, const std::string& type,
                               const std::string& name) {
  const auto by_vn = registry_.find(vn.value());
  if (by_vn == registry_.end()) return false;
  const auto by_type = by_vn->second.find(type);
  if (by_type == by_vn->second.end()) return false;
  if (by_type->second.erase(name) == 0) return false;
  ++stats_.withdrawals;
  if (by_type->second.empty()) by_vn->second.erase(by_type);
  return true;
}

std::size_t ServiceRegistry::withdraw_provider(net::VnId vn, const net::MacAddress& provider) {
  const auto by_vn = registry_.find(vn.value());
  if (by_vn == registry_.end()) return 0;
  std::size_t removed = 0;
  for (auto type_it = by_vn->second.begin(); type_it != by_vn->second.end();) {
    for (auto name_it = type_it->second.begin(); name_it != type_it->second.end();) {
      if (name_it->second.provider == provider) {
        name_it = type_it->second.erase(name_it);
        ++removed;
        ++stats_.withdrawals;
      } else {
        ++name_it;
      }
    }
    type_it = type_it->second.empty() ? by_vn->second.erase(type_it) : std::next(type_it);
  }
  return removed;
}

std::vector<ServiceInstance> ServiceRegistry::query(net::VnId vn,
                                                    const std::string& type) const {
  ++stats_.queries;
  std::vector<ServiceInstance> out;
  const auto by_vn = registry_.find(vn.value());
  if (by_vn == registry_.end()) return out;
  const auto by_type = by_vn->second.find(type);
  if (by_type == by_vn->second.end()) return out;
  out.reserve(by_type->second.size());
  for (const auto& [name, instance] : by_type->second) out.push_back(instance);
  return out;
}

std::size_t ServiceRegistry::size() const {
  std::size_t total = 0;
  for (const auto& [vn, by_type] : registry_) {
    for (const auto& [type, by_name] : by_type) total += by_name.size();
  }
  return total;
}

void ServiceRegistry::register_metrics(telemetry::MetricsRegistry& registry,
                                       const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "advertisements"),
                            [this] { return stats_.advertisements; });
  registry.register_counter(telemetry::join(prefix, "withdrawals"),
                            [this] { return stats_.withdrawals; });
  registry.register_counter(telemetry::join(prefix, "queries"),
                            [this] { return stats_.queries; });
}

}  // namespace sda::l2
