// DHCP server model: per-VN address pools with stable per-MAC leases.
//
// Host onboarding (paper Fig. 3 step 3) asks this server for the endpoint's
// overlay address. Leases are sticky: the same MAC gets the same address on
// re-onboarding (matching real DHCP behaviour and keeping roaming endpoints'
// IPs stable, which L3 mobility relies on).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ip_address.hpp"
#include "net/mac_address.hpp"
#include "net/prefix.hpp"
#include "net/types.hpp"

namespace sda::l2 {

class DhcpServer {
 public:
  /// Adds an address pool for a VN. `reserved_low` host slots are skipped
  /// (network address, gateway, etc.).
  void add_pool(net::VnId vn, const net::Ipv4Prefix& prefix, std::uint32_t reserved_low = 2);

  /// Acquires (or renews) the lease for `mac` in `vn`. Returns nullopt when
  /// the VN has no pool or the pool is exhausted.
  [[nodiscard]] std::optional<net::Ipv4Address> acquire(net::VnId vn, const net::MacAddress& mac);

  /// Releases `mac`'s lease; the address becomes reusable. True if held.
  bool release(net::VnId vn, const net::MacAddress& mac);

  [[nodiscard]] std::size_t active_leases(net::VnId vn) const;
  [[nodiscard]] std::optional<net::Ipv4Address> lease_of(net::VnId vn,
                                                         const net::MacAddress& mac) const;
  [[nodiscard]] std::size_t pool_capacity(net::VnId vn) const;

 private:
  struct Pool {
    net::Ipv4Prefix prefix;
    std::uint32_t reserved_low = 2;
    std::uint32_t next_offset = 0;  // high-water mark
    std::vector<net::Ipv4Address> free_list;  // released addresses, reused LIFO
    std::unordered_map<net::MacAddress, net::Ipv4Address> leases;

    [[nodiscard]] std::uint32_t capacity() const {
      const std::uint32_t hosts =
          prefix.length() >= 31 ? 0 : (1u << (32 - prefix.length())) - 2;
      return hosts > reserved_low ? hosts - reserved_low : 0;
    }
  };

  std::unordered_map<std::uint32_t, Pool> pools_;  // by VN id
};

}  // namespace sda::l2
