#include "l2/dhcp_wire.hpp"

#include "l2/dhcp.hpp"

namespace sda::l2 {

void DhcpMessage::encode(net::ByteWriter& w) const {
  w.write_u8(static_cast<std::uint8_t>(op));
  w.write_u32(transaction_id);
  w.write_array(client_mac.bytes());
  w.write_array(your_ip.bytes());
  w.write_array(requested_ip.bytes());
  w.write_u32(lease_seconds);
}

std::optional<DhcpMessage> DhcpMessage::decode(net::ByteReader& r) {
  const auto op = r.read_u8();
  if (!op || *op < 1 || *op > 6) return std::nullopt;
  const auto xid = r.read_u32();
  const auto mac = r.read_array<6>();
  const auto your_ip = r.read_array<4>();
  const auto requested = r.read_array<4>();
  const auto lease = r.read_u32();
  if (!xid || !mac || !your_ip || !requested || !lease) return std::nullopt;
  DhcpMessage m;
  m.op = static_cast<DhcpOp>(*op);
  m.transaction_id = *xid;
  m.client_mac = net::MacAddress{*mac};
  m.your_ip = net::Ipv4Address::from_bytes(*your_ip);
  m.requested_ip = net::Ipv4Address::from_bytes(*requested);
  m.lease_seconds = *lease;
  return m;
}

std::optional<DoraResult> run_dora(DhcpServer& server, net::VnId vn,
                                   const net::MacAddress& mac, std::uint32_t transaction_id,
                                   std::uint32_t lease_seconds) {
  DoraResult result;
  result.discover = DhcpMessage{DhcpOp::Discover, transaction_id, mac, {}, {}, 0};

  const auto offered = server.acquire(vn, mac);
  if (!offered) return std::nullopt;  // pool exhausted: would be a Nak
  result.offer =
      DhcpMessage{DhcpOp::Offer, transaction_id, mac, *offered, {}, lease_seconds};
  result.request =
      DhcpMessage{DhcpOp::Request, transaction_id, mac, {}, *offered, lease_seconds};
  result.ack = DhcpMessage{DhcpOp::Ack, transaction_id, mac, *offered, *offered,
                           lease_seconds};
  result.address = *offered;

  // Every message must survive its own wire round trip; the exchange is
  // only "real" if the codecs agree.
  for (const DhcpMessage* m : {&result.discover, &result.offer, &result.request, &result.ack}) {
    net::ByteWriter w;
    m->encode(w);
    net::ByteReader r{w.data()};
    const auto decoded = DhcpMessage::decode(r);
    if (!decoded || *decoded != *m) return std::nullopt;
  }
  return result;
}

}  // namespace sda::l2
