// DHCP wire messages (RFC 2131, reduced to the DORA exchange the Fig. 3
// onboarding flow uses). The DhcpServer's lease logic stays in dhcp.hpp;
// these codecs give the exchange a real byte format, mirroring how the
// LISP/RADIUS/SXP planes are modeled.
#pragma once

#include <cstdint>
#include <optional>

#include "net/buffer.hpp"
#include "net/ip_address.hpp"
#include "net/mac_address.hpp"
#include "net/types.hpp"

namespace sda::l2 {

enum class DhcpOp : std::uint8_t {
  Discover = 1,
  Offer = 2,
  Request = 3,
  Ack = 4,
  Nak = 5,
  Release = 6,
};

struct DhcpMessage {
  DhcpOp op = DhcpOp::Discover;
  std::uint32_t transaction_id = 0;
  net::MacAddress client_mac;
  net::Ipv4Address your_ip;       // offered/acked address (server -> client)
  net::Ipv4Address requested_ip;  // client's request (Request/Release)
  std::uint32_t lease_seconds = 0;

  void encode(net::ByteWriter& w) const;
  /// nullopt on truncation or an unknown op code.
  [[nodiscard]] static std::optional<DhcpMessage> decode(net::ByteReader& r);

  friend bool operator==(const DhcpMessage&, const DhcpMessage&) = default;
};

/// Runs a full DORA exchange against a lease allocator, producing the four
/// messages as they would appear on the wire. Returns nullopt when the
/// pool has no address (the server answers Nak instead of Offer).
class DhcpServer;  // from dhcp.hpp
struct DoraResult {
  DhcpMessage discover;
  DhcpMessage offer;
  DhcpMessage request;
  DhcpMessage ack;
  net::Ipv4Address address;
};
[[nodiscard]] std::optional<DoraResult> run_dora(DhcpServer& server, net::VnId vn,
                                                 const net::MacAddress& mac,
                                                 std::uint32_t transaction_id,
                                                 std::uint32_t lease_seconds = 86400);

}  // namespace sda::l2
