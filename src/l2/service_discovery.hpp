// Broadcast-free service discovery (paper §3.5, footnote: "a significant
// amount of applications rely on broadcast domains, e.g. Apple Bonjour").
//
// Instead of flooding mDNS queries across the fabric, edges absorb them
// and consult a central service registry (co-located with the routing
// server); answers return as unicast. Same pattern as the ARP gateway:
// broadcast semantics preserved for endpoints, zero broadcast in the
// overlay.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/buffer.hpp"
#include "net/ip_address.hpp"
#include "net/mac_address.hpp"
#include "net/types.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::l2 {

/// One advertised service instance ("Alice's printer" offering _ipp._tcp).
struct ServiceInstance {
  std::string type;  // e.g. "_ipp._tcp"
  std::string name;  // instance name
  net::Ipv4Address address;
  std::uint16_t port = 0;
  net::MacAddress provider;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<ServiceInstance> decode(net::ByteReader& r);
  friend bool operator==(const ServiceInstance&, const ServiceInstance&) = default;
};

/// mDNS-style query/response, with wire codecs like every other plane.
struct ServiceQuery {
  net::VnId vn;
  std::string type;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<ServiceQuery> decode(net::ByteReader& r);
  friend bool operator==(const ServiceQuery&, const ServiceQuery&) = default;
};

struct ServiceResponse {
  std::vector<ServiceInstance> instances;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<ServiceResponse> decode(net::ByteReader& r);
  friend bool operator==(const ServiceResponse&, const ServiceResponse&) = default;
};

/// The central registry: VN-scoped, like everything else in the fabric.
class ServiceRegistry {
 public:
  /// Registers (or refreshes) an instance; keyed by (vn, type, name).
  void advertise(net::VnId vn, const ServiceInstance& instance);

  /// Removes an instance. True if present.
  bool withdraw(net::VnId vn, const std::string& type, const std::string& name);

  /// Removes every instance advertised by `provider` in `vn` (endpoint
  /// departure). Returns the number removed.
  std::size_t withdraw_provider(net::VnId vn, const net::MacAddress& provider);

  /// All instances of `type` within `vn`, name-ordered.
  [[nodiscard]] std::vector<ServiceInstance> query(net::VnId vn, const std::string& type) const;

  [[nodiscard]] std::size_t size() const;

  struct Stats {
    std::uint64_t advertisements = 0;
    std::uint64_t withdrawals = 0;
    std::uint64_t queries = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Registers pull probes for the registry stats under `prefix`
  /// (e.g. "services"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  // vn -> (type -> (name -> instance)); std::map keeps answers ordered.
  using ByName = std::map<std::string, ServiceInstance>;
  using ByType = std::map<std::string, ByName>;
  std::unordered_map<std::uint32_t, ByType> registry_;
  mutable Stats stats_;
};

}  // namespace sda::l2
