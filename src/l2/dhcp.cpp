#include "l2/dhcp.hpp"

namespace sda::l2 {

void DhcpServer::add_pool(net::VnId vn, const net::Ipv4Prefix& prefix,
                          std::uint32_t reserved_low) {
  Pool pool;
  pool.prefix = prefix;
  pool.reserved_low = reserved_low;
  pools_[vn.value()] = std::move(pool);
}

std::optional<net::Ipv4Address> DhcpServer::acquire(net::VnId vn, const net::MacAddress& mac) {
  const auto it = pools_.find(vn.value());
  if (it == pools_.end()) return std::nullopt;
  Pool& pool = it->second;

  const auto lease = pool.leases.find(mac);
  if (lease != pool.leases.end()) return lease->second;  // sticky renewal

  net::Ipv4Address address;
  if (!pool.free_list.empty()) {
    address = pool.free_list.back();
    pool.free_list.pop_back();
  } else {
    if (pool.next_offset >= pool.capacity()) return std::nullopt;  // exhausted
    // Host addresses start after network address + reserved slots.
    address = pool.prefix.host(1 + pool.reserved_low + pool.next_offset);
    ++pool.next_offset;
  }
  pool.leases.emplace(mac, address);
  return address;
}

bool DhcpServer::release(net::VnId vn, const net::MacAddress& mac) {
  const auto it = pools_.find(vn.value());
  if (it == pools_.end()) return false;
  Pool& pool = it->second;
  const auto lease = pool.leases.find(mac);
  if (lease == pool.leases.end()) return false;
  pool.free_list.push_back(lease->second);
  pool.leases.erase(lease);
  return true;
}

std::size_t DhcpServer::active_leases(net::VnId vn) const {
  const auto it = pools_.find(vn.value());
  return it == pools_.end() ? 0 : it->second.leases.size();
}

std::optional<net::Ipv4Address> DhcpServer::lease_of(net::VnId vn,
                                                     const net::MacAddress& mac) const {
  const auto it = pools_.find(vn.value());
  if (it == pools_.end()) return std::nullopt;
  const auto lease = it->second.leases.find(mac);
  if (lease == it->second.leases.end()) return std::nullopt;
  return lease->second;
}

std::size_t DhcpServer::pool_capacity(net::VnId vn) const {
  const auto it = pools_.find(vn.value());
  return it == pools_.end() ? 0 : it->second.capacity();
}

}  // namespace sda::l2
