// RADIUS-style authentication exchange (RFC 2865, reduced to the attributes
// the SDA onboarding flow uses).
//
// The policy server authenticates an endpoint by credential and answers
// with its VN and GroupId assignment (paper Fig. 3 steps 1-2). Both EAP and
// MAC-authentication-bypass flows collapse to the same request/accept shape
// at this level of modeling.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/buffer.hpp"
#include "net/mac_address.hpp"
#include "net/types.hpp"

namespace sda::policy {

enum class RadiusCode : std::uint8_t {
  AccessRequest = 1,
  AccessAccept = 2,
  AccessReject = 3,
};

struct AccessRequest {
  std::uint32_t request_id = 0;
  std::string credential;       // EAP identity or MAB username
  std::string secret;           // password / shared credential proof
  net::MacAddress calling_mac;  // the endpoint's MAC
  std::uint16_t nas_port = 0;   // edge switch port

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<AccessRequest> decode(net::ByteReader& r);
  friend bool operator==(const AccessRequest&, const AccessRequest&) = default;
};

struct AccessAccept {
  std::uint32_t request_id = 0;
  net::VnId vn;
  net::GroupId group;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<AccessAccept> decode(net::ByteReader& r);
  friend bool operator==(const AccessAccept&, const AccessAccept&) = default;
};

struct AccessReject {
  std::uint32_t request_id = 0;
  std::string reason;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<AccessReject> decode(net::ByteReader& r);
  friend bool operator==(const AccessReject&, const AccessReject&) = default;
};

}  // namespace sda::policy
