// The SDA policy server.
//
// Holds the three operator-maintained tables of the paper (Table 2):
//   endpoint data   credential -> (VN, GroupId)
//   group rules     per-VN connectivity matrices
// and serves the onboarding flow: authenticate an endpoint (RADIUS-style),
// return its (VN, GroupId), and let the edge download the SGACL rules whose
// destination is that group (SXP-style distribution, §3.2.1 / §3.3.1).
//
// The server also tracks which edge routers host which destination groups
// so a rule change can be pushed to exactly the affected edges; the
// signaling counters feed the §5.4 policy-update ablation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ip_address.hpp"
#include "policy/matrix.hpp"
#include "policy/radius.hpp"

namespace sda::telemetry {
class MetricsRegistry;
}

namespace sda::policy {

/// An endpoint's policy-plane identity.
struct EndpointPolicy {
  net::VnId vn;
  net::GroupId group;
  friend bool operator==(const EndpointPolicy&, const EndpointPolicy&) = default;
};

class PolicyServer {
 public:
  /// Fired when an endpoint's group assignment changes (§5.3: egress
  /// enforcement keeps (IP, GroupId) fresh by re-triggering authentication
  /// at the endpoint's edge). Argument: credential, new policy.
  using EndpointChangedCallback =
      std::function<void(const std::string& credential, const EndpointPolicy&)>;

  /// Fired when matrix rules change, once per affected edge router RLOC
  /// with the rules it must (re)download.
  using RulesPushCallback =
      std::function<void(net::Ipv4Address edge_rloc, net::VnId vn, const std::vector<Rule>&)>;

  // --- Operator interface (the declarative northbound of Fig. 1) ---------

  /// Defines (or redefines) an endpoint: credential + secret -> (VN, group).
  void provision_endpoint(const std::string& credential, const std::string& secret,
                          EndpointPolicy policy);

  /// Removes an endpoint definition. True if it existed.
  bool deprovision_endpoint(const std::string& credential);

  /// Moves an endpoint to another group (the §5.4 "move users between
  /// groups" update strategy). Triggers the endpoint-changed callback.
  bool reassign_group(const std::string& credential, net::GroupId new_group);

  /// The per-VN connectivity matrix (created on first touch).
  [[nodiscard]] ConnectivityMatrix& matrix(net::VnId vn);
  [[nodiscard]] const ConnectivityMatrix* find_matrix(net::VnId vn) const;

  /// Sets a matrix rule and pushes the delta to every edge router hosting
  /// the destination group (the §5.4 "update the ACLs" strategy).
  void update_rule(net::VnId vn, net::GroupId source, net::GroupId destination, Action action);

  // --- Edge-router interface ---------------------------------------------

  /// Authenticates an endpoint. On success returns its policy and records
  /// that `edge_rloc` now hosts the endpoint's group (for rule pushes).
  /// While the server is offline every attempt fails (counted separately
  /// from credential rejects).
  [[nodiscard]] std::optional<EndpointPolicy> authenticate(const AccessRequest& request,
                                                           net::Ipv4Address edge_rloc);

  /// Availability switch for fault injection: an offline policy server
  /// refuses authentications and rule downloads until it comes back.
  void set_online(bool online) { online_ = online; }
  [[nodiscard]] bool online() const { return online_; }

  /// The SGACL rules an edge must hold for a locally attached destination
  /// group (downloaded during onboarding, Fig. 3 step 2).
  [[nodiscard]] std::vector<Rule> download_rules(net::VnId vn, net::GroupId destination) const;

  /// Reports that `edge_rloc` no longer hosts any endpoint of `group`
  /// (last one left); stops rule pushes for it.
  void release_group(net::Ipv4Address edge_rloc, net::VnId vn, net::GroupId group);

  /// Records that `edge_rloc` now hosts `group` without a full
  /// authentication (group reassignment re-tags in place, §5.3/§5.4).
  void record_group_host(net::Ipv4Address edge_rloc, net::VnId vn, net::GroupId group);

  void set_endpoint_changed_callback(EndpointChangedCallback cb) {
    on_endpoint_changed_ = std::move(cb);
  }
  void set_rules_push_callback(RulesPushCallback cb) { on_rules_push_ = std::move(cb); }

  struct Stats {
    std::uint64_t auth_accepts = 0;
    std::uint64_t auth_rejects = 0;
    std::uint64_t auth_unavailable = 0;        // attempts while offline
    std::uint64_t rule_downloads = 0;
    std::uint64_t rule_push_messages = 0;      // rule-change fan-out count (§5.4)
    std::uint64_t endpoint_change_signals = 0; // group-move signal count (§5.4)
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] std::size_t endpoint_count() const { return endpoints_.size(); }

  /// Registers pull probes for the stats fields and an endpoint-count gauge
  /// under `prefix` (e.g. "policy_server"). Probes capture `this`.
  void register_metrics(telemetry::MetricsRegistry& registry, const std::string& prefix) const;

 private:
  struct Credential {
    std::string secret;
    EndpointPolicy policy;
  };
  struct VnGroup {
    net::VnId vn;
    net::GroupId group;
    friend bool operator==(const VnGroup&, const VnGroup&) = default;
  };
  struct VnGroupHash {
    std::size_t operator()(const VnGroup& g) const noexcept {
      return (std::size_t{g.vn.value()} << 16) ^ g.group.value();
    }
  };

  std::unordered_map<std::string, Credential> endpoints_;
  std::map<net::VnId, ConnectivityMatrix> matrices_;
  // (vn, destination group) -> edges currently hosting that group.
  std::unordered_map<VnGroup, std::unordered_set<net::Ipv4Address>, VnGroupHash> group_hosts_;
  bool online_ = true;
  EndpointChangedCallback on_endpoint_changed_;
  RulesPushCallback on_rules_push_;
  mutable Stats stats_;  // counters tick inside const query paths too
};

}  // namespace sda::policy
