// SXP-style policy-plane messages (draft-smith-kandula-sxp, reduced to
// what SDA uses, §3.2.1): distributing group bindings and group-ACL rules
// from the policy server to edge routers.
//
// Like the LISP codecs, these exist so the policy plane has a real wire
// format; the simulator passes structured values but tests keep the two
// representations in lockstep.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "net/buffer.hpp"
#include "net/ip_address.hpp"
#include "net/mac_address.hpp"
#include "net/types.hpp"
#include "policy/matrix.hpp"

namespace sda::policy {

enum class SxpMessageType : std::uint8_t {
  BindingUpdate = 1,   // (overlay IP -> GroupId) additions/deletions
  RuleInstall = 2,     // group-ACL rules for one destination group
  GroupReassign = 3,   // CoA-style: endpoint moved to another group
};

/// One IP-to-SGT binding (the SXP payload unit).
struct SxpBinding {
  net::VnId vn;
  net::Ipv4Address ip;
  net::GroupId group;
  bool withdraw = false;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<SxpBinding> decode(net::ByteReader& r);
  friend bool operator==(const SxpBinding&, const SxpBinding&) = default;
};

struct SxpBindingUpdate {
  std::uint32_t sequence = 0;
  std::vector<SxpBinding> bindings;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<SxpBindingUpdate> decode(net::ByteReader& r);
  friend bool operator==(const SxpBindingUpdate&, const SxpBindingUpdate&) = default;
};

/// The rule set an edge installs for one locally hosted destination group.
struct SxpRuleInstall {
  std::uint32_t sequence = 0;
  net::VnId vn;
  net::GroupId destination;
  std::vector<Rule> rules;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<SxpRuleInstall> decode(net::ByteReader& r);
  friend bool operator==(const SxpRuleInstall&, const SxpRuleInstall&) = default;
};

/// CoA-style notification that an endpoint's group changed (§5.4).
struct SxpGroupReassign {
  std::uint32_t sequence = 0;
  net::VnId vn;
  net::MacAddress endpoint;
  net::GroupId new_group;

  void encode(net::ByteWriter& w) const;
  [[nodiscard]] static std::optional<SxpGroupReassign> decode(net::ByteReader& r);
  friend bool operator==(const SxpGroupReassign&, const SxpGroupReassign&) = default;
};

/// Serializes any SXP message with a one-byte type tag.
using SxpMessage = std::variant<SxpBindingUpdate, SxpRuleInstall, SxpGroupReassign>;
[[nodiscard]] std::vector<std::uint8_t> encode_sxp(const SxpMessage& message);
[[nodiscard]] std::optional<SxpMessage> decode_sxp(std::span<const std::uint8_t> bytes);

}  // namespace sda::policy
