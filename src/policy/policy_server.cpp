#include "policy/policy_server.hpp"
#include "telemetry/metrics.hpp"


namespace sda::policy {

void PolicyServer::provision_endpoint(const std::string& credential, const std::string& secret,
                                      EndpointPolicy policy) {
  endpoints_[credential] = Credential{secret, policy};
}

bool PolicyServer::deprovision_endpoint(const std::string& credential) {
  return endpoints_.erase(credential) > 0;
}

bool PolicyServer::reassign_group(const std::string& credential, net::GroupId new_group) {
  const auto it = endpoints_.find(credential);
  if (it == endpoints_.end()) return false;
  if (it->second.policy.group == new_group) return false;
  it->second.policy.group = new_group;
  ++stats_.endpoint_change_signals;  // one CoA-style signal to the hosting edge
  if (on_endpoint_changed_) on_endpoint_changed_(credential, it->second.policy);
  return true;
}

ConnectivityMatrix& PolicyServer::matrix(net::VnId vn) { return matrices_[vn]; }

const ConnectivityMatrix* PolicyServer::find_matrix(net::VnId vn) const {
  const auto it = matrices_.find(vn);
  return it == matrices_.end() ? nullptr : &it->second;
}

void PolicyServer::update_rule(net::VnId vn, net::GroupId source, net::GroupId destination,
                               Action action) {
  if (!matrices_[vn].set_rule(source, destination, action)) return;
  // Push the refreshed destination-group rule set to each hosting edge.
  const auto it = group_hosts_.find(VnGroup{vn, destination});
  if (it == group_hosts_.end() || !on_rules_push_) {
    if (it != group_hosts_.end()) stats_.rule_push_messages += it->second.size();
    return;
  }
  const std::vector<Rule> rules = matrices_[vn].rules_for_destination(destination);
  for (const net::Ipv4Address edge : it->second) {
    ++stats_.rule_push_messages;
    on_rules_push_(edge, vn, rules);
  }
}

std::optional<EndpointPolicy> PolicyServer::authenticate(const AccessRequest& request,
                                                         net::Ipv4Address edge_rloc) {
  if (!online_) {
    ++stats_.auth_unavailable;
    return std::nullopt;
  }
  const auto it = endpoints_.find(request.credential);
  if (it == endpoints_.end() || it->second.secret != request.secret) {
    ++stats_.auth_rejects;
    return std::nullopt;
  }
  ++stats_.auth_accepts;
  const EndpointPolicy& policy = it->second.policy;
  group_hosts_[VnGroup{policy.vn, policy.group}].insert(edge_rloc);
  return policy;
}

std::vector<Rule> PolicyServer::download_rules(net::VnId vn, net::GroupId destination) const {
  ++stats_.rule_downloads;
  const auto it = matrices_.find(vn);
  if (it == matrices_.end()) return {};
  return it->second.rules_for_destination(destination);
}

void PolicyServer::record_group_host(net::Ipv4Address edge_rloc, net::VnId vn,
                                     net::GroupId group) {
  group_hosts_[VnGroup{vn, group}].insert(edge_rloc);
}

void PolicyServer::release_group(net::Ipv4Address edge_rloc, net::VnId vn, net::GroupId group) {
  const auto it = group_hosts_.find(VnGroup{vn, group});
  if (it == group_hosts_.end()) return;
  it->second.erase(edge_rloc);
  if (it->second.empty()) group_hosts_.erase(it);
}

void PolicyServer::register_metrics(telemetry::MetricsRegistry& registry,
                                    const std::string& prefix) const {
  registry.register_counter(telemetry::join(prefix, "auth_accepts"),
                            [this] { return stats_.auth_accepts; });
  registry.register_counter(telemetry::join(prefix, "auth_rejects"),
                            [this] { return stats_.auth_rejects; });
  registry.register_counter(telemetry::join(prefix, "auth_unavailable"),
                            [this] { return stats_.auth_unavailable; });
  registry.register_gauge(telemetry::join(prefix, "online"),
                          [this] { return online_ ? 1.0 : 0.0; });
  registry.register_counter(telemetry::join(prefix, "rule_downloads"),
                            [this] { return stats_.rule_downloads; });
  registry.register_counter(telemetry::join(prefix, "rule_push_messages"),
                            [this] { return stats_.rule_push_messages; });
  registry.register_counter(telemetry::join(prefix, "endpoint_change_signals"),
                            [this] { return stats_.endpoint_change_signals; });
  registry.register_gauge(telemetry::join(prefix, "endpoints"),
                          [this] { return static_cast<double>(endpoint_count()); });
}

}  // namespace sda::policy
