#include "policy/sxp.hpp"

namespace sda::policy {

void SxpBinding::encode(net::ByteWriter& w) const {
  w.write_u24(vn.value());
  w.write_array(ip.bytes());
  w.write_u16(group.value());
  w.write_u8(withdraw ? 1 : 0);
}

std::optional<SxpBinding> SxpBinding::decode(net::ByteReader& r) {
  const auto vn = r.read_u24();
  const auto ip = r.read_array<4>();
  const auto group = r.read_u16();
  const auto withdraw = r.read_u8();
  if (!vn || !ip || !group || !withdraw) return std::nullopt;
  return SxpBinding{net::VnId{*vn}, net::Ipv4Address::from_bytes(*ip), net::GroupId{*group},
                    *withdraw != 0};
}

void SxpBindingUpdate::encode(net::ByteWriter& w) const {
  w.write_u32(sequence);
  w.write_u16(static_cast<std::uint16_t>(bindings.size()));
  for (const auto& binding : bindings) binding.encode(w);
}

std::optional<SxpBindingUpdate> SxpBindingUpdate::decode(net::ByteReader& r) {
  const auto sequence = r.read_u32();
  const auto count = r.read_u16();
  if (!sequence || !count) return std::nullopt;
  SxpBindingUpdate update;
  update.sequence = *sequence;
  update.bindings.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto binding = SxpBinding::decode(r);
    if (!binding) return std::nullopt;
    update.bindings.push_back(*binding);
  }
  return update;
}

void SxpRuleInstall::encode(net::ByteWriter& w) const {
  w.write_u32(sequence);
  w.write_u24(vn.value());
  w.write_u16(destination.value());
  w.write_u16(static_cast<std::uint16_t>(rules.size()));
  for (const auto& rule : rules) {
    w.write_u16(rule.pair.source.value());
    w.write_u16(rule.pair.destination.value());
    w.write_u8(static_cast<std::uint8_t>(rule.action));
  }
}

std::optional<SxpRuleInstall> SxpRuleInstall::decode(net::ByteReader& r) {
  const auto sequence = r.read_u32();
  const auto vn = r.read_u24();
  const auto destination = r.read_u16();
  const auto count = r.read_u16();
  if (!sequence || !vn || !destination || !count) return std::nullopt;
  SxpRuleInstall install;
  install.sequence = *sequence;
  install.vn = net::VnId{*vn};
  install.destination = net::GroupId{*destination};
  install.rules.reserve(*count);
  for (std::uint16_t i = 0; i < *count; ++i) {
    const auto source = r.read_u16();
    const auto dest = r.read_u16();
    const auto action = r.read_u8();
    if (!source || !dest || !action || *action > 1) return std::nullopt;
    install.rules.push_back(Rule{{net::GroupId{*source}, net::GroupId{*dest}},
                                 static_cast<Action>(*action)});
  }
  return install;
}

void SxpGroupReassign::encode(net::ByteWriter& w) const {
  w.write_u32(sequence);
  w.write_u24(vn.value());
  w.write_array(endpoint.bytes());
  w.write_u16(new_group.value());
}

std::optional<SxpGroupReassign> SxpGroupReassign::decode(net::ByteReader& r) {
  const auto sequence = r.read_u32();
  const auto vn = r.read_u24();
  const auto mac = r.read_array<6>();
  const auto group = r.read_u16();
  if (!sequence || !vn || !mac || !group) return std::nullopt;
  return SxpGroupReassign{*sequence, net::VnId{*vn}, net::MacAddress{*mac},
                          net::GroupId{*group}};
}

std::vector<std::uint8_t> encode_sxp(const SxpMessage& message) {
  net::ByteWriter w{64};
  w.write_u8(static_cast<std::uint8_t>(message.index() + 1));
  std::visit([&w](const auto& m) { m.encode(w); }, message);
  return std::move(w).take();
}

std::optional<SxpMessage> decode_sxp(std::span<const std::uint8_t> bytes) {
  net::ByteReader r{bytes};
  const auto type = r.read_u8();
  if (!type) return std::nullopt;
  switch (static_cast<SxpMessageType>(*type)) {
    case SxpMessageType::BindingUpdate: {
      auto m = SxpBindingUpdate::decode(r);
      if (m) return SxpMessage{std::move(*m)};
      break;
    }
    case SxpMessageType::RuleInstall: {
      auto m = SxpRuleInstall::decode(r);
      if (m) return SxpMessage{std::move(*m)};
      break;
    }
    case SxpMessageType::GroupReassign: {
      const auto m = SxpGroupReassign::decode(r);
      if (m) return SxpMessage{*m};
      break;
    }
  }
  return std::nullopt;
}

}  // namespace sda::policy
