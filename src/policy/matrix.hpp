// The group connectivity matrix: SDA's "micro" segmentation policy.
//
// Operators express intent as (source group, destination group) -> action,
// independently per VN (paper §3.2.1). Edge routers download only the rules
// whose *destination* group is locally attached (§3.3.1, §5.3) and enforce
// them on egress as an exact-match group ACL.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/types.hpp"

namespace sda::policy {

enum class Action : std::uint8_t { Allow = 0, Deny = 1 };

struct GroupPair {
  net::GroupId source;
  net::GroupId destination;
  friend constexpr auto operator<=>(const GroupPair&, const GroupPair&) = default;
};

struct Rule {
  GroupPair pair;
  Action action = Action::Allow;
  friend constexpr auto operator<=>(const Rule&, const Rule&) = default;
};

/// One VN's group connectivity matrix.
class ConnectivityMatrix {
 public:
  /// The action applied when no explicit rule matches. Enterprise default
  /// in the paper's deployments is allow-by-default inside a VN, with deny
  /// rules carving out restrictions.
  explicit ConnectivityMatrix(Action default_action = Action::Allow)
      : default_action_(default_action) {}

  /// Sets (or replaces) a rule. Returns true if anything changed.
  bool set_rule(net::GroupId source, net::GroupId destination, Action action);

  /// Removes an explicit rule (falls back to the default). True if present.
  bool clear_rule(net::GroupId source, net::GroupId destination);

  /// The effective action for a (source, destination) pair. Unknown (0)
  /// groups are always allowed: infrastructure traffic must never be
  /// dropped by micro-segmentation.
  [[nodiscard]] Action lookup(net::GroupId source, net::GroupId destination) const;

  /// All explicit rules whose destination is `destination` — the rule set
  /// an edge router downloads when an endpoint of that group onboards.
  [[nodiscard]] std::vector<Rule> rules_for_destination(net::GroupId destination) const;

  /// All explicit rules whose source is `source` (ingress-enforcement
  /// ablation, §5.3 — needs *all* destination groups' rules instead).
  [[nodiscard]] std::vector<Rule> rules_for_source(net::GroupId source) const;

  [[nodiscard]] Action default_action() const { return default_action_; }
  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

  /// Bumped on every mutation; consumers use it to detect staleness.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  void walk(const std::function<void(const Rule&)>& visit) const;

 private:
  struct PairHash {
    std::size_t operator()(const GroupPair& p) const noexcept {
      return (std::size_t{p.source.value()} << 16) ^ p.destination.value();
    }
  };

  Action default_action_;
  std::unordered_map<GroupPair, Action, PairHash> rules_;
  std::uint64_t version_ = 1;
};

}  // namespace sda::policy
