#include "policy/matrix.hpp"

#include <algorithm>

namespace sda::policy {

bool ConnectivityMatrix::set_rule(net::GroupId source, net::GroupId destination, Action action) {
  const GroupPair pair{source, destination};
  const auto it = rules_.find(pair);
  if (it != rules_.end() && it->second == action) return false;
  rules_[pair] = action;
  ++version_;
  return true;
}

bool ConnectivityMatrix::clear_rule(net::GroupId source, net::GroupId destination) {
  const bool erased = rules_.erase(GroupPair{source, destination}) > 0;
  if (erased) ++version_;
  return erased;
}

Action ConnectivityMatrix::lookup(net::GroupId source, net::GroupId destination) const {
  if (source.is_unknown() || destination.is_unknown()) return Action::Allow;
  const auto it = rules_.find(GroupPair{source, destination});
  return it == rules_.end() ? default_action_ : it->second;
}

std::vector<Rule> ConnectivityMatrix::rules_for_destination(net::GroupId destination) const {
  std::vector<Rule> out;
  for (const auto& [pair, action] : rules_) {
    if (pair.destination == destination) out.push_back(Rule{pair, action});
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Rule> ConnectivityMatrix::rules_for_source(net::GroupId source) const {
  std::vector<Rule> out;
  for (const auto& [pair, action] : rules_) {
    if (pair.source == source) out.push_back(Rule{pair, action});
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ConnectivityMatrix::walk(const std::function<void(const Rule&)>& visit) const {
  std::vector<Rule> all;
  all.reserve(rules_.size());
  for (const auto& [pair, action] : rules_) all.push_back(Rule{pair, action});
  std::sort(all.begin(), all.end());
  for (const auto& rule : all) visit(rule);
}

}  // namespace sda::policy
