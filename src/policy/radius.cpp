#include "policy/radius.hpp"

namespace sda::policy {

void AccessRequest::encode(net::ByteWriter& w) const {
  w.write_u8(static_cast<std::uint8_t>(RadiusCode::AccessRequest));
  w.write_u32(request_id);
  w.write_string(credential);
  w.write_string(secret);
  w.write_array(calling_mac.bytes());
  w.write_u16(nas_port);
}

std::optional<AccessRequest> AccessRequest::decode(net::ByteReader& r) {
  const auto code = r.read_u8();
  if (!code || *code != static_cast<std::uint8_t>(RadiusCode::AccessRequest)) return std::nullopt;
  const auto id = r.read_u32();
  if (!id) return std::nullopt;
  auto credential = r.read_string();
  auto secret = r.read_string();
  const auto mac = r.read_array<6>();
  const auto port = r.read_u16();
  if (!credential || !secret || !mac || !port) return std::nullopt;
  return AccessRequest{*id, std::move(*credential), std::move(*secret), net::MacAddress{*mac},
                       *port};
}

void AccessAccept::encode(net::ByteWriter& w) const {
  w.write_u8(static_cast<std::uint8_t>(RadiusCode::AccessAccept));
  w.write_u32(request_id);
  w.write_u24(vn.value());
  w.write_u16(group.value());
}

std::optional<AccessAccept> AccessAccept::decode(net::ByteReader& r) {
  const auto code = r.read_u8();
  if (!code || *code != static_cast<std::uint8_t>(RadiusCode::AccessAccept)) return std::nullopt;
  const auto id = r.read_u32();
  const auto vn = r.read_u24();
  const auto group = r.read_u16();
  if (!id || !vn || !group) return std::nullopt;
  return AccessAccept{*id, net::VnId{*vn}, net::GroupId{*group}};
}

void AccessReject::encode(net::ByteWriter& w) const {
  w.write_u8(static_cast<std::uint8_t>(RadiusCode::AccessReject));
  w.write_u32(request_id);
  w.write_string(reason);
}

std::optional<AccessReject> AccessReject::decode(net::ByteReader& r) {
  const auto code = r.read_u8();
  if (!code || *code != static_cast<std::uint8_t>(RadiusCode::AccessReject)) return std::nullopt;
  const auto id = r.read_u32();
  if (!id) return std::nullopt;
  auto reason = r.read_string();
  if (!reason) return std::nullopt;
  return AccessReject{*id, std::move(*reason)};
}

}  // namespace sda::policy
