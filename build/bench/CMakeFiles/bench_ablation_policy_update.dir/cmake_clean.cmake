file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_policy_update.dir/bench_ablation_policy_update.cpp.o"
  "CMakeFiles/bench_ablation_policy_update.dir/bench_ablation_policy_update.cpp.o.d"
  "bench_ablation_policy_update"
  "bench_ablation_policy_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_policy_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
