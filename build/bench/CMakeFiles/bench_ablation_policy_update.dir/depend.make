# Empty dependencies file for bench_ablation_policy_update.
# This may be replaced when dependencies are built.
