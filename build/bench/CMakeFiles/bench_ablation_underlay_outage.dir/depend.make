# Empty dependencies file for bench_ablation_underlay_outage.
# This may be replaced when dependencies are built.
