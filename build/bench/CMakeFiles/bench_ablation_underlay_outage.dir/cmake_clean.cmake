file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_underlay_outage.dir/bench_ablation_underlay_outage.cpp.o"
  "CMakeFiles/bench_ablation_underlay_outage.dir/bench_ablation_underlay_outage.cpp.o.d"
  "bench_ablation_underlay_outage"
  "bench_ablation_underlay_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_underlay_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
