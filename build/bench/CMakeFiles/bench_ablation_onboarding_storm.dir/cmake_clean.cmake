file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_onboarding_storm.dir/bench_ablation_onboarding_storm.cpp.o"
  "CMakeFiles/bench_ablation_onboarding_storm.dir/bench_ablation_onboarding_storm.cpp.o.d"
  "bench_ablation_onboarding_storm"
  "bench_ablation_onboarding_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_onboarding_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
