file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_enforcement_point.dir/bench_ablation_enforcement_point.cpp.o"
  "CMakeFiles/bench_ablation_enforcement_point.dir/bench_ablation_enforcement_point.cpp.o.d"
  "bench_ablation_enforcement_point"
  "bench_ablation_enforcement_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_enforcement_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
