# Empty dependencies file for bench_ablation_enforcement_point.
# This may be replaced when dependencies are built.
