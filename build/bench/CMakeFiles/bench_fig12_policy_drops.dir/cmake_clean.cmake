file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_policy_drops.dir/bench_fig12_policy_drops.cpp.o"
  "CMakeFiles/bench_fig12_policy_drops.dir/bench_fig12_policy_drops.cpp.o.d"
  "bench_fig12_policy_drops"
  "bench_fig12_policy_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_policy_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
