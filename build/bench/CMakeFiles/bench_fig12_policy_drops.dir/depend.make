# Empty dependencies file for bench_fig12_policy_drops.
# This may be replaced when dependencies are built.
