# Empty dependencies file for bench_ablation_wlan_dataplane.
# This may be replaced when dependencies are built.
