file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wlan_dataplane.dir/bench_ablation_wlan_dataplane.cpp.o"
  "CMakeFiles/bench_ablation_wlan_dataplane.dir/bench_ablation_wlan_dataplane.cpp.o.d"
  "bench_ablation_wlan_dataplane"
  "bench_ablation_wlan_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wlan_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
