# Empty compiler generated dependencies file for bench_table5_fib_averages.
# This may be replaced when dependencies are built.
