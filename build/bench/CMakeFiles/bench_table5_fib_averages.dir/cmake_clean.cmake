file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fib_averages.dir/bench_table5_fib_averages.cpp.o"
  "CMakeFiles/bench_table5_fib_averages.dir/bench_table5_fib_averages.cpp.o.d"
  "bench_table5_fib_averages"
  "bench_table5_fib_averages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fib_averages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
