# Empty compiler generated dependencies file for bench_ablation_first_packet.
# This may be replaced when dependencies are built.
