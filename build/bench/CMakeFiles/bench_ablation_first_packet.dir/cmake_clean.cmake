file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_first_packet.dir/bench_ablation_first_packet.cpp.o"
  "CMakeFiles/bench_ablation_first_packet.dir/bench_ablation_first_packet.cpp.o.d"
  "bench_ablation_first_packet"
  "bench_ablation_first_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_first_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
