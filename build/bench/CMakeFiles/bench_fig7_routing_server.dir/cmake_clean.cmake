file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_routing_server.dir/bench_fig7_routing_server.cpp.o"
  "CMakeFiles/bench_fig7_routing_server.dir/bench_fig7_routing_server.cpp.o.d"
  "bench_fig7_routing_server"
  "bench_fig7_routing_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_routing_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
