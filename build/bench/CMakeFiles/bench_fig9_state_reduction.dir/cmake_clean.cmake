file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_state_reduction.dir/bench_fig9_state_reduction.cpp.o"
  "CMakeFiles/bench_fig9_state_reduction.dir/bench_fig9_state_reduction.cpp.o.d"
  "bench_fig9_state_reduction"
  "bench_fig9_state_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_state_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
