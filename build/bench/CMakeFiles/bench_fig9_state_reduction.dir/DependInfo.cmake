
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_state_reduction.cpp" "bench/CMakeFiles/bench_fig9_state_reduction.dir/bench_fig9_state_reduction.cpp.o" "gcc" "bench/CMakeFiles/bench_fig9_state_reduction.dir/bench_fig9_state_reduction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wlan/CMakeFiles/sda_wlan.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sda_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/sda_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/sda_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/l2/CMakeFiles/sda_l2.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/sda_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/underlay/CMakeFiles/sda_underlay.dir/DependInfo.cmake"
  "/root/repo/build/src/lisp/CMakeFiles/sda_lisp.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/sda_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sda_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/sda_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sda_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
