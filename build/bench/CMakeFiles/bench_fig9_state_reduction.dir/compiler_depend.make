# Empty compiler generated dependencies file for bench_fig9_state_reduction.
# This may be replaced when dependencies are built.
