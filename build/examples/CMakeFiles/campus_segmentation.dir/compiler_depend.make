# Empty compiler generated dependencies file for campus_segmentation.
# This may be replaced when dependencies are built.
