file(REMOVE_RECURSE
  "CMakeFiles/campus_segmentation.dir/campus_segmentation.cpp.o"
  "CMakeFiles/campus_segmentation.dir/campus_segmentation.cpp.o.d"
  "campus_segmentation"
  "campus_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
