# Empty compiler generated dependencies file for wireless_campus.
# This may be replaced when dependencies are built.
