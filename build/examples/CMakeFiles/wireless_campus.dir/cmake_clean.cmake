file(REMOVE_RECURSE
  "CMakeFiles/wireless_campus.dir/wireless_campus.cpp.o"
  "CMakeFiles/wireless_campus.dir/wireless_campus.cpp.o.d"
  "wireless_campus"
  "wireless_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wireless_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
