file(REMOVE_RECURSE
  "CMakeFiles/l2_services.dir/l2_services.cpp.o"
  "CMakeFiles/l2_services.dir/l2_services.cpp.o.d"
  "l2_services"
  "l2_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
