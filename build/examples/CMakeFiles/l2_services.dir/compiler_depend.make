# Empty compiler generated dependencies file for l2_services.
# This may be replaced when dependencies are built.
