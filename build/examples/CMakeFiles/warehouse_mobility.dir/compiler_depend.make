# Empty compiler generated dependencies file for warehouse_mobility.
# This may be replaced when dependencies are built.
