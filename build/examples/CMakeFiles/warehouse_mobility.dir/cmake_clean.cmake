file(REMOVE_RECURSE
  "CMakeFiles/warehouse_mobility.dir/warehouse_mobility.cpp.o"
  "CMakeFiles/warehouse_mobility.dir/warehouse_mobility.cpp.o.d"
  "warehouse_mobility"
  "warehouse_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
