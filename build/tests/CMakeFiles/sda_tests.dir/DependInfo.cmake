
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bgp/rib_test.cpp" "tests/CMakeFiles/sda_tests.dir/bgp/rib_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/bgp/rib_test.cpp.o.d"
  "/root/repo/tests/bgp/route_reflector_test.cpp" "tests/CMakeFiles/sda_tests.dir/bgp/route_reflector_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/bgp/route_reflector_test.cpp.o.d"
  "/root/repo/tests/dataplane/border_router_test.cpp" "tests/CMakeFiles/sda_tests.dir/dataplane/border_router_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/dataplane/border_router_test.cpp.o.d"
  "/root/repo/tests/dataplane/edge_router_test.cpp" "tests/CMakeFiles/sda_tests.dir/dataplane/edge_router_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/dataplane/edge_router_test.cpp.o.d"
  "/root/repo/tests/dataplane/sgacl_test.cpp" "tests/CMakeFiles/sda_tests.dir/dataplane/sgacl_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/dataplane/sgacl_test.cpp.o.d"
  "/root/repo/tests/dataplane/vrf_test.cpp" "tests/CMakeFiles/sda_tests.dir/dataplane/vrf_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/dataplane/vrf_test.cpp.o.d"
  "/root/repo/tests/fabric/fabric_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/fabric_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/fabric_test.cpp.o.d"
  "/root/repo/tests/fabric/inspect_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/inspect_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/inspect_test.cpp.o.d"
  "/root/repo/tests/fabric/ipv6_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/ipv6_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/ipv6_test.cpp.o.d"
  "/root/repo/tests/fabric/l2_services_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/l2_services_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/l2_services_test.cpp.o.d"
  "/root/repo/tests/fabric/lessons_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/lessons_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/lessons_test.cpp.o.d"
  "/root/repo/tests/fabric/probing_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/probing_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/probing_test.cpp.o.d"
  "/root/repo/tests/fabric/scale_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/scale_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/scale_test.cpp.o.d"
  "/root/repo/tests/fabric/scaleout_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/scaleout_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/scaleout_test.cpp.o.d"
  "/root/repo/tests/fabric/softstate_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/softstate_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/softstate_test.cpp.o.d"
  "/root/repo/tests/fabric/topologies_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/topologies_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/topologies_test.cpp.o.d"
  "/root/repo/tests/fabric/vlan_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/vlan_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/vlan_test.cpp.o.d"
  "/root/repo/tests/fabric/wire_validation_test.cpp" "tests/CMakeFiles/sda_tests.dir/fabric/wire_validation_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/fabric/wire_validation_test.cpp.o.d"
  "/root/repo/tests/l2/dhcp_test.cpp" "tests/CMakeFiles/sda_tests.dir/l2/dhcp_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/l2/dhcp_test.cpp.o.d"
  "/root/repo/tests/l2/dhcp_wire_test.cpp" "tests/CMakeFiles/sda_tests.dir/l2/dhcp_wire_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/l2/dhcp_wire_test.cpp.o.d"
  "/root/repo/tests/l2/service_discovery_test.cpp" "tests/CMakeFiles/sda_tests.dir/l2/service_discovery_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/l2/service_discovery_test.cpp.o.d"
  "/root/repo/tests/l2/slaac_test.cpp" "tests/CMakeFiles/sda_tests.dir/l2/slaac_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/l2/slaac_test.cpp.o.d"
  "/root/repo/tests/lisp/map_cache_property_test.cpp" "tests/CMakeFiles/sda_tests.dir/lisp/map_cache_property_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/lisp/map_cache_property_test.cpp.o.d"
  "/root/repo/tests/lisp/map_cache_test.cpp" "tests/CMakeFiles/sda_tests.dir/lisp/map_cache_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/lisp/map_cache_test.cpp.o.d"
  "/root/repo/tests/lisp/map_server_node_test.cpp" "tests/CMakeFiles/sda_tests.dir/lisp/map_server_node_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/lisp/map_server_node_test.cpp.o.d"
  "/root/repo/tests/lisp/map_server_test.cpp" "tests/CMakeFiles/sda_tests.dir/lisp/map_server_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/lisp/map_server_test.cpp.o.d"
  "/root/repo/tests/lisp/messages_fuzz_test.cpp" "tests/CMakeFiles/sda_tests.dir/lisp/messages_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/lisp/messages_fuzz_test.cpp.o.d"
  "/root/repo/tests/lisp/messages_test.cpp" "tests/CMakeFiles/sda_tests.dir/lisp/messages_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/lisp/messages_test.cpp.o.d"
  "/root/repo/tests/net/buffer_test.cpp" "tests/CMakeFiles/sda_tests.dir/net/buffer_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/net/buffer_test.cpp.o.d"
  "/root/repo/tests/net/checksum_test.cpp" "tests/CMakeFiles/sda_tests.dir/net/checksum_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/net/checksum_test.cpp.o.d"
  "/root/repo/tests/net/eid_test.cpp" "tests/CMakeFiles/sda_tests.dir/net/eid_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/net/eid_test.cpp.o.d"
  "/root/repo/tests/net/headers_test.cpp" "tests/CMakeFiles/sda_tests.dir/net/headers_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/net/headers_test.cpp.o.d"
  "/root/repo/tests/net/ip_address_test.cpp" "tests/CMakeFiles/sda_tests.dir/net/ip_address_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/net/ip_address_test.cpp.o.d"
  "/root/repo/tests/net/mac_address_test.cpp" "tests/CMakeFiles/sda_tests.dir/net/mac_address_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/net/mac_address_test.cpp.o.d"
  "/root/repo/tests/net/packet_test.cpp" "tests/CMakeFiles/sda_tests.dir/net/packet_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/net/packet_test.cpp.o.d"
  "/root/repo/tests/net/prefix_test.cpp" "tests/CMakeFiles/sda_tests.dir/net/prefix_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/net/prefix_test.cpp.o.d"
  "/root/repo/tests/policy/matrix_test.cpp" "tests/CMakeFiles/sda_tests.dir/policy/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/policy/matrix_test.cpp.o.d"
  "/root/repo/tests/policy/policy_server_test.cpp" "tests/CMakeFiles/sda_tests.dir/policy/policy_server_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/policy/policy_server_test.cpp.o.d"
  "/root/repo/tests/policy/radius_test.cpp" "tests/CMakeFiles/sda_tests.dir/policy/radius_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/policy/radius_test.cpp.o.d"
  "/root/repo/tests/policy/sxp_test.cpp" "tests/CMakeFiles/sda_tests.dir/policy/sxp_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/policy/sxp_test.cpp.o.d"
  "/root/repo/tests/sim/random_test.cpp" "tests/CMakeFiles/sda_tests.dir/sim/random_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/sim/random_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/sda_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/stats/cdf_test.cpp" "tests/CMakeFiles/sda_tests.dir/stats/cdf_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/stats/cdf_test.cpp.o.d"
  "/root/repo/tests/stats/csv_test.cpp" "tests/CMakeFiles/sda_tests.dir/stats/csv_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/stats/csv_test.cpp.o.d"
  "/root/repo/tests/stats/histogram_table_test.cpp" "tests/CMakeFiles/sda_tests.dir/stats/histogram_table_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/stats/histogram_table_test.cpp.o.d"
  "/root/repo/tests/stats/summary_test.cpp" "tests/CMakeFiles/sda_tests.dir/stats/summary_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/stats/summary_test.cpp.o.d"
  "/root/repo/tests/stats/timeseries_test.cpp" "tests/CMakeFiles/sda_tests.dir/stats/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/stats/timeseries_test.cpp.o.d"
  "/root/repo/tests/trie/bitkey_test.cpp" "tests/CMakeFiles/sda_tests.dir/trie/bitkey_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/trie/bitkey_test.cpp.o.d"
  "/root/repo/tests/trie/patricia_test.cpp" "tests/CMakeFiles/sda_tests.dir/trie/patricia_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/trie/patricia_test.cpp.o.d"
  "/root/repo/tests/underlay/linkstate_test.cpp" "tests/CMakeFiles/sda_tests.dir/underlay/linkstate_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/underlay/linkstate_test.cpp.o.d"
  "/root/repo/tests/underlay/network_test.cpp" "tests/CMakeFiles/sda_tests.dir/underlay/network_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/underlay/network_test.cpp.o.d"
  "/root/repo/tests/underlay/spf_property_test.cpp" "tests/CMakeFiles/sda_tests.dir/underlay/spf_property_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/underlay/spf_property_test.cpp.o.d"
  "/root/repo/tests/underlay/spf_test.cpp" "tests/CMakeFiles/sda_tests.dir/underlay/spf_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/underlay/spf_test.cpp.o.d"
  "/root/repo/tests/underlay/topology_test.cpp" "tests/CMakeFiles/sda_tests.dir/underlay/topology_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/underlay/topology_test.cpp.o.d"
  "/root/repo/tests/wlan/controller_test.cpp" "tests/CMakeFiles/sda_tests.dir/wlan/controller_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/wlan/controller_test.cpp.o.d"
  "/root/repo/tests/workload/campus_test.cpp" "tests/CMakeFiles/sda_tests.dir/workload/campus_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/workload/campus_test.cpp.o.d"
  "/root/repo/tests/workload/policy_drops_test.cpp" "tests/CMakeFiles/sda_tests.dir/workload/policy_drops_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/workload/policy_drops_test.cpp.o.d"
  "/root/repo/tests/workload/warehouse_test.cpp" "tests/CMakeFiles/sda_tests.dir/workload/warehouse_test.cpp.o" "gcc" "tests/CMakeFiles/sda_tests.dir/workload/warehouse_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wlan/CMakeFiles/sda_wlan.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sda_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/sda_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/sda_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/l2/CMakeFiles/sda_l2.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/sda_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/underlay/CMakeFiles/sda_underlay.dir/DependInfo.cmake"
  "/root/repo/build/src/lisp/CMakeFiles/sda_lisp.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/sda_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sda_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/sda_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sda_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
