# Empty compiler generated dependencies file for sda_tests.
# This may be replaced when dependencies are built.
