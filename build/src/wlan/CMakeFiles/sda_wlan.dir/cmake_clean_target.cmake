file(REMOVE_RECURSE
  "libsda_wlan.a"
)
