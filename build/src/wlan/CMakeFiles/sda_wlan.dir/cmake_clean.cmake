file(REMOVE_RECURSE
  "CMakeFiles/sda_wlan.dir/controller.cpp.o"
  "CMakeFiles/sda_wlan.dir/controller.cpp.o.d"
  "libsda_wlan.a"
  "libsda_wlan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_wlan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
