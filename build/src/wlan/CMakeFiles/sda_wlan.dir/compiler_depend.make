# Empty compiler generated dependencies file for sda_wlan.
# This may be replaced when dependencies are built.
