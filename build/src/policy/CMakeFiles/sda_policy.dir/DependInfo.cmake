
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/matrix.cpp" "src/policy/CMakeFiles/sda_policy.dir/matrix.cpp.o" "gcc" "src/policy/CMakeFiles/sda_policy.dir/matrix.cpp.o.d"
  "/root/repo/src/policy/policy_server.cpp" "src/policy/CMakeFiles/sda_policy.dir/policy_server.cpp.o" "gcc" "src/policy/CMakeFiles/sda_policy.dir/policy_server.cpp.o.d"
  "/root/repo/src/policy/radius.cpp" "src/policy/CMakeFiles/sda_policy.dir/radius.cpp.o" "gcc" "src/policy/CMakeFiles/sda_policy.dir/radius.cpp.o.d"
  "/root/repo/src/policy/sxp.cpp" "src/policy/CMakeFiles/sda_policy.dir/sxp.cpp.o" "gcc" "src/policy/CMakeFiles/sda_policy.dir/sxp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sda_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
