file(REMOVE_RECURSE
  "libsda_policy.a"
)
