file(REMOVE_RECURSE
  "CMakeFiles/sda_policy.dir/matrix.cpp.o"
  "CMakeFiles/sda_policy.dir/matrix.cpp.o.d"
  "CMakeFiles/sda_policy.dir/policy_server.cpp.o"
  "CMakeFiles/sda_policy.dir/policy_server.cpp.o.d"
  "CMakeFiles/sda_policy.dir/radius.cpp.o"
  "CMakeFiles/sda_policy.dir/radius.cpp.o.d"
  "CMakeFiles/sda_policy.dir/sxp.cpp.o"
  "CMakeFiles/sda_policy.dir/sxp.cpp.o.d"
  "libsda_policy.a"
  "libsda_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
