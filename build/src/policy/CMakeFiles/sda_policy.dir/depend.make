# Empty dependencies file for sda_policy.
# This may be replaced when dependencies are built.
