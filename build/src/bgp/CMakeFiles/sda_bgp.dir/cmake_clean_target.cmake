file(REMOVE_RECURSE
  "libsda_bgp.a"
)
