# Empty dependencies file for sda_bgp.
# This may be replaced when dependencies are built.
