file(REMOVE_RECURSE
  "CMakeFiles/sda_bgp.dir/rib.cpp.o"
  "CMakeFiles/sda_bgp.dir/rib.cpp.o.d"
  "CMakeFiles/sda_bgp.dir/route_reflector.cpp.o"
  "CMakeFiles/sda_bgp.dir/route_reflector.cpp.o.d"
  "libsda_bgp.a"
  "libsda_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
