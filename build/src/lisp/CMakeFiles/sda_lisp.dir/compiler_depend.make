# Empty compiler generated dependencies file for sda_lisp.
# This may be replaced when dependencies are built.
