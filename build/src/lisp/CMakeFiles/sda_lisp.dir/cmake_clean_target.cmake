file(REMOVE_RECURSE
  "libsda_lisp.a"
)
