
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lisp/map_cache.cpp" "src/lisp/CMakeFiles/sda_lisp.dir/map_cache.cpp.o" "gcc" "src/lisp/CMakeFiles/sda_lisp.dir/map_cache.cpp.o.d"
  "/root/repo/src/lisp/map_server.cpp" "src/lisp/CMakeFiles/sda_lisp.dir/map_server.cpp.o" "gcc" "src/lisp/CMakeFiles/sda_lisp.dir/map_server.cpp.o.d"
  "/root/repo/src/lisp/map_server_node.cpp" "src/lisp/CMakeFiles/sda_lisp.dir/map_server_node.cpp.o" "gcc" "src/lisp/CMakeFiles/sda_lisp.dir/map_server_node.cpp.o.d"
  "/root/repo/src/lisp/messages.cpp" "src/lisp/CMakeFiles/sda_lisp.dir/messages.cpp.o" "gcc" "src/lisp/CMakeFiles/sda_lisp.dir/messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/sda_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sda_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
