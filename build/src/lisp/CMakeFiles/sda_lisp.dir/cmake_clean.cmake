file(REMOVE_RECURSE
  "CMakeFiles/sda_lisp.dir/map_cache.cpp.o"
  "CMakeFiles/sda_lisp.dir/map_cache.cpp.o.d"
  "CMakeFiles/sda_lisp.dir/map_server.cpp.o"
  "CMakeFiles/sda_lisp.dir/map_server.cpp.o.d"
  "CMakeFiles/sda_lisp.dir/map_server_node.cpp.o"
  "CMakeFiles/sda_lisp.dir/map_server_node.cpp.o.d"
  "CMakeFiles/sda_lisp.dir/messages.cpp.o"
  "CMakeFiles/sda_lisp.dir/messages.cpp.o.d"
  "libsda_lisp.a"
  "libsda_lisp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_lisp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
