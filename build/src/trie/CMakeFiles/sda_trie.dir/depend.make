# Empty dependencies file for sda_trie.
# This may be replaced when dependencies are built.
