file(REMOVE_RECURSE
  "CMakeFiles/sda_trie.dir/bitkey.cpp.o"
  "CMakeFiles/sda_trie.dir/bitkey.cpp.o.d"
  "libsda_trie.a"
  "libsda_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
