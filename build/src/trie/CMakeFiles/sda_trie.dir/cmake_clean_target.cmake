file(REMOVE_RECURSE
  "libsda_trie.a"
)
