# Empty dependencies file for sda_l2.
# This may be replaced when dependencies are built.
