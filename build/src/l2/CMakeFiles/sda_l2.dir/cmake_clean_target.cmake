file(REMOVE_RECURSE
  "libsda_l2.a"
)
