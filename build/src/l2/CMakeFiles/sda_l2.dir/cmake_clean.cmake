file(REMOVE_RECURSE
  "CMakeFiles/sda_l2.dir/dhcp.cpp.o"
  "CMakeFiles/sda_l2.dir/dhcp.cpp.o.d"
  "CMakeFiles/sda_l2.dir/dhcp_wire.cpp.o"
  "CMakeFiles/sda_l2.dir/dhcp_wire.cpp.o.d"
  "CMakeFiles/sda_l2.dir/l2_gateway.cpp.o"
  "CMakeFiles/sda_l2.dir/l2_gateway.cpp.o.d"
  "CMakeFiles/sda_l2.dir/service_discovery.cpp.o"
  "CMakeFiles/sda_l2.dir/service_discovery.cpp.o.d"
  "CMakeFiles/sda_l2.dir/slaac.cpp.o"
  "CMakeFiles/sda_l2.dir/slaac.cpp.o.d"
  "libsda_l2.a"
  "libsda_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
