file(REMOVE_RECURSE
  "libsda_workload.a"
)
