file(REMOVE_RECURSE
  "CMakeFiles/sda_workload.dir/campus.cpp.o"
  "CMakeFiles/sda_workload.dir/campus.cpp.o.d"
  "CMakeFiles/sda_workload.dir/policy_drops.cpp.o"
  "CMakeFiles/sda_workload.dir/policy_drops.cpp.o.d"
  "CMakeFiles/sda_workload.dir/warehouse.cpp.o"
  "CMakeFiles/sda_workload.dir/warehouse.cpp.o.d"
  "libsda_workload.a"
  "libsda_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
