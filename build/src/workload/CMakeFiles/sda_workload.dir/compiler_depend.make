# Empty compiler generated dependencies file for sda_workload.
# This may be replaced when dependencies are built.
