file(REMOVE_RECURSE
  "CMakeFiles/sda_sim.dir/random.cpp.o"
  "CMakeFiles/sda_sim.dir/random.cpp.o.d"
  "CMakeFiles/sda_sim.dir/simulator.cpp.o"
  "CMakeFiles/sda_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/sda_sim.dir/time.cpp.o"
  "CMakeFiles/sda_sim.dir/time.cpp.o.d"
  "libsda_sim.a"
  "libsda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
