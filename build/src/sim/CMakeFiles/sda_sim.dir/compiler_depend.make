# Empty compiler generated dependencies file for sda_sim.
# This may be replaced when dependencies are built.
