file(REMOVE_RECURSE
  "libsda_sim.a"
)
