# Empty compiler generated dependencies file for sda_dataplane.
# This may be replaced when dependencies are built.
