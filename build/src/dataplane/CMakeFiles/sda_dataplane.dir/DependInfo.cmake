
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/border_router.cpp" "src/dataplane/CMakeFiles/sda_dataplane.dir/border_router.cpp.o" "gcc" "src/dataplane/CMakeFiles/sda_dataplane.dir/border_router.cpp.o.d"
  "/root/repo/src/dataplane/edge_router.cpp" "src/dataplane/CMakeFiles/sda_dataplane.dir/edge_router.cpp.o" "gcc" "src/dataplane/CMakeFiles/sda_dataplane.dir/edge_router.cpp.o.d"
  "/root/repo/src/dataplane/sgacl.cpp" "src/dataplane/CMakeFiles/sda_dataplane.dir/sgacl.cpp.o" "gcc" "src/dataplane/CMakeFiles/sda_dataplane.dir/sgacl.cpp.o.d"
  "/root/repo/src/dataplane/vrf.cpp" "src/dataplane/CMakeFiles/sda_dataplane.dir/vrf.cpp.o" "gcc" "src/dataplane/CMakeFiles/sda_dataplane.dir/vrf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sda_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trie/CMakeFiles/sda_trie.dir/DependInfo.cmake"
  "/root/repo/build/src/lisp/CMakeFiles/sda_lisp.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/sda_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/underlay/CMakeFiles/sda_underlay.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sda_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
