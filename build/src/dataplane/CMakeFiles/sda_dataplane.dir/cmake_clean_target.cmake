file(REMOVE_RECURSE
  "libsda_dataplane.a"
)
