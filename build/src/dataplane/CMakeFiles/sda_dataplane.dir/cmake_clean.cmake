file(REMOVE_RECURSE
  "CMakeFiles/sda_dataplane.dir/border_router.cpp.o"
  "CMakeFiles/sda_dataplane.dir/border_router.cpp.o.d"
  "CMakeFiles/sda_dataplane.dir/edge_router.cpp.o"
  "CMakeFiles/sda_dataplane.dir/edge_router.cpp.o.d"
  "CMakeFiles/sda_dataplane.dir/sgacl.cpp.o"
  "CMakeFiles/sda_dataplane.dir/sgacl.cpp.o.d"
  "CMakeFiles/sda_dataplane.dir/vrf.cpp.o"
  "CMakeFiles/sda_dataplane.dir/vrf.cpp.o.d"
  "libsda_dataplane.a"
  "libsda_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
