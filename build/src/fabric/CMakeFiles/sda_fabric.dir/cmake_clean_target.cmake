file(REMOVE_RECURSE
  "libsda_fabric.a"
)
