# Empty dependencies file for sda_fabric.
# This may be replaced when dependencies are built.
