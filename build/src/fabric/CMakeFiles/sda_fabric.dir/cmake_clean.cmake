file(REMOVE_RECURSE
  "CMakeFiles/sda_fabric.dir/fabric.cpp.o"
  "CMakeFiles/sda_fabric.dir/fabric.cpp.o.d"
  "CMakeFiles/sda_fabric.dir/inspect.cpp.o"
  "CMakeFiles/sda_fabric.dir/inspect.cpp.o.d"
  "CMakeFiles/sda_fabric.dir/topologies.cpp.o"
  "CMakeFiles/sda_fabric.dir/topologies.cpp.o.d"
  "libsda_fabric.a"
  "libsda_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sda_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
