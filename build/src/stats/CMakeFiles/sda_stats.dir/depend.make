# Empty dependencies file for sda_stats.
# This may be replaced when dependencies are built.
