file(REMOVE_RECURSE
  "libsda_stats.a"
)
